"""Ablation: AND/OR amplification parameters of the LSH index.

DESIGN.md calls out the (L, k) trade-off as the design choice behind all
index runs: more bits per table (k, the AND width) shrink candidate sets
but cost recall per table; more tables (L, the OR width) buy the recall
back.  The ρ theory says the achievable trade-off curve is governed by
``rho = log P1 / log P2`` *independently of k* — this bench sweeps the
grid and prints recall vs candidates so the invariance is visible.
"""

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.datasets import planted_mips
from repro.lsh import BatchSignIndex
from repro.lsh.amplification import amplify_gap, rho
from repro.lsh.rho import collision_prob_hyperplane


def test_and_or_sweep(benchmark):
    inst = planted_mips(2000, 32, 48, s=0.85, c=0.4, seed=0)

    def build():
        rows = []
        for bits in (6, 10, 14):
            for tables in (4, 8, 16, 32):
                idx = BatchSignIndex.for_datadep(
                    48, n_tables=tables, bits_per_table=bits, seed=1
                ).build(inst.P)
                hits = 0
                cands = 0
                for qi in range(32):
                    cand = idx.candidates(inst.Q[qi])
                    cands += cand.size
                    if cand.size:
                        values = inst.P[cand] @ inst.Q[qi]
                        if values.max() >= inst.cs:
                            hits += 1
                rows.append([
                    bits, tables, f"{hits / 32:.2f}",
                    f"{cands / 32:.1f}", f"{cands / 32 / inst.n:.4f}",
                ])
        return format_table(
            ["k (AND bits)", "L (OR tables)", "recall", "cands/query", "fraction of n"],
            rows,
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_amplification", text)


def test_rho_invariance_under_and(benchmark):
    """rho(p1^k, p2^k) == rho(p1, p2): the theory behind the sweep."""

    def build():
        p1 = collision_prob_hyperplane(0.85)
        p2 = collision_prob_hyperplane(0.34)
        rows = []
        for k in (1, 2, 4, 8, 16):
            a1, a2 = amplify_gap(p1, p2, k)
            rows.append([k, f"{a1:.6f}", f"{a2:.6f}", f"{rho(a1, a2):.6f}"])
        return format_table(["k", "P1^k", "P2^k", "rho"], rows)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_rho_invariance", text)
    # All rho values identical.
    values = {line.split()[-1] for line in text.splitlines()[2:]}
    assert len(values) == 1


def test_batch_index_build_throughput(benchmark):
    inst = planted_mips(2000, 8, 32, s=0.85, c=0.4, seed=2)
    benchmark.pedantic(
        lambda: BatchSignIndex.for_datadep(
            32, n_tables=16, bits_per_table=12, seed=3
        ).build(inst.P),
        rounds=3, iterations=1,
    )


def test_batch_index_query_throughput(benchmark):
    inst = planted_mips(2000, 8, 32, s=0.85, c=0.4, seed=4)
    idx = BatchSignIndex.for_datadep(
        32, n_tables=16, bits_per_table=12, seed=5
    ).build(inst.P)
    benchmark(idx.candidates, inst.Q[0])
