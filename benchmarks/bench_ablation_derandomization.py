"""Ablation: deterministic (Lemma 3) vs randomized (Valiant) Chebyshev.

The paper's remark made measurable: both constructions realize
``b^q T_q(u/b)`` over ±1 vectors, but the deterministic tensor
construction gets it *exactly* at dimension ``<= (9d)^q`` while the
randomized monomial sampler pays variance ``~ W/sqrt(m)`` at any chosen
dimension ``m``.  The table shows the randomized embedding's relative
error shrinking with ``m`` toward the deterministic construction's zero,
and the dimensions at which each operates.
"""

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.embeddings import ChebyshevSignEmbedding
from repro.embeddings.valiant_random import RandomizedChebyshevEmbedding


def test_deterministic_vs_randomized(benchmark):
    d, q = 10, 2
    rng = np.random.default_rng(0)

    def build():
        deterministic = ChebyshevSignEmbedding(d, q)
        b = float(deterministic.b)
        # Evaluate on the deterministic construction's base gadget scale:
        # compare the estimators of b^q T_q(u/b) at u = x.y for raw ±1
        # vectors of dimension d.
        x = rng.choice([-1, 1], size=d)
        y = rng.choice([-1, 1], size=d)
        u = float(x @ y)
        exact = RandomizedChebyshevEmbedding(d, q, b, m=1, seed=0).exact_value(u)
        rows = [[
            "deterministic (Lemma 3)",
            deterministic.d_out,
            "exact",
            "0",
        ]]
        for m in (50, 200, 800, 3200):
            estimates = [
                RandomizedChebyshevEmbedding(d, q, b, m=m, seed=s).estimate(x, y)
                for s in range(25)
            ]
            rel_err = float(np.mean(np.abs(np.array(estimates) - exact))) / max(
                abs(exact), 1e-12
            )
            rows.append([
                f"randomized (Valiant), m={m}",
                m,
                f"{np.mean(estimates):.1f} vs exact {exact:.1f}",
                f"{rel_err:.3f}",
            ])
        return format_table(
            ["construction", "dimension", "value", "mean relative error"], rows
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_derandomization", text)


def test_randomized_embed_throughput(benchmark, rng):
    emb = RandomizedChebyshevEmbedding(d=16, q=3, b=32.0, m=2000, seed=1)
    x = rng.choice([-1, 1], size=16)
    benchmark(emb.embed_left, x)
