"""Ablation: query-directed multiprobe vs more tables.

Multiprobe trades extra bucket lookups for index memory: probing the
lowest-margin bit flips of few tables can match the recall of many
tables.  The grid prints recall and candidates per query across
(tables x probes), making the classic trade-off visible on our planted
workload.
"""

from benchmarks.conftest import emit, format_table
from repro.datasets import planted_mips
from repro.lsh import BatchSignIndex


def test_multiprobe_grid(benchmark):
    inst = planted_mips(2000, 32, 48, s=0.85, c=0.4, seed=0)

    def build():
        rows = []
        for tables in (2, 4, 8, 16):
            idx = BatchSignIndex.for_datadep(
                48, n_tables=tables, bits_per_table=12, seed=1
            ).build(inst.P)
            for probes in (0, 2, 6):
                idx.stats.reset()
                hits = 0
                cands = 0
                cand_lists = idx.candidates_batch(inst.Q, n_probes=probes)
                for qi, cand in enumerate(cand_lists):
                    cands += cand.size
                    if cand.size and (inst.P[cand] @ inst.Q[qi]).max() >= inst.cs:
                        hits += 1
                # Probe efficiency: what fraction of inspected candidates
                # the flipped-bit buckets contributed (tracked separately
                # from exact-bucket hits by QueryStats).
                rows.append([
                    tables, probes, f"{hits / 32:.2f}", f"{cands / 32:.1f}",
                    f"{idx.stats.probe_fraction:.2f}",
                    f"{idx.stats.probed_buckets / idx.stats.queries:.1f}",
                ])
        return format_table(
            ["tables", "probes/table", "recall", "cands/query",
             "probe frac", "hit probes/query"], rows
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_multiprobe", text)


def test_multiprobe_query_throughput(benchmark):
    inst = planted_mips(2000, 8, 48, s=0.85, c=0.4, seed=2)
    idx = BatchSignIndex.for_datadep(
        48, n_tables=4, bits_per_table=12, seed=3
    ).build(inst.P)
    benchmark(idx.candidates, inst.Q[0], 6)
