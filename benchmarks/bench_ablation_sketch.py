"""Ablation: sketch accuracy vs budget (copies, rows).

DESIGN.md's sketch design choices: the number of median-boost copies and
the bucket count per copy.  The theory says estimate quality improves
with both; this bench quantifies the relative-error distribution of the
``l_kappa`` estimator across the grid, plus the effect of kappa on the
end-to-end c-MIPS answer quality at fixed budget.
"""

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.datasets import planted_mips, random_unit
from repro.sketches import LKappaSketch, SketchCMIPS
from repro.sketches.stable import kappa_norm


def test_sketch_budget_ablation(benchmark):
    n = 512
    rng = np.random.default_rng(0)
    vectors = [rng.normal(size=n) for _ in range(25)]

    def build():
        rows = []
        for copies in (3, 7, 15):
            for row_factor in (0.5, 1.0, 2.0):
                base = LKappaSketch(n, 3.0, copies=copies, seed=1)
                sketch = LKappaSketch(
                    n, 3.0, copies=copies,
                    rows=max(1, int(base.rows * row_factor)), seed=1,
                )
                errors = []
                for x in vectors:
                    true = kappa_norm(x, 3.0)
                    errors.append(abs(sketch.estimate(x) - true) / true)
                rows.append([
                    copies, sketch.rows,
                    f"{np.median(errors):.3f}", f"{np.max(errors):.3f}",
                ])
        return format_table(
            ["copies", "rows", "median rel err", "max rel err"], rows
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_sketch_budget", text)


def test_sketch_kappa_ablation(benchmark):
    inst = planted_mips(512, 16, 24, s=0.9, c=0.3, seed=2)

    def build():
        rows = []
        for kappa in (2.0, 2.5, 3.0, 4.0, 6.0):
            structure = SketchCMIPS(inst.P, kappa=kappa, copies=7, seed=3)
            ratios = []
            for qi in range(16):
                q = inst.Q[qi]
                opt = float(np.abs(inst.P @ q).max())
                ratios.append(structure.query(q).value / opt)
            rows.append([
                f"{kappa:g}",
                f"{structure.approximation_factor:.4f}",
                f"{min(ratios):.3f}",
                f"{np.mean(ratios):.3f}",
                structure.estimator.rows,
            ])
        return format_table(
            ["kappa", "promised c", "worst ratio", "mean ratio", "rows"], rows
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_sketch_kappa", text)


def test_sketch_estimate_throughput(benchmark, rng):
    sketch = LKappaSketch(2048, 3.0, copies=7, seed=4)
    x = rng.normal(size=2048)
    benchmark(sketch.estimate, x)
