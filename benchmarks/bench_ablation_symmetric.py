"""Ablation: Section 4.2's symmetric LSH vs Section 4.1's asymmetric one.

Head-to-head on one unit-ball workload: the asymmetric DATA-DEP index
and the symmetric incoherent-completion index, matched on (L, k), plus a
sweep of the symmetric scheme's ``eps`` knob — larger eps means smaller
companion dimension but looser inner-product preservation, the design
trade-off DESIGN.md calls out.
"""

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.datasets import planted_mips
from repro.embeddings import SymmetricSphereCompletion
from repro.lsh import BatchSignIndex


def test_symmetric_vs_asymmetric(benchmark):
    inst = planted_mips(800, 24, 32, s=0.85, c=0.4, seed=0)

    def build():
        rows = []
        indexes = {
            "asymmetric DATA-DEP (4.1)": BatchSignIndex.for_datadep(
                32, n_tables=16, bits_per_table=10, seed=1
            ),
            "symmetric incoherent (4.2)": BatchSignIndex.for_symmetric(
                32, eps=0.05, n_tables=16, bits_per_table=10, seed=1
            ),
        }
        for name, idx in indexes.items():
            idx.build(inst.P)
            hits = 0
            cands = 0
            for qi in range(24):
                cand = idx.candidates(inst.Q[qi])
                cands += cand.size
                if cand.size and (inst.P[cand] @ inst.Q[qi]).max() >= inst.cs:
                    hits += 1
            rows.append([name, f"{hits / 24:.2f}", f"{cands / 24:.1f}"])
        return format_table(["index", "recall", "cands/query"], rows)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_symmetric_vs_asymmetric", text)


def test_symmetric_eps_sweep(benchmark):
    rng = np.random.default_rng(2)
    pairs = []
    for _ in range(40):
        p = rng.normal(size=8); p *= rng.uniform(0.2, 0.95) / np.linalg.norm(p)
        q = rng.normal(size=8); q *= rng.uniform(0.2, 0.95) / np.linalg.norm(q)
        pairs.append((p, q))

    def build():
        rows = []
        for eps in (0.02, 0.05, 0.1, 0.2):
            completion = SymmetricSphereCompletion(eps=eps)
            errors = [
                abs(completion.embed(p) @ completion.embed(q) - p @ q)
                for p, q in pairs
            ]
            rows.append([
                eps, completion.registry.dimension,
                f"{np.max(errors):.4f}", f"{np.mean(errors):.4f}",
            ])
        return format_table(
            ["eps", "companion dim", "max ip error", "mean ip error"], rows
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_symmetric_eps", text)


def test_symmetric_embed_throughput(benchmark, rng):
    completion = SymmetricSphereCompletion(eps=0.05)
    x = rng.normal(size=16)
    x *= 0.8 / np.linalg.norm(x)
    benchmark(completion.embed, x)
