"""Engineering ablation: vectorized batch index vs the generic per-vector
index, and CSR vs dict bucket storage inside the batch index.

Same scheme (DATA-DEP), same (L, k): the batch index hashes everything
with two matrix products where the generic index makes one Python call
per (vector, table, bit), and the CSR layout answers a whole query
block with ``np.searchsorted`` per table where the dict layout walks a
Python dict per (query, table).  Prints build/query wall times and
confirms equal recall — the speedups are pure engineering, not a
different algorithm.  (``tools/bench_perf.py`` runs the same
comparison at n=100k and records it in ``BENCH_PR1.json``.)
"""

import time

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.datasets import planted_mips
from repro.lsh import BatchSignIndex, DataDepALSH, LSHIndex


def test_batch_vs_generic_index(benchmark):
    inst = planted_mips(1500, 24, 32, s=0.85, c=0.4, seed=0)
    tables, bits = 12, 8

    def build():
        rows = []
        # Generic per-vector index.
        start = time.perf_counter()
        generic = LSHIndex(
            DataDepALSH(32, sphere="hyperplane"),
            n_tables=tables, hashes_per_table=bits, seed=1,
        ).build(inst.P)
        generic_build = time.perf_counter() - start
        start = time.perf_counter()
        generic_hits = sum(
            1 for qi in range(24)
            if generic.query(inst.Q[qi], threshold=inst.cs) is not None
        )
        generic_query = time.perf_counter() - start
        rows.append([
            "generic LSHIndex", f"{generic_build:.3f} s",
            f"{generic_query * 1e3:.1f} ms", f"{generic_hits / 24:.2f}",
        ])

        # Vectorized batch index, both bucket layouts.
        timings = {}
        for layout in ("dict", "csr"):
            start = time.perf_counter()
            batch = BatchSignIndex.for_datadep(
                32, n_tables=tables, bits_per_table=bits, seed=1, layout=layout
            ).build(inst.P)
            batch_build = time.perf_counter() - start
            start = time.perf_counter()
            batch_hits = sum(
                1 for qi in range(24)
                if batch.query(inst.Q[qi], threshold=inst.cs) is not None
            )
            batch_query = time.perf_counter() - start
            timings[layout] = (batch_build, batch_query)
            rows.append([
                f"BatchSignIndex[{layout}]", f"{batch_build:.3f} s",
                f"{batch_query * 1e3:.1f} ms", f"{batch_hits / 24:.2f}",
            ])

        rows.append([
            "speedup (csr vs generic)",
            f"{generic_build / timings['csr'][0]:.0f}x",
            f"{generic_query / timings['csr'][1]:.0f}x", "-",
        ])
        return format_table(["index", "build", "24 queries", "recall"], rows)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("batch_vs_generic_index", text)


def test_csr_vs_dict_candidates_batch(benchmark):
    """Block candidate generation: CSR searchsorted vs dict walk."""
    inst = planted_mips(4000, 30, 48, s=0.85, c=0.4, seed=4)
    tables, bits = 16, 12

    def build():
        rows = []
        lists = {}
        for layout in ("dict", "csr"):
            idx = BatchSignIndex.for_datadep(
                48, n_tables=tables, bits_per_table=bits, seed=5, layout=layout
            ).build(inst.P)
            start = time.perf_counter()
            for _ in range(5):
                lists[layout] = idx.candidates_batch(inst.Q, n_probes=2)
            elapsed = (time.perf_counter() - start) / 5
            rows.append([layout, f"{elapsed * 1e3:.2f} ms",
                         f"{idx.stats.candidates_per_query:.0f}"])
        equal = all(
            np.array_equal(a, b)
            for a, b in zip(lists["dict"], lists["csr"])
        )
        rows.append(["identical candidates", str(equal), "-"])
        return format_table(["layout", "30-query block", "cands/query"], rows)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("csr_vs_dict_candidates", text)


def test_batch_candidates_batch_api(benchmark):
    inst = planted_mips(1500, 24, 32, s=0.85, c=0.4, seed=2)
    idx = BatchSignIndex.for_datadep(
        32, n_tables=12, bits_per_table=8, seed=3
    ).build(inst.P)
    benchmark(idx.candidates_batch, inst.Q)
