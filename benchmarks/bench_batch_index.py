"""Engineering ablation: vectorized batch index vs the generic per-vector
index.

Same scheme (DATA-DEP), same (L, k): the batch index hashes everything
with two matrix products where the generic index makes one Python call
per (vector, table, bit).  Prints build/query wall times and confirms
equal recall — the speedup is pure engineering, not a different
algorithm.
"""

import time

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.datasets import planted_mips
from repro.lsh import BatchSignIndex, DataDepALSH, LSHIndex


def test_batch_vs_generic_index(benchmark):
    inst = planted_mips(1500, 24, 32, s=0.85, c=0.4, seed=0)
    tables, bits = 12, 8

    def build():
        rows = []
        # Generic per-vector index.
        start = time.perf_counter()
        generic = LSHIndex(
            DataDepALSH(32, sphere="hyperplane"),
            n_tables=tables, hashes_per_table=bits, seed=1,
        ).build(inst.P)
        generic_build = time.perf_counter() - start
        start = time.perf_counter()
        generic_hits = sum(
            1 for qi in range(24)
            if generic.query(inst.Q[qi], threshold=inst.cs) is not None
        )
        generic_query = time.perf_counter() - start

        # Vectorized batch index.
        start = time.perf_counter()
        batch = BatchSignIndex.for_datadep(
            32, n_tables=tables, bits_per_table=bits, seed=1
        ).build(inst.P)
        batch_build = time.perf_counter() - start
        start = time.perf_counter()
        batch_hits = sum(
            1 for qi in range(24)
            if batch.query(inst.Q[qi], threshold=inst.cs) is not None
        )
        batch_query = time.perf_counter() - start

        rows.append([
            "generic LSHIndex", f"{generic_build:.3f} s",
            f"{generic_query * 1e3:.1f} ms", f"{generic_hits / 24:.2f}",
        ])
        rows.append([
            "BatchSignIndex", f"{batch_build:.3f} s",
            f"{batch_query * 1e3:.1f} ms", f"{batch_hits / 24:.2f}",
        ])
        rows.append([
            "speedup", f"{generic_build / batch_build:.0f}x",
            f"{generic_query / batch_query:.0f}x", "-",
        ])
        return format_table(["index", "build", "24 queries", "recall"], rows)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("batch_vs_generic_index", text)


def test_batch_candidates_batch_api(benchmark):
    inst = planted_mips(1500, 24, 32, s=0.85, c=0.4, seed=2)
    idx = BatchSignIndex.for_datadep(
        32, n_tables=12, bits_per_table=8, seed=3
    ).build(inst.P)
    benchmark(idx.candidates_batch, inst.Q)
