"""Lemma 3's evaluation-cost claim: embeddings run in time linear in the
output dimension.

Prints microseconds-per-output-coordinate over growing parameters for
each embedding — the per-coordinate cost must stay roughly flat (the
dynamic-programming evaluation of the Chebyshev construction is the
interesting case: its output dimension grows by orders of magnitude while
the per-coordinate cost does not).
"""

import time

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.embeddings import (
    ChebyshevSignEmbedding,
    ChoppedBinaryEmbedding,
    SignedCoordinateEmbedding,
)


def _time_embed(embedding, x, repeats=5):
    start = time.perf_counter()
    for _ in range(repeats):
        embedding.embed_left(x)
    return (time.perf_counter() - start) / repeats


def test_embedding_cost_linear_in_output(benchmark):
    rng = np.random.default_rng(0)

    def build():
        rows = []
        for d in (16, 64, 256, 1024):
            emb = SignedCoordinateEmbedding(d)
            x = rng.integers(0, 2, d)
            t = _time_embed(emb, x)
            rows.append(["signed gadget", f"d={d}", emb.d_out, f"{t * 1e9 / emb.d_out:.1f}"])
        for q in (1, 2, 3):
            emb = ChebyshevSignEmbedding(12, q=q)
            x = rng.integers(0, 2, 12)
            t = _time_embed(emb, x)
            rows.append(["Chebyshev", f"d=12, q={q}", emb.d_out, f"{t * 1e9 / emb.d_out:.1f}"])
        for k in (8, 4, 2):
            emb = ChoppedBinaryEmbedding(16, k=k)
            x = rng.integers(0, 2, 16)
            t = _time_embed(emb, x)
            rows.append(["chopped", f"d=16, k={k}", emb.d_out, f"{t * 1e9 / emb.d_out:.1f}"])
        return format_table(
            ["embedding", "parameters", "output dim", "ns per output coordinate"],
            rows,
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("embedding_cost", text)


def test_chebyshev_q3_throughput(benchmark, rng):
    emb = ChebyshevSignEmbedding(12, q=3)
    x = rng.integers(0, 2, 12)
    benchmark(emb.embed_left, x)


def test_signed_d1024_throughput(benchmark, rng):
    emb = SignedCoordinateEmbedding(1024)
    x = rng.integers(0, 2, 1024)
    benchmark(emb.embed_left, x)
