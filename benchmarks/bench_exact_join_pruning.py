"""Exact join with norm pruning (LEMP-style [50]) vs the plain scan.

The paper's motivating recommender workloads have heavily skewed item
norms, which exact systems like LEMP exploit: only data vectors with
``|p| >= cs / |q|`` can match.  This bench sweeps the norm skew and
prints the fraction of pairs the pruned exact join evaluates — near 1 on
flat norms (the theory's worst case), small on skewed ones — alongside
a verification that its matches coincide with brute force.
"""

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.core import JoinSpec, brute_force_join, norm_pruned_join
from repro.datasets import latent_factor_model


def test_norm_pruning_vs_skew(benchmark):
    def build():
        rows = []
        for skew in (0.0, 0.3, 0.8, 1.5):
            model = latent_factor_model(
                32, 2000, rank=16, popularity_skew=skew, seed=int(skew * 10)
            )
            spec = JoinSpec(s=0.4, c=0.8)
            exact = brute_force_join(model.items, model.users, spec)
            pruned = norm_pruned_join(model.items, model.users, spec)
            agree = all(
                (a is None) == (b is None)
                for a, b in zip(pruned.matches, exact.matches)
            )
            rows.append([
                f"{skew:g}",
                f"{np.linalg.norm(model.items, axis=1).std():.3f}",
                exact.inner_products_evaluated,
                pruned.inner_products_evaluated,
                f"{pruned.inner_products_evaluated / exact.inner_products_evaluated:.3f}",
                "OK" if agree else "MISMATCH",
            ])
        return format_table(
            ["norm skew", "norm std", "scan pairs", "pruned pairs",
             "fraction", "matches agree"],
            rows,
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("norm_pruning", text)
    assert "MISMATCH" not in text


def test_norm_pruned_join_timing(benchmark):
    model = latent_factor_model(32, 2000, rank=16, popularity_skew=0.8, seed=1)
    spec = JoinSpec(s=0.4, c=0.8)
    benchmark.pedantic(
        lambda: norm_pruned_join(model.items, model.users, spec),
        rounds=3, iterations=1,
    )


def test_brute_force_join_timing(benchmark):
    model = latent_factor_model(32, 2000, rank=16, popularity_skew=0.8, seed=1)
    spec = JoinSpec(s=0.4, c=0.8)
    benchmark.pedantic(
        lambda: brute_force_join(model.items, model.users, spec),
        rounds=3, iterations=1,
    )
