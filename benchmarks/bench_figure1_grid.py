"""Figure 1 / Lemma 4 reproduction: the collision-grid charging argument.

Prints (a) the partition census — how many squares of each side tile the
lower triangle at each grid size, exactly the structure Figure 1 draws —
and (b) a full mass-accounting audit of a real asymmetric LSH family on a
real Theorem 3 hard sequence (see :mod:`repro.experiments.figure1`).

Timed component: the mass accounting itself.
"""

from benchmarks.conftest import emit
from repro.experiments.figure1 import (
    build_enumerated_family,
    build_figure1_reports,
    build_mass_accounting_report,
)
from repro.lowerbounds import MassAccounting


def test_figure1_reports(benchmark):
    reports = benchmark.pedantic(build_figure1_reports, rounds=1, iterations=1)
    for name, text in reports.items():
        emit(name, text)
    assert "within bound: True" in reports["figure1_mass_accounting"]


def test_figure1_mass_accounting_timing(benchmark):
    family = build_enumerated_family(ell=4, trials=60, seed=0)
    accounting = MassAccounting(family)
    report = benchmark.pedantic(accounting.verify, rounds=1, iterations=1)
    assert report["gap_within_bound"]
