"""Figure 2, measured: empirical ρ of the implemented families.

The closed-form curves of ``bench_figure2_rho`` are what the paper plots;
this bench measures the same exponents on the *implementations* by
planting pairs at exact similarities and Monte-Carlo-estimating
``log P1 / log P2``, with standard errors.  Agreement of measured and
closed-form ρ is the end-to-end check that the families realize the
theory.
"""

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.lsh import SimpleALSH, estimate_rho
from repro.lsh.hyperplane import HyperplaneLSH
from repro.lsh.rho import rho_simple_lsh


def test_empirical_rho_table(benchmark):
    c = 0.5
    d = 32

    def build():
        rows = []
        for s in (0.3, 0.5, 0.7, 0.9):
            exact = rho_simple_lsh(s, c)
            est_hp = estimate_rho(
                HyperplaneLSH(d), s, c, d=d, trials=2500, seed=int(s * 100)
            )
            est_sa = estimate_rho(
                SimpleALSH(d), s, c, d=d, trials=2500,
                data_norm=0.999, seed=int(s * 100) + 1,
            )
            rows.append([
                f"{s:.1f}",
                f"{exact:.4f}",
                f"{est_hp.rho:.4f} ± {est_hp.standard_error:.4f}",
                f"{est_sa.rho:.4f} ± {est_sa.standard_error:.4f}",
            ])
        return format_table(
            ["s", "closed form (SIMP)", "measured hyperplane", "measured SIMPLE-ALSH"],
            rows,
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("figure2_empirical", text)


def test_estimate_rho_throughput(benchmark):
    benchmark.pedantic(
        lambda: estimate_rho(HyperplaneLSH(16), 0.7, 0.5, d=16, trials=300, seed=0),
        rounds=3, iterations=1,
    )
