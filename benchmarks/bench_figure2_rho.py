"""Figure 2 reproduction: ρ exponents of DATA-DEP vs SIMP vs MH-ALSH.

Prints the three curves over a grid of thresholds for several
approximation factors (the closed forms the paper plots), plus a
Monte-Carlo cross-check of the implemented hash families against those
closed forms (see :mod:`repro.experiments.figure2`).

Expected shape: DATA-DEP below SIMP everywhere and below MH-ALSH for
larger ``s``/``c``, MH-ALSH winning at small ``s`` — the crossover the
paper describes.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments.figure2 import (
    build_crosscheck_report,
    build_curves_report,
)
from repro.lsh import SimpleALSH
from repro.lsh.base import estimate_collision_probability


def test_figure2_curves(benchmark):
    text = benchmark.pedantic(build_curves_report, rounds=1, iterations=1)
    emit("figure2_rho", text)


def test_figure2_monte_carlo_crosscheck(benchmark):
    text = benchmark.pedantic(build_crosscheck_report, rounds=1, iterations=1)
    emit("figure2_crosscheck", text)


def test_figure2_collision_estimation_throughput(benchmark, rng):
    fam = SimpleALSH(48)
    p = rng.normal(size=48); p /= 2 * np.linalg.norm(p)
    q = rng.normal(size=48); q /= np.linalg.norm(q)
    benchmark(estimate_collision_probability, fam, p, q, 100, 3)
