"""The hard-instance parameter landscape of Theorems 1 and 2.

Prints, for growing ``n``, the concrete ``(d, d2, s, cs, c, ratio)`` each
proof's embedding family produces (see
:mod:`repro.experiments.hard_instances`) — the paper's "for intuition"
discussion made computable: ``c -> 0`` for signed ±1, subconstant for
unsigned ±1, ``c -> 1`` for unsigned {0,1}.
"""

from benchmarks.conftest import emit
from repro.experiments.hard_instances import build_hard_instance_reports


def test_hard_instance_reports(benchmark):
    reports = benchmark.pedantic(build_hard_instance_reports, rounds=1, iterations=1)
    for name, text in reports.items():
        emit(name, text)
