"""Join algorithm comparison: exact vs LSH vs sketch over a size sweep.

Prints, per algorithm and data size, wall time, exact inner products
evaluated (the work measure), and recall against the exact join.  The
shape to reproduce: brute-force work grows quadratically in ``n`` while
the filter-based algorithms' verified-pair counts grow subquadratically —
the crossover the paper's upper bounds promise.  (Wall-clock comparisons
in pure Python flatter BLAS-backed brute force at small sizes; the work
columns carry the asymptotic point.)
"""

import time

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.core import (
    BatchIndexSpec,
    JoinSpec,
    brute_force_join,
    lsh_join,
    parallel_lsh_join,
    sketch_unsigned_join,
)
from repro.datasets import adversarial_maxip, planted_mips
from repro.engine import join as engine_join
from repro.lsh import DataDepALSH
from repro.obs import (
    PlannerLog,
    format_pick_distribution,
    format_regret_table,
    use_planner_log,
)


#: The sweep grid: (n, d, s, c).  The n-sweep at the reference shape
#: carries the asymptotic crossover; the d/s/c spokes show how the
#: picture moves with dimension, threshold, and approximation factor.
CROSSOVER_GRID = (
    *((n, 24, 0.85, 0.4) for n in (256, 512, 1024, 2048, 4096)),
    *((n, 20, 0.85, 0.4) for n in (512, 2048)),
    *((n, 48, 0.85, 0.4) for n in (512, 2048)),
    *((n, 24, 0.90, 0.6) for n in (512, 2048)),
    *((n, 24, 0.75, 0.3) for n in (512, 2048)),
)

#: Adversarial Max-IP spoke: (n, d, weight).  Chen-style OV-gadget
#: instances — Hamming-sphere data, additive O(1) planted gap — where
#: every sub-quadratic backend should degrade toward brute-force work.
ADVERSARIAL_GRID = (
    (256, 64, 12),
    (512, 64, 12),
    (1024, 96, 16),
    (2048, 96, 16),
)


def test_join_crossover_table(benchmark):
    def build():
        rows = []
        for n, d, s, c in CROSSOVER_GRID:
            inst = planted_mips(n, 16, d, s=s, c=c, seed=n + d)
            spec = JoinSpec(s=inst.s, c=c)
            timings = {}

            start = time.perf_counter()
            exact = brute_force_join(inst.P, inst.Q, spec)
            timings["exact"] = time.perf_counter() - start

            family = DataDepALSH(d, sphere="hyperplane")
            start = time.perf_counter()
            approx = lsh_join(inst.P, inst.Q, spec, family,
                              n_tables=12, hashes_per_table=7, seed=1)
            timings["lsh"] = time.perf_counter() - start

            # Same scheme through the CSR batch index + blocked verify
            # (the executor's serial path; n_workers=1 is exact).
            start = time.perf_counter()
            batch = parallel_lsh_join(
                inst.P, inst.Q, spec,
                index_spec=BatchIndexSpec(
                    d=d, scheme="datadep", n_tables=12, bits_per_table=7, seed=1,
                ),
                n_workers=1,
            )
            timings["lsh-csr"] = time.perf_counter() - start

            start = time.perf_counter()
            sketched = sketch_unsigned_join(inst.P, inst.Q, s=inst.s,
                                            kappa=3.0, copies=5, seed=2)
            timings["sketch"] = time.perf_counter() - start

            for name, result in (("exact", exact), ("lsh", approx),
                                 ("lsh-csr", batch), ("sketch", sketched)):
                rows.append([
                    n, d, f"{s:g}", f"{c:g}", name,
                    f"{timings[name] * 1e3:.1f} ms",
                    result.inner_products_evaluated,
                    f"{result.inner_products_evaluated / (n * 16):.4f}",
                    f"{result.recall_against(exact):.2f}",
                ])
        return format_table(
            ["n", "d", "s", "c", "algorithm", "wall time", "pairs verified",
             "fraction of n*m", "recall"],
            rows,
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("join_crossover", text)


def test_adversarial_maxip_table(benchmark):
    """Top-1 joins on the OV-gadget hard family, per backend.

    Every row's data lives on one Hamming sphere (equal norms) and the
    planted answer beats the bulk by an additive gap of ~1 inner-product
    unit, so ``norm_pruned`` gains nothing over ``brute_force`` and the
    planner's exact tie-break is the interesting signal: the work
    columns should stay essentially quadratic for every backend, the
    crossover bench's designed-to-be-hard counterpoint.
    """
    def build():
        rows = []
        for n, d, weight in ADVERSARIAL_GRID:
            inst = adversarial_maxip(n, 16, d, weight=weight, seed=n + d)
            # Top-1 at a threshold the planted pair just clears; c = 1
            # keeps the request exact (no multiplicative gap exists).
            s = float(inst.planted_ip.min())
            spec = JoinSpec(s=s, k=1, signed=False)
            for backend in ("brute_force", "norm_pruned", "auto"):
                start = time.perf_counter()
                result = engine_join(
                    inst.P, inst.Q, spec, backend=backend, seed=1
                )
                wall = time.perf_counter() - start
                hits = sum(
                    1 for qi, lst in enumerate(result.topk or [])
                    if lst and lst[0] == int(inst.answers[qi])
                )
                rows.append([
                    n, d, weight, f"{inst.min_gap}", backend,
                    f"{wall * 1e3:.1f} ms",
                    result.inner_products_evaluated,
                    f"{result.inner_products_evaluated / (n * 16):.4f}",
                    f"{hits / len(inst.answers):.2f}",
                ])
        return format_table(
            ["n", "d", "weight", "gap", "backend", "wall time",
             "pairs verified", "fraction of n*m", "planted top-1 found"],
            rows,
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("adversarial_maxip", text)


def test_planner_pick_distribution(benchmark):
    """Run a sweep under every backend + auto; report planner regret.

    Every engine join appends to the active
    :class:`~repro.obs.planner_log.PlannerLog`; running the same
    instance under each explicit backend gives regret its measured
    denominators, and the auto rows show what the planner picked and
    what it cost relative to the measured-fastest backend.
    """
    def build():
        log = PlannerLog()
        with use_planner_log(log):
            for n, d, s, c in CROSSOVER_GRID:
                inst = planted_mips(n, 16, d, s=s, c=c, seed=n + d)
                spec = JoinSpec(s=inst.s, c=c, signed=False)
                for backend in ("brute_force", "norm_pruned", "lsh", "sketch"):
                    engine_join(inst.P, inst.Q, spec, backend=backend, seed=1)
                engine_join(inst.P, inst.Q, spec, backend="auto", seed=1)
        return (
            "== planner regret ==\n"
            + format_regret_table(log)
            + "\n\n== auto pick distribution ==\n"
            + format_pick_distribution(log)
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("planner_pick_distribution", text)


def test_exact_join_n1024(benchmark):
    inst = planted_mips(1024, 16, 24, s=0.85, c=0.4, seed=0)
    spec = JoinSpec(s=inst.s, c=0.4)
    benchmark(brute_force_join, inst.P, inst.Q, spec)


def test_lsh_join_n1024(benchmark):
    inst = planted_mips(1024, 16, 24, s=0.85, c=0.4, seed=0)
    spec = JoinSpec(s=inst.s, c=0.4)
    family = DataDepALSH(24, sphere="hyperplane")
    benchmark.pedantic(
        lambda: lsh_join(inst.P, inst.Q, spec, family,
                         n_tables=8, hashes_per_table=7, seed=1),
        rounds=3, iterations=1,
    )


def test_sketch_join_n1024(benchmark):
    inst = planted_mips(1024, 16, 24, s=0.85, c=0.4, seed=0)
    benchmark.pedantic(
        lambda: sketch_unsigned_join(inst.P, inst.Q, s=inst.s,
                                     kappa=3.0, copies=5, seed=2),
        rounds=3, iterations=1,
    )


def test_batch_lsh_join_n1024(benchmark):
    inst = planted_mips(1024, 16, 24, s=0.85, c=0.4, seed=0)
    spec = JoinSpec(s=inst.s, c=0.4)
    index_spec = BatchIndexSpec(
        d=24, scheme="datadep", n_tables=8, bits_per_table=7, seed=1
    )
    benchmark.pedantic(
        lambda: parallel_lsh_join(inst.P, inst.Q, spec,
                                  index_spec=index_spec, n_workers=1),
        rounds=3, iterations=1,
    )
