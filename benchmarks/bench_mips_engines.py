"""MIPS engine comparison: exact scan vs cone tree vs ALSH vs sketches.

The paper's related-work landscape, measured on one workload: the exact
branch-and-bound cone tree [43], the Section 4.1 ALSH, and the Section
4.3 sketch structure against the linear scan, on a latent-factor model
with popularity-skewed norms (the setting where MIPS differs from cosine
search).  Reports exact-match recall, mean work (inner products), and
the approximation ratio achieved.
"""

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.datasets import latent_factor_model
from repro.mips import ConeTreeMIPS, ExactMIPS, LSHMIPS, SketchMIPS


def test_mips_engine_comparison(benchmark):
    model = latent_factor_model(48, 3000, rank=16, popularity_skew=0.8, seed=0)
    exact = ExactMIPS(model.items)
    truth = [exact.query(model.users[u]) for u in range(model.n_users)]

    def build():
        engines = {
            "exact scan": exact,
            "cone tree [43]": ConeTreeMIPS(model.items, leaf_size=32, seed=1),
            "DATA-DEP ALSH (4.1)": LSHMIPS(
                model.items, n_tables=16, hashes_per_table=6, seed=2
            ),
            "sketch c-MIPS (4.3)": SketchMIPS(model.items, kappa=3.0, copies=5, seed=3),
        }
        rows = []
        for name, engine in engines.items():
            hits = 0
            ratios = []
            works = []
            for u in range(model.n_users):
                answer = engine.query(model.users[u])
                works.append(answer.work)
                if answer.index == truth[u].index:
                    hits += 1
                ratios.append(abs(answer.value) / max(abs(truth[u].value), 1e-12))
            rows.append([
                name,
                f"{hits / model.n_users:.2f}",
                f"{np.mean(ratios):.3f}",
                f"{np.mean(works):.0f}",
                f"{np.mean(works) / model.n_items:.3f}",
            ])
        return format_table(
            ["engine", "top-1 recall", "mean value ratio", "mean work", "work / scan"],
            rows,
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("mips_engines", text)


def test_cone_tree_query(benchmark):
    model = latent_factor_model(8, 3000, rank=16, popularity_skew=0.8, seed=4)
    engine = ConeTreeMIPS(model.items, leaf_size=32, seed=5)
    benchmark(engine.query, model.users[0])


def test_exact_mips_query(benchmark):
    model = latent_factor_model(8, 3000, rank=16, popularity_skew=0.8, seed=6)
    engine = ExactMIPS(model.items)
    benchmark(engine.query, model.users[0])


def test_cone_tree_build(benchmark):
    model = latent_factor_model(4, 3000, rank=16, popularity_skew=0.8, seed=7)
    benchmark.pedantic(
        lambda: ConeTreeMIPS(model.items, leaf_size=32, seed=8),
        rounds=3, iterations=1,
    )
