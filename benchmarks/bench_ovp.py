"""OVP solver baselines: the quadratic bar the conditional bounds concern.

Prints pair-throughput of the three exact solvers over a size sweep in
the conjecture's regime ``d = gamma log n`` — bit packing buys a large
constant, BLAS a larger one, but the scaling stays quadratic, which is
the whole point of Theorem 1.
"""

import time

from benchmarks.conftest import emit, format_table
from repro.datasets import planted_ovp
from repro.ovp import (
    conjecture_dimension,
    solve_ovp_bitpacked,
    solve_ovp_bruteforce,
    solve_ovp_matmul,
    solve_ovp_weight_pruned,
    weight_prunable_fraction,
)


def test_ovp_solver_throughput_table(benchmark):
    def build():
        rows = []
        for n in (64, 128, 256):
            d = conjecture_dimension(n, gamma=2.0)
            inst = planted_ovp(n, d, planted=False, density=0.8, seed=n)
            for name, solver in (
                ("bruteforce", solve_ovp_bruteforce),
                ("bitpacked", solve_ovp_bitpacked),
                ("matmul", solve_ovp_matmul),
                ("weight-pruned", solve_ovp_weight_pruned),
            ):
                start = time.perf_counter()
                answer = solver(inst)
                elapsed = time.perf_counter() - start
                assert answer is None
                rows.append([
                    n, d, name, f"{elapsed * 1e3:.2f} ms",
                    f"{n * n / elapsed / 1e6:.2f} Mpairs/s",
                ])
        rows.append([
            "-", "-", "weight-prunable pairs at density 0.8",
            f"{weight_prunable_fraction(planted_ovp(128, 14, planted=False, density=0.8, seed=128)):.2%}",
            "-",
        ])
        return format_table(["n", "d", "solver", "time", "throughput"], rows)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ovp_solvers", text)


def test_ovp_bruteforce_n64(benchmark):
    inst = planted_ovp(64, 24, planted=False, density=0.8, seed=1)
    benchmark.pedantic(lambda: solve_ovp_bruteforce(inst), rounds=3, iterations=1)


def test_ovp_bitpacked_n256(benchmark):
    inst = planted_ovp(256, 24, planted=False, density=0.8, seed=2)
    benchmark(solve_ovp_bitpacked, inst)


def test_ovp_matmul_n256(benchmark):
    inst = planted_ovp(256, 24, planted=False, density=0.8, seed=3)
    benchmark(solve_ovp_matmul, inst)
