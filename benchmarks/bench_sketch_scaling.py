"""Section 4.3 scaling: query cost ``~ n^{1-2/kappa}`` and approximation
``~ n^{-1/kappa}``.

Prints, over a sweep of data sizes and ``kappa``:

* the sketch's per-query multiply-adds vs the exact scan's ``n d`` — the
  sublinearity claim (the ratio must fall as ``n`` grows for
  ``kappa > 2``);
* the measured approximation ratio (returned value / true max) against
  the promised ``n^{-1/kappa}``.

Timed components: structure construction and single queries.
"""

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.datasets import random_unit
from repro.sketches import MaxDotEstimator, SketchCMIPS


def test_sketch_query_cost_scaling(benchmark):
    d = 24

    def build():
        rows = []
        for kappa in (2.0, 3.0, 4.0):
            for n in (256, 1024, 4096, 16384):
                A = random_unit(n, d, seed=n)
                est = MaxDotEstimator(A, kappa=kappa, copies=5, seed=1)
                exact_cost = n * d
                rows.append([
                    f"{kappa:g}", n, est.rows,
                    est.sketch_cost(),
                    exact_cost,
                    f"{est.sketch_cost() / exact_cost:.3f}",
                ])
        return format_table(
            ["kappa", "n", "sketch rows", "query mults", "exact mults", "ratio"],
            rows,
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("sketch_query_cost", text)


def test_sketch_approximation_vs_promise(benchmark):
    d = 24

    def build():
        rows = []
        rng = np.random.default_rng(0)
        for kappa in (2.0, 3.0, 4.0):
            for n in (256, 1024):
                A = random_unit(n, d, seed=n + 1)
                structure = SketchCMIPS(A, kappa=kappa, copies=7, seed=2)
                ratios = []
                for _ in range(12):
                    q = rng.normal(size=d)
                    q /= np.linalg.norm(q)
                    opt = float(np.abs(A @ q).max())
                    ratios.append(structure.query(q).value / opt)
                rows.append([
                    f"{kappa:g}", n,
                    f"{structure.approximation_factor:.4f}",
                    f"{min(ratios):.4f}",
                    f"{np.mean(ratios):.4f}",
                ])
        return format_table(
            ["kappa", "n", "promised n^(-1/k)", "worst measured", "mean measured"],
            rows,
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("sketch_approximation", text)


def test_sketch_construction_n1024(benchmark):
    A = random_unit(1024, 24, seed=3)
    benchmark.pedantic(
        lambda: SketchCMIPS(A, kappa=3.0, copies=5, seed=4), rounds=3, iterations=1
    )


def test_sketch_query_n4096(benchmark, rng):
    A = random_unit(4096, 24, seed=5)
    structure = SketchCMIPS(A, kappa=3.0, copies=5, seed=6)
    q = rng.normal(size=24)
    benchmark(structure.query, q)


def test_exact_scan_n4096(benchmark, rng):
    A = random_unit(4096, 24, seed=7)
    q = rng.normal(size=24)
    benchmark(lambda: int(np.argmax(np.abs(A @ q))))
