"""The symmetric-LSH chain impossibility (the obstruction Section 4.2 evades).

Prints, per threshold ``s``: the chain length ``k = ceil(arccos(cs)/
arccos(s))``, the measured link and endpoint distances of a concrete
symmetric family (hyperplane LSH) on the constructed great-circle chain,
the triangle-inequality slack (must be >= 0 for every symmetric family),
and the implied ceiling ``P1 <= 1 - (1 - P2)/k`` — which collapses to 1
only as k explodes, i.e. high-threshold symmetric IPS hashing is squeezed
exactly as Neyshabur-Srebro showed.
"""

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.lowerbounds import (
    audit_symmetric_chain,
    chain_length,
    great_circle_chain,
    verify_chain,
)
from repro.lsh import HyperplaneLSH


def test_symmetric_chain_table(benchmark):
    c = 0.5

    def build():
        rows = []
        for s in (0.6, 0.8, 0.9, 0.95, 0.99):
            chain = great_circle_chain(s, c, d=4)
            verify_chain(chain, s, c)
            audit = audit_symmetric_chain(
                HyperplaneLSH(4), chain, trials=800, seed=int(s * 100)
            )
            rows.append([
                f"{s:.2f}",
                chain_length(s, c),
                f"{float(audit.link_distances.max()):.4f}",
                f"{audit.endpoint_distance:.4f}",
                f"{audit.triangle_slack:.4f}",
                f"{audit.implied_p1_ceiling:.4f}",
            ])
        return format_table(
            ["s", "k", "max link dist", "endpoint dist",
             "triangle slack", "P1 ceiling 1-(1-P2)/k"],
            rows,
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("symmetric_chain", text)
    # Triangle inequality can never be violated by a symmetric family.
    for line in text.splitlines()[2:]:
        assert float(line.split()[4]) >= -1e-9


def test_chain_audit_timing(benchmark):
    chain = great_circle_chain(0.9, 0.5, d=4)
    benchmark.pedantic(
        lambda: audit_symmetric_chain(HyperplaneLSH(4), chain, trials=200, seed=0),
        rounds=3, iterations=1,
    )
