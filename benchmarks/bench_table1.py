"""Table 1 reproduction: hard vs permissible approximation ranges.

Prints the paper's four-column table and, per row, an *empirical witness*
(see :mod:`repro.experiments.table1`): the witnessing gap embedding's
measured gap on forced-orthogonal / overlapping pairs, and the sketch
structure's measured approximation against the promised ``n^{-1/kappa}``.

Timed components: the report builders and embedding evaluation per row.
"""

from benchmarks.conftest import emit
from repro.embeddings import (
    ChebyshevSignEmbedding,
    ChoppedBinaryEmbedding,
    SignedCoordinateEmbedding,
)
from repro.experiments.table1 import build_table1_reports


def test_table1_reports(benchmark):
    reports = benchmark.pedantic(build_table1_reports, rounds=1, iterations=1)
    for name, text in reports.items():
        emit(name, text)


def test_table1_embedding_throughput_signed(benchmark, rng):
    emb = SignedCoordinateEmbedding(64)
    x = rng.integers(0, 2, 64)
    benchmark(emb.embed_left, x)


def test_table1_embedding_throughput_chebyshev(benchmark, rng):
    emb = ChebyshevSignEmbedding(16, q=2)
    x = rng.integers(0, 2, 16)
    benchmark(emb.embed_left, x)


def test_table1_embedding_throughput_chopped(benchmark, rng):
    emb = ChoppedBinaryEmbedding(32, k=8)
    x = rng.integers(0, 2, 32)
    benchmark(emb.embed_left, x)
