"""Theorem 1's reduction, executed: OVP solved through gap embeddings + joins.

For each of Lemma 3's embeddings, runs the Lemma 2 pipeline (embed the
OVP instance, run a ``(cs, s)`` join on the images, map answers back) on
planted instances in the conjecture's regime ``d = gamma log n``, checks
the answer against the direct bit-packed solver, and reports instance
sizes, embedded dimensions and timings.

Timed components: the full pipeline per embedding, and the direct solver.
"""

import time

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.core import JoinSpec, brute_force_join
from repro.datasets import planted_ovp
from repro.embeddings import (
    ChebyshevSignEmbedding,
    ChoppedBinaryEmbedding,
    SignedCoordinateEmbedding,
)
from repro.ovp import conjecture_dimension, solve_ovp_bitpacked


def _pipeline(instance, embedding, signed):
    embedded_p = embedding.embed_left_many(instance.P)
    embedded_q = embedding.embed_right_many(instance.Q)
    c = (embedding.cs / embedding.s + 1.0) / 2.0 if embedding.cs > 0 else 0.5
    spec = JoinSpec(s=embedding.s, c=c, signed=signed)
    result = brute_force_join(embedded_p, embedded_q, spec)
    for qi, match in enumerate(result.matches):
        if match is not None and int(instance.P[match] @ instance.Q[qi]) == 0:
            return (match, qi)
    return None


def test_theorem1_reduction_table(benchmark):
    def build():
        rows = []
        for n in (32, 64, 128):
            d = conjecture_dimension(n, gamma=2.0)
            inst = planted_ovp(n, d, planted=True, density=0.7, seed=n)
            direct = solve_ovp_bitpacked(inst)
            for name, embedding, signed in (
                ("signed gadget", SignedCoordinateEmbedding(d), True),
                ("Chebyshev q=2", ChebyshevSignEmbedding(d, q=2), False),
                ("chopped k=4", ChoppedBinaryEmbedding(d, k=4), False),
            ):
                start = time.perf_counter()
                via = _pipeline(inst, embedding, signed)
                elapsed = time.perf_counter() - start
                agree = (via is None) == (direct is None)
                rows.append([
                    n, d, name, embedding.d_out,
                    "found" if via else "none",
                    "OK" if agree and (via is None or inst.is_orthogonal(*via)) else "MISMATCH",
                    f"{elapsed * 1e3:.1f} ms",
                ])
        return format_table(
            ["n", "d", "embedding", "d_embedded", "answer", "agrees with direct", "pipeline time"],
            rows,
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("theorem1_reduction", text)
    assert "MISMATCH" not in text


def test_theorem1_pipeline_signed(benchmark):
    inst = planted_ovp(48, 16, planted=True, density=0.7, seed=1)
    emb = SignedCoordinateEmbedding(16)
    benchmark(_pipeline, inst, emb, True)


def test_theorem1_pipeline_chopped(benchmark):
    inst = planted_ovp(48, 16, planted=True, density=0.7, seed=2)
    emb = ChoppedBinaryEmbedding(16, k=4)
    benchmark(_pipeline, inst, emb, False)


def test_theorem1_direct_solver(benchmark):
    inst = planted_ovp(48, 16, planted=True, density=0.7, seed=3)
    benchmark(solve_ovp_bitpacked, inst)
