"""Theorem 3 reproduction: measured LSH gap vs the closed-form bounds.

For each of the three hard-sequence constructions, audits a concrete
asymmetric LSH (DATA-DEP, the paper's own Section 4.1 scheme) and prints
the measured ``P1 - P2`` against the Lemma 4 bound as the query-domain
radius ``U`` grows: the gap must stay below the bound and the bound must
decay — the executable form of "no asymmetric LSH for unbounded query
domains".
"""

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.lowerbounds import (
    audit_gap,
    geometric_sequences,
    prefix_tree_sequences,
    shifted_affine_sequences,
)
from repro.lsh import DataDepALSH


def test_theorem3_case1_gap_vs_u(benchmark):
    def build():
        rows = []
        for U in (2.0, 8.0, 32.0, 128.0):
            seqs = geometric_sequences(s=0.01, c=0.7, U=U, d=1)
            fam = DataDepALSH(1, query_radius=U, sphere="hyperplane")
            audit = audit_gap(fam, seqs, trials=250, seed=int(U))
            rows.append([
                f"{U:g}", seqs.n, f"{audit.p1:.4f}", f"{audit.p2:.4f}",
                f"{audit.gap:.4f}", f"{audit.gap_bound:.4f}",
                str(audit.within_bound),
            ])
        return format_table(
            ["U", "n", "P1", "P2", "gap", "8/log2(n)", "within"], rows
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("theorem3_case1", text)
    assert "False" not in text


def test_theorem3_case2_gap_vs_u(benchmark):
    def build():
        rows = []
        for U in (2.0, 8.0, 32.0):
            seqs = shifted_affine_sequences(s=0.01, c=0.5, U=U, d=2)
            fam = DataDepALSH(2, query_radius=U, sphere="hyperplane")
            audit = audit_gap(fam, seqs, trials=250, seed=int(U))
            rows.append([
                f"{U:g}", seqs.n, f"{audit.p1:.4f}", f"{audit.p2:.4f}",
                f"{audit.gap:.4f}", f"{audit.gap_bound:.4f}",
                str(audit.within_bound),
            ])
        return format_table(
            ["U", "n", "P1", "P2", "gap", "8/log2(n)", "within"], rows
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("theorem3_case2", text)
    assert "False" not in text


def test_theorem3_case3_gap(benchmark):
    def build():
        rows = []
        for n_bits in (3, 4, 5):
            seqs = prefix_tree_sequences(s=0.02, c=0.5, U=2.0, n_bits=n_bits)
            fam = DataDepALSH(seqs.d, query_radius=2.0, sphere="hyperplane")
            audit = audit_gap(fam, seqs, trials=200, seed=n_bits)
            rows.append([
                n_bits, seqs.n, seqs.d, f"{audit.p1:.4f}", f"{audit.p2:.4f}",
                f"{audit.gap:.4f}", f"{audit.gap_bound:.4f}",
                str(audit.within_bound),
            ])
        return format_table(
            ["bits", "n", "dim", "P1", "P2", "gap", "8/log2(n)", "within"], rows
        )

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("theorem3_case3", text)
    assert "False" not in text


def test_theorem3_audit_throughput(benchmark):
    seqs = geometric_sequences(s=0.01, c=0.7, U=8.0, d=1)
    fam = DataDepALSH(1, query_radius=8.0, sphere="hyperplane")
    benchmark.pedantic(
        lambda: audit_gap(fam, seqs, trials=50, seed=0), rounds=3, iterations=1
    )
