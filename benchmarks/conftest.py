"""Shared helpers for the benchmark harness.

Every bench both *times* its component (pytest-benchmark) and *prints* the
reproduced table/figure series, also writing it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite stable
artifacts.
"""

import os

import numpy as np
import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a reproduction artifact and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def format_table(headers, rows) -> str:
    """Plain-text table with right-padded columns."""
    table = [list(map(str, headers))] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = []
    for r, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[col] for col in range(len(headers))))
    return "\n".join(lines)


@pytest.fixture
def rng():
    return np.random.default_rng(2016)
