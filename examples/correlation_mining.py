"""Outlier correlation mining with unsigned joins.

The Valiant / Karppa-et-al. motivation: among many weakly correlated ±1
signals, find the few pairs with unusually strong (positive *or*
negative) correlation — an unsigned IPS join, since a large negative
correlation is just as interesting.  Compares the exact join, the
unsigned-via-signed reduction, and the embed-and-multiply baseline on a
workload with planted correlated and anti-correlated pairs.

Run:  python examples/correlation_mining.py
"""

import numpy as np

from repro.core import JoinSpec, brute_force_join, chebyshev_expand_join
from repro.core.join import unsigned_join
from repro.datasets import random_sign


def plant_correlations(P, Q, pairs, strength, rng):
    """Overwrite chosen query rows with noisy (anti-)copies of data rows."""
    d = P.shape[1]
    for qi, pi, sign in pairs:
        noise = rng.random(d) < (1.0 - strength) / 2.0
        row = sign * P[pi].copy()
        row[noise] *= -1
        Q[qi] = row


def main():
    rng = np.random.default_rng(0)
    n, m, d = 400, 60, 64
    P = random_sign(n, d, seed=1)
    Q = random_sign(m, d, seed=2)
    planted = [(3, 17, +1), (25, 200, -1), (48, 399, +1)]
    plant_correlations(P, Q, planted, strength=0.9, rng=rng)

    # Background correlations concentrate around sqrt(d) ~ 8; planted
    # pairs sit near strength * d ~ 57.  Join at s = 40 with c = 0.75.
    spec = JoinSpec(s=40.0, c=0.75, signed=False)
    exact = brute_force_join(P, Q, spec)
    found = [(qi, match) for qi, match in enumerate(exact.matches) if match is not None]
    print(f"exact unsigned join at |ip| >= {spec.cs}: {len(found)} matches")
    for qi, pi in found:
        value = int(P[pi] @ Q[qi])
        print(f"  query {qi:>2} ~ data {pi:>3}  correlation {value:+d} "
              f"({'anti' if value < 0 else 'pos'})")

    via = unsigned_join(P, Q, s=spec.s, c=spec.c, algorithm="via-signed")
    print(f"\nunsigned-via-signed reduction: recall "
          f"{via.recall_against(exact):.2f} (joins P with Q and -Q)")

    algebraic = chebyshev_expand_join(P, Q, spec, degree=2)
    print(f"embed-and-multiply (degree-2 tensor, one matmul): recall "
          f"{algebraic.recall_against(exact):.2f}")
    amplified_gap = (spec.s / d) ** 2 / (spec.cs / d) ** 2
    print(f"  gap amplified from {spec.s / spec.cs:.2f}x to {amplified_gap:.2f}x "
          f"by squaring normalized correlations")

    for qi, pi, sign in planted:
        assert exact.matches[qi] == pi, "planted pair missed!"
    print("\nall planted (anti-)correlations recovered.")


if __name__ == "__main__":
    main()
