"""Planning an LSH index from the theory, then verifying it delivers.

The full practitioner workflow: start from the workload parameters
``(n, s, c)``, let the ρ theory choose the index shape ``(k, L)``, build
the vectorized DATA-DEP index, and measure that the planned recall and
candidate volume actually materialize — then show multiprobe buying the
same recall from fewer tables.

Run:  python examples/index_planning.py
"""

import numpy as np

from repro.datasets import planted_mips
from repro.lsh import BatchSignIndex, plan_datadep


def measure(idx, inst, n_probes=0):
    hits = 0
    cands = 0
    for qi in range(inst.Q.shape[0]):
        cand = idx.candidates(inst.Q[qi], n_probes=n_probes)
        cands += cand.size
        if cand.size and (inst.P[cand] @ inst.Q[qi]).max() >= inst.cs:
            hits += 1
    m = inst.Q.shape[0]
    return hits / m, cands / m


def main():
    n, m, d = 4000, 32, 48
    inst = planted_mips(n, m, d, s=0.85, c=0.4, seed=0)
    print(f"workload: n = {n}, threshold s = {inst.s}, approximation c = 0.4")

    config = plan_datadep(n=n, s=inst.s, c=0.4, delta=0.1)
    print(f"\nplanned from the rho theory (rho = {config.rho:.3f}):")
    print(f"  k = {config.k} bits/table, L = {config.n_tables} tables")
    print(f"  predicted success prob >= {config.success_probability:.3f}, "
          f"expected false candidates <= {config.expected_false_candidates:.1f}/query")

    idx = BatchSignIndex.for_datadep(
        d, n_tables=config.n_tables, bits_per_table=config.k, seed=1
    ).build(inst.P)
    recall, cands = measure(idx, inst)
    print(f"\nmeasured: recall {recall:.2f}, {cands:.1f} candidates/query "
          f"(vs {n} for the scan)")

    # Multiprobe: a quarter of the tables plus probing reaches similar recall.
    small = BatchSignIndex.for_datadep(
        d, n_tables=max(1, config.n_tables // 4), bits_per_table=config.k, seed=2
    ).build(inst.P)
    r0, c0 = measure(small, inst, n_probes=0)
    r6, c6 = measure(small, inst, n_probes=6)
    print(f"\nquarter-size index ({small.n_tables} tables):")
    print(f"  without probes: recall {r0:.2f}, {c0:.1f} cands/query")
    print(f"  with 6 probes/table: recall {r6:.2f}, {c6:.1f} cands/query")
    print("\nmultiprobe trades bucket lookups for memory: fewer tables, "
          "same hashes,\nrecall recovered by peeking at the lowest-margin "
          "neighboring buckets.")


if __name__ == "__main__":
    main()
