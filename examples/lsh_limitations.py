"""The limits of (asymmetric) LSH for inner products — Theorem 3 live.

Builds the paper's hard data/query sequences, audits a real asymmetric
LSH against them, and prints the measured collision gap ``P1 - P2``
against the Lemma 4 bound ``8 / log2(n)`` as the query domain grows —
the executable version of "no asymmetric LSH exists for unbounded query
domains".  Also demonstrates the Section 4.2 escape hatch: a *symmetric*
LSH that works for all distinct vectors.

Run:  python examples/lsh_limitations.py
"""

import numpy as np

from repro.lowerbounds import audit_gap, geometric_sequences, shifted_affine_sequences
from repro.lsh import DataDepALSH, SymmetricIPSHash
from repro.lsh.base import estimate_collision_probability


def main():
    print("Theorem 3 in action: the gap P1 - P2 of a real ALSH on hard "
          "sequences\n")
    print(f"{'U':>6} {'n':>5} {'P1':>8} {'P2':>8} {'gap':>8} {'bound':>8}")
    for U in (2.0, 8.0, 32.0, 128.0, 512.0):
        seqs = geometric_sequences(s=0.01, c=0.7, U=U, d=1)
        fam = DataDepALSH(1, query_radius=U, sphere="hyperplane")
        audit = audit_gap(fam, seqs, trials=300, seed=int(U))
        print(f"{U:>6g} {seqs.n:>5} {audit.p1:>8.4f} {audit.p2:>8.4f} "
              f"{audit.gap:>8.4f} {audit.gap_bound:>8.4f}")
    print("\nthe sequences lengthen with U, so the bound (and with it any "
          "achievable gap)\nshrinks: over an unbounded query domain no "
          "asymmetric LSH separates s from cs.")

    print("\ncase 2 sequences (signed only) produce the same picture with "
          "polynomially\nlonger sequences:")
    seqs = shifted_affine_sequences(s=0.005, c=0.5, U=16.0, d=2)
    fam = DataDepALSH(2, query_radius=16.0, sphere="hyperplane")
    audit = audit_gap(fam, seqs, trials=300, seed=1)
    print(f"  n = {seqs.n}, measured gap = {audit.gap:.4f}, "
          f"bound = {audit.gap_bound:.4f}")

    print("\nSection 4.2's escape hatch: a SYMMETRIC LSH that ignores p == q.")
    fam = SymmetricIPSHash(4, eps=0.05)
    p = np.array([0.7, 0.0, 0.0, 0.0])
    near = np.array([0.69, 0.1, 0.0, 0.0])
    far = np.array([0.0, 0.1, 0.69, 0.0])
    p_near = estimate_collision_probability(fam, p, near, trials=800, seed=2)
    p_far = estimate_collision_probability(fam, p, far, trials=800, seed=2)
    p_self = estimate_collision_probability(fam, p, p, trials=100, seed=3)
    print(f"  collision with a high-IP distinct vector: {p_near:.3f}")
    print(f"  collision with a low-IP distinct vector:  {p_far:.3f}")
    print(f"  collision with itself (excluded from the guarantee): {p_self:.3f}")
    print("  one hash function for both sides — symmetric — yet the gap "
          "survives\n  because identical pairs are handled by a membership "
          "pre-check instead.")


if __name__ == "__main__":
    main()
