"""Walking an OVP instance through the Theorem 1 reductions.

Shows, step by step, how each gap embedding of Lemma 3 turns "is there an
orthogonal pair?" into "is there a pair with large (absolute) inner
product?", why that makes approximate joins OVP-hard, and that the join
pipeline recovers exactly the planted orthogonal pair.

Run:  python examples/ovp_reduction_demo.py
"""

import numpy as np

from repro.core import JoinSpec, brute_force_join
from repro.datasets import planted_ovp
from repro.embeddings import (
    ChebyshevSignEmbedding,
    ChoppedBinaryEmbedding,
    SignedCoordinateEmbedding,
)
from repro.ovp import solve_ovp_bitpacked


def demonstrate(instance, embedding, signed, label):
    print(f"\n--- {label} ---")
    print(f"embedding: {type(embedding).__name__}, "
          f"{embedding.d_in} -> {embedding.d_out} dims, "
          f"s = {embedding.s:g}, cs = {embedding.cs:g} "
          f"(c = {embedding.c:.4f})")

    embedded_p = embedding.embed_left_many(instance.P)
    embedded_q = embedding.embed_right_many(instance.Q)
    raw = instance.P @ instance.Q.T
    embedded = embedded_p @ embedded_q.T
    values = embedded if signed else np.abs(embedded)

    orth = values[raw.T == 0.0 if False else (raw == 0)]
    non_orth = values[raw != 0]
    print(f"embedded values: orthogonal pairs >= {orth.min():g} "
          f"(need >= s = {embedding.s:g}); "
          f"overlapping pairs <= {non_orth.max():g} "
          f"(need <= cs = {embedding.cs:g})")

    c = (embedding.cs / embedding.s + 1.0) / 2.0 if embedding.cs > 0 else 0.5
    spec = JoinSpec(s=embedding.s, c=c, signed=signed)
    result = brute_force_join(embedded_p, embedded_q, spec)
    for qi, match in enumerate(result.matches):
        if match is not None and int(instance.P[match] @ instance.Q[qi]) == 0:
            print(f"join found the orthogonal pair: P[{match}] . Q[{qi}] = 0")
            return (match, qi)
    print("join found no pair (instance has none)")
    return None


def main():
    inst = planted_ovp(n=24, d=20, planted=True, density=0.7, seed=0)
    print(f"OVP instance: |P| = {inst.n_p}, |Q| = {inst.n_q}, d = {inst.d}; "
          f"planted orthogonal pair at {inst.planted_pair}")
    direct = solve_ovp_bitpacked(inst)
    print(f"direct solver answer: {direct}")

    answers = [
        demonstrate(inst, SignedCoordinateEmbedding(inst.d), True,
                    "Embedding 1: signed join over {-1,1} is hard for ANY c > 0"),
        demonstrate(inst, ChebyshevSignEmbedding(inst.d, q=2), False,
                    "Embedding 2: unsigned join over {-1,1}, Chebyshev gap"),
        demonstrate(inst, ChoppedBinaryEmbedding(inst.d, k=5), False,
                    "Embedding 3: unsigned join over {0,1}, chopped products"),
    ]
    for found in answers:
        assert found is not None and inst.is_orthogonal(*found)
    print("\nall three reductions solved OVP through an approximate join — "
          "a truly subquadratic join in these regimes would refute the "
          "OVP conjecture (Theorem 1).")


if __name__ == "__main__":
    main()
