"""Quickstart: exact vs approximate inner product similarity joins.

Builds a planted MIPS workload, runs the exact quadratic join, the
LSH-based (cs, s) join of Section 4.1, and the sketch-based unsigned join
of Section 4.3, and prints their agreement and work counts.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import signed_join, unsigned_join
from repro.datasets import planted_mips
from repro.lsh import DataDepALSH


def main():
    # A workload with one planted partner of inner product >= 0.85 per
    # query; everything else stays below 0.34.
    inst = planted_mips(n=2000, m=32, d=48, s=0.85, c=0.4, seed=0)
    print(f"data: {inst.n} vectors, {inst.d} dims; queries: 32; "
          f"threshold s = {inst.s}, gap cs = {inst.cs}")

    exact = signed_join(inst.P, inst.Q, s=inst.s)
    print(f"\nexact join:   {exact.matched_count}/32 matched, "
          f"{exact.inner_products_evaluated} inner products")

    family = DataDepALSH(inst.d, sphere="hyperplane")
    approx = signed_join(
        inst.P, inst.Q, s=inst.s, c=0.4,
        algorithm="lsh", family=family, seed=1,
        n_tables=14, hashes_per_table=7,
    )
    print(f"LSH join:     {approx.matched_count}/32 matched, "
          f"{approx.inner_products_evaluated} inner products "
          f"({approx.inner_products_evaluated / exact.inner_products_evaluated:.1%} "
          f"of exact), recall {approx.recall_against(exact):.2f}")

    sketched = unsigned_join(inst.P, inst.Q, s=inst.s,
                             algorithm="sketch", kappa=3.0, seed=2)
    print(f"sketch join:  {sketched.matched_count}/32 matched "
          f"(own approximation c = {sketched.spec.c:.3f}), "
          f"recall {sketched.recall_against(exact):.2f}")

    # Verify one match end to end.
    qi = next(i for i, match in enumerate(approx.matches) if match is not None)
    pi = approx.matches[qi]
    print(f"\nspot check: query {qi} matched data vector {pi} with "
          f"inner product {float(inst.P[pi] @ inst.Q[qi]):.3f} >= cs = {inst.cs}")


if __name__ == "__main__":
    main()
