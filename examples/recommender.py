"""Recommender-system MIPS: the paper's flagship application.

Latent-factor models score items by user-item inner products (Koren et
al. [31], Teflioudi et al. [50]); retrieving each user's best items is
maximum inner product search.  This example builds a synthetic factor
model with popularity-skewed item norms — the regime where cosine
similarity is *wrong* and MIPS is needed — and compares exact top-1
retrieval against the DATA-DEP ALSH index and the sketch c-MIPS
structure, reporting recall and work.

Run:  python examples/recommender.py
"""

import time

import numpy as np

from repro.datasets import latent_factor_model
from repro.lsh import DataDepALSH, LSHIndex
from repro.sketches import SketchCMIPS


def main():
    model = latent_factor_model(
        n_users=64, n_items=4000, rank=24, popularity_skew=0.8, seed=0
    )
    print(f"model: {model.n_items} items, rank {model.rank}, "
          f"item norms in [{np.linalg.norm(model.items, axis=1).min():.2f}, "
          f"{np.linalg.norm(model.items, axis=1).max():.2f}]")

    # Ground truth top-1 per user.
    truth = [int(model.top_items(u, k=1)[0]) for u in range(model.n_users)]
    best_scores = [float(model.preference(u).max()) for u in range(model.n_users)]

    # ALSH index over items (data in the unit ball, users on the sphere).
    family = DataDepALSH(model.rank, sphere="hyperplane")
    start = time.perf_counter()
    index = LSHIndex(family, n_tables=16, hashes_per_table=6, seed=1)
    index.build(model.items)
    build_time = time.perf_counter() - start

    hits = 0
    good = 0
    start = time.perf_counter()
    for u in range(model.n_users):
        found = index.query(model.users[u], threshold=0.0)
        if found is None:
            continue
        score = float(model.items[found] @ model.users[u])
        if found == truth[u]:
            hits += 1
        if score >= 0.8 * best_scores[u]:
            good += 1
    lsh_time = time.perf_counter() - start
    print(f"\nALSH (DATA-DEP): built in {build_time:.2f}s, "
          f"queried {model.n_users} users in {lsh_time:.2f}s")
    print(f"  exact top-1 recall: {hits / model.n_users:.2f}, "
          f"within 0.8x of best: {good / model.n_users:.2f}, "
          f"candidates/query: {index.stats.candidates_per_query:.0f} "
          f"(vs {model.n_items} exact)")

    # Sketch c-MIPS over items.
    start = time.perf_counter()
    structure = SketchCMIPS(model.items, kappa=3.0, copies=7, seed=2)
    sketch_build = time.perf_counter() - start
    hits = 0
    good = 0
    start = time.perf_counter()
    for u in range(model.n_users):
        answer = structure.query(model.users[u])
        if answer.index == truth[u]:
            hits += 1
        if answer.value >= 0.8 * best_scores[u]:
            good += 1
    sketch_time = time.perf_counter() - start
    print(f"\nsketch c-MIPS (kappa=3): built in {sketch_build:.2f}s, "
          f"queried in {sketch_time:.2f}s, "
          f"promised c = {structure.approximation_factor:.3f}")
    print(f"  exact top-1 recall: {hits / model.n_users:.2f}, "
          f"within 0.8x of best: {good / model.n_users:.2f}")


if __name__ == "__main__":
    main()
