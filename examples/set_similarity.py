"""Binary-domain joins on realistic set data with minwise hashing.

The {0,1}^d domain "occurs often in practice, for example when the
vectors represent sets" (paper, Section 1.1), and for binary data inner
product = intersection size, so signed and unsigned joins coincide.
This example joins Zipfian-distributed sets (documents/baskets style)
using the MH-ALSH family [46] — the paper's Figure 2 competitor — inside
our generic LSH index, against the exact join.

Run:  python examples/set_similarity.py
"""

import numpy as np

from repro.core import JoinSpec, brute_force_join, lsh_join
from repro.datasets import zipfian_sets
from repro.lsh import AsymmetricMinHash


def main():
    rng = np.random.default_rng(0)
    universe, n, m = 300, 500, 40
    P = zipfian_sets(n, universe, mean_size=25, seed=1)
    Q = zipfian_sets(m, universe, mean_size=25, seed=2)

    # Plant near-duplicates: a query that shares most of a data set.
    for qi, pi in ((0, 10), (7, 250), (31, 499)):
        Q[qi] = P[pi].copy()
        drop = rng.choice(np.flatnonzero(Q[qi]), size=3, replace=False)
        Q[qi][drop] = 0

    max_weight = int(P.sum(axis=1).max())
    print(f"sets over a universe of {universe}; data weights up to {max_weight}")

    spec = JoinSpec(s=15.0, c=0.6, signed=True)
    exact = brute_force_join(P, Q, spec)
    print(f"\nexact join at intersection >= {spec.cs:g}: "
          f"{exact.matched_count}/{m} queries matched "
          f"({exact.inner_products_evaluated} pair evaluations)")

    family = AsymmetricMinHash(universe, max_norm=max_weight)
    approx = lsh_join(P, Q, spec, family, n_tables=24, hashes_per_table=2, seed=3)
    print(f"MH-ALSH join: {approx.matched_count}/{m} matched, "
          f"recall {approx.recall_against(exact):.2f}, "
          f"{approx.inner_products_evaluated} pair evaluations "
          f"({approx.inner_products_evaluated / exact.inner_products_evaluated:.1%} "
          f"of exact)")

    for qi, pi in ((0, 10), (7, 250), (31, 499)):
        match = approx.matches[qi]
        overlap = int(P[match] @ Q[qi]) if match is not None else 0
        print(f"  planted near-duplicate query {qi:>2}: matched data {match} "
              f"with intersection {overlap}")

    # The MH-ALSH collision law in action: probability a/(M + |q| - a).
    a = int(P[10] @ Q[0])
    p_collide = AsymmetricMinHash.collision_probability(a, int(Q[0].sum()), max_weight)
    print(f"\nper-hash collision probability of the strongest pair: "
          f"{p_collide:.3f} = a/(M + |q| - a) with a = {a}, M = {max_weight}")


if __name__ == "__main__":
    main()
