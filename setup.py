"""Setup shim: metadata lives in pyproject.toml; this file exists so that
editable installs work in offline environments without the `wheel` package."""
from setuptools import setup

setup()
