"""repro: a reproduction of "On the Complexity of Inner Product Similarity Join".

Ahle, Pagh, Razenshteyn, Silvestri — PODS 2016 (arXiv:1510.02824).

The package implements every constructive object in the paper and the
substrates they depend on:

* ``repro.core`` — signed/unsigned ``(cs, s)`` IPS joins and MIPS search
  (exact, LSH-based, sketch-based, and an embed-and-multiply baseline).
* ``repro.ovp`` — the Orthogonal Vectors Problem, its solvers, and the
  generalized unbalanced variant (Lemma 1).
* ``repro.embeddings`` — the three gap embeddings of Lemma 3 and the MIPS
  ball-to-sphere reductions of Section 4.
* ``repro.lsh`` — the (A)LSH framework, every hash family the paper
  discusses, a multi-table index, and the Figure 2 ρ formulas.
* ``repro.lowerbounds`` — Lemma 4's collision-grid machinery (Figure 1)
  and the three hard sequence constructions of Theorem 3.
* ``repro.sketches`` — the linear-sketch c-MIPS structure of Section 4.3.
* ``repro.incoherent`` — explicit incoherent vector collections
  (Reed-Solomon and random).
* ``repro.datasets`` — workload generators, including planted instances.
* ``repro.theory`` — Table 1 and the theorem parameter boundaries in
  closed form.

Quickstart::

    import numpy as np
    from repro import signed_join, unsigned_join
    from repro.datasets import planted_mips
    from repro.lsh import DataDepALSH

    inst = planted_mips(n=1000, m=32, d=32, s=0.8, c=0.5, seed=0)
    exact = signed_join(inst.P, inst.Q, s=inst.s)
    approx = signed_join(inst.P, inst.Q, s=inst.s, c=0.5, algorithm="lsh",
                         family=DataDepALSH(32), seed=0)
    print(approx.recall_against(exact))
"""

from repro.core import (
    JoinResult,
    JoinSpec,
    MIPSResult,
    brute_force_join,
    brute_force_mips,
    signed_join,
    unsigned_join,
)
from repro import engine
from repro.errors import (
    CapacityError,
    ConstructionError,
    DomainError,
    ParameterError,
    ReproError,
    ValidationError,
)
from repro.evaluation import EvaluationRecord, evaluate_joins, evaluation_table

__version__ = "1.0.0"

__all__ = [
    "engine",
    "JoinSpec",
    "JoinResult",
    "MIPSResult",
    "signed_join",
    "unsigned_join",
    "brute_force_join",
    "brute_force_mips",
    "ReproError",
    "ValidationError",
    "DomainError",
    "ParameterError",
    "ConstructionError",
    "CapacityError",
    "EvaluationRecord",
    "evaluate_joins",
    "evaluation_table",
    "__version__",
]
