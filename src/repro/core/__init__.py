"""The paper's primary problem API: signed/unsigned IPS joins and MIPS.

``problems`` defines the problem records; ``brute_force`` the exact
quadratic baselines; ``lsh_join`` the (A)LSH-driven ``(cs, s)`` join;
``sketch_join`` the Section 4.3 sketch join; ``algebraic`` the
embed-and-multiply baseline in the spirit of Valiant/Karppa et al.;
``scaling`` the c-MIPS <-> (cs,s)-search reductions; ``join`` the
top-level dispatch.
"""

from repro.core.problems import JoinResult, JoinSpec, MIPSResult, QueryStats
from repro.core.algebraic import chebyshev_expand_join
from repro.core.brute_force import (
    brute_force_join,
    brute_force_mips,
    brute_force_search,
)
from repro.core.executor import (
    BatchIndexSpec,
    SketchStructureSpec,
    WorkerPool,
    close_pools,
    get_pool,
    map_query_chunks,
    parallel_lsh_join,
    parallel_sketch_join,
    resolve_workers,
)
from repro.core.join import signed_join, unsigned_join
from repro.core.lsh_join import lsh_join
from repro.core.norm_pruning import NormScanIndex, norm_pruned_join
from repro.core.scaling import cmips_via_search
from repro.core.self_join import lsh_self_join, self_join
from repro.core.sketch_join import sketch_unsigned_join
from repro.core.topk import join_topk, lsh_join_topk, topk_recall
from repro.core.verify import BlockVerification, verify_block, verify_candidates

__all__ = [
    "JoinSpec",
    "JoinResult",
    "MIPSResult",
    "QueryStats",
    "brute_force_join",
    "brute_force_mips",
    "brute_force_search",
    "lsh_join",
    "sketch_unsigned_join",
    "chebyshev_expand_join",
    "cmips_via_search",
    "signed_join",
    "unsigned_join",
    "join_topk",
    "lsh_join_topk",
    "topk_recall",
    "NormScanIndex",
    "norm_pruned_join",
    "self_join",
    "lsh_self_join",
    "BatchIndexSpec",
    "SketchStructureSpec",
    "WorkerPool",
    "close_pools",
    "get_pool",
    "map_query_chunks",
    "parallel_lsh_join",
    "parallel_sketch_join",
    "resolve_workers",
    "BlockVerification",
    "verify_block",
    "verify_candidates",
]
