"""Embed-and-multiply baseline in the spirit of Valiant [51] / Karppa et al. [29].

Those algorithms expand vectors with a Chebyshev-type embedding that
blows up the gap between outlier and background correlations, multiply
the expanded matrices (with *fast* matrix multiplication in the papers;
BLAS here — see DESIGN.md's substitution table), and read candidate pairs
off the large entries of the product.

For ±1 vectors the expansion used here is the degree-``q`` tensor power
``x -> x^{tensor q} / d^{q/2}``, whose inner products are
``(x.y / d)^q``: a background correlation ``cs/d`` shrinks like
``(cs/d)^q`` while an outlier ``s/d`` stays ``(s/d)^q``, so thresholding
the product matrix separates them with dramatically fewer bits of
headroom — the same amplification mechanism as [51, 29], in
reproduction-scale form.
"""

from __future__ import annotations

import numpy as np

from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.errors import CapacityError, ParameterError
from repro.utils.validation import check_sign


def tensor_power_rows(X: np.ndarray, q: int) -> np.ndarray:
    """Row-wise ``q``-fold tensor power, normalized by ``d^{q/2}``."""
    X = np.asarray(X, dtype=np.float64)
    d = X.shape[1]
    out = X / np.sqrt(d)
    base = X / np.sqrt(d)
    for _ in range(q - 1):
        out = np.einsum("ni,nj->nij", out, base).reshape(X.shape[0], -1)
    return out


def chebyshev_expand_join(
    P,
    Q,
    spec: JoinSpec,
    degree: int = 3,
    max_expanded_dim: int = 2_000_000,
) -> JoinResult:
    """Unsigned join on ±1 vectors by tensor expansion plus one matmul.

    Args:
        P, Q: sign matrices (entries in {-1, +1}).
        spec: the join parameters; ``spec.s``/``spec.cs`` are thresholds
            on the *raw* inner product, translated internally to the
            expanded space.
        degree: tensor power ``q``; the gap amplifies from ``s/cs`` to
            ``(s/cs)^q``.
        max_expanded_dim: capacity guard on ``d^q``.
    """
    P, Q = validate_join_inputs(P, Q)
    check_sign(P, "P")
    check_sign(Q, "Q")
    if degree < 1:
        raise ParameterError(f"degree must be >= 1, got {degree}")
    d = P.shape[1]
    if d ** degree > max_expanded_dim:
        raise CapacityError(
            f"expanded dimension {d ** degree} exceeds {max_expanded_dim}; "
            f"reduce degree or raise the guard"
        )
    expanded_p = tensor_power_rows(P, degree)
    expanded_q = tensor_power_rows(Q, degree)
    # (x.y/d)^q in the expanded space; threshold at the expanded cs.
    products = expanded_q @ expanded_p.T
    threshold = (spec.cs / d) ** degree
    scores = np.abs(products)
    best = np.argmax(scores, axis=1)
    best_vals = scores[np.arange(Q.shape[0]), best]
    matches = [
        int(best[i]) if best_vals[i] >= threshold - 1e-12 else None
        for i in range(Q.shape[0])
    ]
    # Verify matches against the raw inner products (the expansion is a
    # filter; exactness comes from this final check).
    for i, match in enumerate(matches):
        if match is None:
            continue
        value = abs(float(P[match] @ Q[i]))
        if value < spec.cs:
            matches[i] = None
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=sum(1 for match in matches if match is not None),
        candidates_generated=P.shape[0] * Q.shape[0],
    )
