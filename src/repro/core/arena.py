"""Shared-memory arena: zero-copy array transport for parallel joins.

The pre-arena executor shipped ``P``, ``Q`` and every index array through
pickle *per chunk*, which is why 4-worker joins ran at 0.23-0.27x serial
(BENCH_PR3/PR5): the verification GEMMs are memory-bandwidth-bound, and
the same bandwidth was being spent serializing the operands.  This
module moves every large array exactly once into POSIX shared memory
(``multiprocessing.shared_memory``) and ships only tiny descriptors:

* :class:`SharedArena` — a slab allocator over shared-memory segments.
  ``place(arr)`` bump-allocates a 64-byte-aligned region inside the
  current slab (new slabs are created as needed), copies the array in
  once, and returns an :class:`ArenaRef`.  Placement is deduplicated by
  array identity, so placing the same ``P`` for every chunk of every
  call costs one copy total.
* :class:`ArenaRef` — ``(segment, dtype, shape, offset)``: pure data,
  pennies on the wire.  ``resolve()`` maps the segment (cached per
  process) and returns a **read-only** ndarray view — no copy, and no
  way for a worker to corrupt shared state.
* :func:`freeze` / :func:`thaw` — pickle an arbitrary object graph (a
  built index, a sketch structure, a bare matrix) with every ndarray at
  or above ``ARENA_MIN_BYTES`` swapped for an :class:`ArenaRef` via the
  pickle ``persistent_id`` hook.  The byte payload that crosses the
  process boundary is just the object *shell*; workers reconstruct
  views.  This is fully generic: any payload that pickles today is
  zero-copy tomorrow, including backends registered by third parties.

Lifecycle and leak-safety contract:

* The creating process owns every segment: ``close()`` (also run by a
  ``weakref.finalize``) closes and **unlinks** them, so ``/dev/shm``
  holds nothing after a pool shuts down.  Segments stay registered with
  the parent's ``resource_tracker``, so even a crashed parent is swept.
* Attaching processes (workers) never unlink: pool workers inherit the
  parent's resource-tracker fd, so Python 3.11's register-on-attach
  behaviour (bpo-39959) is an idempotent re-add to the shared tracker
  cache, balanced by the parent's unlink-time unregister.  The parent
  remains the single owner.
* :func:`repro_segments` lists the live segments this module created,
  which is what the leak tests assert empties out.
"""

from __future__ import annotations

import os
import pickle
import secrets
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from io import BytesIO
from multiprocessing import shared_memory
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.errors import ParameterError

#: Arrays smaller than this pickle inline; a descriptor plus a segment
#: attachment costs more than copying a few KB.
ARENA_MIN_BYTES = 4096

#: Default slab size.  Slabs grow to fit oversized arrays, so this only
#: bounds fragmentation for the many-small-arrays case (CSR offsets,
#: projection stacks).
DEFAULT_SLAB_BYTES = 16 * 1024 * 1024

#: Byte alignment of every placement (one cache line; also satisfies
#: any numpy dtype's alignment requirement).
_ALIGN = 64

#: Name prefix of every segment this module creates; leak checks and
#: ``/dev/shm`` forensics key on it.
SEGMENT_PREFIX = "repro_arena"


@dataclass(frozen=True)
class ArenaRef:
    """Descriptor of one array placed in a shared-memory slab.

    Pure data — crossing a process boundary costs a few dozen bytes
    regardless of the array's size.  ``resolve()`` returns a read-only,
    C-contiguous view over the mapped segment.
    """

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    def resolve(self) -> np.ndarray:
        shm = _attach(self.segment)
        arr = np.ndarray(
            self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf,
            offset=self.offset,
        )
        arr.flags.writeable = False
        return arr


class SharedArena:
    """Slab allocator over shared-memory segments, owned by one process.

    Not thread-safe for concurrent ``place`` calls; the executor only
    places from the parent's dispatch thread.
    """

    def __init__(self, slab_bytes: int = DEFAULT_SLAB_BYTES):
        if slab_bytes < _ALIGN:
            raise ParameterError(
                f"slab_bytes must be >= {_ALIGN}, got {slab_bytes}"
            )
        self.slab_bytes = int(slab_bytes)
        self._slabs: List[shared_memory.SharedMemory] = []
        self._cursor = 0  # offset into the current (last) slab
        #: id(arr) -> (ref, keepalive): the keepalive pins the array so
        #: a recycled id can never alias a different array.
        self._placed: Dict[int, Tuple[ArenaRef, np.ndarray]] = {}
        self._closed = False
        self._finalizer = weakref.finalize(self, SharedArena._release, self._slabs)

    # -- allocation ------------------------------------------------------

    def _new_slab(self, min_bytes: int) -> shared_memory.SharedMemory:
        size = max(self.slab_bytes, min_bytes)
        name = f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
        slab = shared_memory.SharedMemory(name=name, create=True, size=size)
        self._slabs.append(slab)
        self._cursor = 0
        return slab

    def place(self, arr: np.ndarray) -> ArenaRef:
        """Copy ``arr`` into the arena (once per array object) and
        return its descriptor."""
        if self._closed:
            raise ParameterError("arena is closed")
        if not isinstance(arr, np.ndarray):
            raise ParameterError(
                f"only ndarrays can be placed, got {type(arr).__name__}"
            )
        if arr.dtype == object:
            raise ParameterError("object arrays cannot live in shared memory")
        cached = self._placed.get(id(arr))
        if cached is not None:
            return cached[0]
        contiguous = np.ascontiguousarray(arr)
        nbytes = contiguous.nbytes
        aligned = -(-nbytes // _ALIGN) * _ALIGN
        if not self._slabs or self._cursor + aligned > self._slabs[-1].size:
            slab = self._new_slab(aligned)
        else:
            slab = self._slabs[-1]
        offset = self._cursor
        view = np.ndarray(
            contiguous.shape, dtype=contiguous.dtype, buffer=slab.buf,
            offset=offset,
        )
        view[...] = contiguous
        self._cursor = offset + aligned
        ref = ArenaRef(
            segment=slab.name, dtype=contiguous.dtype.str,
            shape=tuple(contiguous.shape), offset=offset,
        )
        # Pin the *original* object: the dedup key is its id.
        self._placed[id(arr)] = (ref, arr)
        return ref

    # -- lifecycle -------------------------------------------------------

    def segments(self) -> List[str]:
        """Names of the live segments this arena owns."""
        return [slab.name for slab in self._slabs]

    @property
    def nbytes(self) -> int:
        return sum(slab.size for slab in self._slabs)

    @property
    def closed(self) -> bool:
        return self._closed

    @staticmethod
    def _release(slabs: List[shared_memory.SharedMemory]) -> None:
        for slab in slabs:
            # Drop any same-process attachment first so unlink doesn't
            # leave a cached mapping of a dead segment behind.
            cached = _ATTACHED.pop(slab.name, None)
            if cached is not None:
                try:
                    cached.close()
                except BufferError:
                    pass
            try:
                slab.close()
                slab.unlink()
            except (FileNotFoundError, OSError):
                pass  # already unlinked (double close is a no-op)
        slabs.clear()

    def close(self) -> None:
        """Close and unlink every segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._placed.clear()
        self._finalizer.detach()
        SharedArena._release(self._slabs)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker-side attachment cache

#: Process-local cache of mapped segments.  Bounded: a persistent worker
#: serving a long-lived pool would otherwise accumulate mappings of
#: retired per-call scratch segments forever.
_ATTACH_CACHE_MAX = 128
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Map a segment by name, caching per process.

    Python 3.11 registers a segment with the resource tracker on
    *attach* as well as on create (bpo-39959).  That is harmless here —
    pool workers inherit the parent's tracker fd (fork and spawn both
    pass it), so the attach-side registration is an idempotent re-add to
    the same cache and the parent's unlink-time unregister balances it.
    Explicitly unregistering on attach would be WRONG in this topology:
    it would strip the shared tracker's only entry, losing crash
    cleanup and making the final unlink double-unregister.
    """
    shm = _ATTACHED.get(name)
    if shm is not None:
        _ATTACHED.move_to_end(name)
        return shm
    shm = shared_memory.SharedMemory(name=name)
    _ATTACHED[name] = shm
    while len(_ATTACHED) > _ATTACH_CACHE_MAX:
        _, old = _ATTACHED.popitem(last=False)
        try:
            old.close()
        except BufferError:
            # A live view still exports the buffer; keep it mapped.
            _ATTACHED[old.name] = old
            _ATTACHED.move_to_end(old.name, last=False)
            break
    return shm


def detach_all() -> None:
    """Drop every cached attachment (test isolation helper)."""
    while _ATTACHED:
        _, shm = _ATTACHED.popitem()
        try:
            shm.close()
        except BufferError:
            pass


# ---------------------------------------------------------------------------
# Arena-aware pickling

_PERSISTENT_TAG = "repro-arena-ref"


class _ArenaPickler(pickle.Pickler):
    """Pickler that detours large ndarrays through a :class:`SharedArena`.

    ``lookup`` arenas are consulted for an existing placement first (by
    array identity) before copying into the primary arena — this is how
    a persistent pool's long-lived arena deduplicates ``P`` across calls
    while per-call scratch arenas hold everything ephemeral.
    """

    def __init__(
        self,
        file,
        arena: SharedArena,
        threshold: int,
        lookup: Tuple[SharedArena, ...] = (),
    ):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arena = arena
        self._threshold = threshold
        self._lookup = lookup

    def persistent_id(self, obj):
        if (
            type(obj) is np.ndarray
            and obj.nbytes >= self._threshold
            and obj.dtype != object
        ):
            for prior in self._lookup:
                hit = prior._placed.get(id(obj))
                if hit is not None:
                    return (_PERSISTENT_TAG, hit[0])
            return (_PERSISTENT_TAG, self._arena.place(obj))
        return None


class _ArenaUnpickler(pickle.Unpickler):
    def persistent_load(self, pid):
        tag, ref = pid
        if tag != _PERSISTENT_TAG:
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        return ref.resolve()


def freeze(
    obj: Any,
    arena: SharedArena,
    threshold: int = ARENA_MIN_BYTES,
    lookup: Tuple[SharedArena, ...] = (),
) -> bytes:
    """Serialize ``obj`` with its big arrays placed in ``arena``.

    The returned bytes hold only the object shell plus
    :class:`ArenaRef` descriptors; :func:`thaw` in any process mapping
    the same segments reconstructs the object with zero array copies.
    Arrays already placed in a ``lookup`` arena are referenced there
    instead of re-copied.
    """
    buffer = BytesIO()
    _ArenaPickler(buffer, arena, threshold, lookup).dump(obj)
    return buffer.getvalue()


def thaw(payload: bytes) -> Any:
    """Reconstruct an object frozen by :func:`freeze` (views, not copies)."""
    return _ArenaUnpickler(BytesIO(payload)).load()


# ---------------------------------------------------------------------------
# In-process shell cloning (the thread pool's analogue of freeze/thaw)

class _ShellPickler(pickle.Pickler):
    def __init__(self, file, arrays: List[np.ndarray], threshold: int):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arrays = arrays
        self._threshold = threshold

    def persistent_id(self, obj):
        if type(obj) is np.ndarray and obj.nbytes >= self._threshold:
            self._arrays.append(obj)
            return (_PERSISTENT_TAG, len(self._arrays) - 1)
        return None


class _ShellUnpickler(pickle.Unpickler):
    def __init__(self, file, arrays: List[np.ndarray]):
        super().__init__(file)
        self._arrays = arrays

    def persistent_load(self, pid):
        tag, idx = pid
        if tag != _PERSISTENT_TAG:
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        return self._arrays[idx]


def clone_shell(obj: Any, threshold: int = ARENA_MIN_BYTES) -> Any:
    """Deep-copy the object *shell*, sharing large arrays by reference.

    The thread-pool analogue of :func:`freeze`/:func:`thaw`: each worker
    thread needs its own copy of every small mutable attribute (the LSH
    index's :class:`QueryStats`, scratch dicts) so concurrent chunks
    don't race, while the big read-mostly arrays — projections, CSR
    tables, ``P`` itself — stay shared so nothing is copied per chunk.
    Implemented as a pickle round-trip with large ndarrays detoured
    through a side list by identity, so it is generic over any payload
    the process pool could ship.
    """
    arrays: List[np.ndarray] = []
    buffer = BytesIO()
    _ShellPickler(buffer, arrays, threshold).dump(obj)
    buffer.seek(0)
    return _ShellUnpickler(buffer, arrays).load()


def collect_arrays(obj: Any, threshold: int = ARENA_MIN_BYTES) -> List[np.ndarray]:
    """Enumerate the large ndarrays reachable from ``obj``'s pickle graph.

    The same traversal :func:`freeze` and :func:`clone_shell` use, but
    collecting instead of detouring: each distinct (by identity) plain
    ``np.ndarray`` of at least ``threshold`` bytes is returned once, in
    first-encounter order, and its bytes are never serialized — the walk
    costs a shell pickle, not an array copy.  This is how a session pins
    a built structure's arrays into a pool's persistent arena, and how
    :func:`repro.engine.protocol.persistable_arrays` implements its
    default when a structure declares no explicit ``arrays()`` hook.
    """
    found: List[np.ndarray] = []
    seen: set = set()

    class _Collector(pickle.Pickler):
        def persistent_id(self, target):
            if (
                type(target) is np.ndarray
                and target.nbytes >= threshold
                and target.dtype != object
            ):
                key = id(target)
                if key not in seen:
                    seen.add(key)
                    found.append(target)
                return (_PERSISTENT_TAG, key)
            return None

    _Collector(BytesIO(), protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return found


def repro_segments() -> List[str]:
    """Live ``/dev/shm`` segments created by this module (leak check).

    Returns an empty list on platforms without a world-readable shm
    mount; the executor tests skip there.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))
