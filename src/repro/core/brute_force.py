"""Exact quadratic baselines: the algorithms the lower bounds are about.

Blocked BLAS matrix products keep memory bounded while evaluating every
pair — ``O(n m d)`` work, the bar every subquadratic algorithm in the
paper is measured against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.problems import (
    JoinResult,
    JoinSpec,
    MIPSResult,
    QueryStats,
    validate_join_inputs,
)
from repro.obs.trace import span
from repro.utils.validation import check_matrix, check_vector


def brute_force_chunk(
    P,
    Q_chunk,
    signed: bool,
    cs: float,
    block: int,
) -> Tuple[List[Optional[int]], int, int, QueryStats]:
    """The blocked all-pairs scan over one contiguous query chunk.

    Returns ``(matches, inner_products_evaluated, candidates_generated,
    stats)``.  Matches are block-size independent (strict improvement
    keeps the lowest-index maximizer), so chunking the query set never
    changes results.
    """
    n, mc = P.shape[0], Q_chunk.shape[0]
    best_value = np.full(mc, -np.inf)
    best_index = np.full(mc, -1, dtype=np.int64)
    for q0 in range(0, mc, block):
        q_block = Q_chunk[q0:q0 + block]
        with span("scan", n_queries=q_block.shape[0]):
            for p0 in range(0, n, block):
                ips = q_block @ P[p0:p0 + block].T  # (mb, nb)
                scores = ips if signed else np.abs(ips)
                local_best = np.argmax(scores, axis=1)
                local_vals = scores[np.arange(scores.shape[0]), local_best]
                improved = local_vals > best_value[q0:q0 + block]
                rows = np.flatnonzero(improved) + q0
                best_value[rows] = local_vals[improved]
                best_index[rows] = local_best[improved] + p0
    matches = [
        int(best_index[i]) if best_value[i] >= cs else None for i in range(mc)
    ]
    evaluated = n * mc
    stats = QueryStats(
        queries=mc, candidates=evaluated, unique_candidates=evaluated
    )
    return matches, evaluated, evaluated, stats


def brute_force_join(
    P,
    Q,
    spec: JoinSpec,
    block: int = 512,
) -> JoinResult:
    """Exact join: scan all pairs, report the best partner per query.

    Returns, per query, the data index maximizing the (absolute) inner
    product when that maximum clears ``spec.cs``; ``None`` otherwise.
    (Reporting the maximizer rather than an arbitrary above-threshold
    partner makes the result canonical for comparisons.)
    """
    P, Q = validate_join_inputs(P, Q)
    matches, evaluated, generated, _ = brute_force_chunk(
        P, Q, spec.signed, spec.cs, block
    )
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=evaluated,
        candidates_generated=generated,
    )


def brute_force_mips(P, q, signed: bool = True) -> MIPSResult:
    """Exact MIPS: the argmax (absolute) inner product over all data rows."""
    P = check_matrix(P, "P")
    q = check_vector(q, "q")
    values = P @ q
    scores = values if signed else np.abs(values)
    best = int(np.argmax(scores))
    return MIPSResult(index=best, value=float(values[best]))


def brute_force_search(P, q, s: float, signed: bool = True) -> Optional[int]:
    """Exact ``s``-threshold search: any data index clearing ``s``, or None."""
    result = brute_force_mips(P, q, signed=signed)
    score = result.value if signed else abs(result.value)
    return result.index if score >= s else None
