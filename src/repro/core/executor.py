"""Process-parallel join execution: shard query blocks across workers.

Python's per-query overhead disappears into GEMMs with the blocked
verification kernel, but one process still drives one core.  This module
shards a filter-then-verify join over contiguous *query block* ranges
and fans them out to a :class:`concurrent.futures.ProcessPoolExecutor`.

Workers obtain the index one of two ways, both through pickle:

* **Rebuild from a spec** — a :class:`BatchIndexSpec` (pure data, tiny
  on the wire) is shipped to each worker, which rebuilds the index from
  the same integer seed.  Identical seed ⇒ identical projections ⇒
  identical tables in every worker.
* **Receive prebuilt** — any picklable built index (a
  :class:`~repro.lsh.batch.BatchSignIndex` pickles cleanly: numpy
  arrays, CSR tables, and bound methods of importable transform classes)
  is shipped once per worker via the pool initializer.

All sharding funnels through ONE helper, :func:`map_query_chunks`: it
builds (or receives) the payload, splits the query set into block-aligned
contiguous chunks, runs a module-level chunk *runner* over each chunk —
in-process for ``n_workers=1``, across a pool otherwise — and returns
per-chunk results in query order.  The engine's parallel path
(:func:`repro.engine.join` with ``n_workers=``), :func:`parallel_lsh_join`
and :func:`parallel_sketch_join` are all thin wrappers over it.

Determinism contract: chunk boundaries are aligned to multiples of the
verification ``block`` size, so the sequence of (candidate-generation,
GEMM) calls inside any chunk is exactly the sequence the serial path
would execute for those queries.  ``n_workers=1`` never spawns a pool —
it runs the identical chunk function in-process — and ``n_workers=k``
returns bit-identical matches (and, via :meth:`QueryStats.merge`,
identical stats) for identical seeds.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problems import (
    JoinResult,
    JoinSpec,
    QueryStats,
    validate_join_inputs,
)
from repro.core.verify import DEFAULT_BLOCK
from repro.errors import ParameterError
from repro.lsh.batch import BatchSignIndex

#: Schemes BatchIndexSpec can rebuild, mapping to BatchSignIndex constructors.
SCHEMES = ("hyperplane", "datadep", "simple_lsh", "symmetric")


@dataclass(frozen=True)
class BatchIndexSpec:
    """Picklable recipe for a :class:`~repro.lsh.batch.BatchSignIndex`.

    Pure data — no callables, no arrays — so it crosses process
    boundaries for pennies and two builds from the same spec (and data)
    are identical.  ``seed`` must be a concrete integer: entropy-seeded
    indexes cannot be reproduced in a worker.
    """

    d: int
    scheme: str = "hyperplane"
    n_tables: int = 16
    bits_per_table: int = 12
    seed: int = 0
    layout: str = "csr"
    query_radius: float = 1.0  # datadep only
    eps: float = 0.05          # symmetric only

    def __post_init__(self):
        if self.scheme not in SCHEMES:
            raise ParameterError(
                f"scheme must be one of {SCHEMES}, got {self.scheme!r}"
            )
        if not isinstance(self.seed, (int, np.integer)):
            raise ParameterError(
                f"seed must be a concrete integer for reproducible worker "
                f"rebuilds, got {type(self.seed).__name__}"
            )

    def build(self, P) -> BatchSignIndex:
        """Construct and build the index over ``P``."""
        common = dict(
            n_tables=self.n_tables,
            bits_per_table=self.bits_per_table,
            seed=int(self.seed),
            layout=self.layout,
        )
        if self.scheme == "hyperplane":
            index = BatchSignIndex.for_hyperplane(self.d, **common)
        elif self.scheme == "datadep":
            index = BatchSignIndex.for_datadep(
                self.d, query_radius=self.query_radius, **common
            )
        elif self.scheme == "simple_lsh":
            index = BatchSignIndex.for_simple_lsh(self.d, **common)
        else:
            index = BatchSignIndex.for_symmetric(self.d, eps=self.eps, **common)
        return index.build(P)


@dataclass(frozen=True)
class SketchStructureSpec:
    """Picklable recipe for a :class:`~repro.sketches.cmips.SketchCMIPS`.

    Pure data like :class:`BatchIndexSpec`: a concrete integer seed makes
    every worker rebuild bit-identical sketches, so sharding the query
    set cannot change which data vector a query's descent proposes.
    """

    kappa: float = 4.0
    copies: int = 7
    leaf_size: int = 8
    seed: int = 0

    def __post_init__(self):
        if not isinstance(self.seed, (int, np.integer)):
            raise ParameterError(
                f"seed must be a concrete integer for reproducible worker "
                f"rebuilds, got {type(self.seed).__name__}"
            )

    def build(self, P):
        """Construct the c-MIPS structure over ``P``."""
        from repro.sketches.cmips import SketchCMIPS

        return SketchCMIPS(
            P,
            kappa=self.kappa,
            copies=self.copies,
            leaf_size=self.leaf_size,
            seed=int(self.seed),
        )


# Per-worker state installed by the pool initializer: (structure, P).
_WORKER_STATE: dict = {}


def _init_worker(payload, P) -> None:
    structure = payload.build(P) if hasattr(payload, "build") else payload
    _WORKER_STATE["structure"] = structure
    _WORKER_STATE["P"] = P


def _run_worker_chunk(runner, Q_chunk, start, args):
    return runner(
        _WORKER_STATE["structure"], _WORKER_STATE["P"], Q_chunk, start, args
    )


def _chunk_bounds(n_queries: int, block: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Contiguous [start, end) ranges aligned to ``block`` multiples."""
    n_blocks = math.ceil(n_queries / block)
    blocks_per_chunk = math.ceil(n_blocks / n_chunks)
    step = blocks_per_chunk * block
    return [
        (start, min(n_queries, start + step))
        for start in range(0, n_queries, step)
    ]


def map_query_chunks(
    payload,
    P,
    Q,
    runner: Callable,
    args: tuple,
    n_workers: int = 1,
    block: int = DEFAULT_BLOCK,
) -> List[Any]:
    """THE shared shard-and-run helper behind every parallel join path.

    Args:
        payload: either a built structure (shipped to workers as-is) or
            a picklable recipe exposing ``build(P) -> structure``
            (:class:`BatchIndexSpec`, :class:`SketchStructureSpec`, an
            engine structure with a lazy ``build``); workers rebuild
            from it, so entropy seeds are rejected at spec level, not
            here.
        P, Q: data and query matrices (already validated by the caller).
        runner: a **module-level** (hence picklable-by-reference)
            function ``runner(structure, P, Q_chunk, start, args)``
            where ``start`` is the chunk's global query offset; it is
            THE join inner loop for its algorithm — serial and parallel
            paths run this exact function, which is what makes
            ``n_workers=1`` and ``n_workers=k`` results identical.
        args: extra picklable arguments forwarded to ``runner``.
        n_workers: process count; ``1`` runs one chunk in-process and
            never spawns a pool.
        block: chunk boundaries align to multiples of this (the
            verification block size), so worker-count changes never
            change per-block call sequences.

    Returns:
        The per-chunk runner results, in query (chunk) order.
    """
    if n_workers < 1:
        raise ParameterError(f"n_workers must be >= 1, got {n_workers}")
    if block < 1:
        raise ParameterError(f"block must be >= 1, got {block}")
    if n_workers == 1:
        structure = payload.build(P) if hasattr(payload, "build") else payload
        return [runner(structure, P, Q, 0, args)]
    bounds = _chunk_bounds(Q.shape[0], block, n_workers)
    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(bounds)),
        initializer=_init_worker,
        initargs=(payload, P),
    ) as pool:
        futures = [
            pool.submit(_run_worker_chunk, runner, Q[start:end], start, args)
            for start, end in bounds
        ]
        return [f.result() for f in futures]


def _lsh_runner(index, P, Q_chunk, start, args):
    """Chunk runner for LSH filter-then-verify joins."""
    from repro.core.lsh_join import lsh_filter_verify_chunk

    signed, cs, n_probes, block = args
    return lsh_filter_verify_chunk(index, P, Q_chunk, signed, cs, n_probes, block)


def _sketch_runner(structure, P, Q_chunk, start, args):
    """Chunk runner for the Section 4.3 sketch join."""
    from repro.core.sketch_join import sketch_filter_verify_chunk

    cs, block = args
    return sketch_filter_verify_chunk(structure, P, Q_chunk, cs, block)


def _engine_runner(structure, P, Q_chunk, start, args):
    """Chunk runner for the unified engine: dispatch to a named backend.

    ``args`` is ``(backend_name,)``, ``(backend_name, observe)`` or
    ``(backend_name, observe, stage_label)``.  With ``observe`` set, the
    chunk runs under a fresh tracer + metrics registry — in *every*
    execution mode, so a serial join and each parallel worker produce
    the same detached per-chunk span tree — and ships them back on the
    :class:`~repro.engine.protocol.ChunkResult` (spans as plain
    dataclasses, metrics as a snapshot dict; both pickle).  The parent
    stitches chunk trees under its ``run`` span and merges metric
    snapshots in chunk order, which keeps parallel totals bit-identical
    to serial ones.  ``stage_label`` (multi-stage plans) is stamped on
    the ``run_chunk`` span so detached chunk trees stay attributable to
    their stage; one-stage joins omit it and keep the pre-Plan-IR span
    shape.
    """
    from repro.engine.registry import get_backend

    backend_name = args[0]
    observe = args[1] if len(args) > 1 else False
    stage_label = args[2] if len(args) > 2 else ""
    backend = get_backend(backend_name)
    if not observe:
        return backend.run_chunk(structure, P, Q_chunk, start)

    from repro.obs import MetricsRegistry, Tracer
    from repro.obs import observe as activate_obs

    attrs = dict(start=int(start), n_queries=int(Q_chunk.shape[0]))
    if stage_label:
        attrs["stage"] = stage_label
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry(enabled=True)
    with activate_obs(tracer, registry):
        with tracer.span("run_chunk", **attrs):
            result = backend.run_chunk(structure, P, Q_chunk, start)
    result.trace = tracer.take()
    result.metrics = registry.snapshot()
    return result


def merge_join_chunks(
    chunk_results: Sequence,
    spec: JoinSpec,
    backend: Optional[str] = None,
) -> JoinResult:
    """Combine per-chunk ``(matches, evaluated, generated, stats)`` tuples.

    Matches concatenate in query order; work counters sum; stats merge
    through the single :meth:`QueryStats.merge` implementation, so the
    totals are independent of how the query set was chunked.
    """
    matches: List[Optional[int]] = []
    evaluated = 0
    generated = 0
    stats = QueryStats()
    for chunk_matches, chunk_evaluated, chunk_generated, chunk_stats in chunk_results:
        matches.extend(chunk_matches)
        evaluated += chunk_evaluated
        generated += chunk_generated
        stats = stats.merge(chunk_stats)
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=evaluated,
        candidates_generated=generated,
        backend=backend,
        stats=stats,
    )


def parallel_lsh_join(
    P,
    Q,
    spec: JoinSpec,
    index_spec: Optional[BatchIndexSpec] = None,
    index=None,
    n_workers: int = 1,
    n_probes: int = 0,
    block: int = DEFAULT_BLOCK,
) -> JoinResult:
    """Filter-then-verify ``(cs, s)`` join sharded over query blocks.

    Args:
        P, Q: data and query matrices.
        spec: the ``(cs, s)`` parameters.
        index_spec: a :class:`BatchIndexSpec` (or any picklable object
            with ``build(P) -> index``); workers rebuild from it.
        index: alternatively a pre-built picklable index over ``P``;
            shipped to workers as-is.  Exactly one of ``index_spec`` /
            ``index`` must be given.
        n_workers: process count.  ``1`` runs in-process and reproduces
            the serial join exactly, seed for seed.
        n_probes: multiprobe width (indexes that support it).
        block: verification block size; chunk boundaries align to it so
            worker-count changes never change results.
    """
    P, Q = validate_join_inputs(P, Q)
    if (index_spec is None) == (index is None):
        raise ParameterError("provide exactly one of index_spec or index")
    payload = index_spec if index_spec is not None else index
    chunks = map_query_chunks(
        payload, P, Q, _lsh_runner, (spec.signed, spec.cs, n_probes, block),
        n_workers=n_workers, block=block,
    )
    return merge_join_chunks(chunks, spec)


def parallel_sketch_join(
    P,
    Q,
    s: float,
    structure_spec: Optional[SketchStructureSpec] = None,
    structure=None,
    n_workers: int = 1,
    block: int = DEFAULT_BLOCK,
) -> JoinResult:
    """The Section 4.3 sketch join sharded over query blocks.

    The blocked sketch kernel is block-local in the queries, so the same
    chunking contract as :func:`parallel_lsh_join` applies: chunk
    boundaries align to ``block`` multiples, every worker rebuilds (or
    receives) the same structure, and ``n_workers=1`` reproduces the
    serial join exactly.
    """
    P, Q = validate_join_inputs(P, Q)
    if (structure_spec is None) == (structure is None):
        raise ParameterError("provide exactly one of structure_spec or structure")
    payload = structure_spec if structure_spec is not None else structure
    if structure_spec is not None:
        from repro.sketches.stable import norm_ratio_bound

        c = 1.0 / norm_ratio_bound(P.shape[0], float(structure_spec.kappa))
    else:
        c = structure.approximation_factor
    spec = JoinSpec(s=s, c=c, signed=False)
    chunks = map_query_chunks(
        payload, P, Q, _sketch_runner, (spec.cs, block),
        n_workers=n_workers, block=block,
    )
    return merge_join_chunks(chunks, spec)
