"""Process-parallel join execution: shard query blocks across workers.

Python's per-query overhead disappears into GEMMs with the blocked
verification kernel, but one process still drives one core.  This module
shards a filter-then-verify join over contiguous *query block* ranges
and fans them out to a :class:`concurrent.futures.ProcessPoolExecutor`.

Workers obtain the index one of two ways, both through pickle:

* **Rebuild from a spec** — a :class:`BatchIndexSpec` (pure data, tiny
  on the wire) is shipped to each worker, which rebuilds the index from
  the same integer seed.  Identical seed ⇒ identical projections ⇒
  identical tables in every worker.
* **Receive prebuilt** — any picklable built index (a
  :class:`~repro.lsh.batch.BatchSignIndex` pickles cleanly: numpy
  arrays, CSR tables, and bound methods of importable transform classes)
  is shipped once per worker via the pool initializer.

Determinism contract: chunk boundaries are aligned to multiples of the
verification ``block`` size, so the sequence of (candidate-generation,
GEMM) calls inside any chunk is exactly the sequence the serial path
would execute for those queries.  ``n_workers=1`` never spawns a pool —
it runs the identical chunk function in-process — and ``n_workers=k``
returns bit-identical matches for identical seeds.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.core.verify import DEFAULT_BLOCK, verify_block
from repro.errors import ParameterError
from repro.lsh.batch import BatchSignIndex

#: Schemes BatchIndexSpec can rebuild, mapping to BatchSignIndex constructors.
SCHEMES = ("hyperplane", "datadep", "simple_lsh", "symmetric")


@dataclass(frozen=True)
class BatchIndexSpec:
    """Picklable recipe for a :class:`~repro.lsh.batch.BatchSignIndex`.

    Pure data — no callables, no arrays — so it crosses process
    boundaries for pennies and two builds from the same spec (and data)
    are identical.  ``seed`` must be a concrete integer: entropy-seeded
    indexes cannot be reproduced in a worker.
    """

    d: int
    scheme: str = "hyperplane"
    n_tables: int = 16
    bits_per_table: int = 12
    seed: int = 0
    layout: str = "csr"
    query_radius: float = 1.0  # datadep only
    eps: float = 0.05          # symmetric only

    def __post_init__(self):
        if self.scheme not in SCHEMES:
            raise ParameterError(
                f"scheme must be one of {SCHEMES}, got {self.scheme!r}"
            )
        if not isinstance(self.seed, (int, np.integer)):
            raise ParameterError(
                f"seed must be a concrete integer for reproducible worker "
                f"rebuilds, got {type(self.seed).__name__}"
            )

    def build(self, P) -> BatchSignIndex:
        """Construct and build the index over ``P``."""
        common = dict(
            n_tables=self.n_tables,
            bits_per_table=self.bits_per_table,
            seed=int(self.seed),
            layout=self.layout,
        )
        if self.scheme == "hyperplane":
            index = BatchSignIndex.for_hyperplane(self.d, **common)
        elif self.scheme == "datadep":
            index = BatchSignIndex.for_datadep(
                self.d, query_radius=self.query_radius, **common
            )
        elif self.scheme == "simple_lsh":
            index = BatchSignIndex.for_simple_lsh(self.d, **common)
        else:
            index = BatchSignIndex.for_symmetric(self.d, eps=self.eps, **common)
        return index.build(P)


@dataclass(frozen=True)
class SketchStructureSpec:
    """Picklable recipe for a :class:`~repro.sketches.cmips.SketchCMIPS`.

    Pure data like :class:`BatchIndexSpec`: a concrete integer seed makes
    every worker rebuild bit-identical sketches, so sharding the query
    set cannot change which data vector a query's descent proposes.
    """

    kappa: float = 4.0
    copies: int = 7
    leaf_size: int = 8
    seed: int = 0

    def __post_init__(self):
        if not isinstance(self.seed, (int, np.integer)):
            raise ParameterError(
                f"seed must be a concrete integer for reproducible worker "
                f"rebuilds, got {type(self.seed).__name__}"
            )

    def build(self, P):
        """Construct the c-MIPS structure over ``P``."""
        from repro.sketches.cmips import SketchCMIPS

        return SketchCMIPS(
            P,
            kappa=self.kappa,
            copies=self.copies,
            leaf_size=self.leaf_size,
            seed=int(self.seed),
        )


# Per-worker state installed by the pool initializer: (index, P).
_WORKER_STATE: dict = {}


def _init_worker(payload, P) -> None:
    index = payload.build(P) if hasattr(payload, "build") else payload
    _WORKER_STATE["index"] = index
    _WORKER_STATE["P"] = P


def _join_chunk(
    index, P, Q_chunk, signed: bool, cs: float, n_probes: int, block: int
) -> Tuple[List[Optional[int]], int, int]:
    """Run the filter+verify loop over one contiguous query chunk.

    This is THE join inner loop — the serial path and every worker run
    this exact function, which is what makes ``n_workers=1`` and
    ``n_workers=k`` results identical.
    """
    candidates_before = index.stats.candidates
    supports_probes = hasattr(index, "bits_per_table")
    if n_probes and not supports_probes:
        raise ParameterError(
            f"index {type(index).__name__} does not support multiprobe"
        )
    matches: List[Optional[int]] = []
    verified = 0
    for q0 in range(0, Q_chunk.shape[0], block):
        Q_block = Q_chunk[q0:q0 + block]
        if hasattr(index, "candidates_batch"):
            if supports_probes:
                cand_lists = index.candidates_batch(Q_block, n_probes=n_probes)
            else:
                cand_lists = index.candidates_batch(Q_block)
        else:
            cand_lists = [index.candidates(Q_block[i]) for i in range(Q_block.shape[0])]
        result = verify_block(P, Q_block, cand_lists, signed=signed)
        verified += result.n_evaluated
        matches.extend(
            int(idx) if idx >= 0 and score >= cs else None
            for idx, score in zip(result.best_index, result.best_score)
        )
    return matches, verified, index.stats.candidates - candidates_before


def _run_chunk(Q_chunk, signed, cs, n_probes, block):
    return _join_chunk(
        _WORKER_STATE["index"], _WORKER_STATE["P"], Q_chunk, signed, cs, n_probes, block
    )


def _chunk_bounds(n_queries: int, block: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Contiguous [start, end) ranges aligned to ``block`` multiples."""
    n_blocks = math.ceil(n_queries / block)
    blocks_per_chunk = math.ceil(n_blocks / n_chunks)
    step = blocks_per_chunk * block
    return [
        (start, min(n_queries, start + step))
        for start in range(0, n_queries, step)
    ]


def parallel_lsh_join(
    P,
    Q,
    spec: JoinSpec,
    index_spec: Optional[BatchIndexSpec] = None,
    index=None,
    n_workers: int = 1,
    n_probes: int = 0,
    block: int = DEFAULT_BLOCK,
) -> JoinResult:
    """Filter-then-verify ``(cs, s)`` join sharded over query blocks.

    Args:
        P, Q: data and query matrices.
        spec: the ``(cs, s)`` parameters.
        index_spec: a :class:`BatchIndexSpec` (or any picklable object
            with ``build(P) -> index``); workers rebuild from it.
        index: alternatively a pre-built picklable index over ``P``;
            shipped to workers as-is.  Exactly one of ``index_spec`` /
            ``index`` must be given.
        n_workers: process count.  ``1`` runs in-process and reproduces
            the serial join exactly, seed for seed.
        n_probes: multiprobe width (indexes that support it).
        block: verification block size; chunk boundaries align to it so
            worker-count changes never change results.
    """
    P, Q = validate_join_inputs(P, Q)
    if (index_spec is None) == (index is None):
        raise ParameterError("provide exactly one of index_spec or index")
    if n_workers < 1:
        raise ParameterError(f"n_workers must be >= 1, got {n_workers}")
    if block < 1:
        raise ParameterError(f"block must be >= 1, got {block}")
    payload = index_spec if index_spec is not None else index
    if n_workers == 1:
        built = payload.build(P) if hasattr(payload, "build") else payload
        matches, verified, generated = _join_chunk(
            built, P, Q, spec.signed, spec.cs, n_probes, block
        )
        return JoinResult(
            matches=matches,
            spec=spec,
            inner_products_evaluated=verified,
            candidates_generated=generated,
        )
    bounds = _chunk_bounds(Q.shape[0], block, n_workers)
    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(bounds)),
        initializer=_init_worker,
        initargs=(payload, P),
    ) as pool:
        futures = [
            pool.submit(_run_chunk, Q[start:end], spec.signed, spec.cs, n_probes, block)
            for start, end in bounds
        ]
        chunk_results = [f.result() for f in futures]
    matches: List[Optional[int]] = []
    verified = 0
    generated = 0
    for chunk_matches, chunk_verified, chunk_generated in chunk_results:
        matches.extend(chunk_matches)
        verified += chunk_verified
        generated += chunk_generated
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=verified,
        candidates_generated=generated,
    )


def _sketch_chunk(structure, P, Q_chunk, s: float, block: int):
    """Run the blocked sketch join over one contiguous query chunk."""
    from repro.core.sketch_join import sketch_unsigned_join

    result = sketch_unsigned_join(P, Q_chunk, s=s, structure=structure, block=block)
    return result.matches, result.inner_products_evaluated


def _run_sketch_chunk(Q_chunk, s, block):
    return _sketch_chunk(
        _WORKER_STATE["index"], _WORKER_STATE["P"], Q_chunk, s, block
    )


def parallel_sketch_join(
    P,
    Q,
    s: float,
    structure_spec: Optional[SketchStructureSpec] = None,
    structure=None,
    n_workers: int = 1,
    block: int = DEFAULT_BLOCK,
) -> JoinResult:
    """The Section 4.3 sketch join sharded over query blocks.

    The blocked :func:`repro.core.sketch_join.sketch_unsigned_join` is
    block-local in the queries, so the same chunking contract as
    :func:`parallel_lsh_join` applies: chunk boundaries align to
    ``block`` multiples, every worker rebuilds (or receives) the same
    structure, and ``n_workers=1`` reproduces the serial join exactly.
    """
    P, Q = validate_join_inputs(P, Q)
    if (structure_spec is None) == (structure is None):
        raise ParameterError("provide exactly one of structure_spec or structure")
    if n_workers < 1:
        raise ParameterError(f"n_workers must be >= 1, got {n_workers}")
    if block < 1:
        raise ParameterError(f"block must be >= 1, got {block}")
    payload = structure_spec if structure_spec is not None else structure
    if n_workers == 1:
        built = payload.build(P) if hasattr(payload, "build") else payload
        from repro.core.sketch_join import sketch_unsigned_join

        return sketch_unsigned_join(P, Q, s=s, structure=built, block=block)
    if structure_spec is not None:
        from repro.sketches.stable import norm_ratio_bound

        c = 1.0 / norm_ratio_bound(P.shape[0], float(structure_spec.kappa))
    else:
        c = structure.approximation_factor
    spec = JoinSpec(s=s, c=c, signed=False)
    bounds = _chunk_bounds(Q.shape[0], block, n_workers)
    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(bounds)),
        initializer=_init_worker,
        initargs=(payload, P),
    ) as pool:
        futures = [
            pool.submit(_run_sketch_chunk, Q[start:end], s, block)
            for start, end in bounds
        ]
        chunk_results = [f.result() for f in futures]
    matches: List[Optional[int]] = []
    evaluated = 0
    for chunk_matches, chunk_evaluated in chunk_results:
        matches.extend(chunk_matches)
        evaluated += chunk_evaluated
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=evaluated,
        candidates_generated=len(matches),
    )
