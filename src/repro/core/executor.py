"""Zero-copy parallel join execution: shard query blocks across workers.

Python's per-query overhead disappears into GEMMs with the blocked
verification kernel, but one process still drives one core.  This module
shards a filter-then-verify join over contiguous *query block* ranges
and fans them out to a persistent worker pool.  Three execution paths,
one dispatch helper (:func:`map_query_chunks`), identical results:

* **Serial** (``n_workers=1``): build the structure in-process, run one
  chunk.  Never touches a pool; an explicit ``blas_threads=`` pin is
  still honored for the duration of the run.
* **Process pool** (``pool="process"``): the structure is built ONCE in
  the parent, then its large arrays — together with ``P`` and ``Q`` —
  are placed in a :class:`~repro.core.arena.SharedArena` (POSIX shared
  memory) and only tiny (segment, dtype, shape, offset) descriptors
  cross the process boundary.  Workers reconstruct read-only views; no
  array is ever pickled per chunk.  This is what fixed the executor
  losing to serial (0.23x at 4 workers in BENCH_PR5): the old path
  re-pickled ``P``, the index, and every ``Q`` chunk through the pipe.
* **Thread pool** (``pool="thread"``): the chunk kernels spend their
  time inside BLAS GEMMs, which release the GIL — so plain threads
  parallelize them with literally zero serialization.  Each task gets a
  :func:`~repro.core.arena.clone_shell` of the structure (own mutable
  stats, shared arrays) so concurrent chunks don't race.

Pools are **persistent**: :func:`get_pool` keeps one pool per
``(kind, n_workers, context)`` alive across calls (workers warm, arena
dedup making repeated joins over the same ``P`` ship it once), with an
explicit ``close()``/context-manager lifecycle, ``close_pools()`` for
everything, and an ``atexit`` sweep so ``/dev/shm`` never leaks — also
not on worker crashes, where the broken pool is torn down and its
segments unlinked before the error propagates.

BLAS oversubscription is handled in both parallel paths: process-pool
workers pin their BLAS pool to ``cpu_count // n_workers`` threads (via
:mod:`repro.utils.blasctl`, plus inherited ``OMP_NUM_THREADS``-family
env vars so spawn-context children never start wide), and the thread
path pins the process-global BLAS pool for the duration of the call.
Override with the ``blas_threads`` knob.

Determinism contract (non-negotiable): chunk boundaries are aligned to
multiples of the verification ``block`` size, so the sequence of
(candidate-generation, GEMM) calls inside any chunk is exactly the
sequence the serial path would execute for those queries.  The structure
is built once in the parent and shared read-only, chunk results are
reassembled in query order regardless of completion order, and stats
merge through :meth:`QueryStats.merge` — so ``n_workers=k`` is
bit-identical to serial for every backend, pool kind, and Plan stage.

``n_workers="auto"`` resolves to :func:`os.cpu_count` capped by the
``REPRO_MAX_WORKERS`` environment variable.
"""

from __future__ import annotations

import atexit
import math
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.arena import SharedArena, clone_shell, freeze, thaw
from repro.core.problems import (
    JoinResult,
    JoinSpec,
    QueryStats,
    validate_join_inputs,
)
from repro.core.verify import DEFAULT_BLOCK
from repro.errors import ParameterError
from repro.lsh.batch import BatchSignIndex
from repro.utils import blasctl
from repro.utils.validation import check_matrix

#: Schemes BatchIndexSpec can rebuild, mapping to BatchSignIndex constructors.
SCHEMES = ("hyperplane", "datadep", "simple_lsh", "symmetric")

#: Pool kinds map_query_chunks understands.
POOL_KINDS = ("process", "thread")

#: Environment variable capping ``n_workers="auto"``.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


@dataclass(frozen=True)
class BatchIndexSpec:
    """Picklable recipe for a :class:`~repro.lsh.batch.BatchSignIndex`.

    Pure data — no callables, no arrays — so it crosses process
    boundaries for pennies and two builds from the same spec (and data)
    are identical.  ``seed`` must be a concrete integer: entropy-seeded
    indexes cannot be reproduced in a worker.
    """

    d: int
    scheme: str = "hyperplane"
    n_tables: int = 16
    bits_per_table: int = 12
    seed: int = 0
    layout: str = "csr"
    query_radius: float = 1.0  # datadep only
    eps: float = 0.05          # symmetric only

    def __post_init__(self):
        if self.scheme not in SCHEMES:
            raise ParameterError(
                f"scheme must be one of {SCHEMES}, got {self.scheme!r}"
            )
        if not isinstance(self.seed, (int, np.integer)):
            raise ParameterError(
                f"seed must be a concrete integer for reproducible worker "
                f"rebuilds, got {type(self.seed).__name__}"
            )

    def build(self, P) -> BatchSignIndex:
        """Construct and build the index over ``P``."""
        common = dict(
            n_tables=self.n_tables,
            bits_per_table=self.bits_per_table,
            seed=int(self.seed),
            layout=self.layout,
        )
        if self.scheme == "hyperplane":
            index = BatchSignIndex.for_hyperplane(self.d, **common)
        elif self.scheme == "datadep":
            index = BatchSignIndex.for_datadep(
                self.d, query_radius=self.query_radius, **common
            )
        elif self.scheme == "simple_lsh":
            index = BatchSignIndex.for_simple_lsh(self.d, **common)
        else:
            index = BatchSignIndex.for_symmetric(self.d, eps=self.eps, **common)
        return index.build(P)


@dataclass(frozen=True)
class SketchStructureSpec:
    """Picklable recipe for a :class:`~repro.sketches.cmips.SketchCMIPS`.

    Pure data like :class:`BatchIndexSpec`: a concrete integer seed makes
    every worker rebuild bit-identical sketches, so sharding the query
    set cannot change which data vector a query's descent proposes.
    """

    kappa: float = 4.0
    copies: int = 7
    leaf_size: int = 8
    seed: int = 0

    def __post_init__(self):
        if not isinstance(self.seed, (int, np.integer)):
            raise ParameterError(
                f"seed must be a concrete integer for reproducible worker "
                f"rebuilds, got {type(self.seed).__name__}"
            )

    def build(self, P):
        """Construct the c-MIPS structure over ``P``."""
        from repro.sketches.cmips import SketchCMIPS

        return SketchCMIPS(
            P,
            kappa=self.kappa,
            copies=self.copies,
            leaf_size=self.leaf_size,
            seed=int(self.seed),
        )


# ---------------------------------------------------------------------------
# Worker-count resolution


def resolve_workers(n_workers: Union[int, str]) -> int:
    """Resolve an ``n_workers`` request to a concrete count.

    ``"auto"`` resolves to :func:`os.cpu_count`, capped by the
    ``REPRO_MAX_WORKERS`` environment variable when set.  Integers pass
    through validated.
    """
    if n_workers == "auto":
        workers = os.cpu_count() or 1
        cap = os.environ.get(MAX_WORKERS_ENV)
        if cap is not None:
            try:
                cap_value = int(cap)
            except ValueError:
                raise ParameterError(
                    f"{MAX_WORKERS_ENV} must be an integer, got {cap!r}"
                )
            if cap_value < 1:
                raise ParameterError(
                    f"{MAX_WORKERS_ENV} must be >= 1, got {cap_value}"
                )
            workers = min(workers, cap_value)
        return max(1, workers)
    if not isinstance(n_workers, (int, np.integer)):
        raise ParameterError(
            f"n_workers must be an integer or 'auto', got {n_workers!r}"
        )
    if n_workers < 1:
        raise ParameterError(f"n_workers must be >= 1, got {n_workers}")
    return int(n_workers)


# ---------------------------------------------------------------------------
# Query sources: one contract for in-memory, streamed, and memmapped Q


class QuerySource:
    """A query matrix by any name: in-memory array, chunk iterator, or memmap.

    :func:`map_query_chunks` consumes any of the three through one
    contract, so streaming and out-of-core joins ride the exact code
    path in-memory joins do:

    * ``kind="array"`` — a materialized ``(m, d)`` ndarray.  This is also
      how memmapped files enter (:meth:`from_memmap` maps the file and
      wraps the read-only view), so an out-of-core ``Q`` gets the normal
      worker-count chunking and the OS pages rows in on demand.
    * ``kind="stream"`` — an iterator of ``(k_i, d)`` row chunks whose
      total length need not be known up front.  The executor re-blocks
      the incoming chunks to multiples of the verification ``block``
      size (:meth:`blocks`), which is exactly the determinism contract
      parallel chunking already obeys — so a streamed join is
      bit-identical to the in-memory join over the concatenated rows,
      for every worker count and pool kind.

    ``chunk_rows`` is a hint for the re-blocked chunk size (rounded to a
    ``block`` multiple by the consumer); ``d`` pins the expected width
    so a malformed producer fails with a named error, not a GEMM shape
    mismatch.
    """

    def __init__(
        self,
        kind: str,
        array: Optional[np.ndarray] = None,
        chunks: Optional[Iterable] = None,
        d: Optional[int] = None,
        chunk_rows: Optional[int] = None,
    ):
        if kind not in ("array", "stream"):
            raise ParameterError(
                f"QuerySource kind must be 'array' or 'stream', got {kind!r}"
            )
        if kind == "array" and array is None:
            raise ParameterError("array-kind QuerySource needs an array")
        if kind == "stream" and chunks is None:
            raise ParameterError("stream-kind QuerySource needs a chunk iterable")
        if chunk_rows is not None and chunk_rows < 1:
            raise ParameterError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.kind = kind
        self.array = array
        self._chunks = chunks
        self.d = int(d) if d is not None else (
            int(array.shape[1]) if array is not None else None
        )
        self.chunk_rows = chunk_rows
        self._consumed = False

    # -- constructors ----------------------------------------------------

    @classmethod
    def wrap(cls, Q) -> "QuerySource":
        """Coerce ``Q`` into a source: passthrough, ndarray, or iterable."""
        if isinstance(Q, QuerySource):
            return Q
        if isinstance(Q, np.ndarray):
            return cls.from_array(Q)
        if hasattr(Q, "__iter__") or hasattr(Q, "__next__"):
            return cls.from_chunks(Q)
        raise ParameterError(
            f"cannot make a QuerySource from {type(Q).__name__}: expected an "
            "ndarray, a chunk iterable, or a QuerySource"
        )

    @classmethod
    def from_array(cls, Q) -> "QuerySource":
        """An in-memory (or already-mapped) query matrix."""
        return cls("array", array=check_matrix(Q, "Q"))

    @classmethod
    def from_chunks(
        cls,
        chunks: Iterable,
        d: Optional[int] = None,
        chunk_rows: Optional[int] = None,
    ) -> "QuerySource":
        """A stream of ``(k_i, d)`` row chunks (iterator, generator, list)."""
        return cls("stream", chunks=chunks, d=d, chunk_rows=chunk_rows)

    @classmethod
    def from_memmap(
        cls,
        path,
        d: int,
        dtype=np.float64,
        rows: Optional[int] = None,
    ) -> "QuerySource":
        """Map a raw C-order array file of ``d``-wide float rows.

        ``rows`` defaults to the whole file; a file size that is not a
        multiple of the row stride raises (truncated or mis-described
        file).  The result is an array-kind source whose rows are paged
        in by the OS as chunks touch them — out-of-core ``Q`` with no
        special casing downstream.
        """
        dtype = np.dtype(dtype)
        if d < 1:
            raise ParameterError(f"d must be >= 1, got {d}")
        size = os.path.getsize(path)
        stride = dtype.itemsize * d
        if rows is None:
            if size == 0 or size % stride != 0:
                raise ParameterError(
                    f"{path} holds {size} bytes, not a multiple of the "
                    f"{stride}-byte row stride (d={d}, dtype={dtype})"
                )
            rows = size // stride
        elif size < rows * stride:
            raise ParameterError(
                f"{path} holds {size} bytes, too small for {rows} rows of "
                f"{stride} bytes"
            )
        mapped = np.memmap(path, dtype=dtype, mode="r", shape=(int(rows), d))
        source = cls("array", array=mapped.view(np.ndarray))
        return source

    # -- consumption -----------------------------------------------------

    def blocks(self, rows: int) -> Iterator[np.ndarray]:
        """Yield validated float64 chunks of exactly ``rows`` rows (last may
        be short), re-blocking whatever sizes the producer emits.

        Stream sources are single-use: the underlying iterator cannot be
        rewound, so a second pass raises instead of silently yielding
        nothing.
        """
        if rows < 1:
            raise ParameterError(f"rows must be >= 1, got {rows}")
        if self.kind == "array":
            Q = self.array
            for start in range(0, Q.shape[0], rows):
                yield Q[start:start + rows]
            return
        if self._consumed:
            raise ParameterError(
                "this stream QuerySource was already consumed; streams are "
                "single-use"
            )
        self._consumed = True
        pending: List[np.ndarray] = []
        held = 0
        for raw in self._chunks:
            chunk = check_matrix(raw, "Q chunk")
            if self.d is None:
                self.d = int(chunk.shape[1])
            elif chunk.shape[1] != self.d:
                raise ParameterError(
                    f"Q chunk has {chunk.shape[1]} columns, expected {self.d}"
                )
            pending.append(chunk)
            held += chunk.shape[0]
            while held >= rows:
                buffer = np.concatenate(pending, axis=0) if len(pending) > 1 else pending[0]
                yield np.ascontiguousarray(buffer[:rows])
                rest = buffer[rows:]
                pending = [rest] if rest.shape[0] else []
                held = rest.shape[0]
        if held:
            buffer = np.concatenate(pending, axis=0) if len(pending) > 1 else pending[0]
            yield np.ascontiguousarray(buffer)


# ---------------------------------------------------------------------------
# Worker-side task functions (module-level: pickled by reference)


def _process_worker_init(blas_threads: int) -> None:
    """Pool initializer: pin this worker's BLAS pool to its fair share."""
    if blas_threads >= 1:
        blasctl.set_blas_threads(blas_threads)


def _run_frozen_chunk(blob: bytes, start: int, end: int, runner, args):
    """Process-pool task: thaw the (structure, P, Q) shell, run one chunk.

    Thawing reconstructs shared-memory *views* for every large array —
    the only bytes unpickled per task are the object shells — and gives
    this task its own copies of small mutable state (stats), so tasks
    sharing a worker never race.
    """
    structure, P, Q = thaw(blob)
    return runner(structure, P, Q[start:end], start, args)


def _run_thread_chunk(structure, P, Q, start: int, end: int, runner, args):
    """Thread-pool task: shell-clone the structure, run one chunk.

    The clone shares every large array by reference (nothing copied) but
    owns its small mutable attributes — concurrent chunks mutate
    ``index.stats`` for their snapshot-diff accounting, which must not
    race across threads.
    """
    local = clone_shell(structure)
    return runner(local, P, Q[start:end], start, args)


def _run_frozen_stream_chunk(blob: bytes, Q_chunk, start: int, runner, args):
    """Process-pool task for streamed ``Q``: thaw (structure, P), run one chunk.

    Unlike :func:`_run_frozen_chunk`, the query chunk itself crosses the
    pipe (it is the one piece of data that did not exist when the call
    started), so shared memory holds only the long-lived structure and
    ``P`` — total shm stays bounded no matter how long the stream runs.
    """
    structure, P = thaw(blob)
    return runner(structure, P, Q_chunk, start, args)


def _run_thread_stream_chunk(structure, P, Q_chunk, start: int, runner, args):
    """Thread-pool task for streamed ``Q``: shell-clone, run one chunk."""
    local = clone_shell(structure)
    return runner(local, P, Q_chunk, start, args)


# Legacy pickle-per-worker path, kept for the bench baseline comparison
# (tools/bench_perf.py measures zero-copy against exactly this) and for
# any external caller that wired the old initializer directly.
_WORKER_STATE: dict = {}


def _init_worker(payload, P) -> None:
    structure = payload.build(P) if hasattr(payload, "build") else payload
    _WORKER_STATE["structure"] = structure
    _WORKER_STATE["P"] = P


def _run_worker_chunk(runner, Q_chunk, start, args):
    return runner(
        _WORKER_STATE["structure"], _WORKER_STATE["P"], Q_chunk, start, args
    )


# ---------------------------------------------------------------------------
# Persistent worker pool


class WorkerPool:
    """A persistent process or thread pool with a shared-memory arena.

    Created once, reused across :func:`map_query_chunks` calls: workers
    stay warm and the arena deduplicates arrays by identity, so a second
    join over the same ``P`` ships zero additional bytes of data.
    Explicit lifecycle — ``close()`` (idempotent) shuts the executor
    down and unlinks every owned segment; also usable as a context
    manager.  Module-level :func:`get_pool` maintains a keyed registry
    of these with an ``atexit`` sweep.

    Args:
        n_workers: worker count or ``"auto"``.
        kind: ``"process"`` or ``"thread"``.
        mp_context: multiprocessing start-method name (``"fork"``,
            ``"spawn"``, ``"forkserver"``) or ``None`` for the platform
            default.  Process pools only.
        blas_threads: BLAS threads per worker; default is the fair share
            ``cpu_count // n_workers`` (min 1).
    """

    def __init__(
        self,
        n_workers: Union[int, str],
        kind: str = "process",
        mp_context: Optional[str] = None,
        blas_threads: Optional[int] = None,
    ):
        if kind not in POOL_KINDS:
            raise ParameterError(
                f"pool kind must be one of {POOL_KINDS}, got {kind!r}"
            )
        self.n_workers = resolve_workers(n_workers)
        self.kind = kind
        self.mp_context = mp_context
        self.blas_threads = blasctl.worker_blas_threads(
            self.n_workers, blas_threads
        )
        self._executor = None
        self._arena: Optional[SharedArena] = None
        self._closed = False

    # -- lazy resources --------------------------------------------------

    @property
    def arena(self) -> SharedArena:
        """The pool's persistent arena (process pools; created lazily)."""
        if self._closed:
            raise ParameterError("pool is closed")
        if self._arena is None:
            self._arena = SharedArena()
        return self._arena

    def _ensure_executor(self):
        if self._closed:
            raise ParameterError("pool is closed")
        if self._executor is not None:
            return self._executor
        if self.kind == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="repro-join"
            )
            return self._executor
        import multiprocessing

        ctx = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context
            else None
        )
        # Spawn-context children load their BLAS before any initializer
        # runs, so the thread cap must already sit in the environment
        # they inherit; the ctypes pin in the initializer then covers
        # fork children and any library that ignored the env.
        saved = {
            name: os.environ.get(name) for name in blasctl.BLAS_ENV_VARS
        }
        os.environ.update(blasctl.blas_env(self.blas_threads))
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=ctx,
                initializer=_process_worker_init,
                initargs=(self.blas_threads,),
            )
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
        return self._executor

    # -- data placement --------------------------------------------------

    def share(self, arr: np.ndarray):
        """Pre-place an array in the persistent arena (process pools).

        Returns its :class:`~repro.core.arena.ArenaRef`; subsequent
        ``map_query_chunks`` calls through this pool reference the
        placement instead of re-copying.  No-op concept for thread
        pools, where arrays are shared by virtue of one address space.
        """
        if self.kind != "process":
            raise ParameterError("share() applies to process pools only")
        return self.arena.place(arr)

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut down workers and unlink every owned segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        executor, self._executor = self._executor, None
        arena, self._arena = self._arena, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        if arena is not None:
            arena.close()
        _forget_pool(self)

    def _abandon(self) -> None:
        """Tear down after a broken pool: don't wait on dead workers.

        Both ``BrokenProcessPool`` handlers in :func:`map_query_chunks`
        converge here, so this is also where crash listeners (the
        session's sink, health gauges) hear about worker deaths.
        """
        if self._closed:
            return
        self._closed = True
        executor, self._executor = self._executor, None
        arena, self._arena = self._arena, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        if arena is not None:
            arena.close()
        _forget_pool(self)
        _notify_crash(
            {"pool_kind": self.kind, "n_workers": self.n_workers}
        )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


#: Crash listeners: callables invoked with a plain-data info dict every
#: time a pool is abandoned after worker death.  Sessions register one
#: to emit ``crash`` sink events and bump their health counters; the
#: count backs the ``worker_crashes`` pool-health field of
#: :func:`repro.obs.resources.snapshot`.
_CRASH_LISTENERS: List[Callable[[dict], None]] = []
_CRASH_COUNT = 0


def add_crash_listener(listener: Callable[[dict], None]) -> None:
    """Register ``listener`` to be called on every pool crash."""
    _CRASH_LISTENERS.append(listener)


def remove_crash_listener(listener: Callable[[dict], None]) -> None:
    """Unregister a crash listener; missing listeners are ignored."""
    try:
        _CRASH_LISTENERS.remove(listener)
    except ValueError:
        pass


def crash_count() -> int:
    """Total worker-pool crashes observed in this process."""
    return _CRASH_COUNT


def _notify_crash(info: dict) -> None:
    global _CRASH_COUNT
    _CRASH_COUNT += 1
    info = dict(info, crash_count=_CRASH_COUNT)
    for listener in list(_CRASH_LISTENERS):
        try:
            listener(info)
        except Exception:
            pass  # a failing sink must not mask the original crash


#: Registry of persistent pools, keyed by (kind, n_workers, context).
_POOLS: Dict[tuple, WorkerPool] = {}


def get_pool(
    n_workers: Union[int, str],
    kind: str = "process",
    mp_context: Optional[str] = None,
    blas_threads: Optional[int] = None,
) -> WorkerPool:
    """The persistent pool for this configuration, created on first use.

    Pools live until :func:`close_pools` (or interpreter exit — an
    ``atexit`` hook sweeps the registry so ``/dev/shm`` is left clean).
    """
    workers = resolve_workers(n_workers)
    key = (kind, workers, mp_context, blas_threads)
    pool = _POOLS.get(key)
    if pool is None or pool.closed:
        pool = WorkerPool(
            workers, kind=kind, mp_context=mp_context, blas_threads=blas_threads
        )
        _POOLS[key] = pool
    return pool


def _forget_pool(pool: WorkerPool) -> None:
    for key, value in list(_POOLS.items()):
        if value is pool:
            del _POOLS[key]


def close_pools() -> None:
    """Close every registered persistent pool (and unlink their arenas)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(close_pools)


# ---------------------------------------------------------------------------
# The shard-and-run helper


def _chunk_bounds(n_queries: int, block: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Contiguous [start, end) ranges aligned to ``block`` multiples."""
    n_blocks = math.ceil(n_queries / block)
    blocks_per_chunk = math.ceil(n_blocks / n_chunks)
    step = blocks_per_chunk * block
    return [
        (start, min(n_queries, start + step))
        for start in range(0, n_queries, step)
    ]


def _collect_ordered(futures: List) -> List[Any]:
    """Resolve futures into submission order, completion order free.

    ``wait(FIRST_EXCEPTION)`` drains the set as chunks finish — workers
    may complete in any order — then results are read back by index, so
    the returned list is always in query-chunk order.
    """
    pending = set(futures)
    while pending:
        done, pending = wait(pending, return_when=FIRST_EXCEPTION)
        for future in done:
            if future.exception() is not None:
                for other in pending:
                    other.cancel()
                raise future.exception()
    return [future.result() for future in futures]


def map_query_chunks(
    payload,
    P,
    Q,
    runner: Callable,
    args: tuple,
    n_workers: Union[int, str] = 1,
    block: int = DEFAULT_BLOCK,
    pool: str = "process",
    executor: Optional[WorkerPool] = None,
    blas_threads: Optional[int] = None,
) -> List[Any]:
    """THE shared shard-and-run helper behind every parallel join path.

    Args:
        payload: either a built structure or a recipe exposing
            ``build(P) -> structure`` (:class:`BatchIndexSpec`,
            :class:`SketchStructureSpec`, an engine structure with a
            lazy ``build``).  Built ONCE in the parent; workers receive
            shared-memory views (process pools) or shell clones (thread
            pools) of the same built structure.
        P, Q: data and query matrices (already validated by the caller).
            ``Q`` may also be a :class:`QuerySource`: array-kind sources
            (including memmapped files) run the normal chunked path;
            stream-kind sources are consumed chunk by chunk with a
            bounded in-flight window, never materializing the full query
            set — results still return in stream order and match the
            in-memory run bit for bit (chunks are re-blocked to ``block``
            multiples, the same alignment parallel chunking uses).
        runner: a **module-level** (hence picklable-by-reference)
            function ``runner(structure, P, Q_chunk, start, args)``
            where ``start`` is the chunk's global query offset; it is
            THE join inner loop for its algorithm — serial and parallel
            paths run this exact function, which is what makes
            ``n_workers=1`` and ``n_workers=k`` results identical.
        args: extra picklable arguments forwarded to ``runner``.
        n_workers: worker count or ``"auto"`` (cpu_count capped by
            ``REPRO_MAX_WORKERS``); ``1`` runs one chunk in-process and
            never touches a pool.
        block: chunk boundaries align to multiples of this (the
            verification block size), so worker-count changes never
            change per-block call sequences.
        pool: ``"process"`` (shared-memory arena + persistent process
            pool) or ``"thread"`` (GIL released inside BLAS; zero
            serialization).
        executor: a caller-managed :class:`WorkerPool` to run on
            (its kind/worker count take precedence); default is the
            persistent registry pool from :func:`get_pool`.
        blas_threads: BLAS threads per worker; default
            ``cpu_count // n_workers`` (min 1).

    Returns:
        The per-chunk runner results, in query (chunk) order.
    """
    # Validate every execution option BEFORE building the structure:
    # an index build can cost minutes, and a typo'd pool kind must fail
    # in milliseconds — on the serial path too, where ``pool`` is
    # otherwise unused.
    workers = resolve_workers(n_workers)
    if block < 1:
        raise ParameterError(f"block must be >= 1, got {block}")
    if executor is None and pool not in POOL_KINDS:
        raise ParameterError(
            f"pool must be one of {POOL_KINDS}, got {pool!r}"
        )
    source: Optional[QuerySource] = None
    if isinstance(Q, QuerySource):
        if Q.kind == "array":
            Q = Q.array
        else:
            source = Q
    structure = payload.build(P) if hasattr(payload, "build") else payload
    if source is not None:
        # Same precedence as the array path: serial never touches a
        # pool; otherwise a caller-managed executor wins over the
        # persistent registry pool.
        wp = None
        if workers > 1:
            wp = executor if executor is not None else get_pool(
                workers, kind=pool, blas_threads=blas_threads
            )
        return _map_stream_chunks(
            structure, P, source, runner, args, wp, block, blas_threads
        )
    if workers == 1:
        if blas_threads is None:
            return [runner(structure, P, Q, 0, args)]
        # Serial path honors the pin too: callers asking for a fixed BLAS
        # budget get it regardless of worker count.
        with blasctl.blas_threads(
            blasctl.worker_blas_threads(1, blas_threads)
        ):
            return [runner(structure, P, Q, 0, args)]
    if executor is not None:
        wp = executor
    else:
        wp = get_pool(workers, kind=pool, blas_threads=blas_threads)
    bounds = _chunk_bounds(Q.shape[0], block, wp.n_workers)

    if wp.kind == "thread":
        ex = wp._ensure_executor()
        futures = [
            ex.submit(_run_thread_chunk, structure, P, Q, start, end, runner, args)
            for start, end in bounds
        ]
        # Pin the process-global BLAS pool to the per-worker share for
        # the duration of the call: k threads x (cores/k) BLAS threads
        # instead of k x cores.
        with blasctl.blas_threads(wp.blas_threads):
            return _collect_ordered(futures)

    # Process pool: freeze (structure, P, Q) into shared memory once per
    # call — per-task payloads are (shell bytes, start, end), pennies.
    # The per-call scratch arena is unlinked as soon as the call
    # completes; arrays pre-placed via WorkerPool.share() live in the
    # pool's persistent arena and are referenced, not re-copied.
    ex = wp._ensure_executor()
    lookup = (wp._arena,) if wp._arena is not None else ()
    scratch = SharedArena()
    try:
        blob = freeze((structure, P, Q), scratch, lookup=lookup)
        futures = [
            ex.submit(_run_frozen_chunk, blob, start, end, runner, args)
            for start, end in bounds
        ]
        return _collect_ordered(futures)
    except BrokenProcessPool:
        # A worker died (OOM kill, segfault, hard exit).  Tear the pool
        # down without waiting on dead processes and unlink every
        # segment — /dev/shm must not leak even on the crash path.
        wp._abandon()
        raise
    finally:
        scratch.close()


def _stream_rows(source: QuerySource, block: int) -> int:
    """The re-blocked chunk size for a stream: a ``block`` multiple >= block."""
    rows = source.chunk_rows if source.chunk_rows is not None else 8 * block
    return max(block, (rows // block) * block)


def _map_stream_chunks(
    structure,
    P,
    source: QuerySource,
    runner: Callable,
    args: tuple,
    wp: Optional[WorkerPool],
    block: int,
    blas_threads: Optional[int],
) -> List[Any]:
    """Run a stream-kind :class:`QuerySource` through the chunk runner.

    Chunks are consumed as the producer yields them and dispatched with a
    bounded in-flight window (``2 x n_workers``), so memory stays at
    O(window x chunk) regardless of stream length; results are collected
    oldest-first, which both preserves stream order and applies
    backpressure to the producer.  Only the long-lived ``(structure, P)``
    pair is frozen into shared memory — each query chunk crosses the
    pipe once and is never retained, unlike the array path where the
    whole ``Q`` is placed in the per-call scratch arena.
    """
    rows = _stream_rows(source, block)
    results: List[Any] = []
    if wp is None:
        pin = (
            blasctl.blas_threads(blasctl.worker_blas_threads(1, blas_threads))
            if blas_threads is not None
            else nullcontext()
        )
        offset = 0
        with pin:
            for chunk in source.blocks(rows):
                results.append(runner(structure, P, chunk, offset, args))
                offset += chunk.shape[0]
        return results

    window = 2 * wp.n_workers
    futures: deque = deque()
    if wp.kind == "thread":
        ex = wp._ensure_executor()
        try:
            with blasctl.blas_threads(wp.blas_threads):
                offset = 0
                for chunk in source.blocks(rows):
                    if len(futures) >= window:
                        results.append(futures.popleft().result())
                    futures.append(ex.submit(
                        _run_thread_stream_chunk, structure, P, chunk,
                        offset, runner, args,
                    ))
                    offset += chunk.shape[0]
                while futures:
                    results.append(futures.popleft().result())
            return results
        except Exception:
            for future in futures:
                future.cancel()
            raise

    ex = wp._ensure_executor()
    lookup = (wp._arena,) if wp._arena is not None else ()
    scratch = SharedArena()
    try:
        blob = freeze((structure, P), scratch, lookup=lookup)
        offset = 0
        for chunk in source.blocks(rows):
            if len(futures) >= window:
                results.append(futures.popleft().result())
            futures.append(ex.submit(
                _run_frozen_stream_chunk, blob, chunk, offset, runner, args,
            ))
            offset += chunk.shape[0]
        while futures:
            results.append(futures.popleft().result())
        return results
    except BrokenProcessPool:
        wp._abandon()
        raise
    except Exception:
        for future in futures:
            future.cancel()
        raise
    finally:
        for future in futures:
            future.cancel()
        scratch.close()


def _lsh_runner(index, P, Q_chunk, start, args):
    """Chunk runner for LSH filter-then-verify joins."""
    from repro.core.lsh_join import lsh_filter_verify_chunk

    signed, cs, n_probes, block = args
    return lsh_filter_verify_chunk(index, P, Q_chunk, signed, cs, n_probes, block)


def _sketch_runner(structure, P, Q_chunk, start, args):
    """Chunk runner for the Section 4.3 sketch join."""
    from repro.core.sketch_join import sketch_filter_verify_chunk

    cs, block = args
    return sketch_filter_verify_chunk(structure, P, Q_chunk, cs, block)


def _engine_runner(structure, P, Q_chunk, start, args):
    """Chunk runner for the unified engine: dispatch to a named backend.

    ``args`` is ``(backend_name,)``, ``(backend_name, observe)`` or
    ``(backend_name, observe, stage_label)``.  With ``observe`` set, the
    chunk runs under a fresh tracer + metrics registry — in *every*
    execution mode, so a serial join and each parallel worker produce
    the same detached per-chunk span tree — and ships them back on the
    :class:`~repro.engine.protocol.ChunkResult` (spans as plain
    dataclasses, metrics as a snapshot dict; both pickle).  The parent
    stitches chunk trees under its ``run`` span and merges metric
    snapshots in chunk order, which keeps parallel totals bit-identical
    to serial ones.  Thread-pool workers can do this concurrently
    because the current tracer/registry are context variables, not
    process globals.  ``stage_label`` (multi-stage plans) is stamped on
    the ``run_chunk`` span so detached chunk trees stay attributable to
    their stage; one-stage joins omit it and keep the pre-Plan-IR span
    shape.
    """
    from repro.engine.registry import get_backend

    backend_name = args[0]
    observe = args[1] if len(args) > 1 else False
    stage_label = args[2] if len(args) > 2 else ""
    backend = get_backend(backend_name)
    if not observe:
        t0 = time.perf_counter_ns()
        result = backend.run_chunk(structure, P, Q_chunk, start)
        result.wall_ns = time.perf_counter_ns() - t0
        return result

    from repro.obs import MetricsRegistry, Tracer
    from repro.obs import observe as activate_obs

    attrs = dict(start=int(start), n_queries=int(Q_chunk.shape[0]))
    if stage_label:
        attrs["stage"] = stage_label
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry(enabled=True)
    with activate_obs(tracer, registry):
        with tracer.span("run_chunk", **attrs):
            t0 = time.perf_counter_ns()
            result = backend.run_chunk(structure, P, Q_chunk, start)
            result.wall_ns = time.perf_counter_ns() - t0
    result.trace = tracer.take()
    result.metrics = registry.snapshot()
    return result


def merge_join_chunks(
    chunk_results: Sequence,
    spec: JoinSpec,
    backend: Optional[str] = None,
) -> JoinResult:
    """Combine per-chunk ``(matches, evaluated, generated, stats)`` tuples.

    Matches concatenate in query order; work counters sum; stats merge
    through the single :meth:`QueryStats.merge` implementation, so the
    totals are independent of how the query set was chunked.
    """
    matches: List[Optional[int]] = []
    evaluated = 0
    generated = 0
    stats = QueryStats()
    for chunk_matches, chunk_evaluated, chunk_generated, chunk_stats in chunk_results:
        matches.extend(chunk_matches)
        evaluated += chunk_evaluated
        generated += chunk_generated
        stats = stats.merge(chunk_stats)
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=evaluated,
        candidates_generated=generated,
        backend=backend,
        stats=stats,
    )


def parallel_lsh_join(
    P,
    Q,
    spec: JoinSpec,
    index_spec: Optional[BatchIndexSpec] = None,
    index=None,
    n_workers: Union[int, str] = 1,
    n_probes: int = 0,
    block: int = DEFAULT_BLOCK,
    pool: str = "process",
    executor: Optional[WorkerPool] = None,
    blas_threads: Optional[int] = None,
) -> JoinResult:
    """Filter-then-verify ``(cs, s)`` join sharded over query blocks.

    Args:
        P, Q: data and query matrices.
        spec: the ``(cs, s)`` parameters.
        index_spec: a :class:`BatchIndexSpec` (or any picklable object
            with ``build(P) -> index``); built once in the parent.
        index: alternatively a pre-built index over ``P``; shared with
            workers zero-copy.  Exactly one of ``index_spec`` /
            ``index`` must be given.
        n_workers: worker count or ``"auto"``.  ``1`` runs in-process
            and reproduces the serial join exactly, seed for seed.
        n_probes: multiprobe width (indexes that support it).
        block: verification block size; chunk boundaries align to it so
            worker-count changes never change results.
        pool, executor, blas_threads: see :func:`map_query_chunks`.
    """
    P, Q = validate_join_inputs(P, Q)
    if (index_spec is None) == (index is None):
        raise ParameterError("provide exactly one of index_spec or index")
    payload = index_spec if index_spec is not None else index
    chunks = map_query_chunks(
        payload, P, Q, _lsh_runner, (spec.signed, spec.cs, n_probes, block),
        n_workers=n_workers, block=block, pool=pool, executor=executor,
        blas_threads=blas_threads,
    )
    return merge_join_chunks(chunks, spec)


def parallel_sketch_join(
    P,
    Q,
    s: float,
    structure_spec: Optional[SketchStructureSpec] = None,
    structure=None,
    n_workers: Union[int, str] = 1,
    block: int = DEFAULT_BLOCK,
    pool: str = "process",
    executor: Optional[WorkerPool] = None,
    blas_threads: Optional[int] = None,
) -> JoinResult:
    """The Section 4.3 sketch join sharded over query blocks.

    The blocked sketch kernel is block-local in the queries, so the same
    chunking contract as :func:`parallel_lsh_join` applies: chunk
    boundaries align to ``block`` multiples, the structure is built once
    in the parent and shared, and ``n_workers=1`` reproduces the serial
    join exactly.
    """
    P, Q = validate_join_inputs(P, Q)
    if (structure_spec is None) == (structure is None):
        raise ParameterError("provide exactly one of structure_spec or structure")
    payload = structure_spec if structure_spec is not None else structure
    if structure_spec is not None:
        from repro.sketches.stable import norm_ratio_bound

        c = 1.0 / norm_ratio_bound(P.shape[0], float(structure_spec.kappa))
    else:
        c = structure.approximation_factor
    spec = JoinSpec(s=s, c=c, signed=False)
    chunks = map_query_chunks(
        payload, P, Q, _sketch_runner, (spec.cs, block),
        n_workers=n_workers, block=block, pool=pool, executor=executor,
        blas_threads=blas_threads,
    )
    return merge_join_chunks(chunks, spec)
