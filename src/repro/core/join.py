"""Top-level join dispatch: the one-call public API.

``signed_join`` and ``unsigned_join`` select an algorithm by name and
normalize the plumbing; the unsigned variant also exposes the paper's
reduction of unsigned to signed join (run against ``Q`` and ``-Q``,
keep pairs clearing the absolute threshold).

Both are now thin shims over the unified engine
(:func:`repro.engine.join`): the ``algorithm`` names map onto registered
engine backends (``exact`` → ``brute_force``, ``lsh`` → ``lsh``,
``sketch`` → ``sketch``), while ``via-signed`` composes two engine calls
and stays here — it is a *reduction*, not a backend.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily
from repro.utils.rng import SeedLike

#: Legacy ``algorithm=`` names and the engine backend each maps to.
ALGORITHM_BACKENDS = {
    "exact": "brute_force",
    "lsh": "lsh",
    "sketch": "sketch",
}


def _engine_call(P, Q, spec, algorithm, family, seed, **kwargs) -> JoinResult:
    from repro.engine.api import join as engine_join

    backend = ALGORITHM_BACKENDS[algorithm]
    if algorithm == "lsh":
        if family is None and "index" not in kwargs:
            raise ParameterError("algorithm='lsh' requires a hash family")
        kwargs = dict(kwargs, family=family)
    return engine_join(P, Q, spec, backend=backend, seed=seed, **kwargs)


def signed_join(
    P,
    Q,
    s: float,
    c: float = 1.0,
    algorithm: str = "exact",
    family: Optional[AsymmetricLSHFamily] = None,
    seed: SeedLike = None,
    **kwargs,
) -> JoinResult:
    """Signed ``(cs, s)`` join with a selectable algorithm.

    Args:
        algorithm: ``"exact"`` (brute force) or ``"lsh"`` (requires
            ``family``).
        kwargs: forwarded to the selected engine backend.
    """
    spec = JoinSpec(s=s, c=c, signed=True)
    if algorithm not in ("exact", "lsh"):
        raise ParameterError(f"unknown signed join algorithm {algorithm!r}")
    return _engine_call(P, Q, spec, algorithm, family, seed, **kwargs)


def unsigned_join(
    P,
    Q,
    s: float,
    c: float = 1.0,
    algorithm: str = "exact",
    family: Optional[AsymmetricLSHFamily] = None,
    seed: SeedLike = None,
    **kwargs,
) -> JoinResult:
    """Unsigned ``(cs, s)`` join with a selectable algorithm.

    Args:
        algorithm: ``"exact"``, ``"lsh"``, ``"sketch"`` (Section 4.3;
            ignores ``c`` and uses the structure's own ``n^{-1/kappa}``),
            or ``"via-signed"`` (the paper's reduction: signed join
            against ``Q`` and ``-Q``).
    """
    spec = JoinSpec(s=s, c=c, signed=False)
    if algorithm == "via-signed":
        return _unsigned_via_signed(P, Q, spec, family=family, seed=seed, **kwargs)
    if algorithm == "sketch":
        from repro.core.sketch_join import sketch_unsigned_join

        return sketch_unsigned_join(P, Q, s, seed=seed, **kwargs)
    if algorithm not in ("exact", "lsh"):
        raise ParameterError(f"unknown unsigned join algorithm {algorithm!r}")
    return _engine_call(P, Q, spec, algorithm, family, seed, **kwargs)


def _unsigned_via_signed(
    P,
    Q,
    spec: JoinSpec,
    family: Optional[AsymmetricLSHFamily] = None,
    seed: SeedLike = None,
    **kwargs,
) -> JoinResult:
    """Unsigned join by two signed joins: against ``Q`` and against ``-Q``.

    The observation from the paper's problem-definition section: a pair
    with ``|p.q| >= cs`` either has ``p.q >= cs`` or ``p.(-q) >= cs``.
    Uses brute force when no family is given, LSH otherwise, and merges
    the two signed results keeping the better verified value per query.
    """
    P, Q = validate_join_inputs(P, Q)
    signed_spec = JoinSpec(s=spec.s, c=spec.c, signed=True)
    algorithm = "exact" if family is None else "lsh"

    def run(queries):
        return _engine_call(
            P, queries, signed_spec, algorithm, family, seed, **kwargs
        )

    positive = run(Q)
    negative = run(-Q)
    matches = []
    for i in range(Q.shape[0]):
        best = None
        best_value = -np.inf
        for result, sign in ((positive, 1.0), (negative, -1.0)):
            match = result.matches[i]
            if match is None:
                continue
            value = abs(float(P[match] @ Q[i]))
            if value >= spec.cs and value > best_value:
                best, best_value = match, value
        matches.append(best)
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=(
            positive.inner_products_evaluated + negative.inner_products_evaluated
        ),
        candidates_generated=(
            positive.candidates_generated + negative.candidates_generated
        ),
    )
