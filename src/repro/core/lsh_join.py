"""LSH-driven ``(cs, s)`` join: filter with an index, verify exactly.

:func:`lsh_filter_verify_chunk` is THE LSH join inner loop — candidate
generation through the index's fastest API
(:func:`repro.lsh.index.block_candidates`) and verification through the
one-GEMM-per-block kernel in :mod:`repro.core.verify`, one query block
at a time.  The serial engine path, every parallel worker, and the
legacy entry points all execute this exact function, which is what makes
results bit-identical across call paths and worker counts.

:func:`lsh_join` is the legacy entry point, now a thin shim over the
unified engine (:func:`repro.engine.join` with ``backend="lsh"``).  An
index may be reused across calls: the chunk snapshots the index's
:class:`~repro.core.problems.QueryStats` counters and reports only this
call's delta, so ``candidates_generated`` never over-counts on reuse.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.problems import JoinResult, JoinSpec, QueryStats
from repro.core.verify import DEFAULT_BLOCK, verify_block
from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily
from repro.lsh.index import block_candidates
from repro.obs.trace import span
from repro.utils.rng import SeedLike


def lsh_filter_verify_chunk(
    index,
    P,
    Q_chunk,
    signed: bool,
    cs: float,
    n_probes: int,
    block: int,
) -> Tuple[List[Optional[int]], int, int, QueryStats]:
    """Run the filter+verify loop over one contiguous query chunk.

    Returns ``(matches, inner_products_evaluated, candidates_generated,
    stats_delta)`` where ``stats_delta`` is this chunk's contribution to
    the index's :class:`~repro.core.problems.QueryStats` (so reused
    indexes never over-count).
    """
    if block < 1:
        raise ParameterError(f"block must be >= 1, got {block}")
    before = index.stats.copy()
    matches: List[Optional[int]] = []
    verified = 0
    for q0 in range(0, Q_chunk.shape[0], block):
        Q_block = Q_chunk[q0:q0 + block]
        with span("candidates", n_queries=Q_block.shape[0]):
            cand_lists = block_candidates(index, Q_block, n_probes)
        with span("verify"):
            result = verify_block(P, Q_block, cand_lists, signed=signed)
        verified += result.n_evaluated
        matches.extend(
            int(idx) if idx >= 0 and score >= cs else None
            for idx, score in zip(result.best_index, result.best_score)
        )
    delta = index.stats.diff(before)
    return matches, verified, delta.candidates, delta


def lsh_join(
    P,
    Q,
    spec: JoinSpec,
    family: Optional[AsymmetricLSHFamily],
    n_tables: int = 16,
    hashes_per_table: int = 4,
    seed: SeedLike = None,
    index=None,
    n_probes: int = 0,
    block: int = DEFAULT_BLOCK,
) -> JoinResult:
    """Approximate join through an LSH index (engine shim).

    Args:
        P, Q: data and query matrices.
        spec: the ``(cs, s)`` parameters; candidates are verified against
            ``spec.cs`` exactly.
        family: the (A)LSH family to index with; must match the data
            domain (e.g. :class:`~repro.lsh.datadep.DataDepALSH` for
            unit-ball data).  Ignored (may be ``None``) when ``index``
            is given.
        n_tables / hashes_per_table / seed: index shape.
        index: optionally a pre-built index over ``P`` (reused across
            specs); when given, the other index parameters are ignored.
            Anything exposing ``candidates_batch(Q)`` or ``candidates(q)``
            works (:class:`~repro.lsh.index.LSHIndex`,
            :class:`~repro.lsh.batch.BatchSignIndex`).
        n_probes: multiprobe width per table, forwarded to indexes that
            support it (:class:`~repro.lsh.batch.BatchSignIndex`).
        block: query block size for candidate generation + verification.
    """
    from repro.engine.api import join as engine_join

    return engine_join(
        P,
        Q,
        spec,
        backend="lsh",
        seed=seed,
        block=block,
        family=family,
        index=index,
        n_tables=n_tables,
        hashes_per_table=hashes_per_table,
        n_probes=n_probes,
    )
