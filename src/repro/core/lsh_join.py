"""LSH-driven ``(cs, s)`` join: filter with an index, verify exactly.

Builds a multi-table :class:`repro.lsh.index.LSHIndex` over the data set
with a caller-chosen (A)LSH family and answers each query from its
candidate set.  Work is measured in exact inner products evaluated — the
quantity whose subquadratic growth the paper's upper bounds promise and
its lower bounds constrain.

Both the filter and verify stages run block-at-a-time: candidate
generation goes through the index's ``candidates_batch`` (array-native
for :class:`~repro.lsh.batch.BatchSignIndex`'s CSR tables) and
verification through the one-GEMM-per-block kernel in
:mod:`repro.core.verify`.  An index may be reused across calls: the join
snapshots the index's :class:`~repro.lsh.index.QueryStats` counters and
reports only this call's delta, so ``candidates_generated`` never
over-counts on reuse.
"""

from __future__ import annotations

from typing import Optional

from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.core.verify import DEFAULT_BLOCK, verify_block
from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily
from repro.lsh.index import LSHIndex
from repro.utils.rng import SeedLike


def lsh_join(
    P,
    Q,
    spec: JoinSpec,
    family: Optional[AsymmetricLSHFamily],
    n_tables: int = 16,
    hashes_per_table: int = 4,
    seed: SeedLike = None,
    index=None,
    n_probes: int = 0,
    block: int = DEFAULT_BLOCK,
) -> JoinResult:
    """Approximate join through an LSH index.

    Args:
        P, Q: data and query matrices.
        spec: the ``(cs, s)`` parameters; candidates are verified against
            ``spec.cs`` exactly.
        family: the (A)LSH family to index with; must match the data
            domain (e.g. :class:`~repro.lsh.datadep.DataDepALSH` for
            unit-ball data).  Ignored (may be ``None``) when ``index``
            is given.
        n_tables / hashes_per_table / seed: index shape.
        index: optionally a pre-built index over ``P`` (reused across
            specs); when given, the other index parameters are ignored.
            Anything exposing ``candidates_batch(Q)`` or ``candidates(q)``
            works (:class:`~repro.lsh.index.LSHIndex`,
            :class:`~repro.lsh.batch.BatchSignIndex`).
        n_probes: multiprobe width per table, forwarded to indexes that
            support it (:class:`~repro.lsh.batch.BatchSignIndex`).
        block: query block size for candidate generation + verification.
    """
    P, Q = validate_join_inputs(P, Q)
    if block < 1:
        raise ParameterError(f"block must be >= 1, got {block}")
    if index is None:
        if family is None:
            raise ParameterError("either an index or a family is required")
        index = LSHIndex(
            family,
            n_tables=n_tables,
            hashes_per_table=hashes_per_table,
            seed=seed,
        ).build(P)
    candidates_before = index.stats.candidates
    supports_probes = _supports_multiprobe(index)
    if n_probes and not supports_probes:
        raise ParameterError(
            f"index {type(index).__name__} does not support multiprobe "
            f"(n_probes={n_probes})"
        )
    matches = []
    verified = 0
    for q0 in range(0, Q.shape[0], block):
        Q_block = Q[q0:q0 + block]
        cand_lists = _block_candidates(index, Q_block, n_probes, supports_probes)
        result = verify_block(P, Q_block, cand_lists, signed=spec.signed)
        verified += result.n_evaluated
        matches.extend(
            int(idx) if idx >= 0 and score >= spec.cs else None
            for idx, score in zip(result.best_index, result.best_score)
        )
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=verified,
        candidates_generated=index.stats.candidates - candidates_before,
    )


def _supports_multiprobe(index) -> bool:
    return hasattr(index, "bits_per_table")


def _block_candidates(index, Q_block, n_probes: int, supports_probes: bool):
    """Candidate lists for a block via the fastest API the index offers."""
    if hasattr(index, "candidates_batch"):
        if supports_probes:
            return index.candidates_batch(Q_block, n_probes=n_probes)
        return index.candidates_batch(Q_block)
    return [index.candidates(Q_block[qi]) for qi in range(Q_block.shape[0])]
