"""LSH-driven ``(cs, s)`` join: filter with an index, verify exactly.

Builds a multi-table :class:`repro.lsh.index.LSHIndex` over the data set
with a caller-chosen (A)LSH family and answers each query from its
candidate set.  Work is measured in exact inner products evaluated — the
quantity whose subquadratic growth the paper's upper bounds promise and
its lower bounds constrain.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.lsh.base import AsymmetricLSHFamily
from repro.lsh.index import LSHIndex
from repro.utils.rng import SeedLike


def lsh_join(
    P,
    Q,
    spec: JoinSpec,
    family: AsymmetricLSHFamily,
    n_tables: int = 16,
    hashes_per_table: int = 4,
    seed: SeedLike = None,
    index: Optional[LSHIndex] = None,
) -> JoinResult:
    """Approximate join through an LSH index.

    Args:
        P, Q: data and query matrices.
        spec: the ``(cs, s)`` parameters; candidates are verified against
            ``spec.cs`` exactly.
        family: the (A)LSH family to index with; must match the data
            domain (e.g. :class:`~repro.lsh.datadep.DataDepALSH` for
            unit-ball data).
        n_tables / hashes_per_table / seed: index shape.
        index: optionally a pre-built index over ``P`` (reused across
            specs); when given, the other index parameters are ignored.
    """
    P, Q = validate_join_inputs(P, Q)
    if index is None:
        index = LSHIndex(
            family,
            n_tables=n_tables,
            hashes_per_table=hashes_per_table,
            seed=seed,
        ).build(P)
    matches = []
    verified = 0
    for q in Q:
        candidates = index.candidates(q)
        verified += candidates.size
        if candidates.size == 0:
            matches.append(None)
            continue
        values = P[candidates] @ q
        scores = values if spec.signed else np.abs(values)
        best = int(np.argmax(scores))
        matches.append(int(candidates[best]) if scores[best] >= spec.cs else None)
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=verified,
        candidates_generated=index.stats.candidates,
    )
