"""Norm-pruned exact joins in the style of LEMP (Teflioudi et al. [50]).

The paper's motivating prior work on IPS join for recommender systems:
because ``p . q <= |p| |q|`` (Cauchy-Schwarz), a query with threshold
``t`` can only match data vectors with ``|p| >= t / |q|``.  Sorting the
data by decreasing norm turns that into a *prefix* scan, and a running
best value tightens the cutoff further for MIPS-style queries:
once ``best >= |p_i| |q|`` for the next vector in norm order, no later
vector can win.

On realistic (popularity-skewed) norm distributions the qualifying
prefix is a small fraction of the data — an *exact* subquadratic-in-
practice join, the kind of baseline the paper's theory explains the
limits of (in the worst case, when all norms are equal, it degrades to
the full scan).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.errors import ParameterError
from repro.utils.validation import check_matrix, check_vector


class NormScanIndex:
    """Data sorted by decreasing norm, with prefix-pruned exact queries."""

    def __init__(self, P):
        P = check_matrix(P, "P")
        self.norms_unsorted = np.linalg.norm(P, axis=1)
        self.order = np.argsort(-self.norms_unsorted, kind="stable")
        self.P_sorted = P[self.order]
        self.norms = self.norms_unsorted[self.order]
        self.n, self.d = P.shape

    def prefix_length(self, query_norm: float, threshold: float) -> int:
        """Vectors that could reach ``threshold`` against a query this long."""
        if threshold <= 0:
            return self.n
        if query_norm <= 0:
            return 0
        cutoff = threshold / query_norm
        # norms are descending; count entries >= cutoff.
        return int(np.searchsorted(-self.norms, -cutoff, side="right"))

    def query(self, q, threshold: float, signed: bool = True, block: int = 256):
        """Best data index with (absolute) inner product >= threshold.

        Returns ``(index, value, work)`` with ``index = None`` on a miss;
        ``work`` is the number of inner products evaluated.  Scans the
        norm-ordered prefix in blocks, tightening with the running best:
        scanning stops as soon as ``|p| |q|`` of the next block cannot
        beat the current best *and* the best already clears the
        threshold.
        """
        q = check_vector(q, "q")
        if q.size != self.d:
            raise ParameterError(f"expected query dimension {self.d}, got {q.size}")
        q_norm = float(np.linalg.norm(q))
        limit = self.prefix_length(q_norm, threshold)
        best_value = -np.inf
        best_index: Optional[int] = None
        work = 0
        for start in range(0, limit, block):
            stop = min(start + block, limit)
            # Upper bound for everything from `start` on.
            bound = self.norms[start] * q_norm
            if best_value >= threshold and best_value >= bound:
                break
            values = self.P_sorted[start:stop] @ q
            scores = values if signed else np.abs(values)
            work += stop - start
            local = int(np.argmax(scores))
            if scores[local] > best_value:
                best_value = float(scores[local])
                best_index = int(self.order[start + local])
        if best_index is None or best_value < threshold:
            return None, best_value, work
        return best_index, best_value, work


def norm_pruned_join(
    P,
    Q,
    spec: JoinSpec,
    block: int = 256,
) -> JoinResult:
    """Exact ``(cs, s)`` join with Cauchy-Schwarz norm pruning.

    Produces exactly the matches of :func:`repro.core.brute_force.
    brute_force_join` (same best-partner convention) while evaluating only
    the norm-qualified prefixes.
    """
    P, Q = validate_join_inputs(P, Q)
    index = NormScanIndex(P)
    matches: List[Optional[int]] = []
    work = 0
    for q in Q:
        found, _, evaluated = index.query(
            q, threshold=spec.cs, signed=spec.signed, block=block
        )
        work += evaluated
        matches.append(found)
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=work,
        candidates_generated=work,
    )
