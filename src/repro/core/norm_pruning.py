"""Norm-pruned exact joins in the style of LEMP (Teflioudi et al. [50]).

The paper's motivating prior work on IPS join for recommender systems:
because ``p . q <= |p| |q|`` (Cauchy-Schwarz), a query with threshold
``t`` can only match data vectors with ``|p| >= t / |q|``.  Sorting the
data by decreasing norm turns that into a *prefix* scan, and a running
best value tightens the cutoff further for MIPS-style queries:
once ``best >= |p_i| |q|`` for the next vector in norm order, no later
vector can win.

On realistic (popularity-skewed) norm distributions the qualifying
prefix is a small fraction of the data — an *exact* subquadratic-in-
practice join, the kind of baseline the paper's theory explains the
limits of (in the worst case, when all norms are equal, it degrades to
the full scan).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from typing import Tuple

from repro.core.problems import JoinResult, JoinSpec, QueryStats
from repro.core.verify import GEMM_ADVANTAGE
from repro.errors import ParameterError
from repro.obs.trace import span
from repro.utils.validation import check_matrix, check_vector


class NormScanIndex:
    """Data sorted by decreasing norm, with prefix-pruned exact queries."""

    def __init__(self, P):
        P = check_matrix(P, "P")
        self.norms_unsorted = np.linalg.norm(P, axis=1)
        self.order = np.argsort(-self.norms_unsorted, kind="stable")
        self.P_sorted = P[self.order]
        self.norms = self.norms_unsorted[self.order]
        self.n, self.d = P.shape

    def prefix_length(self, query_norm: float, threshold: float) -> int:
        """Vectors that could reach ``threshold`` against a query this long."""
        if threshold <= 0:
            return self.n
        if query_norm <= 0:
            return 0
        cutoff = threshold / query_norm
        # norms are descending; count entries >= cutoff.
        return int(np.searchsorted(-self.norms, -cutoff, side="right"))

    def query(self, q, threshold: float, signed: bool = True, block: int = 256):
        """Best data index with (absolute) inner product >= threshold.

        Returns ``(index, value, work)`` with ``index = None`` on a miss;
        ``work`` is the number of inner products evaluated.  Scans the
        norm-ordered prefix in blocks, tightening with the running best:
        scanning stops as soon as ``|p| |q|`` of the next block cannot
        beat the current best *and* the best already clears the
        threshold.
        """
        q = check_vector(q, "q")
        if q.size != self.d:
            raise ParameterError(f"expected query dimension {self.d}, got {q.size}")
        q_norm = float(np.linalg.norm(q))
        limit = self.prefix_length(q_norm, threshold)
        best_value = -np.inf
        best_index: Optional[int] = None
        work = 0
        for start in range(0, limit, block):
            stop = min(start + block, limit)
            # Upper bound for everything from `start` on.
            bound = self.norms[start] * q_norm
            if best_value >= threshold and best_value >= bound:
                break
            values = self.P_sorted[start:stop] @ q
            scores = values if signed else np.abs(values)
            work += stop - start
            local = int(np.argmax(scores))
            if scores[local] > best_value:
                best_value = float(scores[local])
                best_index = int(self.order[start + local])
        if best_index is None or best_value < threshold:
            return None, best_value, work
        return best_index, best_value, work

    def query_block(
        self, Q_block, threshold: float, signed: bool = True, block: int = 256
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`query` over the rows of ``Q_block``.

        Returns ``(indices, values, work)`` arrays; ``indices[i]`` is
        ``-1`` on a miss.  Walks the norm-ordered data in the same
        ``block``-sized prefix steps as the scalar scan, evaluating each
        step as one GEMM over the still-active queries (falling back to
        per-query GEMVs when per-query prefix limits make the shared GEMM
        waste arithmetic, the :mod:`repro.core.verify` cost test).  A
        query leaves the active set exactly when the scalar scan would
        have stopped, so per-query work counts are preserved.
        """
        Q_block = check_matrix(Q_block, "Q", allow_empty=True)
        b = Q_block.shape[0]
        if b and Q_block.shape[1] != self.d:
            raise ParameterError(
                f"expected query dimension {self.d}, got {Q_block.shape[1]}"
            )
        best_values = np.full(b, -np.inf)
        best_indices = np.full(b, -1, dtype=np.int64)
        work = np.zeros(b, dtype=np.int64)
        if b == 0:
            return best_indices, best_values, work
        q_norms = np.linalg.norm(Q_block, axis=1)
        limits = np.array(
            [self.prefix_length(float(qn), threshold) for qn in q_norms],
            dtype=np.int64,
        )
        active = limits > 0
        start = 0
        max_limit = int(limits.max())
        while start < max_limit and active.any():
            stop = min(start + block, max_limit)
            # The scalar scan checks its stopping rule *before* this step.
            bound = self.norms[start] * q_norms
            active &= ~((best_values >= threshold) & (best_values >= bound))
            active &= limits > start
            qidx = np.flatnonzero(active)
            if qidx.size == 0:
                start = stop
                continue
            stops = np.minimum(limits[qidx], stop)
            evaluated = int((stops - start).sum())
            work[qidx] += stops - start
            if (stop - start) * qidx.size <= GEMM_ADVANTAGE * evaluated:
                values = self.P_sorted[start:stop] @ Q_block[qidx].T
                scores = values if signed else np.abs(values)
                # Rows past a query's own prefix limit were never part of
                # its scalar scan; mask them out of the argmax.
                rows = np.arange(start, stop)[:, None]
                scores = np.where(rows < stops[None, :], scores, -np.inf)
                local = np.argmax(scores, axis=0)
                local_scores = scores[local, np.arange(qidx.size)]
            else:
                local = np.empty(qidx.size, dtype=np.int64)
                local_scores = np.empty(qidx.size)
                for pos, (qi, q_stop) in enumerate(zip(qidx, stops)):
                    vals = self.P_sorted[start:q_stop] @ Q_block[qi]
                    sc = vals if signed else np.abs(vals)
                    local[pos] = int(np.argmax(sc))
                    local_scores[pos] = sc[local[pos]]
            better = local_scores > best_values[qidx]
            upd = qidx[better]
            best_values[upd] = local_scores[better]
            best_indices[upd] = self.order[start + local[better]]
            start = stop
        misses = best_values < threshold
        best_indices[misses] = -1
        return best_indices, best_values, work

    def _collect_topk(self, buf, scores, start: int, threshold: float, k: int):
        """Merge one prefix step's above-threshold scores into a top-k buffer.

        ``buf`` holds ``(score, global_index)`` pairs ranked by
        ``(-score, index)`` — the deterministic tie order the top-k scan
        reports — and is kept truncated to ``k``.
        """
        for local in np.flatnonzero(scores >= threshold):
            buf.append((float(scores[local]), int(self.order[start + local])))
        buf.sort(key=lambda entry: (-entry[0], entry[1]))
        del buf[k:]

    def topk_block(
        self,
        Q_block,
        threshold: float,
        k: int,
        signed: bool = True,
        block: int = 256,
    ) -> Tuple[List[List[int]], np.ndarray]:
        """Top-k-above-threshold lists for the rows of ``Q_block``.

        The LEMP-style extension of :meth:`query_block`: the same
        norm-ordered prefix walk, but each query keeps its ``k`` best
        above-``threshold`` scores instead of a single champion.  A query
        leaves the active set once its k-th best score reaches the
        ``|p| |q|`` bound of the next prefix step — no later vector can
        then displace any of its current top k.  Ties rank by
        ``(-score, index)``.  Returns ``(topk_lists, work)``.
        """
        Q_block = check_matrix(Q_block, "Q", allow_empty=True)
        b = Q_block.shape[0]
        if b and Q_block.shape[1] != self.d:
            raise ParameterError(
                f"expected query dimension {self.d}, got {Q_block.shape[1]}"
            )
        work = np.zeros(b, dtype=np.int64)
        buffers: List[List[Tuple[float, int]]] = [[] for _ in range(b)]
        if b == 0:
            return [], work
        # k-th best collected score per query; -inf until k entries clear
        # the threshold, so the stop rule below cannot fire early.
        kth_best = np.full(b, -np.inf)
        q_norms = np.linalg.norm(Q_block, axis=1)
        limits = np.array(
            [self.prefix_length(float(qn), threshold) for qn in q_norms],
            dtype=np.int64,
        )
        active = limits > 0
        start = 0
        max_limit = int(limits.max())
        while start < max_limit and active.any():
            stop = min(start + block, max_limit)
            bound = self.norms[start] * q_norms
            active &= ~(kth_best >= bound)
            active &= limits > start
            qidx = np.flatnonzero(active)
            if qidx.size == 0:
                start = stop
                continue
            stops = np.minimum(limits[qidx], stop)
            evaluated = int((stops - start).sum())
            work[qidx] += stops - start
            if (stop - start) * qidx.size <= GEMM_ADVANTAGE * evaluated:
                values = self.P_sorted[start:stop] @ Q_block[qidx].T
                scores = values if signed else np.abs(values)
                rows = np.arange(start, stop)[:, None]
                scores = np.where(rows < stops[None, :], scores, -np.inf)
                for pos, qi in enumerate(qidx):
                    self._collect_topk(
                        buffers[qi], scores[:, pos], start, threshold, k
                    )
            else:
                for qi, q_stop in zip(qidx, stops):
                    vals = self.P_sorted[start:q_stop] @ Q_block[qi]
                    sc = vals if signed else np.abs(vals)
                    self._collect_topk(buffers[qi], sc, start, threshold, k)
            for qi in qidx:
                if len(buffers[qi]) == k:
                    kth_best[qi] = buffers[qi][-1][0]
            start = stop
        lists = [[gidx for _, gidx in buf] for buf in buffers]
        return lists, work


def norm_scan_topk_chunk(
    index: NormScanIndex,
    Q_chunk,
    signed: bool,
    cs: float,
    k: int,
    scan_block: int,
    block: int,
) -> Tuple[List[List[int]], int, int, QueryStats]:
    """Prefix-pruned exact top-k over one contiguous query chunk.

    Returns ``(topk_lists, inner_products_evaluated,
    candidates_generated, stats)`` — the same tuple shape as
    :func:`repro.core.topk.topk_chunk`, and the same lists on tie-free
    data, evaluating only the norm-qualified prefixes.  Chunk boundaries
    must align to ``block`` multiples (the executor's contract), for the
    same GEMM/GEMV cost-test reason as :func:`norm_scan_chunk`.
    """
    out: List[List[int]] = []
    work = 0
    for q0 in range(0, Q_chunk.shape[0], block):
        with span("scan", n_queries=min(block, Q_chunk.shape[0] - q0)):
            lists, evaluated = index.topk_block(
                Q_chunk[q0:q0 + block],
                threshold=cs,
                k=k,
                signed=signed,
                block=scan_block,
            )
        work += int(evaluated.sum())
        out.extend(lists)
    stats = QueryStats(
        queries=len(out), candidates=work, unique_candidates=work
    )
    return out, work, work, stats


def norm_scan_chunk(
    index: NormScanIndex,
    Q_chunk,
    signed: bool,
    cs: float,
    scan_block: int,
    block: int,
) -> Tuple[List[Optional[int]], int, int, QueryStats]:
    """Prefix-pruned exact scan over one contiguous query chunk.

    Returns ``(matches, inner_products_evaluated, candidates_generated,
    stats)``.  ``block`` groups queries into the shared-GEMM batches of
    :meth:`NormScanIndex.query_block`; ``scan_block`` is the prefix step
    along the norm-sorted data.  Because the GEMM/GEMV cost test inside
    ``query_block`` depends on which queries share a batch, chunk
    boundaries must align to ``block`` multiples for results to be
    independent of chunking — the same contract the executor enforces.
    """
    matches: List[Optional[int]] = []
    work = 0
    for q0 in range(0, Q_chunk.shape[0], block):
        with span("scan", n_queries=min(block, Q_chunk.shape[0] - q0)):
            indices, _, evaluated = index.query_block(
                Q_chunk[q0:q0 + block],
                threshold=cs,
                signed=signed,
                block=scan_block,
            )
        work += int(evaluated.sum())
        matches.extend(int(i) if i >= 0 else None for i in indices)
    stats = QueryStats(
        queries=len(matches), candidates=work, unique_candidates=work
    )
    return matches, work, work, stats


def norm_pruned_join(
    P,
    Q,
    spec: JoinSpec,
    block: int = 256,
    query_block: int = 256,
) -> JoinResult:
    """Exact ``(cs, s)`` join with Cauchy-Schwarz norm pruning.

    Produces exactly the matches of :func:`repro.core.brute_force.
    brute_force_join` (same best-partner convention) while evaluating only
    the norm-qualified prefixes.  A thin shim over the unified engine
    (``backend="norm_pruned"``): queries are processed ``query_block`` at
    a time through :meth:`NormScanIndex.query_block`, turning the
    per-query GEMV stream into shared prefix GEMMs without changing
    matches or work counts.
    """
    from repro.engine.api import join as engine_join

    return engine_join(
        P, Q, spec, backend="norm_pruned", block=query_block, scan_block=block
    )
