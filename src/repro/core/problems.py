"""Problem and result records for IPS joins (paper Definition 1).

A ``(cs, s)`` join returns, for each query ``q``, at least one data
vector ``p`` with ``p . q >= cs`` (``|p . q| >= cs`` unsigned) whenever
some data vector reaches ``s``; queries with no above-``s`` partner carry
no guarantee.  ``JoinResult`` keeps one matched index (or ``None``) per
query plus work statistics so benches can compare algorithms on both
answers and effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ParameterError
from repro.utils.validation import (
    check_approximation_factor,
    check_matrix,
    check_threshold,
)


@dataclass(frozen=True)
class JoinSpec:
    """Parameters of a ``(cs, s)`` join instance.

    ``c = 1`` (exact) is permitted; approximate joins need ``0 < c < 1``.
    """

    s: float
    c: float = 1.0
    signed: bool = True

    def __post_init__(self):
        check_threshold(self.s, "s")
        if self.c != 1.0:
            check_approximation_factor(self.c, "c")

    @property
    def cs(self) -> float:
        return self.c * self.s

    def satisfied(self, value: float) -> bool:
        """Does an inner-product value clear the relaxed threshold ``cs``?"""
        return (value if self.signed else abs(value)) >= self.cs

    def above_promise(self, value: float) -> bool:
        """Does a value clear the full threshold ``s`` (the promise side)?"""
        return (value if self.signed else abs(value)) >= self.s


@dataclass
class JoinResult:
    """Output of a join algorithm.

    Attributes:
        matches: ``matches[i]`` is a data index for query ``i`` or ``None``.
        spec: the join parameters answered.
        inner_products_evaluated: exact dot products computed (the work
            measure the subquadratic claims concern).
        candidates_generated: candidate pairs produced before verification
            (equals ``inner_products_evaluated`` for filter-verify
            algorithms, ``n*m`` for brute force).
    """

    matches: List[Optional[int]]
    spec: JoinSpec
    inner_products_evaluated: int = 0
    candidates_generated: int = 0

    @property
    def matched_count(self) -> int:
        return sum(1 for match in self.matches if match is not None)

    def recall_against(self, reference: "JoinResult") -> float:
        """Fraction of reference-matched queries this result also matched.

        Both results must answer the same spec; matching a *different*
        data vector still counts (any above-``cs`` partner is a valid
        answer under Definition 1).
        """
        if len(self.matches) != len(reference.matches):
            raise ParameterError("results answer different query counts")
        hits = 0
        total = 0
        for mine, theirs in zip(self.matches, reference.matches):
            if theirs is None:
                continue
            total += 1
            if mine is not None:
                hits += 1
        return hits / total if total else 1.0


@dataclass(frozen=True)
class MIPSResult:
    """Output of a MIPS query: best index found and its inner product."""

    index: int
    value: float


def validate_join_inputs(P, Q) -> tuple:
    """Common input validation for join algorithms."""
    P = check_matrix(P, "P")
    Q = check_matrix(Q, "Q")
    if P.shape[1] != Q.shape[1]:
        raise ParameterError(
            f"P and Q must share a dimension, got {P.shape[1]} and {Q.shape[1]}"
        )
    return P, Q
