"""Problem and result records for IPS joins (paper Definition 1).

A ``(cs, s)`` join returns, for each query ``q``, at least one data
vector ``p`` with ``p . q >= cs`` (``|p . q| >= cs`` unsigned) whenever
some data vector reaches ``s``; queries with no above-``s`` partner carry
no guarantee.  ``JoinResult`` keeps one matched index (or ``None``) per
query plus work statistics so benches can compare algorithms on both
answers and effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Iterable, List, Optional

import numpy as np

from repro.errors import ParameterError
from repro.utils.validation import (
    check_approximation_factor,
    check_matrix,
    check_threshold,
)


@dataclass
class QueryStats:
    """Unified work accounting shared by every join backend and index.

    ``candidates`` counts every candidate pair inspected (with
    multiplicity across LSH tables; for exhaustive backends it equals the
    pairs scanned); ``unique_candidates`` counts them after per-query
    deduplication.  When multiprobe is used, ``probe_candidates`` and
    ``probed_buckets`` attribute the members and non-empty buckets that
    came from *probed* (bit-flipped) keys rather than exact keys, so
    ablation benches can report probe efficiency separately.

    Counters form a commutative monoid under :meth:`merge` (field-wise
    sum, identity ``QueryStats()``), which is the ONE way chunk- and
    worker-level stats combine: the engine merges per-chunk deltas in
    query order, so serial and parallel runs report identical totals.
    """

    queries: int = 0
    candidates: int = 0
    unique_candidates: int = 0
    probe_candidates: int = 0
    probed_buckets: int = 0

    def record(
        self,
        n_candidates: int,
        n_unique: int,
        n_probe_candidates: int = 0,
        n_probed_buckets: int = 0,
    ) -> None:
        self.queries += 1
        self.candidates += n_candidates
        self.unique_candidates += n_unique
        self.probe_candidates += n_probe_candidates
        self.probed_buckets += n_probed_buckets

    def record_batch(
        self,
        n_queries: int,
        n_candidates: int,
        n_unique: int,
        n_probe_candidates: int = 0,
        n_probed_buckets: int = 0,
    ) -> None:
        """Accumulate one whole query block's worth of counts at once."""
        self.queries += int(n_queries)
        self.candidates += int(n_candidates)
        self.unique_candidates += int(n_unique)
        self.probe_candidates += int(n_probe_candidates)
        self.probed_buckets += int(n_probed_buckets)

    def reset(self) -> None:
        """Zero all counters (an index reused across joins starts fresh)."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def copy(self) -> "QueryStats":
        """Snapshot of the current counters."""
        return replace(self)

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Field-wise sum as a NEW ``QueryStats``; neither operand changes.

        This is the single merge implementation every backend and the
        parallel executor use; being a field-wise sum it is associative
        and commutative, so chunk order and worker count cannot change
        engine-level stats.
        """
        return QueryStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def diff(self, earlier: "QueryStats") -> "QueryStats":
        """Field-wise ``self - earlier``: the delta since a snapshot."""
        return QueryStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    @staticmethod
    def merge_all(parts: Iterable["QueryStats"]) -> "QueryStats":
        """Merge any number of stats (skipping ``None``) into one total."""
        total = QueryStats()
        for part in parts:
            if part is not None:
                total = total.merge(part)
        return total

    @property
    def candidates_per_query(self) -> float:
        return self.candidates / self.queries if self.queries else 0.0

    @property
    def probe_fraction(self) -> float:
        """Fraction of inspected candidates that multiprobe contributed."""
        return self.probe_candidates / self.candidates if self.candidates else 0.0


@dataclass(frozen=True)
class JoinSpec:
    """Parameters of a ``(cs, s)`` join instance.

    ``c = 1`` (exact) is permitted; approximate joins need ``0 < c < 1``.

    Beyond the paper's base problem the spec carries the engine-level
    variants (one record describes the *whole* task, so a single
    dispatch path can answer all of them):

    * ``k``: when set, the top-``k`` variant of footnote 1 — return up
      to ``k`` above-``cs`` partners per query instead of one.
    * ``self_join``: the set is joined with itself; identity pairs are
      excluded, and ``match_duplicates`` controls whether rows *equal*
      to the query row (at distinct indices) count as partners
      (Section 4.2's identical-pair caveat).
    """

    s: float
    c: float = 1.0
    signed: bool = True
    k: Optional[int] = None
    self_join: bool = False
    match_duplicates: bool = True
    measure: str = "ip"

    def __post_init__(self):
        check_threshold(self.s, "s")
        if self.c != 1.0:
            check_approximation_factor(self.c, "c")
        if self.k is not None and self.k < 1:
            raise ParameterError(f"k must be >= 1, got {self.k}")
        if self.k is not None and self.self_join:
            raise ParameterError("top-k self-joins are not supported")
        if self.measure != "ip":
            # Measure-specific threshold semantics live in the measure
            # descriptor (repro.engine.measures); the spec only enforces
            # what must hold regardless of engine dispatch.
            if self.measure == "jaccard":
                if not 0.0 < self.s <= 1.0:
                    raise ParameterError(
                        f"jaccard threshold s must be in (0, 1], got {self.s}"
                    )
                if not self.signed:
                    raise ParameterError(
                        "jaccard similarity is nonnegative; signed=False "
                        "has no meaning for measure='jaccard'"
                    )
            elif not isinstance(self.measure, str) or not self.measure:
                raise ParameterError(
                    f"measure must be a non-empty string, got {self.measure!r}"
                )

    @property
    def cs(self) -> float:
        return self.c * self.s

    @property
    def is_topk(self) -> bool:
        return self.k is not None

    @property
    def is_self(self) -> bool:
        return self.self_join

    @property
    def variant(self) -> str:
        """``"join"``, ``"topk"`` or ``"self"`` — the dispatch mode."""
        if self.is_topk:
            return "topk"
        if self.is_self:
            return "self"
        return "join"

    def satisfied(self, value: float) -> bool:
        """Does an inner-product value clear the relaxed threshold ``cs``?"""
        return (value if self.signed else abs(value)) >= self.cs

    def above_promise(self, value: float) -> bool:
        """Does a value clear the full threshold ``s`` (the promise side)?"""
        return (value if self.signed else abs(value)) >= self.s


@dataclass
class JoinResult:
    """Output of a join algorithm.

    Attributes:
        matches: ``matches[i]`` is a data index for query ``i`` or ``None``.
        spec: the join parameters answered.
        inner_products_evaluated: exact dot products computed (the work
            measure the subquadratic claims concern).
        candidates_generated: candidate pairs produced before verification
            (equals ``inner_products_evaluated`` for filter-verify
            algorithms, ``n*m`` for brute force).
        topk: for ``spec.k`` tasks, ``topk[i]`` is the ranked list of up
            to ``k`` above-``cs`` partners of query ``i`` (``matches[i]``
            is then its first entry or ``None``); ``None`` otherwise.
        backend: name of the engine backend that produced the result
            (``None`` for results built outside the engine).
        stats: unified per-backend :class:`QueryStats`, merged across
            chunks/workers with :meth:`QueryStats.merge`.
        trace: when the engine ran with ``trace=True``, the root
            :class:`~repro.obs.trace.Span` of the join's span tree
            (planner / prepare / per-chunk / merge); ``None`` otherwise.
        metrics: when the engine ran with ``trace=True``, the join's
            :class:`~repro.obs.metrics.MetricsRegistry` (worker
            snapshots merged in chunk order, ``QueryStats`` folded in);
            ``None`` otherwise.
        wall_s: wall-clock seconds of the engine dispatch (always
            recorded; feeds :class:`~repro.obs.planner_log.PlannerLog`).
        error_bound: guaranteed-recall knob of the compact tier — the
            largest additive inner-product slack any candidate filter
            granted while producing this result (the quantized scan's
            analytic error bound, or the sketch filter's confidence
            margin).  ``None`` for backends that never approximate a
            score before verification.
    """

    matches: List[Optional[int]]
    spec: JoinSpec
    inner_products_evaluated: int = 0
    candidates_generated: int = 0
    topk: Optional[List[List[int]]] = None
    backend: Optional[str] = None
    stats: Optional[QueryStats] = None
    trace: Optional[object] = None
    metrics: Optional[object] = None
    wall_s: float = 0.0
    error_bound: Optional[float] = None

    @property
    def matched_count(self) -> int:
        return sum(1 for match in self.matches if match is not None)

    def recall_against(self, reference: "JoinResult") -> float:
        """Fraction of reference-matched queries this result also matched.

        Both results must answer the same spec; matching a *different*
        data vector still counts (any above-``cs`` partner is a valid
        answer under Definition 1).
        """
        if len(self.matches) != len(reference.matches):
            raise ParameterError("results answer different query counts")
        hits = 0
        total = 0
        for mine, theirs in zip(self.matches, reference.matches):
            if theirs is None:
                continue
            total += 1
            if mine is not None:
                hits += 1
        return hits / total if total else 1.0


@dataclass(frozen=True)
class MIPSResult:
    """Output of a MIPS query: best index found and its inner product."""

    index: int
    value: float


def validate_join_inputs(P, Q) -> tuple:
    """Common input validation for join algorithms."""
    P = check_matrix(P, "P")
    Q = check_matrix(Q, "Q")
    if P.shape[1] != Q.shape[1]:
        raise ParameterError(
            f"P and Q must share a dimension, got {P.shape[1]} and {Q.shape[1]}"
        )
    return P, Q
