"""The c-MIPS <-> (cs, s)-search reductions noted in Section 4.3.

Given a data structure ``D`` for unsigned ``(cs, s)`` search and the
promise that the best |inner product| is at least ``gamma``, unsigned
c-MIPS is solved by querying ``D`` with the scaled queries ``q / c^i``
for ``i = 0 .. ceil(log_{1/c}(s / gamma))``: scaling the query up scales
every inner product up, so the first scale at which the structure answers
pins the maximum within a factor ``c``.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.core.problems import MIPSResult
from repro.errors import ParameterError
from repro.utils.validation import check_vector

# A (cs, s)-search oracle: (query, s) -> data index or None.
SearchOracle = Callable[[np.ndarray, float], Optional[int]]


def cmips_via_search(
    search: SearchOracle,
    q,
    s: float,
    c: float,
    gamma: float,
    data=None,
) -> Optional[MIPSResult]:
    """Solve unsigned c-MIPS through a ``(cs, s)`` search oracle.

    Args:
        search: the oracle; must return an index with ``|p.q'| >= c s``
            whenever some data vector has ``|p.q'| >= s`` for the query
            ``q'`` it is given.
        q: the MIPS query.
        s: the oracle's threshold.
        c: the oracle's approximation factor, in (0, 1).
        gamma: promised lower bound on the best |inner product| (the paper
            suggests machine precision as the universal fallback).
        data: optionally the data matrix, used to report the exact inner
            product of the returned index.

    Returns the first hit while scanning scales ``q / c^i`` from the
    original query upwards, or ``None`` if the promise was violated.
    """
    q = check_vector(q, "q")
    if not 0.0 < c < 1.0:
        raise ParameterError(f"c must be in (0, 1), got {c}")
    if s <= 0 or gamma <= 0:
        raise ParameterError(f"s and gamma must be positive, got s={s}, gamma={gamma}")
    if gamma > s:
        raise ParameterError(f"gamma must be <= s, got gamma={gamma}, s={s}")

    max_scale = int(math.ceil(math.log(s / gamma) / math.log(1.0 / c)))
    for i in range(max_scale + 1):
        scaled = q / (c ** i)
        index = search(scaled, s)
        if index is not None:
            if data is not None:
                value = float(np.asarray(data)[index] @ q)
            else:
                value = float("nan")
            return MIPSResult(index=index, value=value)
    return None
