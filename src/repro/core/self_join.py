"""Self-joins: joining a set with itself, identity pairs excluded.

The classic database similarity self-join ("find all near-duplicate
pairs in one table"), and the setting where Section 4.2's identical-pair
caveat bites: ``p . p`` can exceed any threshold without telling us
anything about *similar-but-distinct* pairs.  ``self_join`` therefore
reports, per vector, the best *other* vector — with an option to also
treat exact duplicates (equal rows at distinct indices) as matches or
not.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.problems import JoinResult, JoinSpec
from repro.errors import ParameterError
from repro.utils.validation import check_matrix


def self_join(
    P,
    spec: JoinSpec,
    match_duplicates: bool = True,
    block: int = 512,
) -> JoinResult:
    """Exact self-join: best above-``cs`` partner per vector, self excluded.

    Args:
        P: the set, shape (n, d); each row is both data and query.
        spec: the ``(cs, s)`` parameters.
        match_duplicates: when False, rows identical to the query row are
            excluded along with the query itself (the strict reading of
            "distinct vectors"; Section 4.2's guarantee covers only
            ``p != q`` as *vectors*, not as indices).
        block: matmul block size.
    """
    P = check_matrix(P, "P")
    n = P.shape[0]
    if n < 2:
        raise ParameterError("self-join needs at least two vectors")
    matches: List[Optional[int]] = []
    best_value = np.full(n, -np.inf)
    best_index = np.full(n, -1, dtype=np.int64)
    for q0 in range(0, n, block):
        q_block = P[q0:q0 + block]
        for p0 in range(0, n, block):
            ips = q_block @ P[p0:p0 + block].T
            scores = ips if spec.signed else np.abs(ips)
            # Mask the diagonal (self pairs) of the global matrix.
            for qi in range(q_block.shape[0]):
                global_q = q0 + qi
                lo, hi = p0, p0 + ips.shape[1]
                if lo <= global_q < hi:
                    scores[qi, global_q - lo] = -np.inf
                if not match_duplicates:
                    dup = np.flatnonzero(
                        np.all(P[lo:hi] == P[global_q], axis=1)
                    )
                    scores[qi, dup] = -np.inf
            local_best = np.argmax(scores, axis=1)
            local_vals = scores[np.arange(scores.shape[0]), local_best]
            improved = local_vals > best_value[q0:q0 + q_block.shape[0]]
            rows = np.flatnonzero(improved) + q0
            best_value[rows] = local_vals[improved]
            best_index[rows] = local_best[improved] + p0
    matches = [
        int(best_index[i]) if best_value[i] >= spec.cs else None for i in range(n)
    ]
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=n * n,
        candidates_generated=n * (n - 1),
    )


def lsh_self_join(
    P,
    spec: JoinSpec,
    index,
    match_duplicates: bool = True,
    block: int = 256,
) -> JoinResult:
    """Approximate self-join through any candidates-providing index.

    ``index`` must be built over ``P`` and expose ``candidates(q)`` or
    ``candidates_batch(Q)`` (an :class:`~repro.lsh.index.LSHIndex` or
    :class:`~repro.lsh.batch.BatchSignIndex`).  A symmetric index built
    with :class:`~repro.lsh.symmetric.SymmetricIPSHash` is the natural
    choice — the self pair it cannot rank is excluded here anyway.

    Candidates for a whole block of rows are generated at once and
    verified through the one-GEMM-per-block kernel
    (:mod:`repro.core.verify`); the self pair (and, when
    ``match_duplicates`` is off, duplicate rows) is masked out of each
    candidate list before verification.
    """
    from repro.core.verify import verify_block

    P = check_matrix(P, "P")
    n = P.shape[0]
    if n < 2:
        raise ParameterError("self-join needs at least two vectors")
    matches: List[Optional[int]] = []
    verified = 0
    batched = hasattr(index, "candidates_batch")
    for q0 in range(0, n, block):
        Q_block = P[q0:q0 + block]
        if batched:
            cand_lists = index.candidates_batch(Q_block)
        else:
            cand_lists = [index.candidates(Q_block[i]) for i in range(Q_block.shape[0])]
        filtered = []
        for i, candidates in enumerate(cand_lists):
            qi = q0 + i
            candidates = candidates[candidates != qi]
            if not match_duplicates and candidates.size:
                keep = ~np.all(P[candidates] == P[qi], axis=1)
                candidates = candidates[keep]
            filtered.append(candidates)
        result = verify_block(P, Q_block, filtered, signed=spec.signed)
        verified += result.n_evaluated
        matches.extend(
            int(idx) if idx >= 0 and score >= spec.cs else None
            for idx, score in zip(result.best_index, result.best_score)
        )
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=verified,
        candidates_generated=verified,
    )
