"""Self-joins: joining a set with itself, identity pairs excluded.

The classic database similarity self-join ("find all near-duplicate
pairs in one table"), and the setting where Section 4.2's identical-pair
caveat bites: ``p . p`` can exceed any threshold without telling us
anything about *similar-but-distinct* pairs.  ``self_join`` therefore
reports, per vector, the best *other* vector — with an option to also
treat exact duplicates (equal rows at distinct indices) as matches or
not.

The inner loops live in :func:`self_scan_chunk` (exact) and
:func:`lsh_self_chunk` (filter-then-verify): both take a contiguous
*query* chunk of ``P`` plus its global ``start`` offset, so the engine
can shard a self-join over query blocks exactly like a two-set join —
the self pair is masked by global index, which a chunk knows from its
offset.  ``self_join`` / ``lsh_self_join`` are the legacy entry points,
now thin shims over :func:`repro.engine.join` with a ``self_join`` spec.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.problems import JoinResult, JoinSpec, QueryStats
from repro.errors import ParameterError
from repro.utils.validation import check_matrix


def self_scan_chunk(
    P,
    Q_chunk,
    start: int,
    signed: bool,
    cs: float,
    match_duplicates: bool,
    block: int,
) -> Tuple[List[Optional[int]], int, int, QueryStats]:
    """Exact self-join scan over the chunk ``P[start:start+len(Q_chunk)]``.

    Returns ``(matches, inner_products_evaluated, candidates_generated,
    stats)``; the self pair (and, when ``match_duplicates`` is off,
    duplicate rows) is masked by *global* row index, so chunking never
    changes which pairs compete.
    """
    n = P.shape[0]
    mc = Q_chunk.shape[0]
    best_value = np.full(mc, -np.inf)
    best_index = np.full(mc, -1, dtype=np.int64)
    for q0 in range(0, mc, block):
        q_block = Q_chunk[q0:q0 + block]
        for p0 in range(0, n, block):
            ips = q_block @ P[p0:p0 + block].T
            scores = ips if signed else np.abs(ips)
            # Mask the diagonal (self pairs) of the global matrix.
            for qi in range(q_block.shape[0]):
                global_q = start + q0 + qi
                lo, hi = p0, p0 + ips.shape[1]
                if lo <= global_q < hi:
                    scores[qi, global_q - lo] = -np.inf
                if not match_duplicates:
                    dup = np.flatnonzero(
                        np.all(P[lo:hi] == P[global_q], axis=1)
                    )
                    scores[qi, dup] = -np.inf
            local_best = np.argmax(scores, axis=1)
            local_vals = scores[np.arange(scores.shape[0]), local_best]
            improved = local_vals > best_value[q0:q0 + q_block.shape[0]]
            rows = np.flatnonzero(improved) + q0
            best_value[rows] = local_vals[improved]
            best_index[rows] = local_best[improved] + p0
    matches = [
        int(best_index[i]) if best_value[i] >= cs else None for i in range(mc)
    ]
    evaluated = n * mc
    generated = (n - 1) * mc
    stats = QueryStats(
        queries=mc, candidates=generated, unique_candidates=generated
    )
    return matches, evaluated, generated, stats


def lsh_self_chunk(
    index,
    P,
    Q_chunk,
    start: int,
    signed: bool,
    cs: float,
    match_duplicates: bool,
    block: int,
) -> Tuple[List[Optional[int]], int, int, QueryStats]:
    """Filter-then-verify self-join over one contiguous chunk of ``P``.

    Candidates for a whole block of rows are generated at once
    (:func:`repro.lsh.index.block_candidates`) and verified through the
    one-GEMM-per-block kernel (:mod:`repro.core.verify`); the self pair
    (and optionally duplicate rows) is masked out of each candidate list
    by global index before verification.
    """
    from repro.core.verify import verify_block
    from repro.lsh.index import block_candidates

    before = index.stats.copy()
    matches: List[Optional[int]] = []
    verified = 0
    for q0 in range(0, Q_chunk.shape[0], block):
        Q_block = Q_chunk[q0:q0 + block]
        cand_lists = block_candidates(index, Q_block)
        filtered = []
        for i, candidates in enumerate(cand_lists):
            qi = start + q0 + i
            candidates = candidates[candidates != qi]
            if not match_duplicates and candidates.size:
                keep = ~np.all(P[candidates] == P[qi], axis=1)
                candidates = candidates[keep]
            filtered.append(candidates)
        result = verify_block(P, Q_block, filtered, signed=signed)
        verified += result.n_evaluated
        matches.extend(
            int(idx) if idx >= 0 and score >= cs else None
            for idx, score in zip(result.best_index, result.best_score)
        )
    delta = index.stats.diff(before)
    return matches, verified, verified, delta


def _self_spec(spec: JoinSpec, match_duplicates: bool) -> JoinSpec:
    """The engine-level spec for a legacy self-join call."""
    return JoinSpec(
        s=spec.s,
        c=spec.c,
        signed=spec.signed,
        self_join=True,
        match_duplicates=match_duplicates,
    )


def self_join(
    P,
    spec: JoinSpec,
    match_duplicates: bool = True,
    block: int = 512,
) -> JoinResult:
    """Exact self-join: best above-``cs`` partner per vector, self excluded.

    A thin shim over the unified engine (``backend="brute_force"`` with a
    ``self_join`` spec).

    Args:
        P: the set, shape (n, d); each row is both data and query.
        spec: the ``(cs, s)`` parameters.
        match_duplicates: when False, rows identical to the query row are
            excluded along with the query itself (the strict reading of
            "distinct vectors"; Section 4.2's guarantee covers only
            ``p != q`` as *vectors*, not as indices).
        block: matmul block size.
    """
    from repro.engine.api import join as engine_join

    P = check_matrix(P, "P")
    if P.shape[0] < 2:
        raise ParameterError("self-join needs at least two vectors")
    return engine_join(
        P, None, _self_spec(spec, match_duplicates),
        backend="brute_force", block=block,
    )


def lsh_self_join(
    P,
    spec: JoinSpec,
    index,
    match_duplicates: bool = True,
    block: int = 256,
) -> JoinResult:
    """Approximate self-join through any candidates-providing index.

    ``index`` must be built over ``P`` and expose ``candidates(q)`` or
    ``candidates_batch(Q)`` (an :class:`~repro.lsh.index.LSHIndex` or
    :class:`~repro.lsh.batch.BatchSignIndex`).  A symmetric index built
    with :class:`~repro.lsh.symmetric.SymmetricIPSHash` is the natural
    choice — the self pair it cannot rank is excluded here anyway.

    A thin shim over the unified engine (``backend="lsh"`` with a
    ``self_join`` spec).
    """
    from repro.engine.api import join as engine_join

    P = check_matrix(P, "P")
    if P.shape[0] < 2:
        raise ParameterError("self-join needs at least two vectors")
    return engine_join(
        P, None, _self_spec(spec, match_duplicates),
        backend="lsh", index=index, block=block,
    )
