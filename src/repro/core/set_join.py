"""Exact and MinHash-filtered Jaccard set-join chunk kernels.

The Jaccard analogues of :mod:`repro.core.brute_force` /
:mod:`repro.core.topk` / :mod:`repro.core.self_join`: every kernel here
operates on one contiguous query chunk of a :class:`SetCollection` and
returns the ``(matches, evaluated, generated, stats)`` tuple the engine's
chunk contract expects, with the same determinism guarantees — strict
improvement / stable ranking keeps the lowest-index maximizer, so block
size, chunking, and worker count never change results.

The exact scan inverts ``P`` into element postings once and intersects a
query against *all* overlapping rows with one gather + ``bincount``
(cost per query = total posting length of its members, the set analogue
of one GEMV row).  The MinHash index partitions ``P`` by set size (the
``MinHashLSHEnsemble`` idea: a size-incompatible partition cannot reach
the threshold, so it is never probed), banding ``n_tables`` fused
MinHash keys per row into per-partition sorted bucket tables; candidates
are verified exactly, so the filter only affects recall, never
precision.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.problems import QueryStats
from repro.datasets.sets import SetCollection
from repro.errors import ParameterError
from repro.lsh.minhash import MinHash
from repro.obs.trace import span

#: Default MinHash banding: 32 tables of 4 fused minima per key.  At the
#: bench's planted threshold (J >= 0.6) a true pair collides in at least
#: one table with probability ``1 - (1 - 0.6^4)^32 ~ 0.989``.
DEFAULT_MINHASH_TABLES = 32
DEFAULT_MINHASH_HASHES = 4
DEFAULT_MINHASH_PARTITIONS = 8

#: Rows densified per hashing step (bounds the ``rows x universe``
#: intermediate the batch MinHash kernel consumes).
HASH_CHUNK_ROWS = 2048


def _multi_arange(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + l)`` for each pair, vectorized."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    keep = lens > 0
    starts, lens = starts[keep], lens[keep]
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    pos = np.cumsum(lens)[:-1]
    out[pos] = starts[1:] - (starts[:-1] + lens[:-1]) + 1
    return np.cumsum(out)


class SetPostings:
    """Inverted index of a :class:`SetCollection`: element -> member rows.

    ``rows[indptr[e]:indptr[e+1]]`` lists (ascending) the rows whose sets
    contain element ``e`` — the transpose of the collection's CSR, built
    once per join and shared read-only across workers.
    """

    __slots__ = ("indptr", "rows", "sizes", "n", "universe")

    def __init__(self, sets: SetCollection):
        n, universe = sets.shape
        counts = np.bincount(sets.indices, minlength=universe)
        indptr = np.zeros(universe + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(sets.indices, kind="stable")
        self.rows = np.repeat(np.arange(n, dtype=np.int64), sets.sizes)[order]
        self.indptr = indptr
        self.sizes = sets.sizes.astype(np.int64)
        self.n = int(n)
        self.universe = int(universe)

    def overlaps(self, members: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
        """``(rows, intersection_sizes, pairs_gathered)`` for one query.

        ``rows`` is the ascending array of data rows sharing at least one
        element with the query; ``pairs_gathered`` counts posting entries
        touched (candidate pairs with multiplicity).
        """
        gathered = self.rows[
            _multi_arange(self.indptr[members], self.indptr[members + 1]
                          - self.indptr[members])
        ]
        if gathered.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, 0
        counts = np.bincount(gathered)
        rows = np.flatnonzero(counts)
        return rows, counts[rows], int(gathered.size)


def _jaccard_scores(
    inter: np.ndarray, sizes_p: np.ndarray, q_size: int
) -> np.ndarray:
    union = sizes_p + q_size - inter
    # union == 0 only for empty-vs-empty pairs, defined as similarity 0.
    return np.where(union > 0, inter / np.maximum(union, 1), 0.0)


def jaccard_scan_chunk(
    postings: SetPostings,
    Q_chunk: SetCollection,
    cs: float,
) -> Tuple[List[Optional[int]], int, int, QueryStats]:
    """Exact Jaccard threshold scan over one contiguous query chunk.

    Returns ``(matches, scores_evaluated, pairs_generated, stats)``; the
    lowest-index maximizer is reported, so results are chunking- and
    worker-independent.
    """
    matches: List[Optional[int]] = []
    evaluated = generated = 0
    stats = QueryStats()
    with span("set_scan", n_queries=len(Q_chunk)):
        for members in Q_chunk:
            rows, inter, gathered = postings.overlaps(members)
            if rows.size == 0:
                matches.append(None)
                stats.record(0, 0)
                continue
            scores = _jaccard_scores(inter, postings.sizes[rows], members.size)
            best = int(np.argmax(scores))
            matches.append(int(rows[best]) if scores[best] >= cs else None)
            evaluated += rows.size
            generated += gathered
            stats.record(gathered, rows.size)
    return matches, evaluated, generated, stats


def jaccard_topk_chunk(
    postings: SetPostings,
    Q_chunk: SetCollection,
    cs: float,
    k: int,
) -> Tuple[List[List[int]], int, int, QueryStats]:
    """Exact Jaccard top-k lists (ranked by score, ties to lower index)."""
    out: List[List[int]] = []
    evaluated = generated = 0
    stats = QueryStats()
    with span("set_scan_topk", n_queries=len(Q_chunk)):
        for members in Q_chunk:
            rows, inter, gathered = postings.overlaps(members)
            if rows.size == 0:
                out.append([])
                stats.record(0, 0)
                continue
            scores = _jaccard_scores(inter, postings.sizes[rows], members.size)
            keep = scores >= cs
            rows_k, scores_k = rows[keep], scores[keep]
            order = np.argsort(-scores_k, kind="stable")[:k]
            out.append(rows_k[order].tolist())
            evaluated += rows.size
            generated += gathered
            stats.record(gathered, rows.size)
    return out, evaluated, generated, stats


def jaccard_self_chunk(
    postings: SetPostings,
    P: SetCollection,
    Q_chunk: SetCollection,
    start: int,
    cs: float,
    match_duplicates: bool,
) -> Tuple[List[Optional[int]], int, int, QueryStats]:
    """Exact Jaccard self-join over ``P[start:start+len(Q_chunk)]``.

    The self pair is masked by *global* row index; with
    ``match_duplicates`` off, rows whose sets equal the query set
    (Jaccard exactly 1) are masked too.
    """
    matches: List[Optional[int]] = []
    evaluated = generated = 0
    stats = QueryStats()
    with span("set_scan_self", n_queries=len(Q_chunk)):
        for qi, members in enumerate(Q_chunk):
            rows, inter, gathered = postings.overlaps(members)
            keep = rows != (start + qi)
            rows, inter = rows[keep], inter[keep]
            if rows.size == 0:
                matches.append(None)
                stats.record(0, 0)
                continue
            scores = _jaccard_scores(inter, postings.sizes[rows], members.size)
            if not match_duplicates:
                scores = np.where(scores >= 1.0, -np.inf, scores)
            best = int(np.argmax(scores))
            matches.append(int(rows[best]) if scores[best] >= cs else None)
            evaluated += rows.size
            generated += gathered
            stats.record(gathered, rows.size)
    return matches, evaluated, generated, stats


def hash_sets(tables, sets: SetCollection, side: str = "data") -> np.ndarray:
    """Fused MinHash keys ``(n, n_tables)`` of a collection, densified in
    bounded row chunks so the ``rows x universe`` intermediate stays small."""
    n = len(sets)
    keys = np.empty((n, tables.n_tables), dtype=np.int64)
    for lo in range(0, n, HASH_CHUNK_ROWS):
        chunk = sets[lo:lo + HASH_CHUNK_ROWS]
        keys[lo:lo + HASH_CHUNK_ROWS] = tables.hash_matrix(
            chunk.to_dense(dtype=np.int64), side=side
        )
    return keys


class MinHashSetIndex:
    """Size-partitioned MinHash bucket index over a :class:`SetCollection`.

    ``P`` is split into ``num_part`` equal-count partitions by set size
    (the ensemble trick): a partition whose size range ``[lo, hi]``
    cannot reach Jaccard ``t`` against a query of size ``q`` — i.e.
    ``hi < t*q`` or ``lo > q/t`` — is skipped entirely at query time.
    Within a partition each of the ``n_tables`` fused keys indexes a
    sorted ``(key, row)`` bucket table; lookups are two binary searches.
    """

    def __init__(
        self,
        P: SetCollection,
        *,
        n_tables: int = DEFAULT_MINHASH_TABLES,
        hashes_per_table: int = DEFAULT_MINHASH_HASHES,
        num_part: int = DEFAULT_MINHASH_PARTITIONS,
        seed: int = 0,
    ):
        if n_tables < 1 or hashes_per_table < 1 or num_part < 1:
            raise ParameterError(
                "n_tables, hashes_per_table and num_part must all be >= 1"
            )
        n, universe = P.shape
        self.P = P
        self.n_tables = int(n_tables)
        self.sizes = P.sizes.astype(np.int64)
        rng = np.random.default_rng(seed)
        self.tables = MinHash(universe).sample_batch(
            rng, hashes_per_table, n_tables
        )
        keys = hash_sets(self.tables, P, side="data")
        order = np.argsort(self.sizes, kind="stable")
        num_part = min(int(num_part), max(1, n))
        bounds = np.linspace(0, n, num_part + 1).astype(np.int64)
        self.partitions = []
        for p in range(num_part):
            rows = order[bounds[p]:bounds[p + 1]]
            if rows.size == 0:
                continue
            lo, hi = int(self.sizes[rows[0]]), int(self.sizes[rows[-1]])
            buckets = []
            for t in range(self.n_tables):
                part_keys = keys[rows, t]
                key_order = np.argsort(part_keys, kind="stable")
                buckets.append(
                    (part_keys[key_order], rows[key_order].astype(np.int64))
                )
            self.partitions.append((lo, hi, buckets))

    def candidates(
        self, q_keys: np.ndarray, q_size: int, threshold: float
    ) -> Tuple[np.ndarray, int]:
        """``(unique_rows, pairs_with_multiplicity)`` colliding with a query."""
        if q_size == 0:
            return np.empty(0, dtype=np.int64), 0
        hits = []
        total = 0
        for lo, hi, buckets in self.partitions:
            if hi < threshold * q_size or lo * threshold > q_size:
                continue
            for t in range(self.n_tables):
                keys_sorted, rows_sorted = buckets[t]
                left = np.searchsorted(keys_sorted, q_keys[t], side="left")
                right = np.searchsorted(keys_sorted, q_keys[t], side="right")
                if right > left:
                    hits.append(rows_sorted[left:right])
                    total += right - left
        if not hits:
            return np.empty(0, dtype=np.int64), 0
        return np.unique(np.concatenate(hits)), total

    def verify(self, members: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Exact Jaccard of the query against each candidate row."""
        scores = np.empty(rows.size, dtype=np.float64)
        q_size = members.size
        for j, r in enumerate(rows):
            p_members = self.P.row(int(r))
            inter = int(
                np.isin(p_members, members, assume_unique=True).sum()
            )
            union = p_members.size + q_size - inter
            scores[j] = inter / union if union else 0.0
        return scores


def minhash_join_chunk(
    index: MinHashSetIndex,
    Q_chunk: SetCollection,
    cs: float,
    *,
    k: Optional[int] = None,
    self_start: Optional[int] = None,
    match_duplicates: bool = True,
):
    """Filter-then-verify Jaccard join over one contiguous query chunk.

    Handles all three variants: threshold (default), top-k (``k`` set),
    and self-join (``self_start`` set to the chunk's global offset into
    ``P``).  Returns ``(matches_or_topk, evaluated, generated, stats)``.
    """
    out: list = []
    evaluated = generated = 0
    stats = QueryStats()
    q_keys = hash_sets(index.tables, Q_chunk, side="query")
    with span("minhash_probe", n_queries=len(Q_chunk)):
        for qi, members in enumerate(Q_chunk):
            rows, multiplicity = index.candidates(
                q_keys[qi], members.size, cs
            )
            if self_start is not None:
                rows = rows[rows != (self_start + qi)]
            if rows.size == 0:
                out.append([] if k is not None else None)
                stats.record(multiplicity, 0)
                generated += multiplicity
                continue
            scores = index.verify(members, rows)
            if self_start is not None and not match_duplicates:
                scores = np.where(scores >= 1.0, -np.inf, scores)
            evaluated += rows.size
            generated += multiplicity
            stats.record(multiplicity, rows.size)
            if k is not None:
                keep = scores >= cs
                rows_k, scores_k = rows[keep], scores[keep]
                order = np.argsort(-scores_k, kind="stable")[:k]
                out.append(rows_k[order].tolist())
            else:
                best = int(np.argmax(scores))
                out.append(int(rows[best]) if scores[best] >= cs else None)
    return out, evaluated, generated, stats
