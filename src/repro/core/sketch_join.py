"""Unsigned join via linear sketches — the Section 4.3 algorithm.

Builds one :class:`repro.sketches.cmips.SketchCMIPS` structure over ``P``
and queries it for every row of ``Q``: total time ``O~(d n^{2-2/kappa})``
for ``|P| = |Q| = n``, approximation ``c = Theta(n^{-1/kappa})`` — truly
subquadratic for every ``kappa > 2``, with no fast matrix multiplication,
which is exactly the point the paper makes against [29].
"""

from __future__ import annotations

import numpy as np

from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.core.verify import DEFAULT_BLOCK, verify_candidates
from repro.errors import ParameterError
from repro.sketches.cmips import SketchCMIPS
from repro.utils.rng import SeedLike


def sketch_unsigned_join(
    P,
    Q,
    s: float,
    kappa: float = 4.0,
    copies: int = 7,
    seed: SeedLike = None,
    structure: SketchCMIPS = None,
    block: int = DEFAULT_BLOCK,
) -> JoinResult:
    """Unsigned ``(cs, s)`` join with the sketch's own ``c = n^{-1/kappa}``.

    For each query, the c-MIPS structure proposes one data vector; the
    proposals for a whole query block are then verified exactly through
    the blocked kernel (:mod:`repro.core.verify` — one GEMM per block
    rather than one dot product per query), and reported when they clear
    ``c * s``.  Queries whose best partner is below ``s`` carry no
    guarantee, as in Definition 1.
    """
    P, Q = validate_join_inputs(P, Q)
    if s <= 0:
        raise ParameterError(f"s must be positive, got {s}")
    if structure is None:
        structure = SketchCMIPS(P, kappa=kappa, copies=copies, seed=seed)
    spec = JoinSpec(s=s, c=structure.approximation_factor, signed=False)
    evaluated = 0
    proposals = []
    empty = np.empty(0, dtype=np.int64)
    for q in Q:
        answer = structure.query(q)
        evaluated += structure.recovery.query_cost() // max(1, P.shape[1])
        proposals.append(
            np.array([answer.index], dtype=np.int64) if answer.index >= 0 else empty
        )
    matches, _ = verify_candidates(
        P, Q, proposals, threshold=spec.cs, signed=False, block=block
    )
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=evaluated,
        candidates_generated=len(matches),
    )
