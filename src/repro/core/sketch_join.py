"""Unsigned join via linear sketches — the Section 4.3 algorithm.

Builds one :class:`repro.sketches.cmips.SketchCMIPS` structure over ``P``
and queries it for every row of ``Q``: total time ``O~(d n^{2-2/kappa})``
for ``|P| = |Q| = n``, approximation ``c = Theta(n^{-1/kappa})`` — truly
subquadratic for every ``kappa > 2``, with no fast matrix multiplication,
which is exactly the point the paper makes against [29].
"""

from __future__ import annotations

import numpy as np

from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.core.verify import DEFAULT_BLOCK, verify_candidates
from repro.errors import ParameterError
from repro.sketches.cmips import SketchCMIPS
from repro.utils.rng import SeedLike


def sketch_unsigned_join(
    P,
    Q,
    s: float,
    kappa: float = 4.0,
    copies: int = 7,
    seed: SeedLike = None,
    structure: SketchCMIPS = None,
    block: int = DEFAULT_BLOCK,
) -> JoinResult:
    """Unsigned ``(cs, s)`` join with the sketch's own ``c = n^{-1/kappa}``.

    Runs block-at-a-time: each query block goes through one batched
    c-MIPS descent (``SketchCMIPS.query_batch`` — stacked GEMMs instead
    of per-query GEMVs), its proposals are verified exactly through the
    blocked kernel (:mod:`repro.core.verify`), and matches are reported
    when they clear ``c * s``.  Because every stage is block-local, the
    query set can be sharded across processes
    (:func:`repro.core.executor.parallel_sketch_join`) without changing
    results.  Queries whose best partner is below ``s`` carry no
    guarantee, as in Definition 1.
    """
    P, Q = validate_join_inputs(P, Q)
    if s <= 0:
        raise ParameterError(f"s must be positive, got {s}")
    if structure is None:
        structure = SketchCMIPS(P, kappa=kappa, copies=copies, seed=seed)
    spec = JoinSpec(s=s, c=structure.approximation_factor, signed=False)
    per_query = structure.recovery.query_cost() // max(1, P.shape[1])
    evaluated = 0
    matches = []
    empty = np.empty(0, dtype=np.int64)
    for q0 in range(0, Q.shape[0], block):
        Q_block = Q[q0:q0 + block]
        answers = structure.query_batch(Q_block)
        evaluated += per_query * Q_block.shape[0]
        proposals = [
            np.array([idx], dtype=np.int64) if idx >= 0 else empty
            for idx in answers.indices
        ]
        block_matches, _ = verify_candidates(
            P, Q_block, proposals, threshold=spec.cs, signed=False, block=block
        )
        matches.extend(block_matches)
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=evaluated,
        candidates_generated=len(matches),
    )
