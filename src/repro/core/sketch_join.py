"""Unsigned join via linear sketches — the Section 4.3 algorithm.

Builds one :class:`repro.sketches.cmips.SketchCMIPS` structure over ``P``
and queries it for every row of ``Q``: total time ``O~(d n^{2-2/kappa})``
for ``|P| = |Q| = n``, approximation ``c = Theta(n^{-1/kappa})`` — truly
subquadratic for every ``kappa > 2``, with no fast matrix multiplication,
which is exactly the point the paper makes against [29].
"""

from __future__ import annotations

import numpy as np

from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.errors import ParameterError
from repro.sketches.cmips import SketchCMIPS
from repro.utils.rng import SeedLike


def sketch_unsigned_join(
    P,
    Q,
    s: float,
    kappa: float = 4.0,
    copies: int = 7,
    seed: SeedLike = None,
    structure: SketchCMIPS = None,
) -> JoinResult:
    """Unsigned ``(cs, s)`` join with the sketch's own ``c = n^{-1/kappa}``.

    For each query, the c-MIPS structure proposes one data vector; the
    proposal is verified exactly, and reported when it clears
    ``c * s``.  Queries whose best partner is below ``s`` carry no
    guarantee, as in Definition 1.
    """
    P, Q = validate_join_inputs(P, Q)
    if s <= 0:
        raise ParameterError(f"s must be positive, got {s}")
    if structure is None:
        structure = SketchCMIPS(P, kappa=kappa, copies=copies, seed=seed)
    spec = JoinSpec(s=s, c=structure.approximation_factor, signed=False)
    matches = []
    evaluated = 0
    for q in Q:
        answer = structure.query(q)
        evaluated += structure.recovery.query_cost() // max(1, P.shape[1])
        matches.append(answer.index if answer.value >= spec.cs else None)
    return JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=evaluated,
        candidates_generated=len(matches),
    )
