"""Unsigned join via linear sketches — the Section 4.3 algorithm.

Builds one :class:`repro.sketches.cmips.SketchCMIPS` structure over ``P``
and queries it for every row of ``Q``: total time ``O~(d n^{2-2/kappa})``
for ``|P| = |Q| = n``, approximation ``c = Theta(n^{-1/kappa})`` — truly
subquadratic for every ``kappa > 2``, with no fast matrix multiplication,
which is exactly the point the paper makes against [29].

:func:`sketch_filter_verify_chunk` is THE sketch join inner loop: each
query block goes through one batched c-MIPS descent
(``SketchCMIPS.query_batch`` — stacked GEMMs instead of per-query
GEMVs), its proposals are verified exactly through the blocked kernel
(:mod:`repro.core.verify`), and matches are reported when they clear
``c * s``.  Because every stage is block-local, the query set can be
sharded across processes without changing results; the engine's serial
path, every parallel worker, and the legacy entry point all run this
exact function.  :func:`sketch_unsigned_join` is the legacy entry
point, now a thin shim over :func:`repro.engine.join` with
``backend="sketch"``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.problems import JoinResult, QueryStats
from repro.core.verify import DEFAULT_BLOCK, verify_candidates
from repro.errors import ParameterError
from repro.obs.trace import span
from repro.sketches.cmips import SketchCMIPS
from repro.utils.rng import SeedLike


def sketch_filter_verify_chunk(
    structure: SketchCMIPS,
    P,
    Q_chunk,
    cs: float,
    block: int,
) -> Tuple[List[Optional[int]], int, int, QueryStats]:
    """Run the blocked sketch descent + verify over one query chunk.

    Returns ``(matches, inner_products_evaluated, candidates_generated,
    stats)``.  Queries whose best partner is below ``s`` carry no
    guarantee, as in Definition 1.
    """
    if block < 1:
        raise ParameterError(f"block must be >= 1, got {block}")
    per_query = structure.recovery.query_cost() // max(1, P.shape[1])
    evaluated = 0
    matches: List[Optional[int]] = []
    empty = np.empty(0, dtype=np.int64)
    for q0 in range(0, Q_chunk.shape[0], block):
        Q_block = Q_chunk[q0:q0 + block]
        with span("sketch_propose", n_queries=Q_block.shape[0]):
            answers = structure.query_batch(Q_block)
        evaluated += per_query * Q_block.shape[0]
        proposals = [
            np.array([idx], dtype=np.int64) if idx >= 0 else empty
            for idx in answers.indices
        ]
        with span("verify"):
            block_matches, _ = verify_candidates(
                P, Q_block, proposals, threshold=cs, signed=False, block=block
            )
        matches.extend(block_matches)
    generated = len(matches)
    stats = QueryStats(
        queries=len(matches),
        candidates=generated,
        unique_candidates=generated,
    )
    return matches, evaluated, generated, stats


def sketch_self_chunk(
    structure: SketchCMIPS,
    P,
    Q_chunk,
    start: int,
    cs: float,
    block: int,
) -> Tuple[List[Optional[int]], int, int, QueryStats]:
    """Sketch self-join over the chunk ``P[start:start+len(Q_chunk)]``.

    The self-join variant of :func:`sketch_filter_verify_chunk`: each
    query is a row of ``P``, and its identical pair is masked *inside*
    the recovery descent (``query_batch(..., exclude=...)``) rather than
    filtered afterwards — the descent itself proposes the best *other*
    vector, so the single-proposal-per-query shape is preserved.  The
    tuple shape and the verify path match the two-set chunk.
    """
    if block < 1:
        raise ParameterError(f"block must be >= 1, got {block}")
    per_query = structure.recovery.query_cost() // max(1, P.shape[1])
    evaluated = 0
    matches: List[Optional[int]] = []
    empty = np.empty(0, dtype=np.int64)
    for q0 in range(0, Q_chunk.shape[0], block):
        Q_block = Q_chunk[q0:q0 + block]
        exclude = np.arange(
            start + q0, start + q0 + Q_block.shape[0], dtype=np.int64
        )
        with span("sketch_propose", n_queries=Q_block.shape[0]):
            answers = structure.query_batch(Q_block, exclude=exclude)
        evaluated += per_query * Q_block.shape[0]
        proposals = [
            np.array([idx], dtype=np.int64) if idx >= 0 else empty
            for idx in answers.indices
        ]
        with span("verify"):
            block_matches, _ = verify_candidates(
                P, Q_block, proposals, threshold=cs, signed=False, block=block
            )
        matches.extend(block_matches)
    generated = len(matches)
    stats = QueryStats(
        queries=len(matches),
        candidates=generated,
        unique_candidates=generated,
    )
    return matches, evaluated, generated, stats


def sketch_unsigned_join(
    P,
    Q,
    s: float,
    kappa: float = 4.0,
    copies: int = 7,
    seed: SeedLike = None,
    structure: SketchCMIPS = None,
    block: int = DEFAULT_BLOCK,
) -> JoinResult:
    """Unsigned ``(cs, s)`` join with the sketch's own ``c = n^{-1/kappa}``.

    A thin shim over the unified engine (``backend="sketch"``); the
    returned spec carries the structure's own approximation factor.
    """
    from repro.core.problems import JoinSpec
    from repro.engine.api import join as engine_join

    spec = JoinSpec(s=s, signed=False)
    return engine_join(
        P,
        Q,
        spec,
        backend="sketch",
        seed=seed,
        block=block,
        kappa=kappa,
        copies=copies,
        structure=structure,
    )
