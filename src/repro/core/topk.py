"""Top-k join variants.

The paper's footnote 1: "from an upper bound side, it is common to limit
the number of occurrences of each tuple in a join result to a given
number k".  These functions return, per query, up to ``k`` data indices
clearing the ``cs`` threshold, ordered by decreasing (absolute) inner
product — exact or through an LSH index.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.problems import JoinSpec, validate_join_inputs
from repro.core.verify import DEFAULT_BLOCK, candidate_values_block
from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily
from repro.lsh.index import LSHIndex
from repro.utils.rng import SeedLike


def _rank_above(values: np.ndarray, indices: np.ndarray, spec: JoinSpec, k: int):
    scores = values if spec.signed else np.abs(values)
    keep = scores >= spec.cs
    indices = indices[keep]
    scores = scores[keep]
    order = np.argsort(-scores)[:k]
    return indices[order].tolist()


def join_topk(
    P,
    Q,
    spec: JoinSpec,
    k: int,
    block: int = 1024,
) -> List[List[int]]:
    """Exact top-k join: the k best above-``cs`` partners per query."""
    P, Q = validate_join_inputs(P, Q)
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    out = []
    all_indices = np.arange(P.shape[0])
    for q0 in range(0, Q.shape[0], block):
        values = Q[q0:q0 + block] @ P.T
        for row in values:
            out.append(_rank_above(row, all_indices, spec, k))
    return out


def lsh_join_topk(
    P,
    Q,
    spec: JoinSpec,
    k: int,
    family: Optional[AsymmetricLSHFamily] = None,
    index=None,
    n_tables: int = 16,
    hashes_per_table: int = 4,
    seed: SeedLike = None,
    block: int = DEFAULT_BLOCK,
) -> List[List[int]]:
    """Approximate top-k join through an LSH index (generic or batch).

    ``index`` may be any object exposing ``candidates(q)`` over ``P``
    (an :class:`~repro.lsh.index.LSHIndex` or a
    :class:`~repro.lsh.batch.BatchSignIndex`); indexes with
    ``candidates_batch`` generate a whole query block's candidates at
    once, and scoring runs through the blocked verification kernel
    (:func:`repro.core.verify.candidate_values_block`) instead of one
    GEMV per query.
    """
    P, Q = validate_join_inputs(P, Q)
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if index is None:
        if family is None:
            raise ParameterError("either an index or a family is required")
        index = LSHIndex(
            family, n_tables=n_tables, hashes_per_table=hashes_per_table, seed=seed
        ).build(P)
    out: List[List[int]] = []
    for q0 in range(0, Q.shape[0], block):
        Q_block = Q[q0:q0 + block]
        if hasattr(index, "candidates_batch"):
            cand_lists = index.candidates_batch(Q_block)
        else:
            cand_lists = [index.candidates(q) for q in Q_block]
        value_lists = candidate_values_block(P, Q_block, cand_lists)
        out.extend(
            _rank_above(values, candidates, spec, k) if candidates.size else []
            for candidates, values in zip(cand_lists, value_lists)
        )
    return out


def topk_recall(approx: List[List[int]], exact: List[List[int]]) -> float:
    """Mean fraction of exact top-k members the approximate lists recovered."""
    if len(approx) != len(exact):
        raise ParameterError("result lists answer different query counts")
    scores = []
    for mine, theirs in zip(approx, exact):
        if not theirs:
            continue
        scores.append(len(set(mine) & set(theirs)) / len(theirs))
    return float(np.mean(scores)) if scores else 1.0
