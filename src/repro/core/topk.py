"""Top-k join variants.

The paper's footnote 1: "from an upper bound side, it is common to limit
the number of occurrences of each tuple in a join result to a given
number k".  These functions return, per query, up to ``k`` data indices
clearing the ``cs`` threshold, ordered by decreasing (absolute) inner
product — exact or through an LSH index.

The inner loops are :func:`topk_chunk` (exact) and
:func:`lsh_topk_chunk` (filter-then-verify); both operate on a
contiguous query chunk, so the unified engine shards top-k joins through
the same executor path as threshold joins.  :func:`join_topk` and
:func:`lsh_join_topk` are the legacy entry points, now thin shims over
:func:`repro.engine.join` with ``spec.k`` set.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

import numpy as np

from repro.core.problems import JoinSpec, QueryStats
from repro.core.verify import DEFAULT_BLOCK, candidate_values_block
from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily
from repro.utils.rng import SeedLike


def _rank_above(values: np.ndarray, indices: np.ndarray, signed: bool, cs: float, k: int):
    scores = values if signed else np.abs(values)
    keep = scores >= cs
    indices = indices[keep]
    scores = scores[keep]
    order = np.argsort(-scores)[:k]
    return indices[order].tolist()


def topk_chunk(
    P,
    Q_chunk,
    signed: bool,
    cs: float,
    k: int,
    block: int,
) -> Tuple[List[List[int]], int, int, QueryStats]:
    """Exact top-k lists for one contiguous query chunk.

    Returns ``(topk_lists, inner_products_evaluated,
    candidates_generated, stats)``.
    """
    out: List[List[int]] = []
    all_indices = np.arange(P.shape[0])
    for q0 in range(0, Q_chunk.shape[0], block):
        values = Q_chunk[q0:q0 + block] @ P.T
        for row in values:
            out.append(_rank_above(row, all_indices, signed, cs, k))
    evaluated = P.shape[0] * Q_chunk.shape[0]
    stats = QueryStats(
        queries=len(out), candidates=evaluated, unique_candidates=evaluated
    )
    return out, evaluated, evaluated, stats


def lsh_topk_chunk(
    index,
    P,
    Q_chunk,
    signed: bool,
    cs: float,
    k: int,
    block: int,
) -> Tuple[List[List[int]], int, int, QueryStats]:
    """Filter-then-rank top-k lists for one contiguous query chunk.

    Candidates come from the index's fastest API
    (:func:`repro.lsh.index.block_candidates`), scores from the blocked
    verification kernel, and per-query ranking from the same
    ``_rank_above`` as the exact path.  Returns the same tuple shape as
    :func:`topk_chunk`; stats are this chunk's delta of the index's
    counters.
    """
    from repro.lsh.index import block_candidates

    before = index.stats.copy()
    out: List[List[int]] = []
    scored = 0
    for q0 in range(0, Q_chunk.shape[0], block):
        Q_block = Q_chunk[q0:q0 + block]
        cand_lists = block_candidates(index, Q_block)
        value_lists = candidate_values_block(P, Q_block, cand_lists)
        scored += sum(candidates.size for candidates in cand_lists)
        out.extend(
            _rank_above(values, candidates, signed, cs, k) if candidates.size else []
            for candidates, values in zip(cand_lists, value_lists)
        )
    delta = index.stats.diff(before)
    return out, scored, delta.candidates, delta


def join_topk(
    P,
    Q,
    spec: JoinSpec,
    k: int,
    block: int = 1024,
) -> List[List[int]]:
    """Exact top-k join: the k best above-``cs`` partners per query.

    A thin shim over the unified engine (``backend="brute_force"`` with
    ``spec.k`` set).
    """
    from repro.engine.api import join as engine_join

    result = engine_join(
        P, Q, replace(spec, k=k), backend="brute_force", block=block
    )
    return result.topk


def lsh_join_topk(
    P,
    Q,
    spec: JoinSpec,
    k: int,
    family: Optional[AsymmetricLSHFamily] = None,
    index=None,
    n_tables: int = 16,
    hashes_per_table: int = 4,
    seed: SeedLike = None,
    block: int = DEFAULT_BLOCK,
) -> List[List[int]]:
    """Approximate top-k join through an LSH index (generic or batch).

    ``index`` may be any object exposing ``candidates(q)`` over ``P``
    (an :class:`~repro.lsh.index.LSHIndex` or a
    :class:`~repro.lsh.batch.BatchSignIndex`); indexes with
    ``candidates_batch`` generate a whole query block's candidates at
    once, and scoring runs through the blocked verification kernel
    (:func:`repro.core.verify.candidate_values_block`) instead of one
    GEMV per query.  A thin shim over the unified engine
    (``backend="lsh"`` with ``spec.k`` set).
    """
    from repro.engine.api import join as engine_join

    if index is None and family is None:
        raise ParameterError("either an index or a family is required")
    result = engine_join(
        P,
        Q,
        replace(spec, k=k),
        backend="lsh",
        seed=seed,
        block=block,
        family=family,
        index=index,
        n_tables=n_tables,
        hashes_per_table=hashes_per_table,
    )
    return result.topk


def topk_recall(approx: List[List[int]], exact: List[List[int]]) -> float:
    """Mean fraction of exact top-k members the approximate lists recovered."""
    if len(approx) != len(exact):
        raise ParameterError("result lists answer different query counts")
    scores = []
    for mine, theirs in zip(approx, exact):
        if not theirs:
            continue
        scores.append(len(set(mine) & set(theirs)) / len(theirs))
    return float(np.mean(scores)) if scores else 1.0
