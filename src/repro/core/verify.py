"""Blocked batch verification: one GEMM per query block.

Every filter-then-verify algorithm in this package ends the same way:
for each query, compute exact inner products against its candidate rows
and keep the best one clearing a threshold.  Done per query that is one
GEMV (or a Python loop) per query — memory-bound and BLAS-hostile.  This
module verifies a whole query *block* at once: gather the union of the
block's candidate rows, multiply once —

    G = P[union] @ Q_block.T        # (|union|, block) — a single GEMM

— and slice each query's candidate values out of ``G`` by position.
When candidate sets within a block overlap (hot rows landing in every
query's buckets — skewed norms, clustered data, popular items),
``|union|`` sits far below the sum of list sizes and the GEMM does less
arithmetic than the GEMVs it replaces, at several times the throughput.
When they do *not* overlap (uniform data, tight buckets), the union GEMM
would multiply ``|union| x block`` pairs to use ``sum(sizes)`` of them —
strictly more arithmetic — so the kernel applies a per-block cost test
(``|union| * block <= GEMM_ADVANTAGE * sum(sizes)``) and falls back to
per-candidate-list GEMVs for sparse-overlap blocks.  The test depends
only on the block's candidate lists, so the chosen strategy — and the
exact sequence of BLAS calls — is identical no matter which process
executes the block.

Work accounting: ``n_evaluated`` counts **candidate pairs** (the sum of
candidate-list sizes), the paper's work measure, not the GEMM's
``|union| * block`` products — the measure must stay comparable across
the serial, blocked, and process-parallel paths.

Determinism: candidate lists are consumed in the (sorted) order the CSR
indexes produce, so argmax ties resolve to the lowest data index, and
identical block boundaries produce bit-identical GEMM calls — which is
what lets ``n_workers=1`` and ``n_workers=k`` executor runs return
identical matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.lsh.csr import sorted_unique
from repro.obs.metrics import current_metrics

DEFAULT_BLOCK = 256

#: The union GEMM is taken when it does at most this factor more raw
#: multiplies than the candidate pairs require — roughly the throughput
#: edge a large dgemm holds over a stream of small dgemvs.
GEMM_ADVANTAGE = 4.0


@dataclass
class BlockVerification:
    """Result of verifying one query block.

    ``best_index[i]`` is ``-1`` and ``best_score[i]`` is ``-inf`` when
    query ``i`` had no candidates; thresholding is the caller's job.
    """

    best_index: np.ndarray  # (block,) int64
    best_score: np.ndarray  # (block,) float64; abs() already applied if unsigned
    n_evaluated: int


def verify_block(
    P: np.ndarray,
    Q_block: np.ndarray,
    cand_lists: Sequence[np.ndarray],
    signed: bool = True,
) -> BlockVerification:
    """Verify one query block's candidates with a single GEMM.

    Args:
        P: data matrix, shape (n, d).
        Q_block: queries, shape (b, d).
        cand_lists: ``b`` sorted int64 index arrays into ``P`` (empty
            arrays allowed; sorted order is what the CSR candidate
            generators emit and is required for the positional slicing).
        signed: score by signed value or absolute value.
    """
    b = Q_block.shape[0]
    best_index = np.full(b, -1, dtype=np.int64)
    best_score = np.full(b, -np.inf)
    sizes = np.array([int(c.size) for c in cand_lists], dtype=np.int64)
    evaluated = int(sizes.sum())
    if evaluated == 0:
        return BlockVerification(best_index, best_score, 0)
    qidx = np.flatnonzero(sizes)
    # The union can never be smaller than the largest single list, so a
    # block that fails the cost test at that lower bound skips the union
    # computation entirely.  Every test below reads only the block's
    # candidate lists (and n), preserving process-independence.
    union = None
    all_cands = None
    if int(sizes.max()) * b <= GEMM_ADVANTAGE * evaluated:
        all_cands = np.concatenate([cand_lists[i] for i in qidx])
        if P.shape[0] <= 16 * evaluated:
            # Presence scatter + flatnonzero: sorted union without a
            # sort; the O(n) scan is cheaper below this density.
            present = np.zeros(P.shape[0], dtype=bool)
            present[all_cands] = True
            union = np.flatnonzero(present)
        else:
            union = sorted_unique(all_cands)
    metrics = current_metrics()
    if metrics.enabled:
        metrics.counter("verify.pairs_evaluated").inc(evaluated)
    if union is not None and union.size * b <= GEMM_ADVANTAGE * evaluated:
        if metrics.enabled:
            metrics.counter("verify.gemm_blocks").inc()
            metrics.histogram("verify.gemm_union_rows").observe(int(union.size))
        # Overlapping block: one GEMM covers every (query, candidate)
        # pair, and the per-query maxima come out of one segmented
        # reduction — no Python executes per query.
        gram = P[union] @ Q_block.T  # (|union|, b)
        qrep = np.repeat(qidx, sizes[qidx])
        # Candidate id -> gram row via a scatter map; binary-searching
        # the union instead costs more than the GEMM on slow cores.
        inverse = np.empty(P.shape[0], dtype=np.int64)
        inverse[union] = np.arange(union.size, dtype=np.int64)
        values = gram.ravel()[inverse[all_cands] * b + qrep]
        scores = values if signed else np.abs(values)
        seg = np.cumsum(sizes[qidx]) - sizes[qidx]
        seg_max = np.maximum.reduceat(scores, seg)
        # First position attaining the segment max: candidate lists are
        # ascending, so this reproduces np.argmax's lowest-index tie-break.
        first = np.minimum.reduceat(
            np.where(scores == np.repeat(seg_max, sizes[qidx]),
                     np.arange(scores.size), scores.size),
            seg,
        )
        best_index[qidx] = all_cands[first]
        best_score[qidx] = seg_max
    else:
        # Sparse-overlap block: the union GEMM would waste arithmetic;
        # one gathered GEMV per non-empty candidate list is cheaper.
        if metrics.enabled:
            metrics.counter("verify.gemv_blocks").inc()
        for qi, cands in enumerate(cand_lists):
            if cands.size == 0:
                continue
            values = P[cands] @ Q_block[qi]
            scores = values if signed else np.abs(values)
            j = int(np.argmax(scores))
            best_index[qi] = cands[j]
            best_score[qi] = scores[j]
    return BlockVerification(best_index, best_score, evaluated)


def candidate_values_block(
    P: np.ndarray,
    Q_block: np.ndarray,
    cand_lists: Sequence[np.ndarray],
    signed: bool = True,
) -> List[np.ndarray]:
    """Exact candidate inner products for one query block, list-aligned.

    The sibling of :func:`verify_block` for callers that need *all* the
    values (top-k ranking, recall audits) rather than the per-query best.
    Applies the same union-GEMM cost test, so the BLAS call pattern is a
    pure function of the block's candidate lists.  ``out[i]`` has the
    same length and order as ``cand_lists[i]``.
    """
    b = Q_block.shape[0]
    sizes = np.array([int(c.size) for c in cand_lists], dtype=np.int64)
    total = int(sizes.sum())
    out: List[np.ndarray] = [np.empty(0, dtype=np.float64)] * b
    if total == 0:
        return out
    qidx = np.flatnonzero(sizes)
    union = None
    all_cands = None
    if int(sizes.max()) * b <= GEMM_ADVANTAGE * total:
        all_cands = np.concatenate([cand_lists[i] for i in qidx])
        if P.shape[0] <= 16 * total:
            present = np.zeros(P.shape[0], dtype=bool)
            present[all_cands] = True
            union = np.flatnonzero(present)
        else:
            union = sorted_unique(all_cands)
    if union is not None and union.size * b <= GEMM_ADVANTAGE * total:
        gram = P[union] @ Q_block.T  # (|union|, b)
        qrep = np.repeat(qidx, sizes[qidx])
        inverse = np.empty(P.shape[0], dtype=np.int64)
        inverse[union] = np.arange(union.size, dtype=np.int64)
        values = gram.ravel()[inverse[all_cands] * b + qrep]
        if not signed:
            values = np.abs(values)
        seg = np.cumsum(sizes[qidx]) - sizes[qidx]
        for pos, i in enumerate(qidx):
            out[i] = values[seg[pos] : seg[pos] + sizes[i]]
    else:
        for i in qidx:
            values = P[cand_lists[i]] @ Q_block[i]
            out[i] = values if signed else np.abs(values)
    return out


def verify_candidates(
    P: np.ndarray,
    Q: np.ndarray,
    cand_lists: Sequence[np.ndarray],
    threshold: float,
    signed: bool = True,
    block: int = DEFAULT_BLOCK,
) -> Tuple[List[Optional[int]], int]:
    """Blocked verification of precomputed candidate lists.

    Returns ``(matches, n_evaluated)`` where ``matches[i]`` is the best
    candidate of query ``i`` if its (absolute) inner product clears
    ``threshold``, else ``None``.
    """
    matches: List[Optional[int]] = []
    evaluated = 0
    for q0 in range(0, Q.shape[0], block):
        result = verify_block(
            P, Q[q0:q0 + block], cand_lists[q0:q0 + block], signed=signed
        )
        evaluated += result.n_evaluated
        matches.extend(
            int(idx) if idx >= 0 and score >= threshold else None
            for idx, score in zip(result.best_index, result.best_score)
        )
    return matches, evaluated
