"""Workload generators for joins, MIPS, and OVP experiments.

The paper motivates IPS join with recommender systems (latent-factor
models), correlation mining, and set similarity; this package provides
synthetic generators for each of those input families plus planted
instances with known answers for correctness and recall measurements.
"""

from repro.datasets.generators import (
    random_binary,
    random_gaussian,
    random_sign,
    random_sparse_binary,
    random_unit,
)
from repro.datasets.planted import (
    PlantedMIPSInstance,
    planted_mips,
    planted_ovp,
)
from repro.datasets.io import (
    load_vectors,
    normalize_rows,
    normalize_to_unit_ball,
    save_vectors,
)
from repro.datasets.adversarial import (
    AdversarialMaxIPInstance,
    adversarial_maxip,
)
from repro.datasets.recommender import LatentFactorModel, latent_factor_model
from repro.datasets.sets import (
    SetCollection,
    jaccard_pair,
    planted_jaccard_sets,
    zipfian_sets,
)

__all__ = [
    "load_vectors",
    "save_vectors",
    "normalize_rows",
    "normalize_to_unit_ball",
    "random_binary",
    "random_gaussian",
    "random_sign",
    "random_sparse_binary",
    "random_unit",
    "PlantedMIPSInstance",
    "planted_mips",
    "planted_ovp",
    "LatentFactorModel",
    "latent_factor_model",
    "AdversarialMaxIPInstance",
    "adversarial_maxip",
    "SetCollection",
    "jaccard_pair",
    "planted_jaccard_sets",
    "zipfian_sets",
]
