"""Adversarial Max-IP instances: the OV-gadget hard regime, planted.

Chen's hardness results for Max-IP (arXiv:1802.02325) reduce Orthogonal
Vectors to exact/additive Max-IP through Boolean gadgets: the resulting
instances live on a Hamming sphere (every vector has the same weight, so
norms carry zero pruning signal) and the answer is separated from the
bulk by an *additive* O(1) gap (so no multiplicative ``c < 1``
approximation can isolate it).  Those are exactly the two structural
features that defeat the repository's sub-quadratic backends —
``norm_pruned`` degenerates to a full scan and LSH needs
``p1/p2 -> 1`` tables — which makes the family the right stress test
for the crossover bench: on it, every backend should pay essentially
brute force, and the planner should learn to say so.

:func:`adversarial_maxip` plants one top-1 answer per query with the
smallest overlap margin that keeps it the unique maximizer, then
verifies the planted argmax exhaustively, so recall measurements need no
ground-truth recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class AdversarialMaxIPInstance:
    """A Hamming-sphere top-1 workload with verified planted answers.

    Attributes:
        P: data matrix, shape (n, d), 0/1 entries, every row of weight
            ``weight`` (equal norms: norm pruning has no signal).
        Q: query matrix, shape (m, d), 0/1 entries of weight ``weight``.
        answers: per query, the planted data index that is the *unique*
            inner-product maximizer (verified exhaustively).
        planted_ip: per query, the planted pair's inner product.
        bulk_max_ip: per query, the best non-planted inner product; the
            additive gap ``planted_ip - bulk_max_ip`` is at least 1.
    """

    P: np.ndarray
    Q: np.ndarray
    answers: np.ndarray
    planted_ip: np.ndarray
    bulk_max_ip: np.ndarray

    @property
    def n(self) -> int:
        return self.P.shape[0]

    @property
    def d(self) -> int:
        return self.P.shape[1]

    @property
    def min_gap(self) -> int:
        """The smallest additive planted-vs-bulk gap over all queries."""
        return int((self.planted_ip - self.bulk_max_ip).min())


def adversarial_maxip(
    n: int,
    m: int,
    d: int,
    weight: int,
    seed: SeedLike = None,
    max_attempts: int = 64,
) -> AdversarialMaxIPInstance:
    """Plant one needle-in-a-Hamming-sphere top-1 answer per query.

    Data rows are uniform weight-``weight`` subsets of ``[d]`` (bulk
    overlaps concentrate around ``weight^2 / d``).  Each query copies
    ``k`` coordinates from its planted row and draws the rest from the
    row's complement, with ``k`` grown from just above the bulk mean
    until the planted row is the strict unique argmax — so the gap is
    the smallest additive margin the draw admits, the OV-gadget regime
    where a multiplicative approximation is useless.
    """
    if weight < 1 or weight > d // 2:
        raise ParameterError(
            f"need 1 <= weight <= d/2 so queries can avoid their base "
            f"row's support, got weight={weight}, d={d}"
        )
    if n < 2 or m < 1:
        raise ParameterError(f"need n >= 2 and m >= 1, got n={n}, m={m}")
    rng = ensure_rng(seed)

    P = np.zeros((n, d), dtype=np.float64)
    for i in range(n):
        P[i, rng.choice(d, size=weight, replace=False)] = 1.0

    Q = np.zeros((m, d), dtype=np.float64)
    answers = np.empty(m, dtype=np.int64)
    planted_ip = np.empty(m, dtype=np.int64)
    bulk_max_ip = np.empty(m, dtype=np.int64)
    k_start = min(weight, int(np.ceil(weight * weight / d)) + 1)
    for qi in range(m):
        base = int(rng.integers(n))
        support = np.flatnonzero(P[base])
        complement = np.flatnonzero(P[base] == 0)
        q = None
        for attempt in range(max_attempts):
            # Grow the shared-coordinate count every few failed draws;
            # at k = weight the query is the base row's support itself.
            k = min(weight, k_start + attempt // 4)
            shared = rng.choice(support, size=k, replace=False)
            fresh = rng.choice(complement, size=weight - k, replace=False)
            cand = np.zeros(d, dtype=np.float64)
            cand[shared] = 1.0
            cand[fresh] = 1.0
            ips = (P @ cand).astype(np.int64)
            others = np.delete(ips, base)
            if ips[base] > others.max():
                q = cand
                planted_ip[qi] = int(ips[base])
                bulk_max_ip[qi] = int(others.max())
                break
        if q is None:
            raise ParameterError(
                f"could not plant a unique top-1 answer for query {qi} "
                f"in {max_attempts} attempts (n={n}, d={d}, "
                f"weight={weight}); increase d or weight"
            )
        Q[qi] = q
        answers[qi] = base
    return AdversarialMaxIPInstance(
        P=P, Q=Q, answers=answers,
        planted_ip=planted_ip, bulk_max_ip=bulk_max_ip,
    )
