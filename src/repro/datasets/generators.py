"""Elementary random vector set generators.

Every generator takes ``(n, d, seed=...)`` and returns an ``(n, d)`` numpy
array, matching the domains the paper studies: ``{0,1}^d``, ``{-1,1}^d``,
the unit sphere, and general real vectors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import SeedLike, ensure_rng


def _check_shape(n: int, d: int) -> None:
    if n <= 0 or d <= 0:
        raise ParameterError(f"n and d must be positive, got n={n}, d={d}")


def random_binary(n: int, d: int, density: float = 0.5, seed: SeedLike = None) -> np.ndarray:
    """Random ``{0,1}^d`` vectors with i.i.d. Bernoulli(``density``) entries."""
    _check_shape(n, d)
    if not 0.0 <= density <= 1.0:
        raise ParameterError(f"density must be in [0, 1], got {density}")
    rng = ensure_rng(seed)
    return (rng.random((n, d)) < density).astype(np.int64)


def random_sparse_binary(n: int, d: int, ones_per_row: int, seed: SeedLike = None) -> np.ndarray:
    """Random ``{0,1}^d`` vectors with exactly ``ones_per_row`` ones per row.

    This is the natural model for sets of a fixed size, the regime where
    minwise hashing (Section 4.1's MH-ALSH comparison) is customary.
    """
    _check_shape(n, d)
    if not 0 < ones_per_row <= d:
        raise ParameterError(f"ones_per_row must be in [1, d={d}], got {ones_per_row}")
    rng = ensure_rng(seed)
    out = np.zeros((n, d), dtype=np.int64)
    for i in range(n):
        out[i, rng.choice(d, size=ones_per_row, replace=False)] = 1
    return out


def random_sign(n: int, d: int, seed: SeedLike = None) -> np.ndarray:
    """Random ``{-1,+1}^d`` vectors with i.i.d. Rademacher entries."""
    _check_shape(n, d)
    rng = ensure_rng(seed)
    return rng.choice(np.array([-1, 1], dtype=np.int64), size=(n, d))


def random_gaussian(n: int, d: int, scale: float = 1.0, seed: SeedLike = None) -> np.ndarray:
    """Random real vectors with i.i.d. ``N(0, scale^2)`` entries."""
    _check_shape(n, d)
    rng = ensure_rng(seed)
    return rng.normal(0.0, scale, size=(n, d))


def random_unit(n: int, d: int, seed: SeedLike = None) -> np.ndarray:
    """Random vectors uniform on the unit sphere ``S^{d-1}``."""
    _check_shape(n, d)
    rng = ensure_rng(seed)
    X = rng.normal(size=(n, d))
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    # A Gaussian row is zero with probability 0; guard anyway.
    norms[norms == 0] = 1.0
    return X / norms
