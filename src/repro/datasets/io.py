"""Loading and saving user-supplied vector datasets.

Minimal, dependency-free helpers so the library's joins run on real data:
dense CSV (one vector per row), numpy ``.npy``/``.npz``, with validation
and optional normalization into the domains the algorithms expect.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_matrix


def load_vectors(path, dtype=np.float64, npz_key: str = None) -> np.ndarray:
    """Load a dense (n, d) matrix from ``.csv``, ``.npy`` or ``.npz``.

    CSV files may carry a header row (detected by non-numeric first line)
    and use comma or whitespace separation.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no dataset at {path}")
    suffix = path.suffix.lower()
    if suffix == ".npy":
        data = np.load(path)
    elif suffix == ".npz":
        archive = np.load(path)
        if npz_key is None:
            keys = list(archive.keys())
            if len(keys) != 1:
                raise ValidationError(
                    f"{path} holds arrays {keys}; pass npz_key to choose one"
                )
            npz_key = keys[0]
        if npz_key not in archive:
            raise ValidationError(f"{path} has no array named {npz_key!r}")
        data = archive[npz_key]
    elif suffix == ".csv":
        data = _load_csv(path)
    else:
        raise ValidationError(
            f"unsupported dataset extension {suffix!r} (want .csv/.npy/.npz)"
        )
    return check_matrix(np.asarray(data, dtype=dtype), "dataset")


def _load_csv(path: Path) -> np.ndarray:
    with open(path) as handle:
        first = handle.readline()
    delimiter = "," if "," in first else None
    skip = 0
    tokens = first.replace(",", " ").split()
    try:
        [float(token) for token in tokens]
    except ValueError:
        skip = 1  # header row
    return np.loadtxt(path, delimiter=delimiter, skiprows=skip, ndmin=2)


def save_vectors(path, X) -> None:
    """Save a matrix to ``.csv`` or ``.npy`` by extension."""
    path = Path(path)
    X = check_matrix(X, "X")
    suffix = path.suffix.lower()
    if suffix == ".npy":
        np.save(path, X)
    elif suffix == ".csv":
        np.savetxt(path, X, delimiter=",")
    else:
        raise ValidationError(f"unsupported extension {suffix!r} (want .csv/.npy)")


def normalize_to_unit_ball(X, margin: float = 0.0) -> np.ndarray:
    """Scale a dataset so the longest vector has norm ``1 - margin``.

    The standard preprocessing for the unit-ball data domain every ALSH
    in this library assumes; returns a new array.
    """
    X = check_matrix(X, "X")
    if not 0.0 <= margin < 1.0:
        raise ValidationError(f"margin must be in [0, 1), got {margin}")
    max_norm = float(np.linalg.norm(X, axis=1).max())
    if max_norm == 0:
        raise ValidationError("dataset is all zeros")
    return X * ((1.0 - margin) / max_norm)


def normalize_rows(X) -> np.ndarray:
    """Project every row onto the unit sphere (zero rows rejected)."""
    X = check_matrix(X, "X")
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    if (norms == 0).any():
        raise ValidationError("cannot normalize zero rows onto the sphere")
    return X / norms
