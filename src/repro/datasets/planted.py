"""Planted instances with known answers.

``planted_ovp`` builds Orthogonal Vectors instances where the presence (and
location) of an orthogonal pair is known, which lets the reduction benches
verify answers end to end.  ``planted_mips`` builds MIPS workloads with a
controlled similarity gap between the planted best match and the bulk of
the data, the standard way to measure LSH recall without quadratic ground
truth recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.ovp.instance import OVPInstance
from repro.utils.rng import SeedLike, ensure_rng


def planted_ovp(
    n: int,
    d: int,
    planted: bool = True,
    density: float = 0.5,
    n_p: Optional[int] = None,
    seed: SeedLike = None,
) -> OVPInstance:
    """Random OVP instance, optionally with exactly one planted orthogonal pair.

    The bulk vectors are dense enough that a random pair is orthogonal with
    probability about ``(1 - density^2)^d``, which is negligible for the
    sizes used in tests; when ``planted`` is False the instance therefore
    has no orthogonal pair with overwhelming probability (and we verify and
    re-draw if it accidentally has one, so the label is exact).
    """
    rng = ensure_rng(seed)
    n_p = n if n_p is None else n_p
    if n <= 0 or n_p <= 0 or d <= 1:
        raise ParameterError(f"need n, n_p >= 1 and d >= 2; got n={n}, n_p={n_p}, d={d}")

    for _ in range(64):
        P = (rng.random((n_p, d)) < density).astype(np.int64)
        Q = (rng.random((n, d)) < density).astype(np.int64)
        # Keep bulk rows non-zero so the instance is not trivially solvable.
        P[P.sum(axis=1) == 0, 0] = 1
        Q[Q.sum(axis=1) == 0, 0] = 1
        has_pair = bool((P @ Q.T == 0).any())
        if planted:
            i = int(rng.integers(n_p))
            j = int(rng.integers(n))
            half = d // 2
            P[i] = 0
            Q[j] = 0
            P[i, :half] = 1
            Q[j, half:] = 1
            return OVPInstance(P=P, Q=Q, planted_pair=(i, j))
        if not has_pair:
            return OVPInstance(P=P, Q=Q, planted_pair=None)
    raise ParameterError(
        "could not draw an instance without an orthogonal pair; "
        f"increase d or density (n={n}, d={d}, density={density})"
    )


@dataclass(frozen=True)
class PlantedMIPSInstance:
    """A MIPS workload with a known planted best match per query.

    Attributes:
        P: data matrix, shape (n, d).
        Q: query matrix, shape (m, d).
        answers: for each query index, the planted data index whose inner
            product is guaranteed to be at least ``s``.
        s: the planted inner product threshold.
        cs: the maximum inner product of non-planted pairs is below this
            value (with the failure probability noted by the generator).
    """

    P: np.ndarray
    Q: np.ndarray
    answers: np.ndarray
    s: float
    cs: float

    @property
    def n(self) -> int:
        return self.P.shape[0]

    @property
    def d(self) -> int:
        return self.P.shape[1]


def planted_mips(
    n: int,
    m: int,
    d: int,
    s: float = 0.8,
    c: float = 0.5,
    seed: SeedLike = None,
) -> PlantedMIPSInstance:
    """Unit-vector MIPS instance with one planted match of inner product >= s.

    Queries are random unit vectors; for each query we plant one data
    vector obtained by rotating the query so their inner product is exactly
    ``s``.  Bulk data vectors start as random unit vectors and any bulk
    vector whose inner product with some query would violate the ``cs``
    separation is shrunk until it complies — giving data of varying norms
    (the defining feature of real MIPS workloads) and a *deterministic*
    separation guarantee: the planted pair is the unique answer at
    threshold ``s`` with approximation ``c``.
    """
    if not 0 < c < 1 or not 0 < s < 1:
        raise ParameterError(f"need 0 < c < 1 and 0 < s < 1; got c={c}, s={s}")
    if m > n:
        raise ParameterError(f"need m <= n so each query can own a planted row (m={m}, n={n})")
    rng = ensure_rng(seed)
    cs = c * s
    # Plant a hair above s so the planted pairs clear the threshold under
    # floating-point comparison at exactly s.
    s_plant = min(s + (1.0 - s) * 1e-6, 1.0)

    P = rng.normal(size=(n, d))
    P /= np.linalg.norm(P, axis=1, keepdims=True)
    Q = rng.normal(size=(m, d))
    Q /= np.linalg.norm(Q, axis=1, keepdims=True)

    answers = rng.permutation(n)[:m]
    planted_mask = np.zeros(n, dtype=bool)
    planted_mask[answers] = True
    for qi, pi in enumerate(answers):
        q = Q[qi]
        # Build a unit vector at angle arccos(s) from q.
        r = rng.normal(size=d)
        r -= (r @ q) * q
        r /= np.linalg.norm(r)
        P[pi] = s * q + np.sqrt(1.0 - s * s) * r

    # Shrink bulk rows so every non-planted |inner product| stays below cs.
    bulk = ~planted_mask
    worst = np.abs(P[bulk] @ Q.T).max(axis=1)
    factor = np.minimum(1.0, 0.9 * cs / np.maximum(worst, 1e-12))
    P[bulk] *= factor[:, None]
    # Planted rows may still collide with *other* queries; shrink those
    # queries' bulk view is impossible, so instead verify and re-rotate the
    # offending planted rows within the orthogonal complement of all other
    # queries when feasible, falling back to rejection of the residual.
    ips = P @ Q.T
    off_diag = np.abs(ips[answers, :])
    off_diag[np.arange(m), np.arange(m)] = 0.0
    if float(off_diag.max(initial=0.0)) >= cs:
        if d <= m:
            raise ParameterError(
                f"need d > m to orthogonalize planted rows (d={d}, m={m})"
            )
        # Fallback: orthonormalize the queries (random directions, exactly
        # orthogonal to each other) and redo planting; planted rows then
        # have inner product exactly s with their query and exactly 0 with
        # every other query.
        Q, _ = np.linalg.qr(Q.T)
        Q = Q.T[:m].copy()
        basis = Q.T  # d x m, orthonormal columns
        for qi, pi in enumerate(answers):
            q = Q[qi]
            r = rng.normal(size=d)
            r -= basis @ (basis.T @ r)  # orthogonal to every query
            r /= np.linalg.norm(r)
            P[pi] = s_plant * q + np.sqrt(1.0 - s_plant * s_plant) * r
        # Bulk rows must be re-shrunk against the new queries.
        worst = np.abs(P[bulk] @ Q.T).max(axis=1)
        factor = np.minimum(1.0, 0.9 * cs / np.maximum(worst, 1e-12))
        P[bulk] *= factor[:, None]
        ips = P @ Q.T
        off_diag = np.abs(ips[answers, :])
        off_diag[np.arange(m), np.arange(m)] = 0.0
        planted_vs_self = ips[answers, np.arange(m)]
        if float(off_diag.max(initial=0.0)) >= cs or not np.all(planted_vs_self >= s - 1e-9):
            raise ParameterError(
                "could not separate planted pairs from the bulk; "
                f"increase d or the gap (n={n}, d={d}, s={s}, c={c})"
            )
    return PlantedMIPSInstance(P=P, Q=Q, answers=answers, s=float(s), cs=float(cs))
