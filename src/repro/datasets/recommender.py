"""Synthetic latent-factor recommender workload.

Teflioudi et al. [50] motivate IPS join with latent-factor recommender
models: users and items are factor vectors, and the preference of a user
for an item is their inner product.  This module generates such a model
with controllable factor geometry so the examples and benches can exercise
MIPS on the paper's flagship application without proprietary rating data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class LatentFactorModel:
    """User/item factor matrices of a synthetic recommender.

    Attributes:
        users: shape (n_users, rank) query vectors.
        items: shape (n_items, rank) data vectors.
        rank: latent dimensionality.
    """

    users: np.ndarray
    items: np.ndarray

    @property
    def rank(self) -> int:
        return self.items.shape[1]

    @property
    def n_users(self) -> int:
        return self.users.shape[0]

    @property
    def n_items(self) -> int:
        return self.items.shape[0]

    def preference(self, user_index: int) -> np.ndarray:
        """Predicted preference of one user for every item."""
        return self.items @ self.users[user_index]

    def top_items(self, user_index: int, k: int = 10) -> np.ndarray:
        """Exact top-k items for one user (ground truth for recall tests)."""
        prefs = self.preference(user_index)
        if k >= prefs.size:
            return np.argsort(-prefs)
        top = np.argpartition(-prefs, k)[:k]
        return top[np.argsort(-prefs[top])]


def latent_factor_model(
    n_users: int,
    n_items: int,
    rank: int = 16,
    popularity_skew: float = 0.5,
    seed: SeedLike = None,
) -> LatentFactorModel:
    """Generate a latent-factor model with popularity-skewed item norms.

    Real matrix-factorization models have item vectors whose norms vary
    widely (popular items are longer), which is exactly what makes MIPS
    different from cosine similarity search.  ``popularity_skew`` controls
    the spread of item norms: 0 gives unit-norm items (cosine regime),
    larger values give a heavier-tailed norm distribution (true MIPS
    regime).
    """
    if n_users <= 0 or n_items <= 0 or rank <= 0:
        raise ParameterError(
            f"n_users, n_items, rank must be positive; got {n_users}, {n_items}, {rank}"
        )
    if popularity_skew < 0:
        raise ParameterError(f"popularity_skew must be >= 0, got {popularity_skew}")
    rng = ensure_rng(seed)

    users = rng.normal(size=(n_users, rank))
    users /= np.linalg.norm(users, axis=1, keepdims=True)

    items = rng.normal(size=(n_items, rank))
    items /= np.linalg.norm(items, axis=1, keepdims=True)
    if popularity_skew > 0:
        # Log-normal norms emulate the popularity long tail.
        norms = rng.lognormal(mean=0.0, sigma=popularity_skew, size=(n_items, 1))
        norms /= norms.max()
        items = items * norms
    return LatentFactorModel(users=users, items=items)
