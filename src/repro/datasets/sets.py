"""Set-valued data: Zipfian generators and the CSR ``SetCollection``.

The ``{0,1}^d`` domain "occurs often in practice, for example when the
vectors represent sets" (paper, Section 1.1).  Real set data (documents,
baskets) has heavily skewed element frequencies; the Zipfian generator
draws set elements from a Zipf distribution over the universe so the
binary-domain experiments run on realistically skewed sets rather than
uniform ones.

:class:`SetCollection` is the ragged/CSR container the engine's
``jaccard`` measure accepts as ``P``/``Q``: it stores ``n`` sets over a
shared integer universe as two flat arrays (``indptr``/``indices``),
supports the small matrix protocol the executor relies on (``shape``,
``len``, slice and fancy ``__getitem__``), pickles as plain ndarrays so
the shared-memory arena can freeze/thaw it zero-copy, and round-trips
to the dense binary matrices the MinHash kernels hash.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import SeedLike, ensure_rng


class SetCollection:
    """``n`` sets over ``{0, ..., universe-1}`` in CSR form.

    Row ``i`` is ``indices[indptr[i]:indptr[i+1]]`` — sorted, duplicate
    free.  ``shape`` is ``(n, universe)`` so engine code written against
    dense matrices (chunk bounds, span attributes, dimension checks)
    works unchanged.  Instances are immutable by convention: slicing and
    fancy indexing return new collections sharing no mutable state.
    """

    __slots__ = ("indptr", "indices", "universe")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, universe: int):
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 1 or indptr[0] != 0:
            raise ParameterError("indptr must be 1-D, non-empty, starting at 0")
        if indices.ndim != 1 or indptr[-1] != indices.size:
            raise ParameterError("indices length must match indptr[-1]")
        if int(universe) < 1:
            raise ParameterError(f"universe must be >= 1, got {universe}")
        if indices.size and (indices.min() < 0 or indices.max() >= universe):
            raise ParameterError("set elements must lie in [0, universe)")
        self.indptr = indptr
        self.indices = indices
        self.universe = int(universe)

    # -- matrix protocol -------------------------------------------------
    @property
    def shape(self) -> tuple:
        return (int(self.indptr.size - 1), self.universe)

    def __len__(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def sizes(self) -> np.ndarray:
        """Per-set cardinalities, ``(n,)`` int64."""
        return np.diff(self.indptr)

    def row(self, i: int) -> np.ndarray:
        """The ``i``-th set's sorted member array (a view)."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def __getitem__(self, key) -> "SetCollection":
        """Slice or fancy-index rows; always returns a ``SetCollection``."""
        n = len(self)
        if isinstance(key, slice):
            start, stop, step = key.indices(n)
            if step == 1:
                lo, hi = self.indptr[start], self.indptr[stop]
                return SetCollection(
                    self.indptr[start:stop + 1] - lo,
                    self.indices[lo:hi],
                    self.universe,
                )
            key = np.arange(start, stop, step)
        idx = np.asarray(key, dtype=np.int64).reshape(-1)
        sizes = self.indptr[idx + 1] - self.indptr[idx]
        indptr = np.zeros(idx.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        out = np.empty(int(indptr[-1]), dtype=np.int64)
        for j, i in enumerate(idx):
            out[indptr[j]:indptr[j + 1]] = self.indices[
                self.indptr[i]:self.indptr[i + 1]
            ]
        return SetCollection(indptr, out, self.universe)

    def __iter__(self) -> Iterable[np.ndarray]:
        for i in range(len(self)):
            yield self.row(i)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SetCollection)
            and self.universe == other.universe
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self):  # mutable ndarrays inside; match list/dict usage
        return id(self)

    def __repr__(self) -> str:
        return (
            f"SetCollection(n={len(self)}, universe={self.universe}, "
            f"nnz={self.indices.size})"
        )

    # -- persistence / arena hooks --------------------------------------
    def arrays(self):
        """The backing ndarrays (for arena pinning and persistence)."""
        return [self.indptr, self.indices]

    def __reduce__(self):
        # Plain ndarray fields: arena freeze() walks this pickle and
        # detours the arrays through shared-memory segment descriptors.
        return (SetCollection, (self.indptr, self.indices, self.universe))

    # -- conversions -----------------------------------------------------
    def to_dense(self, dtype=np.float64) -> np.ndarray:
        """Dense ``(n, universe)`` binary matrix (MinHash kernel input)."""
        out = np.zeros(self.shape, dtype=dtype)
        rows = np.repeat(np.arange(len(self)), self.sizes)
        out[rows, self.indices] = 1
        return out

    @classmethod
    def from_dense(cls, X: np.ndarray) -> "SetCollection":
        """CSR form of a dense binary matrix (any numeric dtype)."""
        X = np.asarray(X)
        if X.ndim != 2:
            raise ParameterError(f"dense set matrix must be 2-D, got {X.ndim}-D")
        if X.size and not np.isin(np.unique(X), (0, 1)).all():
            raise ParameterError("dense set matrix entries must be 0/1")
        rows, cols = np.nonzero(X)
        indptr = np.zeros(X.shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=X.shape[0]), out=indptr[1:])
        return cls(indptr, cols.astype(np.int64), X.shape[1])

    @classmethod
    def from_lists(
        cls, lists: Sequence[Iterable[int]], universe: int
    ) -> "SetCollection":
        """Build from per-row member iterables; duplicates are dropped."""
        rows = [np.unique(np.asarray(list(r), dtype=np.int64)) for r in lists]
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([r.size for r in rows], out=indptr[1:])
        indices = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        return cls(indptr, indices.astype(np.int64), universe)

    @classmethod
    def coerce(cls, obj, name: str = "sets") -> "SetCollection":
        """Accept a ``SetCollection``, dense binary matrix, or list of sets."""
        if isinstance(obj, cls):
            return obj
        if isinstance(obj, np.ndarray):
            return cls.from_dense(obj)
        if isinstance(obj, (list, tuple)):
            raise ParameterError(
                f"{name}: pass SetCollection.from_lists(rows, universe) for "
                "ragged python lists (the universe size is ambiguous)"
            )
        raise ParameterError(
            f"{name} must be a SetCollection or dense 0/1 matrix, "
            f"got {type(obj).__name__}"
        )


def jaccard_pair(a: np.ndarray, b: np.ndarray) -> float:
    """Exact Jaccard of two sorted member arrays; empty-vs-empty is 0."""
    inter = np.intersect1d(a, b, assume_unique=True).size
    union = a.size + b.size - inter
    return inter / union if union else 0.0


def planted_jaccard_sets(
    n: int,
    n_queries: int,
    universe: int,
    mean_size: int,
    threshold: float = 0.6,
    exponent: float = 1.1,
    seed: SeedLike = None,
) -> tuple:
    """Planted Jaccard workload: ``(P, Q)`` as :class:`SetCollection`.

    ``P`` is Zipfian background data; each query resamples a random base
    set of ``P`` keeping a fraction of its members and adding fresh ones
    so that the planted pair's Jaccard concentrates above ``threshold``
    while random pairs stay far below it (skewed sets overlap on hot
    elements, so the gap — not emptiness — is what makes the instance a
    recall test).
    """
    if not 0.0 < threshold < 1.0:
        raise ParameterError(f"threshold must be in (0, 1), got {threshold}")
    rng = ensure_rng(seed)
    P_dense = zipfian_sets(n, universe, mean_size, exponent=exponent, seed=rng)
    P = SetCollection.from_dense(P_dense)
    # keep-fraction f gives Jaccard >= f/(2-f) when the query keeps f|b|
    # members and adds (1-f)|b| fresh ones; invert for the target.
    keep = min(1.0, 2 * threshold / (1 + threshold) + 0.1)
    bases = rng.integers(0, n, size=n_queries)
    rows = []
    for b in bases:
        members = P.row(int(b))
        k = max(1, int(round(keep * members.size)))
        kept = rng.choice(members, size=min(k, members.size), replace=False)
        n_fresh = members.size - kept.size
        if n_fresh > 0:
            fresh = rng.integers(0, universe, size=2 * n_fresh + 4)
            fresh = np.setdiff1d(fresh, members)[:n_fresh]
            kept = np.concatenate([kept, fresh])
        rows.append(kept)
    Q = SetCollection.from_lists(rows, universe)
    return P, Q


def zipfian_sets(
    n: int,
    universe: int,
    mean_size: int,
    exponent: float = 1.1,
    seed: SeedLike = None,
) -> np.ndarray:
    """Binary matrix of ``n`` sets over ``universe`` elements.

    Each set's size is Poisson around ``mean_size`` (clamped to at least 1)
    and its elements are drawn without replacement with probabilities
    proportional to ``rank^{-exponent}``.
    """
    if n <= 0 or universe <= 1:
        raise ParameterError(f"need n >= 1 and universe >= 2, got n={n}, universe={universe}")
    if not 1 <= mean_size <= universe:
        raise ParameterError(f"mean_size must be in [1, universe], got {mean_size}")
    if exponent <= 0:
        raise ParameterError(f"exponent must be positive, got {exponent}")
    rng = ensure_rng(seed)

    weights = np.arange(1, universe + 1, dtype=np.float64) ** (-exponent)
    weights /= weights.sum()

    out = np.zeros((n, universe), dtype=np.int64)
    sizes = np.maximum(1, rng.poisson(mean_size, size=n))
    np.minimum(sizes, universe, out=sizes)
    for i in range(n):
        members = rng.choice(universe, size=int(sizes[i]), replace=False, p=weights)
        out[i, members] = 1
    return out
