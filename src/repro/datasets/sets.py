"""Zipfian set data for the {0,1} domain.

The ``{0,1}^d`` domain "occurs often in practice, for example when the
vectors represent sets" (paper, Section 1.1).  Real set data (documents,
baskets) has heavily skewed element frequencies; this generator draws set
elements from a Zipf distribution over the universe so the binary-domain
experiments run on realistically skewed sets rather than uniform ones.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import SeedLike, ensure_rng


def zipfian_sets(
    n: int,
    universe: int,
    mean_size: int,
    exponent: float = 1.1,
    seed: SeedLike = None,
) -> np.ndarray:
    """Binary matrix of ``n`` sets over ``universe`` elements.

    Each set's size is Poisson around ``mean_size`` (clamped to at least 1)
    and its elements are drawn without replacement with probabilities
    proportional to ``rank^{-exponent}``.
    """
    if n <= 0 or universe <= 1:
        raise ParameterError(f"need n >= 1 and universe >= 2, got n={n}, universe={universe}")
    if not 1 <= mean_size <= universe:
        raise ParameterError(f"mean_size must be in [1, universe], got {mean_size}")
    if exponent <= 0:
        raise ParameterError(f"exponent must be positive, got {exponent}")
    rng = ensure_rng(seed)

    weights = np.arange(1, universe + 1, dtype=np.float64) ** (-exponent)
    weights /= weights.sum()

    out = np.zeros((n, universe), dtype=np.int64)
    sizes = np.maximum(1, rng.poisson(mean_size, size=n))
    np.minimum(sizes, universe, out=sizes)
    for i in range(n):
        members = rng.choice(universe, size=int(sizes[i]), replace=False, p=weights)
        out[i, members] = 1
    return out
