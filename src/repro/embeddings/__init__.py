"""Embeddings: the paper's gap embeddings (Lemma 3) and MIPS reductions.

A *gap embedding* (Definition 4) is a pair of maps ``(f, g)`` that turn
orthogonality of binary vectors into a large inner-product gap, enabling
the OVP-to-join reductions of Theorems 1 and 2.  The MIPS reduction maps
(Section 4.1/4.2 and prior work) instead move arbitrary-norm vectors onto
the unit sphere so sphere LSH applies.
"""

from repro.embeddings.base import GapEmbedding, PairMap
from repro.embeddings.chebyshev import chebyshev_growth_lower_bound, chebyshev_t
from repro.embeddings.chebyshev_pm1 import ChebyshevSignEmbedding
from repro.embeddings.chopped_01 import ChoppedBinaryEmbedding
from repro.embeddings.incoherent_map import SymmetricSphereCompletion
from repro.embeddings.mips_reductions import (
    L2ALSHTransform,
    NeyshaburSrebroTransform,
    SimpleLSHTransform,
)
from repro.embeddings.ops import concat_maps, repeat_map, tensor_maps
from repro.embeddings.signed_pm1 import SignedCoordinateEmbedding
from repro.embeddings.valiant_random import RandomizedChebyshevEmbedding

__all__ = [
    "GapEmbedding",
    "PairMap",
    "SignedCoordinateEmbedding",
    "ChebyshevSignEmbedding",
    "RandomizedChebyshevEmbedding",
    "ChoppedBinaryEmbedding",
    "NeyshaburSrebroTransform",
    "L2ALSHTransform",
    "SimpleLSHTransform",
    "SymmetricSphereCompletion",
    "chebyshev_t",
    "chebyshev_growth_lower_bound",
    "concat_maps",
    "repeat_map",
    "tensor_maps",
]
