"""Base classes for pair embeddings and gap embeddings.

The paper works with *pairs* of maps ``(f, g)`` applied to the two sides of
a join; everything here is phrased in those terms.  ``f`` is applied to the
data side (the paper's ``P`` / left argument) and ``g`` to the query side
(``Q`` / right argument); for symmetric constructions the two coincide.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.validation import check_matrix, check_vector


@dataclass(frozen=True)
class PairMap:
    """A concrete pair of vector maps with known input/output dimensions.

    This is the composable unit the ⊕/⊗ calculus of Lemma 3 operates on:
    :func:`repro.embeddings.ops.concat_maps` adds the embedded inner
    products of two pair maps, :func:`repro.embeddings.ops.tensor_maps`
    multiplies them.
    """

    f: Callable[[np.ndarray], np.ndarray]
    g: Callable[[np.ndarray], np.ndarray]
    d_in: int
    d_out: int

    def embed_left(self, x) -> np.ndarray:
        """Apply the data-side map ``f`` to a single vector."""
        x = check_vector(x, "x")
        if x.size != self.d_in:
            raise ValueError(f"expected input dimension {self.d_in}, got {x.size}")
        out = np.asarray(self.f(x), dtype=np.float64)
        if out.size != self.d_out:
            raise AssertionError(
                f"map produced dimension {out.size}, declared {self.d_out}"
            )
        return out

    def embed_right(self, y) -> np.ndarray:
        """Apply the query-side map ``g`` to a single vector."""
        y = check_vector(y, "y")
        if y.size != self.d_in:
            raise ValueError(f"expected input dimension {self.d_in}, got {y.size}")
        out = np.asarray(self.g(y), dtype=np.float64)
        if out.size != self.d_out:
            raise AssertionError(
                f"map produced dimension {out.size}, declared {self.d_out}"
            )
        return out

    def embed_left_many(self, X) -> np.ndarray:
        """Apply ``f`` to every row of a matrix."""
        X = check_matrix(X, "X")
        return np.stack([self.embed_left(row) for row in X])

    def embed_right_many(self, Y) -> np.ndarray:
        """Apply ``g`` to every row of a matrix."""
        Y = check_matrix(Y, "Y")
        return np.stack([self.embed_right(row) for row in Y])


class GapEmbedding(abc.ABC):
    """An unsigned/signed ``(d1, d2, cs, s)``-gap embedding (Definition 4).

    Subclasses expose the four parameters and guarantee, for binary inputs
    ``x, y in {0,1}^{d1}``:

    * ``|f(x) . g(y)| >= s``  when ``x . y == 0``   (``f(x).g(y) >= s`` if signed)
    * ``|f(x) . g(y)| <= cs`` when ``x . y >= 1``   (``f(x).g(y) <= cs`` if signed)

    and that evaluation time is polynomial in (in practice: linear in) the
    output dimension ``d2``.
    """

    #: True when the guarantee is on the signed inner product.
    signed: bool = False
    #: The coordinate alphabet of the embedded vectors, e.g. {-1, 1} or {0, 1}.
    alphabet: tuple = ()

    @property
    @abc.abstractmethod
    def d_in(self) -> int:
        """Input dimension ``d1``."""

    @property
    @abc.abstractmethod
    def d_out(self) -> int:
        """Output dimension ``d2`` (exact, not just the upper bound)."""

    @property
    @abc.abstractmethod
    def s(self) -> float:
        """Inner product guaranteed for orthogonal input pairs."""

    @property
    @abc.abstractmethod
    def cs(self) -> float:
        """Inner product ceiling for non-orthogonal input pairs."""

    @property
    def c(self) -> float:
        """The approximation factor ``cs / s``."""
        return self.cs / self.s

    @abc.abstractmethod
    def embed_left(self, x) -> np.ndarray:
        """Embed a data-side binary vector (the paper's ``f``)."""

    @abc.abstractmethod
    def embed_right(self, y) -> np.ndarray:
        """Embed a query-side binary vector (the paper's ``g``)."""

    def embed_left_many(self, X) -> np.ndarray:
        """Embed every row of a binary matrix with ``f``."""
        X = check_matrix(X, "X", dtype=np.int64)
        return np.stack([self.embed_left(row) for row in X])

    def embed_right_many(self, Y) -> np.ndarray:
        """Embed every row of a binary matrix with ``g``."""
        Y = check_matrix(Y, "Y", dtype=np.int64)
        return np.stack([self.embed_right(row) for row in Y])

    def gap_holds(self, x, y, atol: float = 1e-6) -> bool:
        """Check the Definition 4 guarantee on one concrete pair.

        Used pervasively by tests; returns True when the embedded inner
        product falls on the correct side of ``s`` / ``cs`` given the
        orthogonality of ``(x, y)``.
        """
        x = np.asarray(x, dtype=np.int64)
        y = np.asarray(y, dtype=np.int64)
        value = float(self.embed_left(x) @ self.embed_right(y))
        if not self.signed:
            value = abs(value)
        if int(x @ y) == 0:
            return value >= self.s - atol
        return value <= self.cs + atol
