"""Chebyshev polynomials of the first kind and the growth bounds of Lemma 3.

Embedding 2 implicitly evaluates ``b^q T_q(u / b)``; this module provides
the polynomials themselves (via the numerically stable recurrence and,
outside [-1, 1], the closed hyperbolic form), the growth lower bound
``|T_q(1 + eps)| >= e^{q sqrt(eps)}`` the proof relies on, and the scaled
integer-valued evaluation used to cross-check the tensor construction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ParameterError


def chebyshev_t(q: int, x: float) -> float:
    """``T_q(x)``, the degree-q Chebyshev polynomial of the first kind.

    Uses ``cos``/``cosh`` closed forms, which are exact and stable for all
    real ``x`` (the three-term recurrence loses precision for large q
    outside ``[-1, 1]``).
    """
    if q < 0:
        raise ParameterError(f"q must be non-negative, got {q}")
    if abs(x) <= 1.0:
        return float(math.cos(q * math.acos(x)))
    sign = 1.0 if (x > 0 or q % 2 == 0) else -1.0
    return float(sign * math.cosh(q * math.acosh(abs(x))))


def chebyshev_t_recurrence(q: int, x: float) -> float:
    """``T_q(x)`` by the paper's recurrence ``T_q = 2x T_{q-1} - T_{q-2}``.

    Kept separate so tests can confirm the recurrence and the closed form
    agree, mirroring the cross-check the tensor embedding needs.
    """
    if q < 0:
        raise ParameterError(f"q must be non-negative, got {q}")
    if q == 0:
        return 1.0
    prev, curr = 1.0, float(x)
    for _ in range(q - 1):
        prev, curr = curr, 2.0 * x * curr - prev
    return curr


def scaled_chebyshev(q: int, u: float, b: float) -> float:
    """``b^q T_q(u / b)`` — the quantity Embedding 2's vectors realize.

    The recursion ``F_q = 2 u F_{q-1} - b^2 F_{q-2}`` keeps every
    intermediate an integer when ``u`` and ``b`` are integers, matching the
    fact that the construction realizes it with ±1 coordinates.
    """
    if q < 0:
        raise ParameterError(f"q must be non-negative, got {q}")
    if b <= 0:
        raise ParameterError(f"b must be positive, got {b}")
    if q == 0:
        return 1.0
    prev, curr = 1.0, float(u)
    for _ in range(q - 1):
        prev, curr = curr, 2.0 * u * curr - (b * b) * prev
    return curr


def chebyshev_growth_lower_bound(q: int, eps: float) -> float:
    """The paper's asymptotic lower bound ``e^{q sqrt(eps)}`` on ``T_q(1+eps)``.

    Stated in the paper for ``0 < eps < 1/2``.  The *exact* value is
    ``T_q(1+eps) = cosh(q acosh(1+eps)) >= e^{q acosh(1+eps)} / 2`` with
    ``acosh(1+eps) ~ sqrt(2 eps) > sqrt(eps)``, so the stated bound holds
    once ``q`` is large enough to absorb the factor 1/2 —
    :func:`growth_bound_valid` gives the precise condition.  For small
    ``q`` use :func:`chebyshev_growth_exact` instead.
    """
    if q < 0:
        raise ParameterError(f"q must be non-negative, got {q}")
    if not 0.0 < eps < 0.5:
        raise ParameterError(f"the bound requires 0 < eps < 1/2, got {eps}")
    return math.exp(q * math.sqrt(eps))


def chebyshev_growth_exact(q: int, eps: float) -> float:
    """The exact growth ``T_q(1+eps) = cosh(q acosh(1+eps))``."""
    if q < 0:
        raise ParameterError(f"q must be non-negative, got {q}")
    if eps <= 0:
        raise ParameterError(f"eps must be positive, got {eps}")
    return math.cosh(q * math.acosh(1.0 + eps))


def growth_bound_valid(q: int, eps: float) -> bool:
    """Whether ``e^{q sqrt(eps)} <= T_q(1+eps)`` provably holds.

    Sufficient condition: ``cosh(x) >= e^x / 2`` gives
    ``T_q(1+eps) >= e^{q acosh(1+eps)} / 2``, so the paper's bound holds
    when ``q (acosh(1+eps) - sqrt(eps)) >= ln 2``.
    """
    if q < 0:
        raise ParameterError(f"q must be non-negative, got {q}")
    if not 0.0 < eps < 0.5:
        raise ParameterError(f"need 0 < eps < 1/2, got {eps}")
    return q * (math.acosh(1.0 + eps) - math.sqrt(eps)) >= math.log(2.0)


def chebyshev_t_vector(q: int, xs: np.ndarray) -> np.ndarray:
    """Vectorized ``T_q`` over an array of points."""
    xs = np.asarray(xs, dtype=np.float64)
    return np.vectorize(lambda v: chebyshev_t(q, float(v)))(xs)
