"""Embedding 2 of Lemma 3: the Chebyshev tensor embedding into {-1, 1}.

The construction first applies the coordinate gadget of Embedding 1 but
translates by appending ``d + 2`` ones to *both* sides, giving base
vectors ``x~, y~`` in ``{-1,1}^{4d+2}`` with inner product
``u(t) = 2d + 2 - 4t`` when ``x . y = t``: orthogonal pairs sit at
``2d + 2``, non-orthogonal ones within ``[-(2d-2), 2d-2]``.

It then realizes the scaled Chebyshev polynomial ``(2d)^q T_q(u / (2d))``
with ±1 coordinates through the recursive ⊕/⊗ construction::

    f_0 = 1                     g_0 = 1
    f_1 = x~                    g_1 = y~
    f_q = (x~ ⊗ f_{q-1})^{⊕2} ⊕ f_{q-2}^{⊕(2d)^2}
    g_q = (y~ ⊗ g_{q-1})^{⊕2} ⊕ (-g_{q-2})^{⊕(2d)^2}

whose embedded inner products satisfy the Chebyshev recurrence
``F_q = 2 u F_{q-1} - (2d)^2 F_{q-2}``, i.e. ``F_q = (2d)^q T_q(u / 2d)``.
Orthogonal pairs land at ``(2d)^q T_q(1 + 1/d) >= (2d)^q e^{q / sqrt(d)}``
while non-orthogonal pairs stay within ``(2d)^q`` in magnitude — an
unsigned ``(d, <=(9d)^q, (2d)^q, (2d)^q T_q(1 + 1/d))``-gap embedding.

Unlike Valiant's randomized Chebyshev embedding, this construction is
deterministic, and dynamic programming over ``q`` evaluates it in time
linear in the output dimension.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import GapEmbedding
from repro.embeddings.chebyshev import chebyshev_t, scaled_chebyshev
from repro.errors import CapacityError, ParameterError
from repro.utils.validation import check_binary, check_vector

#: Refuse to materialize embedded vectors larger than this many coordinates.
DEFAULT_MAX_OUTPUT_DIM = 8_000_000


def chebyshev_embedding_dims(d: int, q: int) -> list:
    """Exact output dimensions ``D_0 .. D_q`` of the recursive construction.

    ``D_0 = 1``, ``D_1 = 4d + 2``, and
    ``D_q = 2 (4d + 2) D_{q-1} + (2d)^2 D_{q-2}``; the paper shows
    ``D_q <= (9d)^q`` for ``d >= 8``.
    """
    if d < 1 or q < 0:
        raise ParameterError(f"need d >= 1 and q >= 0, got d={d}, q={q}")
    base = 4 * d + 2
    dims = [1]
    if q >= 1:
        dims.append(base)
    for _ in range(2, q + 1):
        dims.append(2 * base * dims[-1] + (2 * d) ** 2 * dims[-2])
    return dims


class ChebyshevSignEmbedding(GapEmbedding):
    """Unsigned Chebyshev gap embedding into ``{-1, 1}`` (Lemma 3, item 2).

    Args:
        d: input dimension (``d >= 2``; the paper's dimension bound
           ``D_q <= (9d)^q`` needs ``d >= 8`` but the construction itself is
           valid for any ``d >= 2``).
        q: Chebyshev order (``q >= 1``); the gap ratio grows like
           ``e^{q / sqrt(d)}``.
        max_output_dim: guard limit; exceeding it raises
            :class:`repro.errors.CapacityError` instead of allocating.
    """

    signed = False
    alphabet = (-1, 1)

    def __init__(self, d: int, q: int, max_output_dim: int = DEFAULT_MAX_OUTPUT_DIM):
        if d < 2:
            raise ParameterError(f"ChebyshevSignEmbedding requires d >= 2, got {d}")
        if q < 1:
            raise ParameterError(f"ChebyshevSignEmbedding requires q >= 1, got {q}")
        self._d = int(d)
        self._q = int(q)
        self._dims = chebyshev_embedding_dims(d, q)
        if self._dims[-1] > max_output_dim:
            raise CapacityError(
                f"output dimension {self._dims[-1]} exceeds the guard limit "
                f"{max_output_dim}; lower q or d, or raise max_output_dim"
            )

    @property
    def d_in(self) -> int:
        return self._d

    @property
    def q(self) -> int:
        return self._q

    @property
    def d_out(self) -> int:
        return int(self._dims[-1])

    @property
    def b(self) -> int:
        """The scale ``b = 2d`` of the realized polynomial ``b^q T_q(u/b)``."""
        return 2 * self._d

    @property
    def s(self) -> float:
        return self.b ** self._q * chebyshev_t(self._q, 1.0 + 1.0 / self._d)

    @property
    def cs(self) -> float:
        return float(self.b ** self._q)

    def base_inner_product(self, t: int) -> float:
        """``u(t) = 2d + 2 - 4t``: the base-gadget inner product at overlap t."""
        return 2.0 * self._d + 2.0 - 4.0 * float(t)

    def embedded_inner_product(self, t: int) -> float:
        """Closed form ``(2d)^q T_q(u(t) / 2d)`` of the embedded inner product."""
        return scaled_chebyshev(self._q, self.base_inner_product(t), float(self.b))

    def _base_left(self, x: np.ndarray) -> np.ndarray:
        gadget = np.empty((self._d, 3), dtype=np.int8)
        gadget[:, 0] = 1
        gadget[:, 1] = (2 * x - 1).astype(np.int8)
        gadget[:, 2] = gadget[:, 1]
        return np.concatenate([gadget.ravel(), np.ones(self._d + 2, dtype=np.int8)])

    def _base_right(self, y: np.ndarray) -> np.ndarray:
        gadget = np.empty((self._d, 3), dtype=np.int8)
        gadget[:, 0] = (1 - 2 * y).astype(np.int8)
        gadget[:, 1] = gadget[:, 0]
        gadget[:, 2] = -1
        return np.concatenate([gadget.ravel(), np.ones(self._d + 2, dtype=np.int8)])

    def _recurse(self, base: np.ndarray, negate_repeat: bool) -> np.ndarray:
        """Dynamic program over q; linear in the total output size."""
        sq = (2 * self._d) ** 2
        prev = np.ones(1, dtype=np.int8)  # f_0 / g_0
        if self._q == 0:
            return prev
        curr = base  # f_1 / g_1
        for _ in range(2, self._q + 1):
            tensored = np.multiply.outer(base, curr).ravel()
            repeated = -prev if negate_repeat else prev
            prev, curr = curr, np.concatenate(
                [tensored, tensored, np.tile(repeated, sq)]
            )
        return curr

    def embed_left(self, x) -> np.ndarray:
        x = check_binary(check_vector(x, "x", dtype=np.int64), "x")
        if x.size != self._d:
            raise ParameterError(f"expected dimension {self._d}, got {x.size}")
        return self._recurse(self._base_left(x), negate_repeat=False).astype(np.float64)

    def embed_right(self, y) -> np.ndarray:
        y = check_binary(check_vector(y, "y", dtype=np.int64), "y")
        if y.size != self._d:
            raise ParameterError(f"expected dimension {self._d}, got {y.size}")
        return self._recurse(self._base_right(y), negate_repeat=True).astype(np.float64)
