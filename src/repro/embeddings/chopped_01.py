"""Embedding 3 of Lemma 3: the chopped-product embedding into {0, 1}.

Without ``-1`` coordinates subtraction is unavailable, but the polynomial

    (1 - x_1 y_1)(1 - x_2 y_2) ... (1 - x_d y_d)

is realizable over {0,1} because ``1 - x_j y_j = (1-x_j, 1) . (y_j, 1-y_j)``
and {0,1} is closed under tensoring.  The full product would cost dimension
``2^d``, so the construction "chops" the coordinates into ``k`` chunks and
*sums* the per-chunk products::

    sum_{i=0}^{k-1}  prod_{j in chunk i} (1 - x_j y_j)

Each chunk product is 1 exactly when the two vectors share no common 1 in
that chunk; orthogonal pairs therefore reach ``k`` while non-orthogonal
pairs lose at least the chunk containing a common 1, staying ``<= k - 1``:
an unsigned ``(d, k 2^{ceil(d/k)}, k-1, k)``-gap embedding.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.embeddings.base import GapEmbedding
from repro.errors import CapacityError, ParameterError
from repro.utils.validation import check_binary, check_vector

#: Refuse to materialize embedded vectors larger than this many coordinates.
DEFAULT_MAX_OUTPUT_DIM = 8_000_000


def chunk_boundaries(d: int, k: int) -> List[Tuple[int, int]]:
    """Contiguous chunk index ranges: k chunks of size ceil(d/k), last shorter.

    Mirrors the paper's remark that when ``k`` does not divide ``d`` the
    last "chop" is simply shorter, which only shrinks the output dimension.
    """
    if not 1 <= k <= d:
        raise ParameterError(f"need 1 <= k <= d, got k={k}, d={d}")
    size = -(-d // k)  # ceil(d / k)
    bounds = []
    start = 0
    while start < d:
        bounds.append((start, min(start + size, d)))
        start += size
    return bounds


class ChoppedBinaryEmbedding(GapEmbedding):
    """Unsigned ``(d, k 2^{ceil(d/k)}, k-1, k)``-gap embedding into ``{0, 1}``.

    Args:
        d: input dimension.
        k: number of chunks, ``1 <= k <= d``.  Larger ``k`` means smaller
            output dimension but weaker approximation hardness
            (``c = (k-1)/k``); the Theorem 2 parametrization takes
            ``k = d`` for output dimension exactly ``2d``.
        max_output_dim: guard limit for the materialized dimension.
    """

    signed = False
    alphabet = (0, 1)

    def __init__(self, d: int, k: int, max_output_dim: int = DEFAULT_MAX_OUTPUT_DIM):
        self._d = int(d)
        self._k = int(k)
        self._bounds = chunk_boundaries(self._d, self._k)
        self._chunk_dims = [2 ** (hi - lo) for lo, hi in self._bounds]
        self._d_out = int(sum(self._chunk_dims))
        if self._d_out > max_output_dim:
            raise CapacityError(
                f"output dimension {self._d_out} exceeds the guard limit "
                f"{max_output_dim}; raise k or max_output_dim"
            )

    @property
    def d_in(self) -> int:
        return self._d

    @property
    def k(self) -> int:
        """Number of chunks; note the realized chunk count can be < k when
        ceil(d/k) chunks cover d early — ``n_chunks`` reports the truth."""
        return self._k

    @property
    def n_chunks(self) -> int:
        return len(self._bounds)

    @property
    def d_out(self) -> int:
        return self._d_out

    @property
    def s(self) -> float:
        return float(self.n_chunks)

    @property
    def cs(self) -> float:
        return float(self.n_chunks - 1)

    def embedded_inner_product(self, x, y) -> float:
        """Closed form: the number of chunks where x and y share no 1."""
        x = np.asarray(x, dtype=np.int64)
        y = np.asarray(y, dtype=np.int64)
        return float(
            sum(1 for lo, hi in self._bounds if int(x[lo:hi] @ y[lo:hi]) == 0)
        )

    @staticmethod
    def _tensor_chain(pairs: np.ndarray) -> np.ndarray:
        """Tensor the per-coordinate 2-vectors of one chunk into 2^len dims."""
        out = np.ones(1, dtype=np.int8)
        for pair in pairs:
            out = np.multiply.outer(out, pair).ravel()
        return out

    def embed_left(self, x) -> np.ndarray:
        x = check_binary(check_vector(x, "x", dtype=np.int64), "x")
        if x.size != self._d:
            raise ParameterError(f"expected dimension {self._d}, got {x.size}")
        parts = []
        for lo, hi in self._bounds:
            pairs = np.stack(
                [(1 - x[lo:hi]).astype(np.int8), np.ones(hi - lo, dtype=np.int8)],
                axis=1,
            )
            parts.append(self._tensor_chain(pairs))
        return np.concatenate(parts).astype(np.float64)

    def embed_right(self, y) -> np.ndarray:
        y = check_binary(check_vector(y, "y", dtype=np.int64), "y")
        if y.size != self._d:
            raise ParameterError(f"expected dimension {self._d}, got {y.size}")
        parts = []
        for lo, hi in self._bounds:
            pairs = np.stack(
                [y[lo:hi].astype(np.int8), (1 - y[lo:hi]).astype(np.int8)],
                axis=1,
            )
            parts.append(self._tensor_chain(pairs))
        return np.concatenate(parts).astype(np.float64)
