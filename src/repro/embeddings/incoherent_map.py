"""Section 4.2's symmetric ball-to-sphere completion via incoherent vectors.

The reduction maps every vector ``p`` in the unit ball to

    f(p) = (p, sqrt(1 - |p|^2) * v_p)

where ``v_p`` is the incoherent companion of (the quantization of) ``p``
from a Reed-Solomon collection.  Data and queries are treated *identically*
— this is what makes the resulting LSH symmetric — and for ``p != q``:

    |f(p) . f(q) - p . q| = sqrt(1-|p|^2) sqrt(1-|q|^2) |v_p . v_q| <= eps

while ``f(p) . f(p) = 1`` exactly.  The guarantee intentionally fails for
identical vectors (their companions coincide), which is precisely the
relaxation Section 4.2 argues is harmless: a pre-step checks whether the
query itself is in the input set.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DomainError
from repro.incoherent.registry import IncoherentRegistry
from repro.utils.validation import check_matrix, check_vector


class SymmetricSphereCompletion:
    """Symmetric unit-ball to unit-sphere map with eps inner product error.

    Args:
        eps: additive inner-product error tolerated for distinct vectors.
        precision_bits: fixed-point width of the quantization that keys the
            incoherent companion (the paper's "coordinates encoded as k-bit
            numbers").
    """

    def __init__(self, eps: float = 0.05, precision_bits: int = 16):
        self.registry = IncoherentRegistry(eps=eps, precision_bits=precision_bits)
        self.eps = float(eps)

    def output_dimension(self, d: int) -> int:
        return d + self.registry.dimension

    def embed(self, x) -> np.ndarray:
        """``x -> (x, sqrt(1 - |x|^2) v_x)``; same map for data and queries."""
        x = check_vector(x, "x")
        norm = float(np.linalg.norm(x))
        if norm > 1.0 + 1e-9:
            raise DomainError(f"x must lie in the unit ball, got norm {norm:.6g}")
        tail = np.sqrt(max(0.0, 1.0 - norm * norm))
        return np.concatenate([x, tail * self.registry.companion(x)])

    def embed_many(self, X) -> np.ndarray:
        X = check_matrix(X, "X")
        return np.stack([self.embed(row) for row in X])

    # Aliases so the completion can slot into code written against the
    # asymmetric transform interface.
    embed_data = embed
    embed_query = embed
    embed_data_many = embed_many
    embed_query_many = embed_many
