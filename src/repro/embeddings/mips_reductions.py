"""Reductions of inner product search to similarity search on the sphere.

Three transforms appear in the paper and its comparison set:

* :class:`NeyshaburSrebroTransform` — the asymmetric map of [39] used in
  Section 4.1: a data vector ``p`` in the unit ball maps to
  ``(p, sqrt(1 - |p|^2), 0)``, a query ``q`` in the ball of radius ``U`` to
  ``(q/U, 0, sqrt(1 - |q|^2/U^2))``; both land on the unit sphere and the
  embedded inner product is ``p.q / U``.
* :class:`SimpleLSHTransform` — the symmetric variant (SIMPLE-LSH of [39]):
  ``x -> (x, sqrt(1 - |x|^2))`` for data in the unit ball; queries are
  assumed on the unit sphere and are padded with a zero.  Inner products
  are preserved exactly.
* :class:`L2ALSHTransform` — the original ALSH of Shrivastava and Li [45]:
  appends the norm powers ``|x|^2, |x|^4, ..., |x|^{2^m}`` to data and
  constants ``1/2`` to queries, turning MIPS into approximate nearest
  neighbor in Euclidean distance after a shrinking pre-scale.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DomainError, ParameterError
from repro.utils.validation import check_matrix, check_vector


def _norm_check(x: np.ndarray, limit: float, name: str, atol: float = 1e-9) -> float:
    norm = float(np.linalg.norm(x))
    if norm > limit + atol:
        raise DomainError(f"{name} must have norm <= {limit}, got {norm:.6g}")
    return norm


def _norms_check(X: np.ndarray, limit: float, name: str, atol: float = 1e-9) -> np.ndarray:
    """Row norms of ``X``, raising like :func:`_norm_check` on the first
    offending row so vectorized embeds fail identically to the row loop."""
    norms = np.linalg.norm(X, axis=1)
    over = norms > limit + atol
    if over.any():
        worst = float(norms[np.argmax(over)])
        raise DomainError(f"{name} must have norm <= {limit}, got {worst:.6g}")
    return norms


class NeyshaburSrebroTransform:
    """Asymmetric ball-to-sphere map of [39] (used by Section 4.1).

    Args:
        query_radius: the radius ``U`` of the query domain; data vectors
            must lie in the unit ball.
    """

    def __init__(self, query_radius: float = 1.0):
        if query_radius <= 0:
            raise ParameterError(f"query_radius must be positive, got {query_radius}")
        self.query_radius = float(query_radius)

    def output_dimension(self, d: int) -> int:
        return d + 2

    def embed_data(self, p) -> np.ndarray:
        """``p -> (p, sqrt(1 - |p|^2), 0)``, a unit vector."""
        p = check_vector(p, "p")
        norm = _norm_check(p, 1.0, "p")
        tail = np.sqrt(max(0.0, 1.0 - norm * norm))
        return np.concatenate([p, [tail, 0.0]])

    def embed_query(self, q) -> np.ndarray:
        """``q -> (q/U, 0, sqrt(1 - |q|^2 / U^2))``, a unit vector."""
        q = check_vector(q, "q")
        norm = _norm_check(q, self.query_radius, "q")
        scaled = q / self.query_radius
        ratio = norm / self.query_radius
        tail = np.sqrt(max(0.0, 1.0 - ratio * ratio))
        return np.concatenate([scaled, [0.0, tail]])

    def embed_data_many(self, P) -> np.ndarray:
        P = check_matrix(P, "P")
        norms = _norms_check(P, 1.0, "p")
        tails = np.sqrt(np.maximum(0.0, 1.0 - norms * norms))
        zeros = np.zeros((P.shape[0], 1))
        return np.concatenate([P, tails[:, None], zeros], axis=1)

    def embed_query_many(self, Q) -> np.ndarray:
        Q = check_matrix(Q, "Q")
        norms = _norms_check(Q, self.query_radius, "q")
        ratios = norms / self.query_radius
        tails = np.sqrt(np.maximum(0.0, 1.0 - ratios * ratios))
        zeros = np.zeros((Q.shape[0], 1))
        return np.concatenate([Q / self.query_radius, zeros, tails[:, None]], axis=1)

    def inner_product_scale(self) -> float:
        """Embedded inner products equal original ones times this factor."""
        return 1.0 / self.query_radius


class SimpleLSHTransform:
    """SIMPLE-LSH's symmetric unit-ball-to-sphere completion [39].

    Data in the unit ball maps to ``(x, sqrt(1 - |x|^2))``; queries must
    lie on the unit *sphere* and are zero-padded.  Inner products are
    preserved exactly, so hyperplane LSH on the images is an LSH for MIPS
    in this (ball data, sphere queries) setting — the regime [39] proves a
    symmetric LSH exists.
    """

    def output_dimension(self, d: int) -> int:
        return d + 1

    def embed_data(self, p) -> np.ndarray:
        p = check_vector(p, "p")
        norm = _norm_check(p, 1.0, "p")
        tail = np.sqrt(max(0.0, 1.0 - norm * norm))
        return np.concatenate([p, [tail]])

    def embed_query(self, q, atol: float = 1e-6) -> np.ndarray:
        q = check_vector(q, "q")
        norm = float(np.linalg.norm(q))
        if abs(norm - 1.0) > atol:
            raise DomainError(
                f"SIMPLE-LSH queries must lie on the unit sphere; |q| = {norm:.6g}"
            )
        return np.concatenate([q, [0.0]])

    def embed_data_many(self, P) -> np.ndarray:
        P = check_matrix(P, "P")
        norms = _norms_check(P, 1.0, "p")
        tails = np.sqrt(np.maximum(0.0, 1.0 - norms * norms))
        return np.concatenate([P, tails[:, None]], axis=1)

    def embed_query_many(self, Q, atol: float = 1e-6) -> np.ndarray:
        Q = check_matrix(Q, "Q")
        norms = np.linalg.norm(Q, axis=1)
        off = np.abs(norms - 1.0) > atol
        if off.any():
            worst = float(norms[np.argmax(off)])
            raise DomainError(
                f"SIMPLE-LSH queries must lie on the unit sphere; |q| = {worst:.6g}"
            )
        return np.concatenate([Q, np.zeros((Q.shape[0], 1))], axis=1)


class L2ALSHTransform:
    """The original L2-ALSH(SL) transform of Shrivastava and Li [45].

    Data vectors are pre-scaled by ``scale = max_norm_target / max |x|`` and
    extended with their norm powers; queries are normalized and extended
    with ``m`` halves::

        P(x) = (scale*x, |scale*x|^2, |scale*x|^4, ..., |scale*x|^{2^m})
        Q(q) = (q / |q|, 1/2, 1/2, ..., 1/2)

    Then ``|P(x) - Q(q)|^2 = 1 + m/4 - 2 scale (x.q)/|q| + |scale*x|^{2^{m+1}}``
    and the vanishing last term makes Euclidean NN on the images solve MIPS.

    Args:
        m: number of norm-power extension coordinates.
        max_norm_target: the paper's ``U_0 < 1`` pre-scale target.
    """

    def __init__(self, m: int = 3, max_norm_target: float = 0.83):
        if m < 1:
            raise ParameterError(f"m must be >= 1, got {m}")
        if not 0.0 < max_norm_target < 1.0:
            raise ParameterError(
                f"max_norm_target must be in (0, 1), got {max_norm_target}"
            )
        self.m = int(m)
        self.max_norm_target = float(max_norm_target)

    def output_dimension(self, d: int) -> int:
        return d + self.m

    def fit_scale(self, P) -> float:
        """The pre-scale taking the longest data vector to ``max_norm_target``."""
        P = check_matrix(P, "P")
        max_norm = float(np.linalg.norm(P, axis=1).max())
        if max_norm == 0:
            raise DomainError("data must contain a non-zero vector")
        return self.max_norm_target / max_norm

    def embed_data(self, p, scale: float) -> np.ndarray:
        p = check_vector(p, "p")
        x = p * float(scale)
        _norm_check(x, 1.0, "scaled data vector")
        norm_sq = float(x @ x)
        powers = np.empty(self.m, dtype=np.float64)
        value = norm_sq
        for i in range(self.m):
            powers[i] = value
            value = value * value
        return np.concatenate([x, powers])

    def embed_query(self, q) -> np.ndarray:
        q = check_vector(q, "q")
        norm = float(np.linalg.norm(q))
        if norm == 0:
            raise DomainError("query must be non-zero")
        return np.concatenate([q / norm, np.full(self.m, 0.5)])

    def embed_data_matrix(self, P, scale: float) -> np.ndarray:
        """Vectorized :meth:`embed_data` at an explicit pre-fitted scale."""
        P = check_matrix(P, "P")
        X = P * float(scale)
        _norms_check(X, 1.0, "scaled data vector")
        norm_sq = np.einsum("ij,ij->i", X, X)
        powers = np.empty((P.shape[0], self.m), dtype=np.float64)
        value = norm_sq
        for i in range(self.m):
            powers[:, i] = value
            value = value * value
        return np.concatenate([X, powers], axis=1)

    def embed_query_matrix(self, Q) -> np.ndarray:
        """Vectorized :meth:`embed_query`."""
        Q = check_matrix(Q, "Q")
        norms = np.linalg.norm(Q, axis=1)
        if (norms == 0).any():
            raise DomainError("query must be non-zero")
        return np.concatenate(
            [Q / norms[:, None], np.full((Q.shape[0], self.m), 0.5)], axis=1
        )

    def embed_data_many(self, P) -> np.ndarray:
        P = check_matrix(P, "P")
        return self.embed_data_matrix(P, self.fit_scale(P))

    def embed_query_many(self, Q) -> np.ndarray:
        return self.embed_query_matrix(Q)
