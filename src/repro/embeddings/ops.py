"""The ⊕ (concatenation) / ⊗ (tensoring) calculus of Lemma 3.

The paper's footnote 4 stresses the duality these combinators have with
``+`` and ``×`` on inner products in the embedded space:

* concatenation adds inner products:
  ``(x1 ⊕ x2) . (y1 ⊕ y2) = x1.y1 + x2.y2``
* tensoring multiplies them (the "folklore property"):
  ``(x1 ⊗ x2) . (y1 ⊗ y2) = (x1.y1)(x2.y2)``
* repetition scales them: ``x^{⊕n} . y^{⊕n} = n (x.y)``

These operate on :class:`repro.embeddings.base.PairMap` objects so the
recursive Chebyshev construction (Embedding 2) can be written exactly as
in the paper.  The paper's caveat applies: it is only safe to commute ⊕'s
and ⊗'s when both ``f`` and ``g`` are commuted identically, which the
combinators here enforce by construction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.embeddings.base import PairMap
from repro.errors import ParameterError


def concat_vectors(*vectors: np.ndarray) -> np.ndarray:
    """Plain vector concatenation (the paper's ``x ⊕ y``)."""
    return np.concatenate([np.asarray(v, dtype=np.float64).ravel() for v in vectors])


def tensor_vectors(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Flattened outer product (the paper's ``x ⊗ y``): vec(x y^T)."""
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    return np.outer(x, y).ravel()


def repeat_vector(x: np.ndarray, times: int) -> np.ndarray:
    """``x`` concatenated with itself ``times`` times (the paper's ``x^{⊕n}``)."""
    if times < 0:
        raise ParameterError(f"times must be non-negative, got {times}")
    return np.tile(np.asarray(x, dtype=np.float64).ravel(), times)


def concat_maps(*maps: PairMap) -> PairMap:
    """⊕ on pair maps: embedded inner products add.

    All operands must share the input dimension; the result's embedded
    inner product is the sum of the operands'.
    """
    if not maps:
        raise ParameterError("concat_maps needs at least one operand")
    d_in = maps[0].d_in
    if any(m.d_in != d_in for m in maps):
        raise ParameterError("all operands of concat_maps must share d_in")
    d_out = sum(m.d_out for m in maps)

    def f(x, _maps=maps):
        return concat_vectors(*[m.f(x) for m in _maps])

    def g(y, _maps=maps):
        return concat_vectors(*[m.g(y) for m in _maps])

    return PairMap(f=f, g=g, d_in=d_in, d_out=d_out)


def tensor_maps(left: PairMap, right: PairMap) -> PairMap:
    """⊗ on pair maps: embedded inner products multiply."""
    if left.d_in != right.d_in:
        raise ParameterError("operands of tensor_maps must share d_in")

    def f(x, _l=left, _r=right):
        return tensor_vectors(_l.f(x), _r.f(x))

    def g(y, _l=left, _r=right):
        return tensor_vectors(_l.g(y), _r.g(y))

    return PairMap(f=f, g=g, d_in=left.d_in, d_out=left.d_out * right.d_out)


def repeat_map(inner: PairMap, times: int) -> PairMap:
    """Repetition on pair maps: embedded inner product scales by ``times``."""
    if times <= 0:
        raise ParameterError(f"times must be positive, got {times}")

    def f(x, _m=inner, _t=times):
        return repeat_vector(_m.f(x), _t)

    def g(y, _m=inner, _t=times):
        return repeat_vector(_m.g(y), _t)

    return PairMap(f=f, g=g, d_in=inner.d_in, d_out=inner.d_out * times)


def constant_map(d_in: int, f_value: Sequence[float], g_value: Sequence[float]) -> PairMap:
    """A pair map ignoring its input; used for the translation tricks.

    Appending ``constant_map(d, ones(k), ±ones(k))`` to an embedding
    translates every embedded inner product by ``±k``, which is how both
    ±1 embeddings of Lemma 3 shift their gap.
    """
    f_arr = np.asarray(f_value, dtype=np.float64).ravel()
    g_arr = np.asarray(g_value, dtype=np.float64).ravel()
    if f_arr.size != g_arr.size:
        raise ParameterError("f_value and g_value must have equal length")

    def f(x, _v=f_arr):
        return _v.copy()

    def g(y, _v=g_arr):
        return _v.copy()

    return PairMap(f=f, g=g, d_in=d_in, d_out=int(f_arr.size))


def identity_map(d_in: int) -> PairMap:
    """The identity pair map (both sides pass vectors through)."""

    def passthrough(v):
        return np.asarray(v, dtype=np.float64).ravel()

    return PairMap(f=passthrough, g=passthrough, d_in=d_in, d_out=d_in)
