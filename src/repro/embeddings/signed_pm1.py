"""Embedding 1 of Lemma 3: the signed ``(d, 4d-4, 0, 4)`` embedding into {-1,1}.

The coordinate-wise gadget maps each bit to three ±1 coordinates::

    f^(0) = ( 1, -1, -1)      g^(0) = ( 1,  1, -1)
    f^(1) = ( 1,  1,  1)      g^(1) = (-1, -1, -1)

so that a coordinate pair contributes ``-3`` exactly when both bits are 1
and ``+1`` otherwise.  The whole-vector inner product is therefore
``d - 4 (x.y)``; appending ``d-4`` constant coordinates (ones on the data
side, minus-ones on the query side) translates it by ``-(d-4)``, giving
``4`` for orthogonal pairs and ``<= 0`` otherwise: a signed
``(d, 4d-4, 0, 4)``-gap embedding.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import GapEmbedding
from repro.errors import ParameterError
from repro.utils.validation import check_binary, check_vector


class SignedCoordinateEmbedding(GapEmbedding):
    """Signed ``(d, 4d-4, 0, 4)``-gap embedding into ``{-1, 1}``.

    Valid for any ``d >= 4`` (the translation needs ``d - 4 >= 0``).  The
    embedded inner product is exactly ``4 - 4 (x . y)``; note the magnitude
    can be as large as ``4d - 4`` for heavily-overlapping pairs, which is
    irrelevant for *signed* joins (the paper's remark after Embedding 1).
    """

    signed = True
    alphabet = (-1, 1)

    def __init__(self, d: int):
        if d < 4:
            raise ParameterError(f"SignedCoordinateEmbedding requires d >= 4, got {d}")
        self._d = int(d)

    @property
    def d_in(self) -> int:
        return self._d

    @property
    def d_out(self) -> int:
        return 4 * self._d - 4

    @property
    def s(self) -> float:
        return 4.0

    @property
    def cs(self) -> float:
        return 0.0

    @property
    def c(self) -> float:
        """cs / s = 0: any positive approximation factor is defeated."""
        return 0.0

    def embedded_inner_product(self, t: int) -> float:
        """Closed form: the embedded inner product when ``x . y == t``."""
        return 4.0 - 4.0 * float(t)

    def embed_left(self, x) -> np.ndarray:
        x = check_binary(check_vector(x, "x", dtype=np.int64), "x")
        if x.size != self._d:
            raise ParameterError(f"expected dimension {self._d}, got {x.size}")
        gadget = np.empty((self._d, 3), dtype=np.float64)
        gadget[:, 0] = 1.0
        gadget[:, 1] = 2.0 * x - 1.0
        gadget[:, 2] = 2.0 * x - 1.0
        return np.concatenate([gadget.ravel(), np.ones(self._d - 4)])

    def embed_right(self, y) -> np.ndarray:
        y = check_binary(check_vector(y, "y", dtype=np.int64), "y")
        if y.size != self._d:
            raise ParameterError(f"expected dimension {self._d}, got {y.size}")
        gadget = np.empty((self._d, 3), dtype=np.float64)
        gadget[:, 0] = 1.0 - 2.0 * y
        gadget[:, 1] = 1.0 - 2.0 * y
        gadget[:, 2] = -1.0
        return np.concatenate([gadget.ravel(), -np.ones(self._d - 4)])
