"""Valiant's randomized Chebyshev embedding (the one Lemma 3 derandomizes).

The paper notes its tensor construction "can provide similar results" to
the Chebyshev embedding of Valiant [51], "however, our construction is
deterministic, while Valiant's is randomized."  This module implements
the randomized counterpart so the two are comparable.

For ±1 vectors ``x, y`` of dimension ``D`` with ``u = x . y``, expand the
target polynomial in monomials of ``u``:

    b^q T_q(u / b) = sum_j w_j * E[ prod_{t<=j} x_{I_t} y_{I_t} ],
    w_j = t_{q,j} b^{q-j} D^j,

where ``t_{q,j}`` are the (integer) Chebyshev coefficients and the
``I_t`` are i.i.d. uniform coordinates (since ``u^j = D^j E[prod x y]``).
Sampling each embedding coordinate as a random monomial — degree ``j``
with probability ``|w_j| / W``, then ``j`` uniform indices — gives ±1
feature maps ``f, g`` with

    E[ (W / m) * f(x) . g(y) ] = b^q T_q(u / b)

and per-coordinate variance at most 1, i.e. estimator standard deviation
``<= W / sqrt(m)``.  The deterministic construction achieves the value
*exactly* with dimension ``<= (9d)^q``; the randomized one trades
dimension for variance — the comparison the ablation bench quantifies.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.embeddings.chebyshev import scaled_chebyshev
from repro.errors import ParameterError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_sign, check_vector


def chebyshev_coefficients(q: int) -> np.ndarray:
    """Integer coefficients of ``T_q``: ``T_q(z) = sum_j coeffs[j] z^j``."""
    if q < 0:
        raise ParameterError(f"q must be non-negative, got {q}")
    prev = np.zeros(q + 1, dtype=np.int64)
    prev[0] = 1  # T_0 = 1
    if q == 0:
        return prev
    curr = np.zeros(q + 1, dtype=np.int64)
    curr[1] = 1  # T_1 = z
    for _ in range(q - 1):
        nxt = np.zeros(q + 1, dtype=np.int64)
        nxt[1:] = 2 * curr[:-1]      # 2 z T_k
        nxt -= prev                   # - T_{k-1}
        prev, curr = curr, nxt
    return curr


class RandomizedChebyshevEmbedding:
    """Monomial-sampling estimator of ``b^q T_q(x . y / b)`` for ±1 vectors.

    Args:
        d: input dimension ``D`` (entries must be ±1).
        q: Chebyshev order.
        b: polynomial scale (the tensor construction uses ``b = 2 d_0``
            of its base gadget; any positive scale is accepted here).
        m: embedding dimension (number of sampled monomials).
        seed: monomial sampling seed — ``f`` and ``g`` must share it.
    """

    def __init__(self, d: int, q: int, b: float, m: int, seed: SeedLike = None):
        if d < 1:
            raise ParameterError(f"d must be >= 1, got {d}")
        if q < 1:
            raise ParameterError(f"q must be >= 1, got {q}")
        if b <= 0:
            raise ParameterError(f"b must be positive, got {b}")
        if m < 1:
            raise ParameterError(f"m must be >= 1, got {m}")
        self.d = int(d)
        self.q = int(q)
        self.b = float(b)
        self.m = int(m)
        coeffs = chebyshev_coefficients(self.q).astype(np.float64)
        degrees = np.arange(self.q + 1)
        weights = coeffs * self.b ** (self.q - degrees) * float(self.d) ** degrees
        self.total_weight = float(np.abs(weights).sum())
        probabilities = np.abs(weights) / self.total_weight
        rng = ensure_rng(seed)
        self._degrees = rng.choice(self.q + 1, size=self.m, p=probabilities)
        self._signs = np.sign(weights)[self._degrees]
        # Index table padded to max degree; unused slots are ignored.
        self._indices = rng.integers(0, self.d, size=(self.m, max(1, self.q)))

    @property
    def scale(self) -> float:
        """Multiply ``f(x) . g(y)`` by this (``W / m``) to estimate the value."""
        return self.total_weight / self.m

    @property
    def standard_deviation_bound(self) -> float:
        """``W / sqrt(m)``: worst-case std of the scaled estimate."""
        return self.total_weight / math.sqrt(self.m)

    def _monomials(self, x: np.ndarray) -> np.ndarray:
        out = np.ones(self.m)
        for t in range(self.q):
            active = self._degrees > t
            out[active] *= x[self._indices[active, t]]
        return out

    def embed_left(self, x) -> np.ndarray:
        x = check_sign(check_vector(x, "x", dtype=np.int64), "x").astype(np.float64)
        if x.size != self.d:
            raise ParameterError(f"expected dimension {self.d}, got {x.size}")
        return self._signs * self._monomials(x)

    def embed_right(self, y) -> np.ndarray:
        y = check_sign(check_vector(y, "y", dtype=np.int64), "y").astype(np.float64)
        if y.size != self.d:
            raise ParameterError(f"expected dimension {self.d}, got {y.size}")
        return self._monomials(y)

    def estimate(self, x, y) -> float:
        """The scaled estimator of ``b^q T_q(x . y / b)``."""
        return self.scale * float(self.embed_left(x) @ self.embed_right(y))

    def exact_value(self, inner_product: float) -> float:
        """The quantity being estimated, from the closed form."""
        return scaled_chebyshev(self.q, inner_product, self.b)
