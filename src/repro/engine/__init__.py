"""Unified join engine: registry, cost-model planner, one dispatch path.

``repro.engine.join(P, Q, spec)`` answers every IPS join variant the
repository implements through one code path; ``backend="auto"`` asks the
cost-model planner to pick among single-stage plans and two-stage
hybrids (:mod:`repro.engine.plan`), and ``n_workers=`` shards the query
set across processes without changing results.  See
:mod:`repro.engine.protocol` for the backend contract and
``docs/ARCHITECTURE.md`` for the layer map and the Plan IR.
"""

from repro.engine.api import join, plan
from repro.engine.backends import (
    BruteForceBackend,
    LSHBackend,
    NormPrunedBackend,
    SketchBackend,
)
from repro.engine.plan import (
    Plan,
    Stage,
    norm_prefix_lsh_plan,
    quantized_filter_plan,
    sketch_fallback_plan,
)
from repro.engine.planner import CostModel, JoinPlan, PlanEstimate, plan_join
from repro.engine.protocol import ChunkResult, CostEstimate, JoinBackend
from repro.engine.sharding import shard_bounds, sharded_join
from repro.engine.registry import (
    available_backends,
    backends_for_variant,
    get_backend,
    register,
)
from repro.quant.backend import IPFilterBackend, QuantizedBackend

# Built-in backends register on import, exact ones first: planner ties
# resolve toward the stronger (exact) guarantee.  The compact tier
# appends after the originals so registration order (and the
# index-based planner tie-break) is stable across releases.
if "brute_force" not in available_backends():
    register(BruteForceBackend())
    register(NormPrunedBackend())
    register(LSHBackend())
    register(SketchBackend())
    register(QuantizedBackend())
    register(IPFilterBackend())

__all__ = [
    "join",
    "plan",
    "plan_join",
    "sharded_join",
    "shard_bounds",
    "Plan",
    "Stage",
    "norm_prefix_lsh_plan",
    "quantized_filter_plan",
    "sketch_fallback_plan",
    "PlanEstimate",
    "JoinBackend",
    "ChunkResult",
    "CostEstimate",
    "CostModel",
    "JoinPlan",
    "register",
    "get_backend",
    "available_backends",
    "backends_for_variant",
    "BruteForceBackend",
    "NormPrunedBackend",
    "LSHBackend",
    "SketchBackend",
    "QuantizedBackend",
    "IPFilterBackend",
]
