"""Unified join engine: registry, cost-model planner, one dispatch path.

``repro.engine.join(P, Q, spec)`` answers every IPS join variant the
repository implements through one code path; ``backend="auto"`` asks the
cost-model planner to pick among single-stage plans and two-stage
hybrids (:mod:`repro.engine.plan`), and ``n_workers=`` shards the query
set across processes without changing results.  For serving workloads,
``engine.open(P, spec)`` prepares a long-lived
:class:`~repro.engine.session.JoinSession` — plan/build once, then
``session.query(Q)`` / ``session.query_stream(chunks)`` repeatedly,
``session.save(path)`` / ``engine.open_path(path)`` for zero-copy
memmapped reloads.  See :mod:`repro.engine.protocol` for the backend
contract and ``docs/ARCHITECTURE.md`` for the layer map, the Plan IR,
and the session lifecycle.
"""

from repro.engine.api import join, plan
from repro.engine.backends import (
    BruteForceBackend,
    LSHBackend,
    NormPrunedBackend,
    SketchBackend,
)
from repro.engine.plan import (
    Plan,
    Stage,
    norm_prefix_lsh_plan,
    quantized_filter_plan,
    sketch_fallback_plan,
)
from repro.engine.planner import CostModel, JoinPlan, PlanEstimate, plan_join
from repro.engine.protocol import (
    ChunkResult,
    CostEstimate,
    JoinBackend,
    persistable_arrays,
)
from repro.engine.session import (
    DEFAULT_EXPECTED_QUERIES,
    DEFAULT_QUERY_BATCH_HINT,
    JoinSession,
    open_path,
    open_session,
)
from repro.engine.sharding import (
    ShardedSession,
    open_sharded,
    shard_bounds,
    sharded_join,
)

# ``engine.open(P, spec)`` is the canonical session entry point; the
# module-level name shadows the builtin only inside this namespace.
open = open_session
from repro.engine.measures import (
    MeasureDescriptor,
    available_measures,
    get_measure,
    register_measure,
)
from repro.engine.registry import (
    available_backends,
    backends_for,
    backends_for_variant,
    capability_matrix,
    get_backend,
    register,
)
from repro.engine.set_backends import MinHashLSHBackend, SetScanBackend
from repro.quant.backend import IPFilterBackend, QuantizedBackend

# Built-in backends register on import, exact ones first: planner ties
# resolve toward the stronger (exact) guarantee.  The compact tier
# appends after the originals, and the Jaccard measure's backends after
# that, so registration order (and the index-based planner tie-break)
# is stable across releases.
if "brute_force" not in available_backends():
    register(BruteForceBackend())
    register(NormPrunedBackend())
    register(LSHBackend())
    register(SketchBackend())
    register(QuantizedBackend())
    register(IPFilterBackend())
    register(SetScanBackend())
    register(MinHashLSHBackend())

__all__ = [
    "join",
    "plan",
    "plan_join",
    "open",
    "open_session",
    "open_path",
    "open_sharded",
    "JoinSession",
    "ShardedSession",
    "DEFAULT_EXPECTED_QUERIES",
    "DEFAULT_QUERY_BATCH_HINT",
    "persistable_arrays",
    "sharded_join",
    "shard_bounds",
    "Plan",
    "Stage",
    "norm_prefix_lsh_plan",
    "quantized_filter_plan",
    "sketch_fallback_plan",
    "PlanEstimate",
    "JoinBackend",
    "ChunkResult",
    "CostEstimate",
    "CostModel",
    "JoinPlan",
    "register",
    "get_backend",
    "available_backends",
    "backends_for",
    "backends_for_variant",
    "capability_matrix",
    "MeasureDescriptor",
    "register_measure",
    "get_measure",
    "available_measures",
    "BruteForceBackend",
    "NormPrunedBackend",
    "LSHBackend",
    "SketchBackend",
    "QuantizedBackend",
    "IPFilterBackend",
    "SetScanBackend",
    "MinHashLSHBackend",
]
