"""Unified join engine: registry, cost-model planner, one dispatch path.

``repro.engine.join(P, Q, spec)`` answers every IPS join variant the
repository implements through one code path; ``backend="auto"`` asks the
cost-model planner to pick among the registered backends, and
``n_workers=`` shards the query set across processes without changing
results.  See :mod:`repro.engine.protocol` for the backend contract and
``docs/ARCHITECTURE.md`` for the layer map.
"""

from repro.engine.api import join, plan
from repro.engine.backends import (
    BruteForceBackend,
    LSHBackend,
    NormPrunedBackend,
    SketchBackend,
)
from repro.engine.planner import CostModel, JoinPlan, plan_join
from repro.engine.protocol import ChunkResult, CostEstimate, JoinBackend
from repro.engine.registry import available_backends, get_backend, register

# Built-in backends register on import, exact ones first: planner ties
# resolve toward the stronger (exact) guarantee.
if "brute_force" not in available_backends():
    register(BruteForceBackend())
    register(NormPrunedBackend())
    register(LSHBackend())
    register(SketchBackend())

__all__ = [
    "join",
    "plan",
    "plan_join",
    "JoinBackend",
    "ChunkResult",
    "CostEstimate",
    "CostModel",
    "JoinPlan",
    "register",
    "get_backend",
    "available_backends",
    "BruteForceBackend",
    "NormPrunedBackend",
    "LSHBackend",
    "SketchBackend",
]
