"""The one dispatch path for every IPS join: ``repro.engine.join``.

Every join the repository can answer — signed or unsigned, threshold,
top-k or self, exact or approximate, serial or process-parallel — runs
through this function:

1. normalize inputs (``Q=None`` means a self-join of ``P``);
2. resolve the request into a :class:`~repro.engine.plan.Plan`: an
   explicit registry name becomes the one-stage special case, a
   :class:`~repro.engine.plan.Plan` instance is executed as-is, and
   ``"auto"`` lets the cost-model planner (:mod:`repro.engine.planner`)
   rank single-stage plans *and* two-stage hybrids;
3. execution walks the plan's stages under one ``JoinResult``: each
   stage's ``backend.prepare`` turns its options into a picklable
   structure payload over the stage's point subset, and the executor
   (:func:`repro.core.executor.map_query_chunks`) shards the stage's
   query subset into block-aligned chunks and runs the backend's
   ``run_chunk`` over each — in-process for ``n_workers=1``, across a
   process pool otherwise;
4. chunk results merge in query order through the executor's single
   merge path (:func:`repro.core.executor.merge_join_chunks` +
   :meth:`~repro.core.problems.QueryStats.merge`); for multi-stage
   plans the merged stage results fold into the global match arrays,
   and the unanswered-query mask flows to the next stage.

Because serial execution is literally the one-chunk case of the same
code, ``n_workers`` is an orthogonal knob: it never changes matches,
work counters, or stats — and because each stage's unanswered mask is
computed from its *fully merged* result, that holds stage by stage for
multi-stage plans too.

Since the session split (:mod:`repro.engine.session`), ``join()`` itself
is a thin shim: it opens a *lazy* :class:`~repro.engine.session.JoinSession`
(no eager planning, preparation, or pool ownership) and runs exactly one
query through the shared dispatch in :mod:`repro.engine.execute` —
which is the old monolith's stage-walk, extracted verbatim.  Planning
happens inside the query's ``planner`` span with ``expected_queries=1``
(the amortized ranking reduces to the historical one), and stages
prepare inline inside their spans, so results, span trees, stage
records, and planner-log records are bit-identical to the pre-session
engine.  Callers who run many queries against one ``P`` should hold a
session (``engine.open``) instead and amortize the build.

Observability (:mod:`repro.obs`) hangs off the same path.  With
``trace=True`` the dispatch runs under a span tracer — ``planner``,
then for one-stage plans ``prepare`` (with the index/sketch ``build``),
one ``run_chunk`` tree per chunk (stitched back from workers when
``n_workers > 1``), and ``merge``; multi-stage plans get one ``stage``
span per stage (each containing that stage's ``prepare``/``run``/
``merge``) plus a final top-level ``merge`` — and a metrics registry
that folds in the merged :class:`~repro.core.problems.QueryStats` plus
the kernels' GEMM/bucket instruments; both land on the returned
``JoinResult``.  Independently of tracing, every dispatch appends one
:class:`~repro.obs.planner_log.PlannerRecord` (predictions for auto
picks, measured wall time for all, one ``stages`` entry per executed
stage) to the process-current
:class:`~repro.obs.planner_log.PlannerLog` for regret analysis and
cost-model recalibration.

The *serving* telemetry tier — per-query trace sampling
(``engine.open(..., trace_sample_rate=...)``), always-on latency
histograms with ``Histogram.quantile`` percentile readouts, resource
snapshots, and the rotating JSONL event sink
(``session.attach_sink``) — lives on :class:`JoinSession` rather than
here: one-shot joins have no "per-query" dimension to sample over.
``join()`` still stamps worker-side chunk wall times on its chunk
results (``ChunkResult.wall_ns``), so the same executor path feeds
session latency histograms without a second timing layer.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from repro.core.executor import WorkerPool, resolve_workers
from repro.core.problems import JoinResult, JoinSpec
from repro.core.verify import DEFAULT_BLOCK
from repro.engine.measures import get_measure
from repro.engine.plan import Plan
from repro.engine.planner import CostModel, JoinPlan, plan_join
from repro.engine.session import JoinSession
from repro.errors import ParameterError


def _normalize_inputs(P, Q, spec: JoinSpec):
    """Resolve the (P, Q, spec) triangle for all variants.

    Validation and compatibility delegate to the spec's measure
    descriptor: dense float matrices for ``ip`` (byte-for-byte the old
    ``check_matrix``/``validate_join_inputs`` path), CSR set collections
    for ``jaccard``.
    """
    measure = get_measure(spec.measure)
    if Q is None:
        spec = spec if spec.self_join else replace(spec, self_join=True)
        P = measure.validate(P, "P")
        if P.shape[0] < 2:
            raise ParameterError("self-join needs at least two vectors")
        return P, P, spec
    if spec.self_join:
        raise ParameterError(
            "self-join specs take a single set: pass Q=None"
        )
    P = measure.validate(P, "P")
    Q = measure.validate(Q, "Q")
    measure.check_compatible(P, Q)
    return P, Q, spec


def plan(
    P,
    Q,
    spec: JoinSpec,
    model: Optional[CostModel] = None,
    include_hybrids: bool = True,
    n_workers: Union[int, str] = 1,
) -> JoinPlan:
    """Rank candidate plans for this instance without running anything.

    The same planner call ``backend="auto"`` uses; exposed so callers
    (and the dispatch bench) can inspect *why* a plan was chosen.
    ``n_workers`` re-prices estimates for parallel execution
    (:meth:`~repro.engine.planner.CostModel.parallelize`).
    """
    P, Q, spec = _normalize_inputs(P, Q, spec)
    return plan_join(
        P.shape[0], Q.shape[0], P.shape[1], spec, model,
        include_hybrids=include_hybrids,
        n_workers=resolve_workers(n_workers),
    )


def join(
    P,
    Q,
    spec: JoinSpec,
    *,
    backend: Union[str, Plan] = "auto",
    seed=None,
    n_workers: Union[int, str] = 1,
    block: int = DEFAULT_BLOCK,
    model: Optional[CostModel] = None,
    trace: bool = False,
    pool: str = "process",
    executor: Optional[WorkerPool] = None,
    blas_threads: Optional[int] = None,
    **options,
) -> JoinResult:
    """Answer a ``(cs, s)`` join (any variant) through one dispatch path.

    Args:
        P: data matrix, shape (n, d).
        Q: query matrix, shape (m, d); ``None`` for a self-join of ``P``.
        spec: the problem record — thresholds, signedness, and the
            top-k / self variants (:class:`~repro.core.problems.JoinSpec`).
        backend: a registered backend name (``brute_force``,
            ``norm_pruned``, ``lsh``, ``sketch``, ...), a
            :class:`~repro.engine.plan.Plan` to execute as-is, or
            ``"auto"`` to let the cost-model planner choose among
            single-stage plans and two-stage hybrids.
        seed: reproducibility seed for backends that build randomized
            structures; must be a concrete integer when combined with
            ``n_workers > 1`` (workers rebuild from it).  Stage ``i`` of
            a multi-stage plan derives its own seed as ``seed + i``.
        n_workers: worker count or ``"auto"`` (cpu_count capped by
            ``REPRO_MAX_WORKERS``) — an orthogonal execution knob routed
            through :mod:`repro.core.executor`; results are identical
            for any value, stage by stage, in every pool kind.
        block: query block size; chunk boundaries align to it.
        model: optional calibrated :class:`~repro.engine.planner.CostModel`
            for ``backend="auto"``; when omitted, the persisted
            calibration cache is consulted
            (:func:`~repro.engine.planner.default_model`).
        trace: record a span trace and metrics for this join; the
            result's ``trace``/``metrics`` fields carry them.  Off by
            default — the disabled instrumentation path costs < 2% (the
            ``obs_overhead`` bench enforces it).
        pool: parallel execution flavour — ``"process"`` (shared-memory
            arena, persistent process pool) or ``"thread"`` (BLAS
            releases the GIL inside the chunk GEMMs; zero
            serialization).  Ignored when ``n_workers`` resolves to 1.
        executor: a caller-managed
            :class:`~repro.core.executor.WorkerPool` to run on instead
            of the persistent registry pool.
        blas_threads: BLAS threads per worker (default: the fair share
            ``cpu_count // n_workers``), preventing k workers x m BLAS
            threads oversubscription.
        options: backend-specific options (``family=...``, ``index=...``,
            ``kappa=...``, ``scan_block=...``, ...), validated by the
            chosen backend's ``prepare``.  They bind to a *single*
            backend: with ``backend="auto"`` they restrict the planner
            to single-stage plans, and they cannot accompany an explicit
            ``Plan`` (whose stages carry their own options).

    Returns:
        A :class:`~repro.core.problems.JoinResult` carrying matches (and
        ``topk`` lists for ``spec.k`` tasks), work counters, the plan's
        backend name (stage names joined by ``+`` for hybrids), merged
        :class:`~repro.core.problems.QueryStats`, and — for traced
        joins — the span tree and metrics registry.
    """
    P, Q, spec = _normalize_inputs(P, Q, spec)
    # The one-shot path is a lazy session: nothing is planned or
    # prepared here — the single _dispatch call below plans inside its
    # own planner span and prepares stages inline, reproducing the
    # historical monolith bit for bit.  No pool is owned either: the
    # query routes through the persistent registry pool (or the caller's
    # executor) exactly as before, so nothing is torn down afterwards.
    session = JoinSession._lazy(
        P, spec,
        backend=backend, seed=seed, n_workers=n_workers, block=block,
        model=model, pool=pool, executor=executor,
        blas_threads=blas_threads, **options,
    )
    return session._dispatch(Q, trace=trace, root="engine.join")
