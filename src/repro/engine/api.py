"""The one dispatch path for every IPS join: ``repro.engine.join``.

Every join the repository can answer — signed or unsigned, threshold,
top-k or self, exact or approximate, serial or process-parallel — runs
through this function:

1. normalize inputs (``Q=None`` means a self-join of ``P``);
2. resolve the request into a :class:`~repro.engine.plan.Plan`: an
   explicit registry name becomes the one-stage special case, a
   :class:`~repro.engine.plan.Plan` instance is executed as-is, and
   ``"auto"`` lets the cost-model planner (:mod:`repro.engine.planner`)
   rank single-stage plans *and* two-stage hybrids;
3. execution walks the plan's stages under one ``JoinResult``: each
   stage's ``backend.prepare`` turns its options into a picklable
   structure payload over the stage's point subset, and the executor
   (:func:`repro.core.executor.map_query_chunks`) shards the stage's
   query subset into block-aligned chunks and runs the backend's
   ``run_chunk`` over each — in-process for ``n_workers=1``, across a
   process pool otherwise;
4. chunk results merge in query order through the executor's single
   merge path (:func:`repro.core.executor.merge_join_chunks` +
   :meth:`~repro.core.problems.QueryStats.merge`); for multi-stage
   plans the merged stage results fold into the global match arrays,
   and the unanswered-query mask flows to the next stage.

Because serial execution is literally the one-chunk case of the same
code, ``n_workers`` is an orthogonal knob: it never changes matches,
work counters, or stats — and because each stage's unanswered mask is
computed from its *fully merged* result, that holds stage by stage for
multi-stage plans too.

Observability (:mod:`repro.obs`) hangs off the same path.  With
``trace=True`` the dispatch runs under a span tracer — ``planner``,
then for one-stage plans ``prepare`` (with the index/sketch ``build``),
one ``run_chunk`` tree per chunk (stitched back from workers when
``n_workers > 1``), and ``merge``; multi-stage plans get one ``stage``
span per stage (each containing that stage's ``prepare``/``run``/
``merge``) plus a final top-level ``merge`` — and a metrics registry
that folds in the merged :class:`~repro.core.problems.QueryStats` plus
the kernels' GEMM/bucket instruments; both land on the returned
``JoinResult``.  Independently of tracing, every dispatch appends one
:class:`~repro.obs.planner_log.PlannerRecord` (predictions for auto
picks, measured wall time for all, one ``stages`` entry per executed
stage) to the process-current
:class:`~repro.obs.planner_log.PlannerLog` for regret analysis and
cost-model recalibration.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import replace
from typing import List, Optional, Union

import numpy as np

from repro.core.executor import (
    WorkerPool,
    _engine_runner,
    map_query_chunks,
    merge_join_chunks,
    resolve_workers,
)
from repro.core.problems import (
    JoinResult,
    JoinSpec,
    QueryStats,
    validate_join_inputs,
)
from repro.core.verify import DEFAULT_BLOCK
from repro.engine.plan import Plan, stage_point_indices
from repro.engine.planner import CostModel, JoinPlan, plan_join
from repro.engine.registry import get_backend
from repro.errors import ParameterError
from repro.obs import MetricsRegistry, Tracer, observe
from repro.obs.planner_log import PlannerRecord, current_log
from repro.utils.validation import check_matrix


def _normalize_inputs(P, Q, spec: JoinSpec):
    """Resolve the (P, Q, spec) triangle for all variants."""
    if Q is None:
        spec = spec if spec.self_join else replace(spec, self_join=True)
        P = check_matrix(P, "P")
        if P.shape[0] < 2:
            raise ParameterError("self-join needs at least two vectors")
        return P, P, spec
    if spec.self_join:
        raise ParameterError(
            "self-join specs take a single set: pass Q=None"
        )
    return (*validate_join_inputs(P, Q), spec)


def plan(
    P,
    Q,
    spec: JoinSpec,
    model: Optional[CostModel] = None,
    include_hybrids: bool = True,
    n_workers: Union[int, str] = 1,
) -> JoinPlan:
    """Rank candidate plans for this instance without running anything.

    The same planner call ``backend="auto"`` uses; exposed so callers
    (and the dispatch bench) can inspect *why* a plan was chosen.
    ``n_workers`` re-prices estimates for parallel execution
    (:meth:`~repro.engine.planner.CostModel.parallelize`).
    """
    P, Q, spec = _normalize_inputs(P, Q, spec)
    return plan_join(
        P.shape[0], Q.shape[0], P.shape[1], spec, model,
        include_hybrids=include_hybrids,
        n_workers=resolve_workers(n_workers),
    )


def _fold_stats_metrics(registry: MetricsRegistry, result: JoinResult) -> None:
    """Mirror the merged work counters into engine-level metric names."""
    registry.counter("engine.joins").inc()
    registry.counter("engine.inner_products_evaluated").inc(
        result.inner_products_evaluated
    )
    registry.counter("engine.candidates_generated").inc(
        result.candidates_generated
    )
    stats = result.stats
    if stats is not None:
        registry.counter("engine.queries").inc(stats.queries)
        registry.counter("engine.candidates").inc(stats.candidates)
        registry.counter("engine.unique_candidates").inc(stats.unique_candidates)
        registry.counter("engine.probe_candidates").inc(stats.probe_candidates)
        registry.counter("engine.probed_buckets").inc(stats.probed_buckets)


def _fold_stage_matches(
    matches: List[Optional[int]],
    topk: Optional[List[List[int]]],
    answered: np.ndarray,
    stage_result: JoinResult,
    q_idx: np.ndarray,
    point_idx: Optional[np.ndarray],
    P,
    Q,
    spec: JoinSpec,
    stage_spec: JoinSpec,
):
    """Fold one stage's (stage-local) results into the global arrays.

    ``q_idx``/``point_idx`` map stage-local query/data positions back to
    global indices.  A query counts as *answered* when it gains a match
    (for top-k: a non-empty list); answered queries are never
    overwritten, so the first stage to answer wins deterministically.
    A stage that ran under a weaker final spec (the sketch substitutes
    its own ``c``) gets its matches re-verified at the caller's ``cs``
    before the query counts as answered — the extra dot products are
    returned so the engine can bill them.  Returns
    ``(newly_answered, extra_evaluated)``.
    """
    newly = 0
    extra_eval = 0
    if spec.is_topk:
        for qpos, lst in enumerate(stage_result.topk or []):
            gq = int(q_idx[qpos])
            if answered[gq] or not lst:
                continue
            if point_idx is not None:
                lst = [int(point_idx[li]) for li in lst]
            else:
                lst = [int(li) for li in lst]
            topk[gq] = lst
            matches[gq] = lst[0]
            answered[gq] = True
            newly += 1
        return newly, extra_eval
    reverify = stage_spec.cs < spec.cs
    for qpos, local in enumerate(stage_result.matches):
        if local is None:
            continue
        gq = int(q_idx[qpos])
        if answered[gq]:
            continue
        gi = int(point_idx[local]) if point_idx is not None else int(local)
        if reverify:
            value = float(P[gi] @ Q[gq])
            extra_eval += 1
            score = value if spec.signed else abs(value)
            if score < spec.cs:
                continue
        matches[gq] = gi
        answered[gq] = True
        newly += 1
    return newly, extra_eval


def _run_stage_plan(
    the_plan: Plan,
    P,
    Q,
    spec: JoinSpec,
    *,
    seed,
    n_workers: int,
    block: int,
    trace: bool,
    tracer: Tracer,
    pool: str,
    executor: Optional[WorkerPool],
    blas_threads: Optional[int],
):
    """Walk a multi-stage plan's stages under one global result.

    Each stage runs the standard ``prepare``/``run``/``merge`` pipeline
    on its point/query subset under a ``stage`` span; the unanswered
    mask is recomputed from the fully merged stage result, so worker
    count cannot change what the next stage sees.  Returns
    ``(result, chunks, stage_records)``.
    """
    m = Q.shape[0]
    matches: List[Optional[int]] = [None] * m
    topk: Optional[List[List[int]]] = (
        [[] for _ in range(m)] if spec.is_topk else None
    )
    answered = np.zeros(m, dtype=bool)
    evaluated = 0
    generated = 0
    merged_stats = QueryStats()
    all_chunks = []
    stage_records: List[dict] = []
    pending_proposals = None
    for i, stage in enumerate(the_plan.stages):
        stage_wall = time.perf_counter()
        label = stage.label or stage.backend
        with tracer.span(
            "stage",
            index=i,
            backend=stage.backend,
            label=label,
            queries=stage.queries,
            points=stage.points,
        ) as stage_span:
            point_idx = stage_point_indices(stage, P)
            P_stage = P if point_idx is None else P[point_idx]
            if stage.queries == "all":
                q_idx = np.arange(m, dtype=np.int64)
            else:
                q_idx = np.flatnonzero(~answered)
            record = dict(
                index=i, backend=stage.backend,
                n=int(P_stage.shape[0]), m=int(q_idx.size),
                wall_s=0.0, evaluated=0, generated=0, answered=0,
            )
            if stage_span is not None:
                stage_span.attrs.update(n=int(P_stage.shape[0]), m=int(q_idx.size))
            if q_idx.size == 0:
                # Every query already answered: the stage is a no-op, but
                # it still shows up in spans and stage records so regret
                # attribution sees the plan shape that actually ran.
                record["wall_s"] = time.perf_counter() - stage_wall
                stage_records.append(record)
                continue
            Q_stage = Q[q_idx]
            impl = get_backend(stage.backend)
            is_filter = bool(getattr(impl, "is_filter", False))
            if is_filter != (stage.kind == "filter"):
                raise ParameterError(
                    f"backend {stage.backend!r} "
                    + ("is a filter stage and needs kind='filter'"
                       if is_filter else
                       f"cannot run as a kind={stage.kind!r} stage")
                )
            stage_options = dict(stage.options)
            if pending_proposals is not None:
                # The previous stage was a filter: hand its survivor
                # lists to this stage's prepare as candidate proposals.
                stage_options["proposals"] = pending_proposals
                pending_proposals = None
            stage_seed = None if seed is None else seed + i
            with tracer.span("prepare", backend=stage.backend):
                payload, stage_spec = impl.prepare(
                    P_stage, spec, seed=stage_seed, block=block,
                    n_workers=n_workers, **stage_options,
                )
                if trace and hasattr(payload, "build"):
                    # The zero-copy executor builds in the parent for
                    # every worker count, so the trace can always price
                    # construction here (engine builds are idempotent).
                    with tracer.span("build"):
                        payload = payload.build(P_stage)
            with tracer.span("run") as run_span:
                chunks = map_query_chunks(
                    payload, P_stage, Q_stage, _engine_runner,
                    (stage.backend, trace, label),
                    n_workers=n_workers, block=block,
                    pool=pool, executor=executor, blas_threads=blas_threads,
                )
            if run_span is not None:
                run_span.children.extend(c.trace for c in chunks if c.trace)
            with tracer.span("merge"):
                stage_result = merge_join_chunks(
                    [
                        (c.matches, c.evaluated, c.generated, c.stats)
                        for c in chunks
                    ],
                    stage_spec,
                    backend=stage.backend,
                )
                if stage_spec.is_topk:
                    stage_result.topk = [
                        lst for c in chunks for lst in (c.topk or [])
                    ]
                if is_filter:
                    # Filter stages answer nothing: concatenate the
                    # per-chunk survivor lists (chunk order = query
                    # order) and remap structure-local point indices to
                    # global ones for the consuming stage.
                    proposals = [
                        lst for c in chunks for lst in (c.proposals or [])
                    ]
                    if point_idx is not None:
                        proposals = [point_idx[lst] for lst in proposals]
                    pending_proposals = proposals
                    newly, extra_eval = 0, 0
                else:
                    newly, extra_eval = _fold_stage_matches(
                        matches, topk, answered, stage_result,
                        q_idx, point_idx, P, Q, spec, stage_spec,
                    )
            all_chunks.extend(chunks)
            stage_eval = stage_result.inner_products_evaluated + extra_eval
            evaluated += stage_eval
            generated += stage_result.candidates_generated
            merged_stats = merged_stats.merge(stage_result.stats)
            record.update(
                wall_s=time.perf_counter() - stage_wall,
                evaluated=int(stage_eval),
                generated=int(stage_result.candidates_generated),
                answered=int(newly),
            )
            stage_records.append(record)
            if stage_span is not None:
                stage_span.attrs.update(answered=int(newly))
    result = JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=int(evaluated),
        candidates_generated=int(generated),
        topk=topk,
        backend=the_plan.backend,
        stats=merged_stats,
    )
    return result, all_chunks, stage_records


def join(
    P,
    Q,
    spec: JoinSpec,
    *,
    backend: Union[str, Plan] = "auto",
    seed=None,
    n_workers: Union[int, str] = 1,
    block: int = DEFAULT_BLOCK,
    model: Optional[CostModel] = None,
    trace: bool = False,
    pool: str = "process",
    executor: Optional[WorkerPool] = None,
    blas_threads: Optional[int] = None,
    **options,
) -> JoinResult:
    """Answer a ``(cs, s)`` join (any variant) through one dispatch path.

    Args:
        P: data matrix, shape (n, d).
        Q: query matrix, shape (m, d); ``None`` for a self-join of ``P``.
        spec: the problem record — thresholds, signedness, and the
            top-k / self variants (:class:`~repro.core.problems.JoinSpec`).
        backend: a registered backend name (``brute_force``,
            ``norm_pruned``, ``lsh``, ``sketch``, ...), a
            :class:`~repro.engine.plan.Plan` to execute as-is, or
            ``"auto"`` to let the cost-model planner choose among
            single-stage plans and two-stage hybrids.
        seed: reproducibility seed for backends that build randomized
            structures; must be a concrete integer when combined with
            ``n_workers > 1`` (workers rebuild from it).  Stage ``i`` of
            a multi-stage plan derives its own seed as ``seed + i``.
        n_workers: worker count or ``"auto"`` (cpu_count capped by
            ``REPRO_MAX_WORKERS``) — an orthogonal execution knob routed
            through :mod:`repro.core.executor`; results are identical
            for any value, stage by stage, in every pool kind.
        block: query block size; chunk boundaries align to it.
        model: optional calibrated :class:`~repro.engine.planner.CostModel`
            for ``backend="auto"``; when omitted, the persisted
            calibration cache is consulted
            (:func:`~repro.engine.planner.default_model`).
        trace: record a span trace and metrics for this join; the
            result's ``trace``/``metrics`` fields carry them.  Off by
            default — the disabled instrumentation path costs < 2% (the
            ``obs_overhead`` bench enforces it).
        pool: parallel execution flavour — ``"process"`` (shared-memory
            arena, persistent process pool) or ``"thread"`` (BLAS
            releases the GIL inside the chunk GEMMs; zero
            serialization).  Ignored when ``n_workers`` resolves to 1.
        executor: a caller-managed
            :class:`~repro.core.executor.WorkerPool` to run on instead
            of the persistent registry pool.
        blas_threads: BLAS threads per worker (default: the fair share
            ``cpu_count // n_workers``), preventing k workers x m BLAS
            threads oversubscription.
        options: backend-specific options (``family=...``, ``index=...``,
            ``kappa=...``, ``scan_block=...``, ...), validated by the
            chosen backend's ``prepare``.  They bind to a *single*
            backend: with ``backend="auto"`` they restrict the planner
            to single-stage plans, and they cannot accompany an explicit
            ``Plan`` (whose stages carry their own options).

    Returns:
        A :class:`~repro.core.problems.JoinResult` carrying matches (and
        ``topk`` lists for ``spec.k`` tasks), work counters, the plan's
        backend name (stage names joined by ``+`` for hybrids), merged
        :class:`~repro.core.problems.QueryStats`, and — for traced
        joins — the span tree and metrics registry.
    """
    P, Q, spec = _normalize_inputs(P, Q, spec)
    n_workers = resolve_workers(n_workers)
    tracer = Tracer(enabled=trace)
    registry = MetricsRegistry(enabled=trace)
    requested = backend.backend if isinstance(backend, Plan) else backend
    wall_start = time.perf_counter()
    # Activating the tracer/registry as process-current lets kernel-level
    # instrumentation inside prepare/build attach to this join's tree.
    obs_ctx = observe(tracer, registry) if trace else nullcontext()
    with obs_ctx, tracer.span(
        "engine.join",
        backend=requested,
        n=int(P.shape[0]),
        m=int(Q.shape[0]),
        d=int(P.shape[1]),
        variant=spec.variant,
        n_workers=int(n_workers),
    ):
        join_plan = None
        best_estimate = None
        with tracer.span("planner") as planner_span:
            if isinstance(backend, Plan):
                if options:
                    raise ParameterError(
                        f"an explicit Plan carries per-stage options; got "
                        f"engine-level options {sorted(options)}"
                    )
                the_plan = backend
                if planner_span is not None:
                    planner_span.attrs.update(
                        picked=the_plan.backend, source="explicit"
                    )
            elif backend == "auto":
                # Caller options bind to one backend's prepare, so the
                # ranking is restricted to single-stage plans when any
                # are present.
                join_plan = plan_join(
                    P.shape[0], Q.shape[0], P.shape[1], spec, model,
                    include_hybrids=not options,
                    n_workers=n_workers,
                )
                best_estimate = join_plan.best_plan
                the_plan = best_estimate.plan
                if planner_span is not None:
                    planner_span.attrs.update(
                        picked=the_plan.backend,
                        ranking=[
                            (pe.backend, pe.total_ops)
                            for pe in join_plan.feasible_plans
                        ],
                    )
            else:
                the_plan = Plan.single(backend)
                if planner_span is not None:
                    planner_span.attrs.update(picked=backend, source="explicit")
        stages = the_plan.stages
        if len(stages) == 1 and not stages[0].is_partitioned:
            # One-stage fast path: the pre-Plan-IR dispatch, bit for bit
            # (same spans, same payload flow, result spec = the
            # backend's final spec).
            stage = stages[0]
            backend_name = stage.backend
            impl = get_backend(backend_name)
            if getattr(impl, "is_filter", False):
                raise ParameterError(
                    f"backend {backend_name!r} is a filter stage: it only "
                    "proposes candidates and cannot answer a join on its "
                    "own (see quantized_filter_plan)"
                )
            stage_options = {**stage.options, **options}
            with tracer.span("prepare", backend=backend_name):
                payload, final_spec = impl.prepare(
                    P, spec, seed=seed, block=block, n_workers=n_workers,
                    **stage_options,
                )
                if trace and hasattr(payload, "build"):
                    # The zero-copy executor builds in the parent for
                    # every worker count, so the trace can always price
                    # construction here (engine builds are idempotent;
                    # workers receive the built structure, not a recipe).
                    with tracer.span("build"):
                        payload = payload.build(P)
            with tracer.span("run") as run_span:
                chunks = map_query_chunks(
                    payload, P, Q, _engine_runner, (backend_name, trace),
                    n_workers=n_workers, block=block,
                    pool=pool, executor=executor, blas_threads=blas_threads,
                )
            if run_span is not None:
                run_span.children.extend(c.trace for c in chunks if c.trace)
            with tracer.span("merge"):
                result = merge_join_chunks(
                    [
                        (c.matches, c.evaluated, c.generated, c.stats)
                        for c in chunks
                    ],
                    final_spec,
                    backend=backend_name,
                )
                if final_spec.is_topk:
                    result.topk = [lst for c in chunks for lst in (c.topk or [])]
            stage_records = [
                dict(
                    index=0, backend=backend_name,
                    n=int(P.shape[0]), m=int(Q.shape[0]), wall_s=0.0,
                    evaluated=int(result.inner_products_evaluated),
                    generated=int(result.candidates_generated),
                    answered=int(result.matched_count),
                )
            ]
        else:
            if options:
                raise ParameterError(
                    f"multi-stage plans carry per-stage options; got "
                    f"engine-level options {sorted(options)}"
                )
            if spec.variant not in ("join", "topk"):
                raise ParameterError(
                    f"multi-stage plans answer the 'join' and 'topk' "
                    f"variants, not {spec.variant!r}"
                )
            result, chunks, stage_records = _run_stage_plan(
                the_plan, P, Q, spec,
                seed=seed, n_workers=n_workers, block=block,
                trace=trace, tracer=tracer,
                pool=pool, executor=executor, blas_threads=blas_threads,
            )
            with tracer.span("merge", stages=len(stage_records)):
                pass
    result.wall_s = time.perf_counter() - wall_start
    bounds = [c.error_bound for c in chunks if c.error_bound is not None]
    if bounds:
        result.error_bound = max(bounds)
    if stage_records and stage_records[0]["wall_s"] == 0.0 and len(stage_records) == 1:
        stage_records[0]["wall_s"] = result.wall_s
    if best_estimate is not None:
        for record, est in zip(stage_records, best_estimate.stage_estimates):
            record["predicted_ops"] = est.total_ops
    if trace:
        for c in chunks:
            registry.merge_snapshot(c.metrics)
        _fold_stats_metrics(registry, result)
        result.trace = tracer.take()
        result.metrics = registry
    current_log().record(
        PlannerRecord(
            n=int(P.shape[0]),
            m=int(Q.shape[0]),
            d=int(P.shape[1]),
            s=float(spec.s),
            c=float(spec.c),
            signed=bool(spec.signed),
            variant=spec.variant,
            mode="auto" if requested == "auto" else "explicit",
            picked=result.backend,
            wall_s=result.wall_s,
            predicted={
                pe.backend: pe.total_ops for pe in join_plan.feasible_plans
            } if join_plan is not None else {},
            evaluated=int(result.inner_products_evaluated),
            generated=int(result.candidates_generated),
            n_workers=int(n_workers),
            stages=stage_records,
        )
    )
    return result
