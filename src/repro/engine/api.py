"""The one dispatch path for every IPS join: ``repro.engine.join``.

Every join the repository can answer — signed or unsigned, threshold,
top-k or self, exact or approximate, serial or process-parallel — runs
through this function:

1. normalize inputs (``Q=None`` means a self-join of ``P``);
2. resolve the backend: an explicit registry name, or ``"auto"`` to let
   the cost-model planner (:mod:`repro.engine.planner`) pick;
3. ``backend.prepare`` turns options into a picklable structure payload
   and the final spec;
4. the executor (:func:`repro.core.executor.map_query_chunks`) shards
   the query set into block-aligned chunks and runs the backend's
   ``run_chunk`` over each — in-process for ``n_workers=1``, across a
   process pool otherwise;
5. chunk results merge in query order through the executor's single
   merge path (:func:`repro.core.executor.merge_join_chunks` +
   :meth:`~repro.core.problems.QueryStats.merge`).

Because serial execution is literally the one-chunk case of the same
code, ``n_workers`` is an orthogonal knob: it never changes matches,
work counters, or stats.

Observability (:mod:`repro.obs`) hangs off the same path.  With
``trace=True`` the dispatch runs under a span tracer — ``planner``,
``prepare`` (with the index/sketch ``build``), one ``run_chunk`` tree
per chunk (stitched back from workers when ``n_workers > 1``), and
``merge`` — and a metrics registry that folds in the merged
:class:`~repro.core.problems.QueryStats` plus the kernels' GEMM/bucket
instruments; both land on the returned ``JoinResult``.  Independently of
tracing, every dispatch appends one
:class:`~repro.obs.planner_log.PlannerRecord` (predictions for auto
picks, measured wall time for all) to the process-current
:class:`~repro.obs.planner_log.PlannerLog` for regret analysis and
cost-model recalibration.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import replace
from typing import Optional

from repro.core.executor import (
    _engine_runner,
    map_query_chunks,
    merge_join_chunks,
)
from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.core.verify import DEFAULT_BLOCK
from repro.engine.planner import CostModel, JoinPlan, plan_join
from repro.engine.registry import get_backend
from repro.errors import ParameterError
from repro.obs import MetricsRegistry, Tracer, observe
from repro.obs.planner_log import PlannerRecord, current_log
from repro.utils.validation import check_matrix


def _normalize_inputs(P, Q, spec: JoinSpec):
    """Resolve the (P, Q, spec) triangle for all variants."""
    if Q is None:
        spec = spec if spec.self_join else replace(spec, self_join=True)
        P = check_matrix(P, "P")
        if P.shape[0] < 2:
            raise ParameterError("self-join needs at least two vectors")
        return P, P, spec
    if spec.self_join:
        raise ParameterError(
            "self-join specs take a single set: pass Q=None"
        )
    return (*validate_join_inputs(P, Q), spec)


def plan(
    P,
    Q,
    spec: JoinSpec,
    model: Optional[CostModel] = None,
) -> JoinPlan:
    """Rank backends for this instance without running anything.

    The same planner call ``backend="auto"`` uses; exposed so callers
    (and the dispatch bench) can inspect *why* a backend was chosen.
    """
    P, Q, spec = _normalize_inputs(P, Q, spec)
    return plan_join(P.shape[0], Q.shape[0], P.shape[1], spec, model)


def _fold_stats_metrics(registry: MetricsRegistry, result: JoinResult) -> None:
    """Mirror the merged work counters into engine-level metric names."""
    registry.counter("engine.joins").inc()
    registry.counter("engine.inner_products_evaluated").inc(
        result.inner_products_evaluated
    )
    registry.counter("engine.candidates_generated").inc(
        result.candidates_generated
    )
    stats = result.stats
    if stats is not None:
        registry.counter("engine.queries").inc(stats.queries)
        registry.counter("engine.candidates").inc(stats.candidates)
        registry.counter("engine.unique_candidates").inc(stats.unique_candidates)
        registry.counter("engine.probe_candidates").inc(stats.probe_candidates)
        registry.counter("engine.probed_buckets").inc(stats.probed_buckets)


def join(
    P,
    Q,
    spec: JoinSpec,
    *,
    backend: str = "auto",
    seed=None,
    n_workers: int = 1,
    block: int = DEFAULT_BLOCK,
    model: Optional[CostModel] = None,
    trace: bool = False,
    **options,
) -> JoinResult:
    """Answer a ``(cs, s)`` join (any variant) through one dispatch path.

    Args:
        P: data matrix, shape (n, d).
        Q: query matrix, shape (m, d); ``None`` for a self-join of ``P``.
        spec: the problem record — thresholds, signedness, and the
            top-k / self variants (:class:`~repro.core.problems.JoinSpec`).
        backend: a registered backend name (``brute_force``,
            ``norm_pruned``, ``lsh``, ``sketch``, ...) or ``"auto"`` to
            let the cost-model planner choose.
        seed: reproducibility seed for backends that build randomized
            structures; must be a concrete integer when combined with
            ``n_workers > 1`` (workers rebuild from it).
        n_workers: process count — an orthogonal execution knob routed
            through :mod:`repro.core.executor`; results are identical
            for any value.
        block: query block size; chunk boundaries align to it.
        model: optional calibrated :class:`~repro.engine.planner.CostModel`
            for ``backend="auto"``; when omitted, the persisted
            calibration cache is consulted
            (:func:`~repro.engine.planner.default_model`).
        trace: record a span trace and metrics for this join; the
            result's ``trace``/``metrics`` fields carry them.  Off by
            default — the disabled instrumentation path costs < 2% (the
            ``obs_overhead`` bench enforces it).
        options: backend-specific options (``family=...``, ``index=...``,
            ``kappa=...``, ``scan_block=...``, ...), validated by the
            chosen backend's ``prepare``.

    Returns:
        A :class:`~repro.core.problems.JoinResult` carrying matches (and
        ``topk`` lists for ``spec.k`` tasks), work counters, the backend
        name, merged :class:`~repro.core.problems.QueryStats`, and — for
        traced joins — the span tree and metrics registry.
    """
    P, Q, spec = _normalize_inputs(P, Q, spec)
    tracer = Tracer(enabled=trace)
    registry = MetricsRegistry(enabled=trace)
    requested = backend
    wall_start = time.perf_counter()
    # Activating the tracer/registry as process-current lets kernel-level
    # instrumentation inside prepare/build attach to this join's tree.
    obs_ctx = observe(tracer, registry) if trace else nullcontext()
    with obs_ctx, tracer.span(
        "engine.join",
        backend=requested,
        n=int(P.shape[0]),
        m=int(Q.shape[0]),
        d=int(P.shape[1]),
        variant=spec.variant,
        n_workers=int(n_workers),
    ):
        join_plan = None
        with tracer.span("planner") as planner_span:
            if backend == "auto":
                join_plan = plan_join(
                    P.shape[0], Q.shape[0], P.shape[1], spec, model
                )
                backend = join_plan.backend
                if planner_span is not None:
                    planner_span.attrs.update(
                        picked=backend,
                        ranking=[
                            (e.backend, e.total_ops)
                            for e in join_plan.feasible
                        ],
                    )
            elif planner_span is not None:
                planner_span.attrs.update(picked=backend, source="explicit")
        impl = get_backend(backend)
        with tracer.span("prepare", backend=backend):
            payload, final_spec = impl.prepare(
                P, spec, seed=seed, block=block, n_workers=n_workers, **options
            )
            if trace and n_workers == 1 and hasattr(payload, "build"):
                # Serial runs build here so the trace prices construction;
                # parallel runs keep the payload lazy (workers rebuild).
                with tracer.span("build"):
                    payload = payload.build(P)
        with tracer.span("run") as run_span:
            chunks = map_query_chunks(
                payload, P, Q, _engine_runner, (backend, trace),
                n_workers=n_workers, block=block,
            )
        if run_span is not None:
            run_span.children.extend(c.trace for c in chunks if c.trace)
        with tracer.span("merge"):
            result = merge_join_chunks(
                [(c.matches, c.evaluated, c.generated, c.stats) for c in chunks],
                final_spec,
                backend=backend,
            )
            if final_spec.is_topk:
                result.topk = [lst for c in chunks for lst in (c.topk or [])]
    result.wall_s = time.perf_counter() - wall_start
    if trace:
        for c in chunks:
            registry.merge_snapshot(c.metrics)
        _fold_stats_metrics(registry, result)
        result.trace = tracer.take()
        result.metrics = registry
    current_log().record(
        PlannerRecord(
            n=int(P.shape[0]),
            m=int(Q.shape[0]),
            d=int(P.shape[1]),
            s=float(spec.s),
            c=float(spec.c),
            signed=bool(spec.signed),
            variant=spec.variant,
            mode="auto" if requested == "auto" else "explicit",
            picked=backend,
            wall_s=result.wall_s,
            predicted={
                e.backend: e.total_ops for e in join_plan.feasible
            } if join_plan is not None else {},
            evaluated=int(result.inner_products_evaluated),
            generated=int(result.candidates_generated),
            n_workers=int(n_workers),
        )
    )
    return result
