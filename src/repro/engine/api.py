"""The one dispatch path for every IPS join: ``repro.engine.join``.

Every join the repository can answer — signed or unsigned, threshold,
top-k or self, exact or approximate, serial or process-parallel — runs
through this function:

1. normalize inputs (``Q=None`` means a self-join of ``P``);
2. resolve the backend: an explicit registry name, or ``"auto"`` to let
   the cost-model planner (:mod:`repro.engine.planner`) pick;
3. ``backend.prepare`` turns options into a picklable structure payload
   and the final spec;
4. the executor (:func:`repro.core.executor.map_query_chunks`) shards
   the query set into block-aligned chunks and runs the backend's
   ``run_chunk`` over each — in-process for ``n_workers=1``, across a
   process pool otherwise;
5. chunk results merge in query order through the executor's single
   merge path (:func:`repro.core.executor.merge_join_chunks` +
   :meth:`~repro.core.problems.QueryStats.merge`).

Because serial execution is literally the one-chunk case of the same
code, ``n_workers`` is an orthogonal knob: it never changes matches,
work counters, or stats.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.executor import (
    _engine_runner,
    map_query_chunks,
    merge_join_chunks,
)
from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.core.verify import DEFAULT_BLOCK
from repro.engine.planner import CostModel, JoinPlan, plan_join
from repro.engine.registry import get_backend
from repro.errors import ParameterError
from repro.utils.validation import check_matrix


def _normalize_inputs(P, Q, spec: JoinSpec):
    """Resolve the (P, Q, spec) triangle for all variants."""
    if Q is None:
        spec = spec if spec.self_join else replace(spec, self_join=True)
        P = check_matrix(P, "P")
        if P.shape[0] < 2:
            raise ParameterError("self-join needs at least two vectors")
        return P, P, spec
    if spec.self_join:
        raise ParameterError(
            "self-join specs take a single set: pass Q=None"
        )
    return (*validate_join_inputs(P, Q), spec)


def plan(
    P,
    Q,
    spec: JoinSpec,
    model: Optional[CostModel] = None,
) -> JoinPlan:
    """Rank backends for this instance without running anything.

    The same planner call ``backend="auto"`` uses; exposed so callers
    (and the dispatch bench) can inspect *why* a backend was chosen.
    """
    P, Q, spec = _normalize_inputs(P, Q, spec)
    return plan_join(P.shape[0], Q.shape[0], P.shape[1], spec, model)


def join(
    P,
    Q,
    spec: JoinSpec,
    *,
    backend: str = "auto",
    seed=None,
    n_workers: int = 1,
    block: int = DEFAULT_BLOCK,
    model: Optional[CostModel] = None,
    **options,
) -> JoinResult:
    """Answer a ``(cs, s)`` join (any variant) through one dispatch path.

    Args:
        P: data matrix, shape (n, d).
        Q: query matrix, shape (m, d); ``None`` for a self-join of ``P``.
        spec: the problem record — thresholds, signedness, and the
            top-k / self variants (:class:`~repro.core.problems.JoinSpec`).
        backend: a registered backend name (``brute_force``,
            ``norm_pruned``, ``lsh``, ``sketch``, ...) or ``"auto"`` to
            let the cost-model planner choose.
        seed: reproducibility seed for backends that build randomized
            structures; must be a concrete integer when combined with
            ``n_workers > 1`` (workers rebuild from it).
        n_workers: process count — an orthogonal execution knob routed
            through :mod:`repro.core.executor`; results are identical
            for any value.
        block: query block size; chunk boundaries align to it.
        model: optional calibrated :class:`~repro.engine.planner.CostModel`
            for ``backend="auto"``.
        options: backend-specific options (``family=...``, ``index=...``,
            ``kappa=...``, ``scan_block=...``, ...), validated by the
            chosen backend's ``prepare``.

    Returns:
        A :class:`~repro.core.problems.JoinResult` carrying matches (and
        ``topk`` lists for ``spec.k`` tasks), work counters, the backend
        name, and merged :class:`~repro.core.problems.QueryStats`.
    """
    P, Q, spec = _normalize_inputs(P, Q, spec)
    if backend == "auto":
        backend = plan_join(
            P.shape[0], Q.shape[0], P.shape[1], spec, model
        ).backend
    impl = get_backend(backend)
    payload, final_spec = impl.prepare(
        P, spec, seed=seed, block=block, n_workers=n_workers, **options
    )
    chunks = map_query_chunks(
        payload, P, Q, _engine_runner, (backend,),
        n_workers=n_workers, block=block,
    )
    result = merge_join_chunks(
        [(c.matches, c.evaluated, c.generated, c.stats) for c in chunks],
        final_spec,
        backend=backend,
    )
    if final_spec.is_topk:
        result.topk = [lst for c in chunks for lst in (c.topk or [])]
    return result
