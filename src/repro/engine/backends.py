"""The four built-in join backends behind ``repro.engine.join``.

Each backend adapts one existing kernel family to the
:class:`~repro.engine.protocol.JoinBackend` contract:

* ``brute_force`` — the exact blocked all-pairs scan
  (:mod:`repro.core.brute_force`, :mod:`repro.core.topk`,
  :mod:`repro.core.self_join`); answers every variant.
* ``norm_pruned`` — the LEMP-style Cauchy-Schwarz prefix scan
  (:mod:`repro.core.norm_pruning`); exact, threshold and top-k joins.
* ``lsh`` — filter-then-verify through any candidates-providing index
  (:mod:`repro.core.lsh_join`); threshold, top-k and self variants.
* ``sketch`` — the Section 4.3 linear-sketch join
  (:mod:`repro.core.sketch_join`); unsigned threshold and self joins,
  with the structure's own ``c = n^{-1/kappa}``.

Each backend declares the spec variants it answers (``variants``) and
the similarity measures it speaks (``measures``, default ``("ip",)`` —
all four of these are inner-product backends); the registry crosses the
two into the ``(measure, variant)`` capability matrix
(:func:`repro.engine.registry.backends_for`) so the planner only
assembles plans whose stages can actually serve the request.  The
Jaccard set-join backends live in :mod:`repro.engine.set_backends`.

The *structures* here are small picklable dataclasses wrapping either a
built index or the recipe to build one: the executor's worker
initializer calls ``payload.build(P)``, so a structure with a pending
recipe is rebuilt (deterministically, from its integer seed) inside each
worker, while a structure wrapping a prebuilt index ships it as-is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.core.executor import BatchIndexSpec
from repro.core.problems import JoinSpec
from repro.engine.protocol import ChunkResult, CostEstimate, JoinBackend
from repro.errors import ParameterError

#: Default shape for auto-built LSH indexes (hyperplane scheme: valid on
#: any data, unlike SIMPLE-LSH's unit-ball requirement).
DEFAULT_AUTO_TABLES = 16
DEFAULT_AUTO_BITS = 12


def _concrete_seed(seed, who: str) -> int:
    if seed is None or not isinstance(seed, (int, np.integer)):
        raise ParameterError(
            f"{who} needs a concrete integer seed for reproducible "
            f"(re)builds, got {type(seed).__name__}"
        )
    return int(seed)


def _require_variant(spec: JoinSpec, backend: str, allowed: Tuple[str, ...]):
    if spec.variant not in allowed:
        raise ParameterError(
            f"backend {backend!r} does not answer the {spec.variant!r} "
            f"variant (supported: {', '.join(allowed)})"
        )


# ---------------------------------------------------------------------------
# brute_force


@dataclass
class BruteStructure:
    """No index: the exact scan needs only the spec and a block size."""

    spec: JoinSpec
    block: int


class BruteForceBackend(JoinBackend):
    """Exact blocked all-pairs scan; the reference answer for every variant."""

    name = "brute_force"
    variants = ("join", "topk", "self")

    def prepare(self, P, spec, *, seed=None, block, n_workers=1, **options):
        if options:
            raise ParameterError(
                f"brute_force takes no extra options, got {sorted(options)}"
            )
        return BruteStructure(spec=spec, block=block), spec

    def run_chunk(self, structure, P, Q_chunk, start):
        from repro.core.brute_force import brute_force_chunk
        from repro.core.self_join import self_scan_chunk
        from repro.core.topk import topk_chunk

        spec, block = structure.spec, structure.block
        if spec.is_topk:
            lists, evaluated, generated, stats = topk_chunk(
                P, Q_chunk, spec.signed, spec.cs, spec.k, block
            )
            matches = [int(lst[0]) if lst else None for lst in lists]
            return ChunkResult(matches, evaluated, generated, stats, topk=lists)
        if spec.is_self:
            matches, evaluated, generated, stats = self_scan_chunk(
                P, Q_chunk, start, spec.signed, spec.cs,
                spec.match_duplicates, block,
            )
        else:
            matches, evaluated, generated, stats = brute_force_chunk(
                P, Q_chunk, spec.signed, spec.cs, block
            )
        return ChunkResult(matches, evaluated, generated, stats)

    def estimate_cost(self, n, m, d, spec, model):
        scan = n * m * d * model.gemm_op
        scan *= model.memory_factor(8.0 * d, n)
        return CostEstimate(
            backend=self.name,
            feasible=True,
            build_ops=0.0,
            query_ops=scan + m * model.row_op,
        )


# ---------------------------------------------------------------------------
# norm_pruned


@dataclass
class NormStructure:
    """Norm-sorted prefix-scan index, built lazily (per worker if needed)."""

    spec: JoinSpec
    scan_block: int
    block: int
    index: Any = None

    def build(self, P):
        if self.index is None:
            from repro.core.norm_pruning import NormScanIndex

            self.index = NormScanIndex(P)
        return self


class NormPrunedBackend(JoinBackend):
    """Exact Cauchy-Schwarz prefix scan (LEMP-style); threshold and top-k."""

    name = "norm_pruned"
    variants = ("join", "topk")

    def prepare(self, P, spec, *, seed=None, block, n_workers=1,
                scan_block: int = 256, **options):
        if options:
            raise ParameterError(
                f"norm_pruned takes only scan_block, got {sorted(options)}"
            )
        _require_variant(spec, self.name, self.variants)
        return NormStructure(spec=spec, scan_block=scan_block, block=block), spec

    def run_chunk(self, structure, P, Q_chunk, start):
        from repro.core.norm_pruning import norm_scan_chunk, norm_scan_topk_chunk

        spec = structure.spec
        if spec.is_topk:
            lists, evaluated, generated, stats = norm_scan_topk_chunk(
                structure.index, Q_chunk, spec.signed, spec.cs, spec.k,
                structure.scan_block, structure.block,
            )
            matches = [int(lst[0]) if lst else None for lst in lists]
            return ChunkResult(matches, evaluated, generated, stats, topk=lists)
        matches, evaluated, generated, stats = norm_scan_chunk(
            structure.index, Q_chunk, spec.signed, spec.cs,
            structure.scan_block, structure.block,
        )
        return ChunkResult(matches, evaluated, generated, stats)

    def estimate_cost(self, n, m, d, spec, model):
        if spec.variant not in self.variants:
            return CostEstimate(
                backend=self.name, feasible=False,
                reason=f"no {spec.variant} variant",
            )
        build = model.norm_fixed_build + n * d * model.gemm_op
        build += n * math.log2(max(n, 2)) * model.row_op / 64.0
        query = (
            model.norm_prefix_fraction * n * m * d * model.gemm_op
            * model.memory_factor(8.0 * d, n)
            + m * model.row_op
        )
        return CostEstimate(
            backend=self.name, feasible=True, build_ops=build, query_ops=query
        )


# ---------------------------------------------------------------------------
# lsh


@dataclass
class LSHStructure:
    """A candidates-providing index, prebuilt or described by a recipe.

    Exactly one of ``index`` (used as-is), ``index_spec`` (a
    :class:`~repro.core.executor.BatchIndexSpec`-style recipe) or
    ``family`` (+ shape/seed, rebuilt as a classic
    :class:`~repro.lsh.index.LSHIndex`) is set; :meth:`build` resolves
    the pending forms, in the parent for serial runs and inside each
    worker for parallel ones.
    """

    spec: JoinSpec
    n_probes: int
    block: int
    index: Any = None
    index_spec: Any = None
    family: Any = None
    n_tables: int = 16
    hashes_per_table: int = 4
    seed: Any = None

    def build(self, P):
        if self.index is None:
            if self.index_spec is not None:
                self.index = self.index_spec.build(P)
            else:
                from repro.lsh.index import LSHIndex

                self.index = LSHIndex(
                    self.family,
                    n_tables=self.n_tables,
                    hashes_per_table=self.hashes_per_table,
                    seed=self.seed,
                ).build(P)
        return self


class LSHBackend(JoinBackend):
    """Filter-then-verify through any candidates-providing index."""

    name = "lsh"
    variants = ("join", "topk", "self")

    def prepare(self, P, spec, *, seed=None, block, n_workers=1,
                index=None, index_spec=None, family=None,
                n_tables: int = 16, hashes_per_table: int = 4,
                n_probes: int = 0, **options):
        if options:
            raise ParameterError(
                f"unknown lsh options: {sorted(options)} (valid: index, "
                f"index_spec, family, n_tables, hashes_per_table, n_probes)"
            )
        _require_variant(spec, self.name, self.variants)
        if n_probes and spec.variant != "join":
            raise ParameterError(
                "multiprobe (n_probes) is only supported for threshold joins"
            )
        # Precedence mirrors the legacy entry points: a prebuilt index
        # wins, then a rebuildable recipe, then a family to index with.
        common = dict(spec=spec, n_probes=n_probes, block=block)
        if index is not None:
            return LSHStructure(index=index, **common), spec
        if index_spec is not None:
            return LSHStructure(index_spec=index_spec, **common), spec
        if family is not None:
            if n_workers > 1:
                seed = _concrete_seed(seed, "parallel lsh with a family")
            return (
                LSHStructure(
                    family=family, n_tables=n_tables,
                    hashes_per_table=hashes_per_table, seed=seed, **common,
                ),
                spec,
            )
        # No index source given: auto-build a batch hyperplane index
        # (valid on any data domain, unlike SIMPLE-LSH's unit ball).
        auto = BatchIndexSpec(
            d=P.shape[1],
            scheme="hyperplane",
            n_tables=DEFAULT_AUTO_TABLES,
            bits_per_table=DEFAULT_AUTO_BITS,
            seed=0 if seed is None else _concrete_seed(seed, "auto-built lsh index"),
        )
        return LSHStructure(index_spec=auto, **common), spec

    def run_chunk(self, structure, P, Q_chunk, start):
        from repro.core.lsh_join import lsh_filter_verify_chunk
        from repro.core.self_join import lsh_self_chunk
        from repro.core.topk import lsh_topk_chunk

        spec, block = structure.spec, structure.block
        index = structure.index
        if spec.is_topk:
            lists, evaluated, generated, stats = lsh_topk_chunk(
                index, P, Q_chunk, spec.signed, spec.cs, spec.k, block
            )
            matches = [int(lst[0]) if lst else None for lst in lists]
            return ChunkResult(matches, evaluated, generated, stats, topk=lists)
        if spec.is_self:
            matches, evaluated, generated, stats = lsh_self_chunk(
                index, P, Q_chunk, start, spec.signed, spec.cs,
                spec.match_duplicates, block,
            )
        else:
            matches, evaluated, generated, stats = lsh_filter_verify_chunk(
                index, P, Q_chunk, spec.signed, spec.cs,
                structure.n_probes, block,
            )
        return ChunkResult(matches, evaluated, generated, stats)

    def estimate_cost(self, n, m, d, spec, model):
        if spec.c >= 1.0:
            return CostEstimate(
                backend=self.name, feasible=False,
                reason="no approximation gap (c = 1): LSH filtering "
                       "cannot guarantee exact answers",
            )
        plan = model.lsh_plan(n, spec)
        if plan is not None:
            tables, bits = plan.n_tables, plan.k
            cand_per_query = min(float(n), plan.expected_false_candidates)
        else:
            tables, bits = DEFAULT_AUTO_TABLES, DEFAULT_AUTO_BITS
            cand_per_query = model.lsh_candidate_fraction * n
        build = (
            model.lsh_fixed_build
            + n * tables * bits * d * model.hash_op / 64.0
            + n * tables * model.candidate_op
        )
        query = (
            m * tables * bits * d * model.hash_op / 64.0
            + m * cand_per_query * (d * model.gemm_op + model.candidate_op)
            + m * model.row_op
        )
        return CostEstimate(
            backend=self.name, feasible=True, build_ops=build, query_ops=query
        )


# ---------------------------------------------------------------------------
# sketch


@dataclass
class SketchStructure:
    """A Section 4.3 c-MIPS sketch structure, prebuilt or built lazily."""

    spec: JoinSpec
    block: int
    structure: Any = None
    kappa: float = 4.0
    copies: int = 7
    leaf_size: int = 8
    seed: Any = None

    def build(self, P):
        if self.structure is None:
            from repro.sketches.cmips import SketchCMIPS

            self.structure = SketchCMIPS(
                P, kappa=self.kappa, copies=self.copies,
                leaf_size=self.leaf_size, seed=self.seed,
            )
        return self


class SketchBackend(JoinBackend):
    """The Section 4.3 linear-sketch join; unsigned threshold and self joins."""

    name = "sketch"
    variants = ("join", "self")

    def prepare(self, P, spec, *, seed=None, block, n_workers=1,
                structure=None, kappa: float = 4.0, copies: int = 7,
                leaf_size: int = 8, **options):
        if options:
            raise ParameterError(
                f"unknown sketch options: {sorted(options)} (valid: "
                f"structure, kappa, copies, leaf_size)"
            )
        _require_variant(spec, self.name, self.variants)
        if spec.signed:
            raise ParameterError(
                "the sketch join is unsigned-only (Section 4.3 recovers "
                "|inner product|)"
            )
        if spec.is_self and not spec.match_duplicates:
            raise ParameterError(
                "the sketch self-join masks identical pairs by index "
                "inside the recovery descent; it cannot also exclude "
                "duplicate rows (match_duplicates=False)"
            )
        if structure is not None:
            c = structure.approximation_factor
            payload = SketchStructure(spec=spec, block=block, structure=structure)
        else:
            from repro.sketches.stable import norm_ratio_bound

            c = 1.0 / norm_ratio_bound(P.shape[0], float(kappa))
            if n_workers > 1:
                seed = _concrete_seed(seed, "parallel sketch join")
            payload = SketchStructure(
                spec=spec, block=block, kappa=kappa, copies=copies,
                leaf_size=leaf_size, seed=seed,
            )
        # The sketch answers with its own approximation factor, not the
        # caller's nominal c; the result spec records what was guaranteed.
        final = JoinSpec(
            s=spec.s, c=min(c, 1.0), signed=False,
            self_join=spec.self_join, match_duplicates=spec.match_duplicates,
        )
        payload.spec = final
        return payload, final

    def run_chunk(self, structure, P, Q_chunk, start):
        from repro.core.sketch_join import (
            sketch_filter_verify_chunk,
            sketch_self_chunk,
        )

        spec = structure.spec
        if spec.is_self:
            matches, evaluated, generated, stats = sketch_self_chunk(
                structure.structure, P, Q_chunk, start, spec.cs,
                structure.block,
            )
        else:
            matches, evaluated, generated, stats = sketch_filter_verify_chunk(
                structure.structure, P, Q_chunk, spec.cs, structure.block
            )
        return ChunkResult(matches, evaluated, generated, stats)

    def estimate_cost(self, n, m, d, spec, model):
        if spec.variant not in self.variants:
            return CostEstimate(
                backend=self.name, feasible=False,
                reason=f"no {spec.variant} variant",
            )
        if spec.signed:
            return CostEstimate(
                backend=self.name, feasible=False,
                reason="unsigned joins only",
            )
        if spec.c >= 1.0:
            return CostEstimate(
                backend=self.name, feasible=False,
                reason="no approximation gap (c = 1)",
            )
        # The sketch's approximation is c = n^{-1/kappa}: reaching the
        # caller's c needs kappa = ln(n) / ln(1/c), and the model caps
        # the kappa it will spend (query time grows as n^{1-2/kappa}).
        required = math.log(max(n, 2)) / math.log(1.0 / spec.c)
        if required > model.max_kappa:
            achievable = float(max(n, 2)) ** (-1.0 / model.max_kappa)
            return CostEstimate(
                backend=self.name, feasible=False,
                reason=(
                    f"c = {spec.c:g} needs kappa = {required:.1f} > "
                    f"max_kappa = {model.max_kappa:g} at n = {n} "
                    f"(achievable c = {achievable:.3g})"
                ),
            )
        kappa = model.sketch_kappa(n, spec.c)
        copies = 7
        build = (
            model.sketch_fixed_build
            + copies * d * float(n) ** (2.0 - 2.0 / kappa) * model.gemm_op
        )
        query = m * (
            copies * d * float(n) ** (1.0 - 2.0 / kappa) * model.gemm_op
            + d * model.gemm_op
            + model.row_op
        )
        return CostEstimate(
            backend=self.name, feasible=True, build_ops=build, query_ops=query
        )
