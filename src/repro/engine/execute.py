"""The engine's stage-walk: prepare/run/merge machinery behind every join.

This module is the execution half of what used to be the ``join()``
monolith in :mod:`repro.engine.api`, split out so that one-shot joins
and long-lived sessions (:mod:`repro.engine.session`) drive the *same*
code with one difference: where the prepared stage structures come from.

* A one-shot ``engine.join()`` passes no :class:`PreparedStage` objects;
  every stage prepares (and, under tracing, builds) inline inside its
  span — the historical behavior, bit for bit, spans included.
* A session prepares every stage once at ``open()`` via
  :func:`prepare_stage` and passes the results back in on each
  ``query()``; the walk then reuses the built payloads (and the
  materialized point-partition copies) instead of re-preparing.  Stages
  that consume a filter stage's per-query ``proposals``
  (:meth:`~repro.engine.plan.Plan.consumes_proposals`) are the one
  exception: they are *deferred* — re-prepared on every query with that
  batch's proposals, which costs no quantization or index build.

Determinism: reuse never changes results, because prepare/build are
idempotent for every backend (structures build lazily and cache), and
the executor contract (:func:`repro.core.executor.map_query_chunks`)
already guarantees chunking cannot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.core.executor import (
    QuerySource,
    WorkerPool,
    _engine_runner,
    map_query_chunks,
    merge_join_chunks,
)
from repro.core.problems import JoinResult, JoinSpec, QueryStats
from repro.engine.plan import Plan, Stage, stage_point_indices
from repro.engine.registry import get_backend
from repro.errors import ParameterError
from repro.obs import MetricsRegistry, Tracer


@dataclass
class PreparedStage:
    """One plan stage's ready-to-run state, prepared once per session.

    ``payload`` is the *built* structure (sessions build eagerly at
    ``open()`` so queries never pay construction); ``None`` marks a
    deferred stage whose ``prepare`` needs per-query proposals.
    ``P_stage`` is the stage's point subset — kept so partitioned stages
    don't re-slice ``P`` per query, and so the worker-pool arena can pin
    the exact array object the runner will reference.
    """

    stage: Stage
    payload: Any
    final_spec: Optional[JoinSpec]
    point_idx: Optional[np.ndarray]
    P_stage: Any
    seed: Optional[int]
    deferred: bool = False


def _standalone_filter_error(backend_name: str) -> ParameterError:
    return ParameterError(
        f"backend {backend_name!r} is a filter stage: it only "
        "proposes candidates and cannot answer a join on its "
        "own (see quantized_filter_plan)"
    )


def _stage_kind_error(stage: Stage, is_filter: bool) -> ParameterError:
    return ParameterError(
        f"backend {stage.backend!r} "
        + ("is a filter stage and needs kind='filter'"
           if is_filter else
           f"cannot run as a kind={stage.kind!r} stage")
    )


def prepare_stage(
    the_plan: Plan,
    index: int,
    P,
    spec: JoinSpec,
    *,
    seed,
    block: int,
    n_workers: int,
    options: dict,
) -> PreparedStage:
    """Prepare (and build) stage ``index`` of a plan, session-style.

    Runs the same validation the inline walk performs — standalone
    filters rejected for one-stage plans, stage kind matched against the
    backend's ``is_filter`` — then resolves the point partition,
    prepares the payload, and builds it eagerly.  Stages consuming a
    filter's proposals come back deferred (``payload=None``): their
    prepare is per-query by construction.
    """
    stage = the_plan.stages[index]
    impl = get_backend(stage.backend)
    is_filter = bool(getattr(impl, "is_filter", False))
    single_fast = len(the_plan.stages) == 1 and not stage.is_partitioned
    if single_fast:
        if is_filter:
            raise _standalone_filter_error(stage.backend)
        stage_options = {**stage.options, **options}
    else:
        if is_filter != (stage.kind == "filter"):
            raise _stage_kind_error(stage, is_filter)
        stage_options = dict(stage.options)
    point_idx = stage_point_indices(stage, P)
    P_stage = P if point_idx is None else P[point_idx]
    stage_seed = None if seed is None else seed + index
    if the_plan.consumes_proposals(index):
        return PreparedStage(
            stage=stage, payload=None, final_spec=None,
            point_idx=point_idx, P_stage=P_stage, seed=stage_seed,
            deferred=True,
        )
    payload, final_spec = impl.prepare(
        P_stage, spec, seed=stage_seed, block=block,
        n_workers=n_workers, **stage_options,
    )
    if hasattr(payload, "build"):
        payload = payload.build(P_stage)
    return PreparedStage(
        stage=stage, payload=payload, final_spec=final_spec,
        point_idx=point_idx, P_stage=P_stage, seed=stage_seed,
    )


def fold_stats_metrics(registry: MetricsRegistry, result: JoinResult) -> None:
    """Mirror the merged work counters into engine-level metric names."""
    registry.counter("engine.joins").inc()
    registry.counter("engine.inner_products_evaluated").inc(
        result.inner_products_evaluated
    )
    registry.counter("engine.candidates_generated").inc(
        result.candidates_generated
    )
    stats = result.stats
    if stats is not None:
        registry.counter("engine.queries").inc(stats.queries)
        registry.counter("engine.candidates").inc(stats.candidates)
        registry.counter("engine.unique_candidates").inc(stats.unique_candidates)
        registry.counter("engine.probe_candidates").inc(stats.probe_candidates)
        registry.counter("engine.probed_buckets").inc(stats.probed_buckets)


def _fold_stage_matches(
    matches: List[Optional[int]],
    topk: Optional[List[List[int]]],
    answered: np.ndarray,
    stage_result: JoinResult,
    q_idx: np.ndarray,
    point_idx: Optional[np.ndarray],
    P,
    Q,
    spec: JoinSpec,
    stage_spec: JoinSpec,
):
    """Fold one stage's (stage-local) results into the global arrays.

    ``q_idx``/``point_idx`` map stage-local query/data positions back to
    global indices.  A query counts as *answered* when it gains a match
    (for top-k: a non-empty list); answered queries are never
    overwritten, so the first stage to answer wins deterministically.
    A stage that ran under a weaker final spec (the sketch substitutes
    its own ``c``) gets its matches re-verified at the caller's ``cs``
    before the query counts as answered — the extra dot products are
    returned so the engine can bill them.  Returns
    ``(newly_answered, extra_evaluated)``.
    """
    newly = 0
    extra_eval = 0
    if spec.is_topk:
        for qpos, lst in enumerate(stage_result.topk or []):
            gq = int(q_idx[qpos])
            if answered[gq] or not lst:
                continue
            if point_idx is not None:
                lst = [int(point_idx[li]) for li in lst]
            else:
                lst = [int(li) for li in lst]
            topk[gq] = lst
            matches[gq] = lst[0]
            answered[gq] = True
            newly += 1
        return newly, extra_eval
    reverify = stage_spec.cs < spec.cs
    pair_score = None
    if reverify:
        from repro.engine.measures import get_measure

        pair_score = get_measure(spec.measure).pair_score
    for qpos, local in enumerate(stage_result.matches):
        if local is None:
            continue
        gq = int(q_idx[qpos])
        if answered[gq]:
            continue
        gi = int(point_idx[local]) if point_idx is not None else int(local)
        if reverify:
            value = pair_score(P, gi, Q, gq)
            extra_eval += 1
            score = value if spec.signed else abs(value)
            if score < spec.cs:
                continue
        matches[gq] = gi
        answered[gq] = True
        newly += 1
    return newly, extra_eval


def run_single_stage(
    the_plan: Plan,
    P,
    Q,
    spec: JoinSpec,
    *,
    options: dict,
    seed,
    n_workers: int,
    block: int,
    trace: bool,
    tracer: Tracer,
    pool: str,
    executor: Optional[WorkerPool],
    blas_threads: Optional[int],
    prep: Optional[PreparedStage] = None,
    on_prepare: Optional[Callable[[str], None]] = None,
):
    """The one-stage fast path: the pre-Plan-IR dispatch, bit for bit.

    Same spans, same payload flow, result spec = the backend's final
    spec.  With a session's ``prep`` the prepare span reuses the built
    payload instead of re-preparing (the span still appears, marked
    ``reused``, so traced session queries keep the familiar skeleton).
    ``Q`` may be a stream-kind :class:`QuerySource` — the executor
    consumes it chunk by chunk and everything downstream merges the
    per-chunk results exactly as it merges parallel chunks.

    Returns ``(result, chunks, stage_records)``.
    """
    stage = the_plan.stages[0]
    backend_name = stage.backend
    impl = get_backend(backend_name)
    if getattr(impl, "is_filter", False):
        raise _standalone_filter_error(backend_name)
    stage_options = {**stage.options, **options}
    reuse = prep is not None and prep.payload is not None
    with tracer.span("prepare", backend=backend_name) as prep_span:
        if reuse:
            payload, final_spec = prep.payload, prep.final_spec
            if prep_span is not None:
                prep_span.attrs["reused"] = True
        else:
            payload, final_spec = impl.prepare(
                P, spec, seed=seed, block=block, n_workers=n_workers,
                **stage_options,
            )
            if on_prepare is not None:
                on_prepare("stage")
        if trace and hasattr(payload, "build"):
            # The zero-copy executor builds in the parent for every
            # worker count, so the trace can always price construction
            # here (engine builds are idempotent; workers receive the
            # built structure, not a recipe).  For a session's prebuilt
            # payload this is a cached no-op and the span shows ~0s —
            # exactly the amortization the session exists to buy.
            with tracer.span("build"):
                payload = payload.build(P)
    with tracer.span("run") as run_span:
        chunks = map_query_chunks(
            payload, P, Q, _engine_runner, (backend_name, trace),
            n_workers=n_workers, block=block,
            pool=pool, executor=executor, blas_threads=blas_threads,
        )
    if run_span is not None:
        run_span.children.extend(c.trace for c in chunks if c.trace)
    with tracer.span("merge"):
        result = merge_join_chunks(
            [
                (c.matches, c.evaluated, c.generated, c.stats)
                for c in chunks
            ],
            final_spec,
            backend=backend_name,
        )
        if final_spec.is_topk:
            result.topk = [lst for c in chunks for lst in (c.topk or [])]
    stage_records = [
        dict(
            index=0, backend=backend_name,
            n=int(P.shape[0]), m=len(result.matches), wall_s=0.0,
            evaluated=int(result.inner_products_evaluated),
            generated=int(result.candidates_generated),
            answered=int(result.matched_count),
        )
    ]
    return result, chunks, stage_records


def run_stage_plan(
    the_plan: Plan,
    P,
    Q,
    spec: JoinSpec,
    *,
    seed,
    n_workers: int,
    block: int,
    trace: bool,
    tracer: Tracer,
    pool: str,
    executor: Optional[WorkerPool],
    blas_threads: Optional[int],
    prepared: Optional[Sequence[PreparedStage]] = None,
    on_prepare: Optional[Callable[[str], None]] = None,
):
    """Walk a multi-stage plan's stages under one global result.

    Each stage runs the standard ``prepare``/``run``/``merge`` pipeline
    on its point/query subset under a ``stage`` span; the unanswered
    mask is recomputed from the fully merged stage result, so worker
    count cannot change what the next stage sees.  ``prepared`` (from a
    session) short-circuits per-stage prepare/build; deferred stages —
    consumers of a filter stage's proposals — always prepare inline with
    this batch's survivor lists.  Returns
    ``(result, chunks, stage_records)``.
    """
    m = Q.shape[0]
    matches: List[Optional[int]] = [None] * m
    topk: Optional[List[List[int]]] = (
        [[] for _ in range(m)] if spec.is_topk else None
    )
    answered = np.zeros(m, dtype=bool)
    evaluated = 0
    generated = 0
    merged_stats = QueryStats()
    all_chunks = []
    stage_records: List[dict] = []
    pending_proposals = None
    for i, stage in enumerate(the_plan.stages):
        stage_wall = time.perf_counter()
        label = stage.label or stage.backend
        prep = prepared[i] if prepared is not None else None
        with tracer.span(
            "stage",
            index=i,
            backend=stage.backend,
            label=label,
            queries=stage.queries,
            points=stage.points,
        ) as stage_span:
            if prep is not None:
                point_idx = prep.point_idx
                P_stage = prep.P_stage
            else:
                point_idx = stage_point_indices(stage, P)
                P_stage = P if point_idx is None else P[point_idx]
            if stage.queries == "all":
                q_idx = np.arange(m, dtype=np.int64)
            else:
                q_idx = np.flatnonzero(~answered)
            record = dict(
                index=i, backend=stage.backend,
                n=int(P_stage.shape[0]), m=int(q_idx.size),
                wall_s=0.0, evaluated=0, generated=0, answered=0,
            )
            if stage_span is not None:
                stage_span.attrs.update(n=int(P_stage.shape[0]), m=int(q_idx.size))
            if q_idx.size == 0:
                # Every query already answered: the stage is a no-op, but
                # it still shows up in spans and stage records so regret
                # attribution sees the plan shape that actually ran.
                record["wall_s"] = time.perf_counter() - stage_wall
                stage_records.append(record)
                continue
            Q_stage = Q[q_idx]
            impl = get_backend(stage.backend)
            is_filter = bool(getattr(impl, "is_filter", False))
            if is_filter != (stage.kind == "filter"):
                raise _stage_kind_error(stage, is_filter)
            stage_options = dict(stage.options)
            if pending_proposals is not None:
                # The previous stage was a filter: hand its survivor
                # lists to this stage's prepare as candidate proposals.
                stage_options["proposals"] = pending_proposals
                pending_proposals = None
            elif prep is not None and prep.payload is not None:
                stage_options = None  # reuse marker: no prepare needed
            stage_seed = (
                prep.seed if prep is not None
                else (None if seed is None else seed + i)
            )
            with tracer.span("prepare", backend=stage.backend) as prep_span:
                if stage_options is None:
                    payload, stage_spec = prep.payload, prep.final_spec
                    if prep_span is not None:
                        prep_span.attrs["reused"] = True
                else:
                    payload, stage_spec = impl.prepare(
                        P_stage, spec, seed=stage_seed, block=block,
                        n_workers=n_workers, **stage_options,
                    )
                    if on_prepare is not None:
                        on_prepare(
                            "deferred"
                            if prep is not None and prep.deferred
                            else "stage"
                        )
                if trace and hasattr(payload, "build"):
                    # The zero-copy executor builds in the parent for
                    # every worker count, so the trace can always price
                    # construction here (engine builds are idempotent).
                    with tracer.span("build"):
                        payload = payload.build(P_stage)
            with tracer.span("run") as run_span:
                chunks = map_query_chunks(
                    payload, P_stage, Q_stage, _engine_runner,
                    (stage.backend, trace, label),
                    n_workers=n_workers, block=block,
                    pool=pool, executor=executor, blas_threads=blas_threads,
                )
            if run_span is not None:
                run_span.children.extend(c.trace for c in chunks if c.trace)
            with tracer.span("merge"):
                stage_result = merge_join_chunks(
                    [
                        (c.matches, c.evaluated, c.generated, c.stats)
                        for c in chunks
                    ],
                    stage_spec,
                    backend=stage.backend,
                )
                if stage_spec.is_topk:
                    stage_result.topk = [
                        lst for c in chunks for lst in (c.topk or [])
                    ]
                if is_filter:
                    # Filter stages answer nothing: concatenate the
                    # per-chunk survivor lists (chunk order = query
                    # order) and remap structure-local point indices to
                    # global ones for the consuming stage.
                    proposals = [
                        lst for c in chunks for lst in (c.proposals or [])
                    ]
                    if point_idx is not None:
                        proposals = [point_idx[lst] for lst in proposals]
                    pending_proposals = proposals
                    newly, extra_eval = 0, 0
                else:
                    newly, extra_eval = _fold_stage_matches(
                        matches, topk, answered, stage_result,
                        q_idx, point_idx, P, Q, spec, stage_spec,
                    )
            all_chunks.extend(chunks)
            stage_eval = stage_result.inner_products_evaluated + extra_eval
            evaluated += stage_eval
            generated += stage_result.candidates_generated
            merged_stats = merged_stats.merge(stage_result.stats)
            record.update(
                wall_s=time.perf_counter() - stage_wall,
                evaluated=int(stage_eval),
                generated=int(stage_result.candidates_generated),
                answered=int(newly),
            )
            stage_records.append(record)
            if stage_span is not None:
                stage_span.attrs.update(answered=int(newly))
    result = JoinResult(
        matches=matches,
        spec=spec,
        inner_products_evaluated=int(evaluated),
        candidates_generated=int(generated),
        topk=topk,
        backend=the_plan.backend,
        stats=merged_stats,
    )
    return result, all_chunks, stage_records
