"""The pluggable similarity-measure layer: descriptors + registry.

A :class:`MeasureDescriptor` is everything the *engine core* needs to
know about a similarity measure, factored out of the formerly IP-only
dispatch path:

* how to validate and coerce the ``P``/``Q`` collections (dense float
  matrices for ``ip``, ragged/CSR :class:`~repro.datasets.sets.SetCollection`
  for ``jaccard``) and check they are mutually compatible;
* how to score one ``(data_row, query_row)`` pair exactly — the hook the
  sharding merge and any cross-stage re-verification use instead of the
  hard-coded ``P[i] @ Q[q]``;
* which multi-stage plan shapes apply (the norm-prefix / sketch /
  quantized-filter hybrids are inner-product constructions, so only
  ``ip`` admits them).

Backends declare which measures they speak via
``JoinBackend.measures`` (default ``("ip",)``), and the registry's
:func:`~repro.engine.registry.backends_for` crosses that with
``variants`` into the ``(measure, variant)`` capability matrix.  The
planner consults the same matrix: a backend outside the spec's cell is
priced infeasible with a reason, never asked for an estimate.

Everything here is deliberately free of numerics: the measure layer
routes and validates; the kernels (``core/brute_force.py``,
``core/set_join.py``, ...) do the math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ParameterError
from repro.utils.validation import check_matrix


@dataclass(frozen=True)
class MeasureDescriptor:
    """Engine-facing contract of one similarity measure.

    Attributes:
        name: registry key; ``JoinSpec.measure`` values resolve here.
        data_kind: coarse collection type tag — ``"dense"`` (float64
            matrices) or ``"sets"`` (CSR set collections).  Documentation
            plus a capability-matrix column; dispatch never switches on
            it.
        validate: ``validate(obj, name) -> collection`` — coerce/check
            one input collection (the per-side half of the old
            ``validate_join_inputs``).
        check_compatible: ``check_compatible(P, Q) -> None`` — raise
            unless the two collections can be joined (dimension match
            for ``ip``, shared universe for ``jaccard``).
        pair_score: ``pair_score(P, i, Q, j) -> float`` — the exact
            similarity of data row ``i`` and query row ``j``; the single
            scoring hook for sharding merges and re-verification.
        supports_hybrids: whether the planner's multi-stage hybrid
            shapes are meaningful for this measure.
        dense_queries: whether streamed query chunks arrive as dense
            float matrices (``QuerySource`` re-blocking validates them
            with ``check_matrix``); set measures accept dense binary
            chunks and coerce per chunk.
    """

    name: str
    data_kind: str
    validate: Callable
    check_compatible: Callable
    pair_score: Callable
    supports_hybrids: bool = True
    dense_queries: bool = True


_MEASURES: Dict[str, MeasureDescriptor] = {}


def register_measure(descriptor: MeasureDescriptor, replace: bool = False):
    """Register a measure descriptor under its name (loud on duplicates)."""
    if not descriptor.name:
        raise ParameterError("measure descriptor must define a name")
    if descriptor.name in _MEASURES and not replace:
        raise ParameterError(
            f"measure {descriptor.name!r} is already registered; pass "
            f"replace=True to shadow it"
        )
    _MEASURES[descriptor.name] = descriptor
    return descriptor


def get_measure(name: str) -> MeasureDescriptor:
    """Look up a measure by name, with a helpful error on misses."""
    try:
        return _MEASURES[name]
    except KeyError:
        raise ParameterError(
            f"unknown measure {name!r}; registered: {available_measures()}"
        ) from None


def available_measures() -> List[str]:
    """Registered measure names, in registration order."""
    return list(_MEASURES)


# -- inner product (the paper's measure; the pre-refactor behaviour) ----

def _ip_validate(obj, name: str):
    return check_matrix(obj, name)


def _ip_compatible(P, Q) -> None:
    if P.shape[1] != Q.shape[1]:
        raise ParameterError(
            f"P and Q must share a dimension, got {P.shape[1]} and {Q.shape[1]}"
        )


def _ip_pair_score(P, i: int, Q, j: int) -> float:
    return float(P[i] @ Q[j])


register_measure(MeasureDescriptor(
    name="ip",
    data_kind="dense",
    validate=_ip_validate,
    check_compatible=_ip_compatible,
    pair_score=_ip_pair_score,
    supports_hybrids=True,
    dense_queries=True,
))


# -- Jaccard (set collections; arXiv:1907.02251's BCP measure) ----------

def _jaccard_validate(obj, name: str):
    from repro.datasets.sets import SetCollection

    return SetCollection.coerce(obj, name)


def _jaccard_compatible(P, Q) -> None:
    if P.shape[1] != Q.shape[1]:
        raise ParameterError(
            f"P and Q must share a universe, got {P.shape[1]} and {Q.shape[1]}"
        )


def _jaccard_pair_score(P, i: int, Q, j: int) -> float:
    from repro.datasets.sets import jaccard_pair

    return jaccard_pair(P.row(i), Q.row(j))


register_measure(MeasureDescriptor(
    name="jaccard",
    data_kind="sets",
    validate=_jaccard_validate,
    check_compatible=_jaccard_compatible,
    pair_score=_jaccard_pair_score,
    supports_hybrids=False,
    dense_queries=False,
))
