"""The Plan IR: what the engine executes.

A :class:`Plan` is an ordered list of :class:`Stage`\\ s.  Each stage
binds a backend name, the resolved options its ``prepare`` will receive,
and a *partition rule* describing which part of the instance it answers:

* ``points``: the data subset the stage's structure is built over —
  ``"all"``, or a norm-threshold split of ``P`` (``"norm_top"`` /
  ``"norm_tail"`` with a ``fraction``: the top/remaining ``ceil(f * n)``
  rows by decreasing Euclidean norm);
* ``queries``: the query subset the stage answers — ``"all"``, or
  ``"unanswered"`` (queries no prior stage matched), the fallback rule.

Single-backend joins are the one-stage special case
(:meth:`Plan.single`): every request through :func:`repro.engine.join`
normalizes to a Plan, and a one-stage all-points/all-queries Plan runs
the exact pre-IR dispatch path, bit for bit.

Multi-stage execution (see :mod:`repro.engine.api`) walks the stages in
order under one :class:`~repro.core.problems.JoinResult`: each stage
reuses the backend ``prepare``/``run_chunk`` contract on its point/query
subset, the unanswered-query mask flows to the next stage, and matches
whose stage ran under a *weaker* final spec (the sketch backend
substitutes its own ``c``) are re-verified against the caller's ``cs``
before a query counts as answered.  Because the mask is computed from
fully merged stage results, serial and parallel execution stay
bit-identical stage by stage.

The two hybrid shapes the planner scores (:func:`norm_prefix_lsh_plan`,
:func:`sketch_fallback_plan`) mirror the paper's structure: the
LEMP-style exact scan dominates on the high-norm head of the data while
Section 4's LSH wins on the tail, and the Section 4.3 sketch join needs
an exact fallback for queries its recovery descent misses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.errors import ParameterError

#: Valid query-partition rules.
QUERY_RULES = ("all", "unanswered")
#: Valid point-partition rules.
POINT_RULES = ("all", "norm_top", "norm_tail")
#: Valid stage kinds: ``"backend"`` answers queries; ``"filter"``
#: proposes candidate lists that the *next* stage verifies.
STAGE_KINDS = ("backend", "filter")


@dataclass(frozen=True)
class Stage:
    """One step of a :class:`Plan`: a backend on a point/query subset.

    ``options`` are forwarded to the backend's ``prepare`` verbatim;
    ``fraction`` is required exactly when ``points`` is a norm split.
    A ``kind="filter"`` stage answers nothing: its backend emits one
    survivor list per query, which the engine injects into the next
    stage's ``prepare`` as its ``proposals`` option.
    """

    backend: str
    options: Mapping = field(default_factory=dict)
    queries: str = "all"
    points: str = "all"
    fraction: Optional[float] = None
    label: str = ""
    kind: str = "backend"

    def __post_init__(self):
        if not self.backend:
            raise ParameterError("stage backend name must be non-empty")
        if self.kind not in STAGE_KINDS:
            raise ParameterError(
                f"stage kind must be one of {STAGE_KINDS}, got {self.kind!r}"
            )
        if self.kind == "filter" and self.queries != "all":
            raise ParameterError(
                "filter stages propose one candidate list per query and "
                "must use queries='all'"
            )
        if self.queries not in QUERY_RULES:
            raise ParameterError(
                f"stage query rule must be one of {QUERY_RULES}, "
                f"got {self.queries!r}"
            )
        if self.points not in POINT_RULES:
            raise ParameterError(
                f"stage point rule must be one of {POINT_RULES}, "
                f"got {self.points!r}"
            )
        if self.points == "all":
            if self.fraction is not None:
                raise ParameterError(
                    "fraction only applies to norm-split point rules"
                )
        else:
            if self.fraction is None or not 0.0 < self.fraction < 1.0:
                raise ParameterError(
                    f"norm-split stages need a fraction in (0, 1), "
                    f"got {self.fraction!r}"
                )

    @property
    def is_partitioned(self) -> bool:
        """Does this stage run on a proper subset of points or queries?"""
        return self.points != "all" or self.queries != "all"


@dataclass(frozen=True)
class Plan:
    """An ordered sequence of stages answering one join under one result."""

    stages: Tuple[Stage, ...]

    def __post_init__(self):
        if not self.stages:
            raise ParameterError("a plan needs at least one stage")
        stages = tuple(self.stages)
        if any(not isinstance(stage, Stage) for stage in stages):
            raise ParameterError("plan stages must be Stage instances")
        for i, stage in enumerate(stages):
            if stage.kind != "filter":
                continue
            if i == len(stages) - 1:
                raise ParameterError(
                    "a filter stage cannot be last: it only proposes "
                    "candidates and answers no queries"
                )
            nxt = stages[i + 1]
            if (
                nxt.kind != "backend"
                or nxt.queries != "all"
                or nxt.points != "all"
            ):
                raise ParameterError(
                    "the stage after a filter consumes its proposals and "
                    "must be a kind='backend' stage with queries='all' "
                    "and points='all'"
                )
        object.__setattr__(self, "stages", stages)

    @property
    def backend(self) -> str:
        """The composite name reported on results: stage names joined by ``+``."""
        return "+".join(stage.backend for stage in self.stages)

    @property
    def is_multi_stage(self) -> bool:
        return len(self.stages) > 1

    def consumes_proposals(self, index: int) -> bool:
        """True when stage ``index`` is fed the previous filter stage's
        survivor lists.

        Such a stage's ``prepare`` takes per-query ``proposals``, so a
        session cannot prepare it once at ``open()`` — it is re-prepared
        (cheaply: no quantization, no index build) on every ``query()``
        with that batch's proposals.
        """
        return index > 0 and self.stages[index - 1].kind == "filter"

    @classmethod
    def single(cls, backend: str, options: Optional[Mapping] = None) -> "Plan":
        """The one-stage special case every plain ``backend=`` call becomes."""
        return cls(stages=(Stage(backend=backend, options=dict(options or {})),))


def norm_prefix_lsh_plan(
    prefix_fraction: float = 0.2,
    prefix_options: Optional[Mapping] = None,
    tail_options: Optional[Mapping] = None,
) -> Plan:
    """Hybrid shape 1: exact LEMP-style scan of the high-norm head, LSH tail.

    Stage 1 builds a norm-pruned scan over the top ``prefix_fraction`` of
    the data by norm and answers every query exactly against that head;
    stage 2 builds an LSH index over the remaining tail and answers only
    the queries the head left unanswered.
    """
    return Plan(stages=(
        Stage(
            backend="norm_pruned",
            options=dict(prefix_options or {}),
            points="norm_top",
            fraction=prefix_fraction,
            label="prefix",
        ),
        Stage(
            backend="lsh",
            options=dict(tail_options or {}),
            queries="unanswered",
            points="norm_tail",
            fraction=prefix_fraction,
            label="tail",
        ),
    ))


def sketch_fallback_plan(
    sketch_options: Optional[Mapping] = None,
    fallback_backend: str = "brute_force",
    fallback_options: Optional[Mapping] = None,
) -> Plan:
    """Hybrid shape 2: the Section 4.3 sketch join with an exact fallback.

    Stage 1 runs the sketch join over the full data; because the sketch
    substitutes its own (typically weaker) ``c``, the engine re-verifies
    its matches against the caller's ``cs``, and stage 2 answers the
    remaining queries with an exact scan — so the matched-query set
    equals the exact join's.
    """
    return Plan(stages=(
        Stage(
            backend="sketch",
            options=dict(sketch_options or {}),
            label="sketch",
        ),
        Stage(
            backend=fallback_backend,
            options=dict(fallback_options or {}),
            queries="unanswered",
            label="fallback",
        ),
    ))


def quantized_filter_plan(
    filter_options: Optional[Mapping] = None,
    verify_options: Optional[Mapping] = None,
) -> Plan:
    """Hybrid shape 3: sketch-filter proposals, exact verify on survivors.

    Stage 1 runs the Pagh-Sivertsen-style inner-product sketch filter
    over the full data and proposes, per query, every point whose sketch
    estimate plus confidence margin reaches ``cs``; stage 2 receives the
    survivor lists as its ``proposals`` option and evaluates exact
    float64 inner products on the survivors only.  True matches are
    missed only on > ``z``-sigma sketch deviations (``z`` defaults to 3),
    so recall stays near-perfect while the exact work drops from ``n *
    m`` pairs to the survivor count.
    """
    return Plan(stages=(
        Stage(
            backend="ip_filter",
            kind="filter",
            options=dict(filter_options or {}),
            label="filter",
        ),
        Stage(
            backend="quantized",
            options=dict(verify_options or {}),
            label="verify",
        ),
    ))


def norm_split_size(n: int, fraction: float) -> int:
    """Rows in the ``norm_top`` side of a norm split (at least 1, at most n-1)."""
    if n < 2:
        raise ParameterError(
            f"norm-split stages need at least two data vectors, got {n}"
        )
    return max(1, min(n - 1, math.ceil(fraction * n)))


def norm_partition(P, fraction: float) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``P`` into (top, tail) global index arrays by decreasing norm.

    Uses the same stable descending-norm order as
    :class:`~repro.core.norm_pruning.NormScanIndex`, so the split is
    deterministic under ties.  Both halves are returned *sorted* (data
    subsets keep their original relative order), which keeps subset scans
    deterministic and makes local->global index remapping a plain gather.
    """
    norms = np.linalg.norm(P, axis=1)
    order = np.argsort(-norms, kind="stable")
    n_top = norm_split_size(P.shape[0], fraction)
    return np.sort(order[:n_top]), np.sort(order[n_top:])


def stage_point_indices(stage: Stage, P) -> Optional[np.ndarray]:
    """Global data indices this stage's structure is built over.

    ``None`` means the full data set (no gather, no remapping) — the
    one-stage fast path relies on this being exactly the input ``P``.
    """
    if stage.points == "all":
        return None
    top, tail = norm_partition(P, stage.fraction)
    return top if stage.points == "norm_top" else tail
