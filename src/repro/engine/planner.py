"""Cost-model planner: pick a backend for a join instance.

Extends the index-level (k, L) theory of :mod:`repro.lsh.planner` one
level up: given instance shape ``(n, m, d)`` and a
:class:`~repro.core.problems.JoinSpec`, ask every registered backend for
a :class:`~repro.engine.protocol.CostEstimate` under one
:class:`CostModel` and rank the feasible ones by predicted total ops.
``repro.engine.join(..., backend="auto")`` executes the winner.

The model's constants are *relative* op weights (a GEMM multiply-add is
the unit).  The defaults are deliberately conservative about the
probabilistic backends: fixed build charges (``lsh_fixed_build``,
``sketch_fixed_build``) price in Python/index constant factors, so on
small instances the planner always lands on an exact backend — which is
also what makes ``auto`` results deterministic and testable against
brute force there.  For machine-specific planning the constants can be
calibrated from a ``BENCH_*.json`` produced by ``tools/bench_perf.py``
via :meth:`CostModel.from_bench`.

Since the Plan IR landed, the planner ranks *plans*, not backends: every
single-backend estimate becomes a one-stage :class:`PlanEstimate`, and
two-stage hybrids (norm-pruned prefix + LSH tail; sketch + exact
fallback, :mod:`repro.engine.plan`) are scored alongside them under the
same model — a hybrid's cost is the sum of its per-stage estimates on
the point/query subsets the model expects each stage to handle
(``hybrid_prefix_fraction``, ``hybrid_tail_query_fraction``,
``sketch_fallback_query_fraction``).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

from repro.core.problems import JoinSpec
from repro.engine.plan import (
    Plan,
    norm_prefix_lsh_plan,
    norm_split_size,
    quantized_filter_plan,
    sketch_fallback_plan,
)
from repro.engine.protocol import CostEstimate
from repro.errors import ParameterError

#: Reference throughput used by ``from_bench`` to turn measured seconds
#: into relative op weights: ops-per-second of the machine the default
#: constants were tuned on.  Only ratios matter.
_REFERENCE_GEMM_OPS_PER_S = 5e9


@dataclass(frozen=True)
class CostModel:
    """Relative operation weights for backend cost estimates.

    All weights are in units of one dense GEMM multiply-add
    (``gemm_op = 1``).  ``hash_op`` is per *bit* of hashing work before
    the factor-64 bit-packing discount applied in the backends;
    ``candidate_op`` prices bucket bookkeeping per candidate;
    ``row_op`` prices per-query Python/dispatch overhead; the
    ``*_fixed_build`` charges price index-construction constant factors
    that op counts alone miss.
    """

    gemm_op: float = 1.0
    gemv_op: float = 4.0
    hash_op: float = 2.0
    candidate_op: float = 8.0
    row_op: float = 200.0
    norm_fixed_build: float = 2e4
    lsh_fixed_build: float = 5e5
    sketch_fixed_build: float = 2e6
    #: Fraction of the data a norm-pruned scan is expected to touch.
    norm_prefix_fraction: float = 0.35
    #: Fallback candidate fraction when no (k, L) plan is derivable.
    lsh_candidate_fraction: float = 0.05
    #: Bounds for the sketch trade-off knob when derived from ``c``.
    min_kappa: float = 2.1
    max_kappa: float = 16.0
    #: Data fraction the norm-pruned stage of a hybrid plan covers.
    hybrid_prefix_fraction: float = 0.2
    #: Query fraction expected to fall through to a hybrid's LSH tail.
    hybrid_tail_query_fraction: float = 0.5
    #: Query fraction expected to need the sketch hybrid's exact fallback.
    sketch_fallback_query_fraction: float = 0.3
    #: Per-coordinate weight of the int8 code-product scan relative to a
    #: float64 GEMM multiply-add.  Kept above ``norm_prefix_fraction``:
    #: on unconstrained memory the norm-pruned scan stays the preferred
    #: exact backend, and the compact tier wins through the memory term.
    quant_scan_op: float = 0.5
    #: Fixed cost of quantizing the data matrix.
    quant_fixed_build: float = 5e4
    #: Expected fraction of pairs surviving the quantized scan bound.
    quant_verify_fraction: float = 0.02
    #: Sketch dimensions the planner assumes for the ip_filter stage.
    filter_dims: float = 32.0
    #: Expected fraction of pairs surviving the sketch filter.
    filter_selectivity: float = 0.02
    #: Fixed cost of projecting + quantizing the filter sketches.
    filter_fixed_build: float = 1e5
    #: Per-element weight of the set-intersection postings scan relative
    #: to a float64 GEMM multiply-add (gathers + bincount per posting).
    set_scan_op: float = 4.0
    #: Fixed cost of building the inverted set-postings index.
    set_fixed_build: float = 1e4
    #: Fixed cost of MinHash table construction + bucket sorting.
    minhash_fixed_build: float = 2e5
    #: Expected fraction of the data surviving MinHash banding per query.
    minhash_candidate_fraction: float = 0.02
    #: Mean set cardinality assumed when pricing set workloads (the
    #: planner only sees ``(n, m, d)`` with ``d`` = universe size, so the
    #: nnz per row enters as a model constant, calibratable like any
    #: other weight).
    set_mean_size: float = 64.0
    #: Bytes of data-structure working set the scan tier may use before
    #: the memory penalty kicks in; ``0`` disables the memory term.
    mem_budget_bytes: float = 0.0
    #: Multiplier applied to scan work whose working set exceeds the
    #: budget (cache/RAM spill: bandwidth-bound scans slow down by about
    #: the bytes-per-row ratio, which the penalty approximates).
    mem_over_budget_penalty: float = 8.0
    #: Marginal speedup per additional worker (0..1): worker ``i`` adds
    #: ``parallel_efficiency`` of a core's throughput.  Below 1 because
    #: chunks share memory bandwidth and the merge is serial.
    parallel_efficiency: float = 0.75
    #: Fixed per-worker charge (ops): pool dispatch, payload-shell thaw,
    #: per-chunk result pickling.
    parallel_worker_overhead: float = 5e5
    #: Core count the parallel term assumes; ``0`` means read
    #: :func:`os.cpu_count` at plan time.  Tests pin this for
    #: machine-independent assertions.
    parallel_cores: float = 0.0

    def effective_cores(self) -> float:
        return (
            float(self.parallel_cores)
            if self.parallel_cores >= 1.0
            else float(os.cpu_count() or 1)
        )

    def parallel_speedup(self, n_workers: int) -> float:
        """Predicted throughput multiple of ``n_workers`` vs serial.

        Workers beyond the core count add nothing (they time-slice), so
        the efficiency term applies to ``min(n_workers, cores) - 1``
        extra workers.
        """
        if n_workers <= 1:
            return 1.0
        w = min(float(n_workers), self.effective_cores())
        return max(1.0, 1.0 + (w - 1.0) * self.parallel_efficiency)

    def memory_factor(self, row_bytes: float, n: int) -> float:
        """Scan-work multiplier for a structure of ``row_bytes * n`` bytes.

        ``1.0`` when the memory term is off (``mem_budget_bytes == 0``)
        or the working set fits the budget; ``mem_over_budget_penalty``
        when it spills.  Backends multiply their bandwidth-bound scan
        terms by this, which is how ``backend="auto"`` learns to prefer
        the compact tier (about ``d + 24`` bytes per row) over float64
        scans (``8 d`` bytes per row) on memory-constrained instances.
        """
        if self.mem_budget_bytes <= 0.0:
            return 1.0
        if row_bytes * float(n) <= self.mem_budget_bytes:
            return 1.0
        return self.mem_over_budget_penalty

    def parallelize(self, estimate: "CostEstimate", n_workers: int) -> "CostEstimate":
        """Re-price a backend estimate for parallel execution.

        Query work divides by the predicted speedup — build work does
        not: since the zero-copy executor builds once in the parent,
        construction is serial regardless of worker count.  Each worker
        also pays a fixed dispatch overhead, which is what lets the
        planner conclude that a small join is cheaper serial.
        """
        if n_workers <= 1 or not estimate.feasible:
            return estimate
        return replace(
            estimate,
            query_ops=(
                estimate.query_ops / self.parallel_speedup(n_workers)
                + self.parallel_worker_overhead * n_workers
            ),
        )

    def lsh_plan(self, n: int, spec: JoinSpec):
        """A (k, L) plan for this instance, or ``None`` when underivable.

        Uses the hyperplane collision form (the scheme the engine
        auto-builds); thresholds are interpreted as cosines, clamped
        into the valid range, so out-of-range specs simply fall back to
        the generic candidate-fraction model instead of failing.
        """
        from repro.lsh.planner import plan
        from repro.lsh.rho import collision_prob_hyperplane

        try:
            s_ratio = min(abs(spec.s), 0.999)
            p1 = collision_prob_hyperplane(s_ratio)
            p2 = collision_prob_hyperplane(spec.c * s_ratio)
            return plan(max(n, 2), p1, p2)
        except ParameterError:
            return None

    def sketch_kappa(self, n: int, c: float) -> float:
        """The ``kappa`` for which ``n^{-1/kappa} = c``, clamped sane."""
        if n < 2 or not 0.0 < c < 1.0:
            return self.min_kappa
        kappa = math.log(n) / math.log(1.0 / c)
        return min(self.max_kappa, max(self.min_kappa, kappa))

    @classmethod
    def from_bench(cls, source) -> "CostModel":
        """Calibrate op weights from a ``BENCH_*.json`` measurement file.

        ``source`` is a path or an already-parsed dict with the bench
        schema's ``timings`` / ``work`` sections.  Uses whatever signals
        are present — a missing key leaves the default weight — so
        calibration degrades gracefully across bench generations:

        * verified inner products per second (``verify_blocked_s`` +
          ``inner_products_verified``) recalibrate ``gemm_op``;
        * batched hashing seconds per (query x table x bit)
          (``hash_batch_hyperplane_s``) recalibrate ``hash_op``;
        * candidate gathering (``hash_candidates_per_query_*``)
          recalibrates ``candidate_op``.
        """
        if isinstance(source, (str, bytes)):
            with open(source) as fh:
                payload = json.load(fh)
        else:
            payload = source
        if not isinstance(payload, dict):
            raise ParameterError("bench source must be a path or a dict")
        timings: Dict[str, float] = payload.get("timings", {})
        work: Dict[str, float] = payload.get("work", {})
        meta: Dict[str, dict] = payload.get("meta", {})
        updates: Dict[str, float] = {}

        verified = work.get("inner_products_verified")
        verify_s = timings.get("verify_blocked_s")
        if verified and verify_s:
            ops_per_s = float(verified) / float(verify_s)
            updates["gemm_op"] = _REFERENCE_GEMM_OPS_PER_S / ops_per_s

        hash_s = timings.get("hash_batch_hyperplane_s")
        hash_meta = meta.get("hash_suite", {})
        if hash_s and hash_meta:
            bits = (
                hash_meta.get("n_queries", 0)
                * hash_meta.get("n_tables", 0)
                * hash_meta.get("hashes_per_table", 0)
                * hash_meta.get("d", 0)
            )
            if bits:
                per_bit_s = float(hash_s) / bits
                updates["hash_op"] = (
                    per_bit_s * _REFERENCE_GEMM_OPS_PER_S
                )

        gemm = updates.get("gemm_op", cls.gemm_op)
        if gemm > 0:
            # Keep weights relative: everything is priced against GEMM.
            for key in list(updates):
                if key != "gemm_op":
                    updates[key] = updates[key] / gemm
            updates["gemm_op"] = 1.0
        return replace(cls(), **updates)

    @classmethod
    def from_planner_log(cls, source) -> "CostModel":
        """Calibrate op weights from measured joins in a planner log.

        The sibling of :meth:`from_bench` fed by production telemetry
        instead of a synthetic micro-bench: ``source`` is a
        :class:`~repro.obs.planner_log.PlannerLog` (or a path to one
        saved as JSONL).  Every record carries the instance shape, the
        backend that ran, measured wall seconds, and the join's work
        counters, which is enough to re-fit the signals the estimates
        are most sensitive to — missing signals leave defaults, so a log
        with only one backend still calibrates what it can:

        * ``brute_force`` records re-fit ``gemm_op`` from achieved
          multiply-adds per second (``n * m * d / wall``);
        * ``norm_pruned`` records re-fit ``norm_prefix_fraction`` from
          the fraction of the quadratic pair count actually evaluated;
        * ``lsh`` records re-fit ``lsh_candidate_fraction`` from
          candidates generated per (query, data) pair.
        """
        from repro.obs.planner_log import PlannerLog

        log = PlannerLog.load(source) if isinstance(source, (str, bytes)) else source
        updates: Dict[str, float] = {}
        gemm_rates = [
            r.n * r.m * r.d / r.wall_s
            for r in log
            if r.picked == "brute_force" and r.wall_s > 0
        ]
        if gemm_rates:
            # The best rate is the least noise-inflated estimate of
            # sustained GEMM throughput (slower runs include warm-up).
            updates["gemm_op"] = _REFERENCE_GEMM_OPS_PER_S / max(gemm_rates)
        prefix_fracs = [
            r.evaluated / (r.n * r.m)
            for r in log
            if r.picked == "norm_pruned" and r.evaluated > 0
        ]
        if prefix_fracs:
            updates["norm_prefix_fraction"] = min(
                1.0, sum(prefix_fracs) / len(prefix_fracs)
            )
        cand_fracs = [
            r.generated / (r.n * r.m)
            for r in log
            if r.picked == "lsh" and r.generated > 0
        ]
        if cand_fracs:
            updates["lsh_candidate_fraction"] = min(
                1.0, sum(cand_fracs) / len(cand_fracs)
            )
        if "gemm_op" in updates and updates["gemm_op"] > 0:
            # Like from_bench: weights are relative, GEMM is the unit.
            # The fraction fields are dimensionless and stay as fitted.
            updates["gemm_op"] = 1.0
        return replace(cls(), **updates)

    def save(self, path: str) -> str:
        """Persist this model as JSON; returns the written path.

        The default location ``~/.repro/costmodel.json`` is what
        :func:`default_model` (hence ``backend="auto"``) picks up on the
        next process start.
        """
        payload = {"format": "repro-costmodel-v1", **asdict(self)}
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "CostModel":
        """Read a model written by :meth:`save` (unknown keys ignored)."""
        with open(path) as fh:
            payload = json.load(fh)
        if not isinstance(payload, dict):
            raise ParameterError(f"{path}: cost model file must hold an object")
        known = {f.name for f in fields(cls)}
        kwargs = {}
        for key, value in payload.items():
            if key not in known:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ParameterError(
                    f"{path}: field {key!r} must be a number, got {value!r}"
                )
            kwargs[key] = float(value)
        return cls(**kwargs)


#: The process-wide default model (uncalibrated).
DEFAULT_MODEL = CostModel()

#: Where :func:`default_model` looks for a persisted calibration unless
#: the ``REPRO_COSTMODEL`` environment variable overrides it.
DEFAULT_MODEL_PATH = os.path.join("~", ".repro", "costmodel.json")

#: One-entry cache for :func:`default_model`: (path, mtime_ns, model).
_MODEL_CACHE: Optional[tuple] = None


def default_model() -> CostModel:
    """The model ``backend="auto"`` uses when none is passed explicitly.

    Resolution order:

    1. ``REPRO_COSTMODEL`` set to a non-empty path — load that file;
    2. ``REPRO_COSTMODEL`` set but empty — the builtin
       :data:`DEFAULT_MODEL` (an explicit opt-out, used by the test
       suite for isolation from developer machines);
    3. unset — ``~/.repro/costmodel.json`` when present (written by
       :meth:`CostModel.save`, e.g. via ``tools/planner_report.py
       --write-model``).

    A missing or unreadable file silently falls back to the builtin
    defaults: a stale calibration must never break joins.  Loads are
    cached on ``(path, mtime)``, so the per-join cost is one ``stat``.
    """
    global _MODEL_CACHE
    env = os.environ.get("REPRO_COSTMODEL")
    if env is not None and not env:
        return DEFAULT_MODEL
    path = os.path.expanduser(env if env else DEFAULT_MODEL_PATH)
    try:
        mtime = os.stat(path).st_mtime_ns
    except OSError:
        return DEFAULT_MODEL
    cached = _MODEL_CACHE
    if cached is not None and cached[0] == path and cached[1] == mtime:
        return cached[2]
    try:
        model = CostModel.load(path)
    except (OSError, ValueError, ParameterError):
        return DEFAULT_MODEL
    _MODEL_CACHE = (path, mtime, model)
    return model


@dataclass(frozen=True)
class PlanEstimate:
    """Predicted cost of one candidate :class:`~repro.engine.plan.Plan`.

    ``stage_estimates`` holds one :class:`CostEstimate` per stage,
    evaluated on the point/query subset the model expects that stage to
    handle; the plan's total is their sum.  A plan is feasible only when
    every stage is.
    """

    plan: Plan
    stage_estimates: Tuple[CostEstimate, ...]
    feasible: bool
    reason: str = ""

    @property
    def backend(self) -> str:
        return self.plan.backend

    @property
    def total_ops(self) -> float:
        return sum(e.total_ops for e in self.stage_estimates)

    def amortized_ops(self, expected_queries: float) -> float:
        """Predicted cost of one build followed by ``expected_queries`` runs.

        Build work is paid once per session; per-query work is paid on
        every ``query()`` call.  At ``expected_queries=1`` this equals
        :attr:`total_ops` — the one-shot ranking — which is what keeps
        ``engine.join()`` bit-identical to its pre-session behavior.
        """
        return sum(
            e.build_ops + expected_queries * e.query_ops
            for e in self.stage_estimates
        )


@dataclass(frozen=True)
class JoinPlan:
    """The planner's ranked view of one join instance.

    ``estimates`` keeps the pre-IR single-backend ranking (one
    :class:`CostEstimate` per registered backend); ``plans`` ranks the
    full candidate set — every single-backend plan plus the two-stage
    hybrids — and is what ``backend="auto"`` executes.
    """

    n: int
    m: int
    d: int
    spec: JoinSpec
    estimates: List[CostEstimate] = field(default_factory=list)
    plans: List[PlanEstimate] = field(default_factory=list)
    #: Queries the ranking amortized the build over (1 = one-shot).
    expected_queries: float = 1.0

    @property
    def feasible(self) -> List[CostEstimate]:
        return [e for e in self.estimates if e.feasible]

    @property
    def feasible_plans(self) -> List[PlanEstimate]:
        return [p for p in self.plans if p.feasible]

    def _no_feasible_error(self) -> ParameterError:
        # Every backend's own reason, so the caller learns exactly what
        # ruled each one out rather than a bare "no feasible backend".
        detail = "; ".join(
            f"{e.backend}: {e.reason or 'infeasible'}"
            for e in self.estimates
            if not e.feasible
        )
        return ParameterError(
            f"no feasible plan for the {self.spec.variant!r} variant on "
            f"(n={self.n}, m={self.m}, d={self.d}): {detail}"
        )

    @property
    def best(self) -> CostEstimate:
        feasible = self.feasible
        if not feasible:
            raise self._no_feasible_error()
        return feasible[0]

    @property
    def best_plan(self) -> PlanEstimate:
        feasible = self.feasible_plans
        if not feasible:
            raise self._no_feasible_error()
        return feasible[0]

    @property
    def backend(self) -> str:
        return self.best_plan.backend


def _hybrid_candidates(
    n: int, m: int, d: int, spec: JoinSpec, model: CostModel
) -> List[PlanEstimate]:
    """Score the two-stage hybrid shapes for this instance.

    Each hybrid's stage costs come from the member backends' own
    ``estimate_cost`` on the subset sizes the model expects: the
    norm-pruned prefix covers ``hybrid_prefix_fraction`` of the data
    with every query, the LSH tail covers the rest of the data for
    ``hybrid_tail_query_fraction`` of the queries, and the sketch
    fallback re-scans ``sketch_fallback_query_fraction`` of the queries
    exactly.
    """
    from repro.engine.measures import get_measure
    from repro.engine.registry import available_backends, get_backend

    # The two-stage shapes below (norm prefix, sketch fallback, sketch
    # filter + quantized verify) are inner-product constructions; other
    # measures opt out through their descriptor.
    if not get_measure(spec.measure).supports_hybrids:
        return []

    names = set(available_backends())
    candidates: List[PlanEstimate] = []

    # Norm-pruned prefix + LSH tail: threshold and top-k joins over a
    # splittable data set.
    if (
        spec.variant in ("join", "topk")
        and n >= 2
        and {"norm_pruned", "lsh"} <= names
    ):
        f = model.hybrid_prefix_fraction
        n_top = norm_split_size(n, f)
        m_tail = max(1, math.ceil(model.hybrid_tail_query_fraction * m))
        head = get_backend("norm_pruned").estimate_cost(n_top, m, d, spec, model)
        tail = get_backend("lsh").estimate_cost(n - n_top, m_tail, d, spec, model)
        infeasible = next((e for e in (head, tail) if not e.feasible), None)
        candidates.append(PlanEstimate(
            plan=norm_prefix_lsh_plan(prefix_fraction=f),
            stage_estimates=(head, tail),
            feasible=infeasible is None,
            reason=(
                f"{infeasible.backend} stage: {infeasible.reason}"
                if infeasible is not None else ""
            ),
        ))

    # Sketch + exact fallback: unsigned threshold joins with a gap.  The
    # sketch stage runs at the best approximation it can actually reach
    # (``kappa`` capped by the model, so ``c`` no stronger than
    # ``n^{-1/max_kappa}``), and the fallback patches whatever that
    # weaker ``c`` misses — so the sketch estimate is taken at the
    # achievable ``c``, not the caller's.  The 0.999 nudge keeps the
    # derived kappa strictly under the cap despite float rounding.
    if (
        spec.variant == "join"
        and not spec.signed
        and 0.0 < spec.c < 1.0
        and n >= 2
        and {"sketch", "brute_force"} <= names
    ):
        c_achievable = 0.999 * float(n) ** (-1.0 / model.max_kappa)
        spec_eff = replace(spec, c=min(spec.c, c_achievable))
        m_fall = max(1, math.ceil(model.sketch_fallback_query_fraction * m))
        propose = get_backend("sketch").estimate_cost(n, m, d, spec_eff, model)
        fallback = get_backend("brute_force").estimate_cost(
            n, m_fall, d, spec, model
        )
        infeasible = next(
            (e for e in (propose, fallback) if not e.feasible), None
        )
        candidates.append(PlanEstimate(
            plan=sketch_fallback_plan(
                sketch_options={"kappa": model.sketch_kappa(n, spec.c)},
            ),
            stage_estimates=(propose, fallback),
            feasible=infeasible is None,
            reason=(
                f"{infeasible.backend} stage: {infeasible.reason}"
                if infeasible is not None else ""
            ),
        ))

    # Sketch filter + quantized verify: threshold/top-k joins with an
    # approximation gap (the filter's z-sigma margin needs slack below
    # the threshold to be selective; at c = 1 any miss violates
    # exactness, so the shape is offered only for approximate requests).
    # ip_filter.estimate_cost is standalone-infeasible by design, so the
    # filter stage is priced inline: project queries, scan int8 sketches
    # of filter_dims coordinates, verify the surviving fraction exactly.
    if (
        spec.variant in ("join", "topk")
        and 0.0 < spec.c < 1.0
        and {"ip_filter", "quantized"} <= names
    ):
        k_dims = model.filter_dims
        filter_build = (
            model.filter_fixed_build + n * k_dims * d * model.gemm_op
        )
        filter_query = (
            m * k_dims * d * model.gemm_op
            + n * m * k_dims * model.quant_scan_op
            * model.memory_factor(k_dims + 24.0, n)
            + model.filter_selectivity * n * m * model.candidate_op
        )
        filter_est = CostEstimate(
            backend="ip_filter", feasible=True,
            build_ops=filter_build, query_ops=filter_query,
        )
        verify_est = CostEstimate(
            backend="quantized", feasible=True,
            build_ops=0.0,
            query_ops=(
                model.filter_selectivity * n * m * d * model.gemm_op
                + m * model.row_op
            ),
        )
        candidates.append(PlanEstimate(
            plan=quantized_filter_plan(),
            stage_estimates=(filter_est, verify_est),
            feasible=True,
        ))
    return candidates


def plan_join(
    n: int,
    m: int,
    d: int,
    spec: JoinSpec,
    model: Optional[CostModel] = None,
    include_hybrids: bool = True,
    n_workers: int = 1,
    expected_queries: float = 1.0,
) -> JoinPlan:
    """Rank every candidate plan for an ``(n, d) x (m, d)`` instance.

    Feasible plans come first, cheapest first (ties broken by
    registration order — exact backends register before probabilistic
    ones, and single-stage plans before hybrids, so a tie resolves to
    the stronger guarantee and the simpler plan); infeasible ones
    follow, carrying their reasons for diagnostics.
    ``include_hybrids=False`` restricts the ranking to single-stage
    plans (the engine does this when backend-specific options were
    passed, since those bind to one backend).

    With ``n_workers > 1`` every estimate is re-priced through
    :meth:`CostModel.parallelize` — query work divides by the predicted
    parallel speedup while build work stays serial — so ``auto`` ranks
    backends under the execution mode that will actually run (a
    build-heavy backend looks relatively worse parallel, where its
    construction cannot be amortized across workers).

    ``expected_queries`` amortizes build cost the other way: a session
    that will answer ~k query batches against one prepared structure
    ranks plans by ``build_ops + k * query_ops``, so a backend with an
    expensive build but cheap queries (an LSH index, a norm-sorted scan)
    beats brute force once k is large even though it loses the one-shot
    comparison.  ``m`` should then be the *per-batch* query count, not
    the lifetime total.  The default of 1 is exactly the historical
    one-shot ranking.
    """
    from repro.engine.registry import available_backends, get_backend

    if n < 1 or m < 1 or d < 1:
        raise ParameterError(
            f"instance shape must be positive, got n={n}, m={m}, d={d}"
        )
    if expected_queries < 1:
        raise ParameterError(
            f"expected_queries must be >= 1, got {expected_queries}"
        )
    model = model or default_model()
    # Capability-matrix gate: a backend that does not speak the spec's
    # measure is priced infeasible without being asked for an estimate
    # (its estimate_cost was written against a different data kind).
    # IP-only instances see the exact pre-measure-layer estimates.
    estimates = []
    for name in available_backends():
        backend = get_backend(name)
        if spec.measure not in getattr(backend, "measures", ("ip",)):
            estimates.append(CostEstimate(
                backend=name,
                feasible=False,
                reason=f"no {spec.measure!r} measure",
            ))
        else:
            estimates.append(backend.estimate_cost(n, m, d, spec, model))
    plans = [
        PlanEstimate(
            plan=Plan.single(e.backend),
            stage_estimates=(e,),
            feasible=e.feasible,
            reason=e.reason,
        )
        for e in estimates
    ]
    if include_hybrids:
        plans.extend(_hybrid_candidates(n, m, d, spec, model))
    if n_workers > 1:
        estimates = [model.parallelize(e, n_workers) for e in estimates]
        plans = [
            replace(
                p,
                stage_estimates=tuple(
                    model.parallelize(e, n_workers) for e in p.stage_estimates
                ),
            )
            for p in plans
        ]
    eq = float(expected_queries)
    est_order = sorted(
        range(len(estimates)),
        key=lambda i: (
            not estimates[i].feasible,
            estimates[i].build_ops + eq * estimates[i].query_ops,
            i,
        ),
    )
    plan_order = sorted(
        range(len(plans)),
        key=lambda i: (not plans[i].feasible, plans[i].amortized_ops(eq), i),
    )
    return JoinPlan(
        n=n, m=m, d=d, spec=spec,
        estimates=[estimates[i] for i in est_order],
        plans=[plans[i] for i in plan_order],
        expected_queries=eq,
    )
