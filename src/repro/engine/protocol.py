"""The backend contract of the unified join engine.

Every join algorithm in the repository — the exact quadratic scan, the
norm-pruned LEMP-style scan, LSH filter-then-verify, and the Section 4.3
sketch join — answers the same problem record
(:class:`~repro.core.problems.JoinSpec`) and is driven through the same
three-step life cycle:

1. :meth:`JoinBackend.prepare` — validate options, resolve the final
   spec (the sketch backend substitutes its own ``c = n^{-1/kappa}``),
   and produce a *payload*: a picklable object that either is the built
   structure or knows how to ``build(P)`` one (so parallel workers can
   rebuild deterministically from a seed).
2. :meth:`JoinBackend.run_chunk` — THE inner loop: answer one contiguous
   query chunk given its global ``start`` offset, returning a
   :class:`ChunkResult`.  Serial execution is the one-chunk special
   case; parallel execution shards chunks across processes.  Both call
   this exact method, which is what makes results bit-identical across
   worker counts.
3. :meth:`JoinBackend.estimate_cost` — a calibratable operation-count
   estimate used by the planner to implement ``backend="auto"``.

Backends never touch process pools or chunking themselves; that is the
executor's job (:func:`repro.core.executor.map_query_chunks`), which the
engine drives identically for every backend.

Built structures additionally participate in the session machinery
through :func:`persistable_arrays`: the large ndarrays a structure
carries are what a :class:`~repro.engine.session.JoinSession` pins into
a worker pool's shared-memory arena (so repeated queries never re-copy
them) and what the directory persistence format
(:mod:`repro.utils.persistence`) writes as raw memmappable sidecars.  A
structure may declare them explicitly with an ``arrays()`` method;
otherwise the generic pickle-graph walk finds every array the executor
would ship anyway.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core.arena import ARENA_MIN_BYTES, collect_arrays
from repro.core.problems import JoinSpec, QueryStats


@dataclass(frozen=True)
class CostEstimate:
    """A backend's predicted cost for one join instance, in abstract ops.

    ``build_ops`` + ``query_ops`` are multiply-add-equivalent counts
    scaled by a :class:`~repro.engine.planner.CostModel`; they are
    comparable *across* backends under one model, which is all the
    planner needs.  ``feasible = False`` (with ``reason``) marks
    instances a backend cannot answer — wrong variant, no approximation
    gap, parameters outside its guarantee.
    """

    backend: str
    feasible: bool
    build_ops: float = 0.0
    query_ops: float = 0.0
    reason: str = ""

    @property
    def total_ops(self) -> float:
        return self.build_ops + self.query_ops


@dataclass
class ChunkResult:
    """One backend's answer for one contiguous query chunk.

    ``matches``/``topk`` are chunk-local lists in query order;
    ``evaluated``/``generated`` are this chunk's work counters; ``stats``
    is this chunk's :class:`~repro.core.problems.QueryStats` *delta*
    (reused index counters are snapshot-diffed by the kernels), so
    chunk results merge with plain sums and :meth:`QueryStats.merge`.

    When the engine runs with observability on, the executor's runner
    also fills ``trace`` (this chunk's detached
    :class:`~repro.obs.trace.Span` tree) and ``metrics`` (a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict); both are
    plain data, so they cross process boundaries with the rest of the
    result and stitch deterministically in chunk order.
    """

    matches: List[Optional[int]]
    evaluated: int = 0
    generated: int = 0
    stats: QueryStats = field(default_factory=QueryStats)
    topk: Optional[List[List[int]]] = None
    trace: Any = None
    metrics: Optional[dict] = None
    #: Filter stages only: one ascending array of surviving point
    #: indices per chunk query (chunk-local query order, structure-local
    #: point indices).  The engine remaps and hands them to the next
    #: stage as its ``proposals`` option.
    proposals: Optional[List[Any]] = None
    #: Guaranteed-recall knob: the largest additive inner-product error
    #: bound (quantization) or confidence margin (sketch filter) granted
    #: to any pair in this chunk.  Max-merged into
    #: ``JoinResult.error_bound``.
    error_bound: Optional[float] = None
    #: Worker-side wall time for this chunk (``perf_counter_ns`` around
    #: ``run_chunk``), stamped in every execution mode.  Sessions fold
    #: these into their ``session.chunk_latency_us`` histogram; kept
    #: outside ``metrics`` because timing is not part of the
    #: bit-identical serial/parallel contract.
    wall_ns: int = 0


def persistable_arrays(
    structure, threshold: int = ARENA_MIN_BYTES
) -> List[np.ndarray]:
    """The large ndarrays a built structure carries, deduped by identity.

    Structures that know their own layout declare it with an
    ``arrays()`` method returning the arrays worth sharing/persisting
    (see :class:`repro.quant.backend.QuantizedStructure`); anything else
    falls back to :func:`repro.core.arena.collect_arrays`, the same
    pickle-graph walk the zero-copy executor's freeze path uses — so by
    construction it finds exactly the arrays a process pool would ship.
    Arrays below ``threshold`` bytes are skipped either way (they travel
    inline for less than a segment costs).
    """
    if hasattr(structure, "arrays"):
        return [
            arr
            for arr in structure.arrays()
            if isinstance(arr, np.ndarray) and arr.nbytes >= threshold
        ]
    return collect_arrays(structure, threshold=threshold)


class JoinBackend(ABC):
    """One join algorithm adapted to the engine's common surface."""

    #: Registry name; also reported in ``JoinResult.backend``.
    name: str = ""

    #: Problem variants (:attr:`JoinSpec.variant` values) this backend
    #: answers.  The planner and the Plan IR consult this to decide which
    #: backends can serve as stages for a given spec.
    variants: Tuple[str, ...] = ()

    #: Similarity measures (:attr:`JoinSpec.measure` values) this backend
    #: speaks.  The cross product ``measures x variants`` is the
    #: backend's row of the engine's capability matrix
    #: (:func:`repro.engine.registry.backends_for`); the default keeps
    #: every pre-measure-layer backend an IP backend without edits.
    measures: Tuple[str, ...] = ("ip",)

    #: Filter backends propose survivors instead of answering queries;
    #: they may only run as ``kind="filter"`` Plan stages, never as a
    #: standalone backend (the engine enforces the match both ways).
    is_filter: bool = False

    @abstractmethod
    def prepare(
        self,
        P,
        spec: JoinSpec,
        *,
        seed=None,
        block: int,
        n_workers: int = 1,
        **options,
    ) -> Tuple[Any, JoinSpec]:
        """Resolve options into ``(payload, final_spec)``.

        ``payload`` is handed to the executor: it must be picklable when
        ``n_workers > 1`` and either be the ready structure or expose
        ``build(P) -> structure`` for lazy (per-worker) construction.
        ``final_spec`` is the spec the result will carry — usually the
        input spec, but a backend may pin fields it controls (the sketch
        backend sets ``c`` to the structure's approximation factor).
        """

    @abstractmethod
    def run_chunk(self, structure, P, Q_chunk, start: int) -> ChunkResult:
        """Answer ``Q_chunk`` (global offset ``start``) with ``structure``."""

    @abstractmethod
    def estimate_cost(
        self, n: int, m: int, d: int, spec: JoinSpec, model
    ) -> CostEstimate:
        """Predicted cost of ``build + run`` on an (n, d) x (m, d) instance."""
