"""Backend registry: name -> :class:`~repro.engine.protocol.JoinBackend`.

The registry is the engine's one source of truth for what algorithms
exist.  The four built-in backends register on import of
:mod:`repro.engine`; external code can add more with :func:`register`
(a norms-aware hybrid, a GPU scan, ...) and they immediately become
valid ``backend=`` names for :func:`repro.engine.join` and candidates
for the planner's ``backend="auto"`` ranking.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Tuple

from repro.engine.protocol import JoinBackend
from repro.errors import ParameterError

_REGISTRY: Dict[str, JoinBackend] = {}


def register(backend: JoinBackend, replace: bool = False) -> JoinBackend:
    """Register ``backend`` under ``backend.name``.

    Raises :class:`~repro.errors.ParameterError` on duplicate names
    unless ``replace=True`` (so accidental shadowing is loud).
    """
    name = getattr(backend, "name", "")
    if not name:
        raise ParameterError("backend must define a non-empty name")
    if name in _REGISTRY and not replace:
        raise ParameterError(
            f"backend {name!r} is already registered; pass replace=True "
            f"to shadow it"
        )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> JoinBackend:
    """Look up a backend by name, with a helpful error on misses."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown backend {name!r}; registered: {available_backends()}"
        ) from None


def available_backends() -> List[str]:
    """Registered backend names, in registration order."""
    return list(_REGISTRY)


def backends_for(measure: str, variant: str) -> List[str]:
    """Names of registered backends covering the ``(measure, variant)``
    capability cell, in registration order.

    A backend covers a cell when ``measure`` is in its ``measures``
    tuple (default ``("ip",)`` — pre-measure backends are IP-only) and
    ``variant`` is in its ``variants`` tuple.
    """
    return [
        name
        for name, backend in _REGISTRY.items()
        if measure in getattr(backend, "measures", ("ip",))
        and variant in getattr(backend, "variants", ())
    ]


def capability_matrix() -> Dict[Tuple[str, str], List[str]]:
    """The full ``(measure, variant) -> backend names`` matrix."""
    matrix: Dict[Tuple[str, str], List[str]] = {}
    for name, backend in _REGISTRY.items():
        for measure in getattr(backend, "measures", ("ip",)):
            for variant in getattr(backend, "variants", ()):
                matrix.setdefault((measure, variant), []).append(name)
    return matrix


def backends_for_variant(variant: str) -> List[str]:
    """Deprecated: names of backends answering ``variant`` for the
    inner-product measure.

    The pre-measure-layer capability lookup; it aliases
    ``backends_for("ip", variant)`` bit-identically (every backend it
    ever reported is an IP backend).  Use :func:`backends_for`.
    """
    warnings.warn(
        "backends_for_variant(variant) is deprecated; use "
        "backends_for(measure, variant) — this alias reports the "
        "measure='ip' column only",
        DeprecationWarning,
        stacklevel=2,
    )
    return backends_for("ip", variant)
