"""Session-oriented engine core: build once, query many times.

``engine.join()`` is one-shot: validate, plan, prepare, run, throw
everything away.  A serving workload is the opposite shape — one
long-lived index, many small query batches — and paying the plan +
prepare + pool-warmup tax per batch is exactly what the ROADMAP's
serving layer cannot afford.  A :class:`JoinSession` splits the
lifecycle:

* :func:`open_session` (exported as ``engine.open``) validates ``P`` and
  the spec once, plans once (amortizing build cost over an
  ``expected_queries`` hint — the planner ranks by
  ``build_ops + expected_queries * query_ops``, so build-heavy backends
  win sessions they would lose one-shot), prepares and *builds* every
  stage structure once, and — for parallel sessions — owns a persistent
  :class:`~repro.core.executor.WorkerPool` with ``P`` and every
  structure array pre-pinned in its shared-memory arena via
  ``share()``, so repeated queries freeze only their own ``Q``.
* :meth:`JoinSession.query` runs one batch against the prepared
  structures — no re-validation, no re-planning, no re-prepare (stages
  consuming a filter's per-query proposals are the documented
  exception), no array re-copying.  Each call gets its own span tree
  (root ``session.query``) and appends one
  :class:`~repro.obs.planner_log.PlannerRecord` tagged with
  ``expected_queries`` and the session reuse count.
* :meth:`JoinSession.query_stream` consumes a
  :class:`~repro.core.executor.QuerySource` (chunk iterator or
  memmapped file) with bounded memory — out-of-core joins over the same
  prepared structures, bit-identical to the in-memory result.
* :meth:`JoinSession.save` / :func:`open_path` persist the prepared
  session in the directory format of :mod:`repro.utils.persistence`:
  large arrays become raw sidecars and load back as ``np.memmap`` views,
  so N serving processes opening one saved index share page cache
  instead of each copying the arrays.
* :meth:`JoinSession.close` releases the owned pool and its shared
  memory (``/dev/shm`` clean, enforced by tests even across worker
  crashes).

``engine.join()`` itself is now a thin open→query→close shim over a
*lazy* session (plan and prepare happen inside the query call, under
the query's tracer) — which is what keeps it bit-identical to the
pre-session engine, spans and planner records included.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Union

import numpy as np

from repro.core.arena import ARENA_MIN_BYTES
from repro.core.executor import (
    POOL_KINDS,
    QuerySource,
    WorkerPool,
    add_crash_listener,
    crash_count,
    remove_crash_listener,
    resolve_workers,
)
from repro.core.problems import JoinResult, JoinSpec, QueryStats
from repro.core.verify import DEFAULT_BLOCK
from repro.engine.execute import (
    PreparedStage,
    fold_stats_metrics,
    prepare_stage,
    run_single_stage,
    run_stage_plan,
)
from repro.engine.measures import get_measure
from repro.engine.plan import Plan
from repro.engine.planner import CostModel, plan_join
from repro.engine.protocol import persistable_arrays
from repro.errors import ParameterError
from repro.obs import MetricsRegistry, Tracer, observe
from repro.obs.planner_log import PlannerRecord, current_log
from repro.obs.resources import ResourcePoller
from repro.obs.resources import snapshot as resource_snapshot
from repro.obs.sampler import TraceSampler
from repro.obs.sink import EventSink
from repro.utils.persistence import load_structure_dir, save_structure_dir

#: Default build-amortization hint for sessions: "about a hundred query
#: batches will run against this index".  One-shot ``join()`` uses 1.
DEFAULT_EXPECTED_QUERIES = 100

#: Default per-batch query count the session planner prices with when a
#: representative batch size is not given.
DEFAULT_QUERY_BATCH_HINT = 256


@dataclass
class SessionState:
    """Everything a saved session needs to serve again in a new process.

    Persisted via :func:`repro.utils.persistence.save_structure_dir`:
    the pickled shell holds the spec/plan/config, while ``P``, each
    stage's point-partition copy, and every structure array detour to
    raw sidecar files — deduplicated by identity, so a non-partitioned
    stage whose ``P_stage`` *is* ``P`` stores the matrix once — and come
    back as read-only memmap views under ``engine.open_path``.
    """

    spec: JoinSpec
    requested: Union[str, Plan]
    plan: Plan
    seed: Optional[int]
    block: int
    expected_queries: int
    query_batch_hint: int
    options: dict
    P: Any
    prepared: List[PreparedStage] = field(default_factory=list)


class JoinSession:
    """A prepared join engine: one plan, built structures, many queries.

    Construct through :func:`open_session` / ``engine.open`` (eager: plan
    and prepare now) or :func:`open_path` (load a saved session).  The
    engine's one-shot ``join()`` uses the lazy variant internally.
    """

    def __init__(
        self,
        P,
        spec: JoinSpec,
        *,
        backend: Union[str, Plan] = "auto",
        seed=None,
        n_workers: Union[int, str] = 1,
        block: int = DEFAULT_BLOCK,
        model: Optional[CostModel] = None,
        pool: str = "process",
        executor: Optional[WorkerPool] = None,
        blas_threads: Optional[int] = None,
        expected_queries: int = DEFAULT_EXPECTED_QUERIES,
        query_batch_hint: int = DEFAULT_QUERY_BATCH_HINT,
        trace_sample_rate: float = 0.0,
        trace_sample_cap: Optional[int] = None,
        trace_sample_seed: Optional[int] = None,
        _eager: bool = True,
        **options,
    ):
        if expected_queries < 1:
            raise ParameterError(
                f"expected_queries must be >= 1, got {expected_queries}"
            )
        if query_batch_hint < 1:
            raise ParameterError(
                f"query_batch_hint must be >= 1, got {query_batch_hint}"
            )
        if block < 1:
            raise ParameterError(f"block must be >= 1, got {block}")
        if executor is None and pool not in POOL_KINDS:
            raise ParameterError(
                f"pool must be one of {POOL_KINDS}, got {pool!r}"
            )
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ParameterError(
                f"trace_sample_rate must be in [0, 1], got {trace_sample_rate!r}"
            )
        self.P = P
        self.spec = spec
        self.requested = backend
        self.requested_name = (
            backend.backend if isinstance(backend, Plan) else backend
        )
        self.seed = seed
        self.n_workers = resolve_workers(n_workers)
        self.block = block
        self.model = model
        self.pool_kind = pool
        self.blas_threads = blas_threads
        self.expected_queries = int(expected_queries)
        self.query_batch_hint = int(query_batch_hint)
        self.options = options
        self.the_plan: Optional[Plan] = None
        self.join_plan = None
        self.best_estimate = None
        self._prepared: List[PreparedStage] = []
        self._pool: Optional[WorkerPool] = executor
        self._own_pool = False
        self._eager = _eager
        self._closed = False
        self.queries_served = 0
        #: Always-on registry: reuse accounting (``session.queries``,
        #: ``session.stage_prepares``, ``session.deferred_prepares``,
        #: ``session.pool_pins``, ``session.pool_rebuilds``,
        #: ``session.stream_chunks``) plus the serving latency
        #: histograms (``session.query_latency_us``,
        #: ``session.stage_latency_us.<backend>``,
        #: ``session.chunk_latency_us``) regardless of per-query tracing.
        self.metrics = MetricsRegistry(enabled=True)
        #: Per-query trace sampling: ``None`` when ``trace_sample_rate``
        #: is 0, so the disabled path costs nothing at all.
        self.sampler: Optional[TraceSampler] = (
            TraceSampler(
                trace_sample_rate,
                max_per_window=trace_sample_cap,
                seed=trace_sample_seed,
            )
            if trace_sample_rate > 0.0
            else None
        )
        self._sink: Optional[EventSink] = None
        self._own_sink = False
        self._sink_resource_every = 32
        self._poller: Optional[ResourcePoller] = None
        self._crash_listener = None
        self._last_stage_records: list = []
        self._last_chunk_walls: list = []
        self._last_record: Optional[PlannerRecord] = None
        if _eager:
            self.P = get_measure(spec.measure).validate(P, "P")
            if spec.self_join and self.P.shape[0] < 2:
                raise ParameterError("self-join needs at least two vectors")
            self._resolve_plan(self.query_batch_hint, None)
            self._check_plan_shape()
            self._prepare_all()
            self._ensure_pool()

    # -- lazy construction (the join() shim) -----------------------------

    @classmethod
    def _lazy(cls, P, spec, **kw) -> "JoinSession":
        """A session that plans and prepares inside the first query call.

        This is what ``engine.join()`` runs on: with
        ``expected_queries=1`` the planner ranking, the span tree, and
        the planner-log record are exactly the historical one-shot ones.
        """
        kw.setdefault("expected_queries", 1)
        return cls(P, spec, _eager=False, **kw)

    # -- planning --------------------------------------------------------

    def _check_plan_measures(self) -> None:
        """Reject explicit backends outside the spec's capability row.

        ``auto`` never needs this (the planner prices foreign-measure
        backends infeasible); explicit names and Plans would otherwise
        fail deep inside a kernel fed the wrong collection type.
        """
        from repro.engine.registry import backends_for, get_backend

        for stage in self.the_plan.stages:
            backend = get_backend(stage.backend)
            if self.spec.measure not in getattr(backend, "measures", ("ip",)):
                raise ParameterError(
                    f"backend {stage.backend!r} does not answer measure "
                    f"{self.spec.measure!r}; capable backends: "
                    f"{backends_for(self.spec.measure, self.spec.variant)}"
                )

    def _resolve_plan(self, m: int, planner_span) -> None:
        backend = self.requested
        if isinstance(backend, Plan):
            if self.options:
                raise ParameterError(
                    f"an explicit Plan carries per-stage options; got "
                    f"engine-level options {sorted(self.options)}"
                )
            self.the_plan = backend
            self._check_plan_measures()
            if planner_span is not None:
                planner_span.attrs.update(
                    picked=self.the_plan.backend, source="explicit"
                )
        elif backend == "auto":
            # Caller options bind to one backend's prepare, so the
            # ranking is restricted to single-stage plans when any are
            # present.
            self.join_plan = plan_join(
                self.P.shape[0], m, self.P.shape[1], self.spec, self.model,
                include_hybrids=not self.options,
                n_workers=self.n_workers,
                expected_queries=self.expected_queries,
            )
            self.best_estimate = self.join_plan.best_plan
            self.the_plan = self.best_estimate.plan
            if planner_span is not None:
                planner_span.attrs.update(
                    picked=self.the_plan.backend,
                    ranking=[
                        (pe.backend, pe.total_ops)
                        for pe in self.join_plan.feasible_plans
                    ],
                )
        else:
            self.the_plan = Plan.single(backend)
            self._check_plan_measures()
            if planner_span is not None:
                planner_span.attrs.update(picked=backend, source="explicit")

    def _emit_planner_attrs(self, planner_span) -> None:
        """Re-emit the stored planning decision on a per-query span."""
        if isinstance(self.requested, Plan):
            planner_span.attrs.update(
                picked=self.the_plan.backend, source="explicit"
            )
        elif self.requested == "auto":
            attrs = dict(picked=self.the_plan.backend, source="session")
            if self.join_plan is not None:
                attrs["ranking"] = [
                    (pe.backend, pe.total_ops)
                    for pe in self.join_plan.feasible_plans
                ]
            planner_span.attrs.update(attrs)
        else:
            planner_span.attrs.update(
                picked=self.requested, source="explicit"
            )

    def _check_plan_shape(self) -> None:
        stages = self.the_plan.stages
        if len(stages) == 1 and not stages[0].is_partitioned:
            return
        if self.options:
            raise ParameterError(
                f"multi-stage plans carry per-stage options; got "
                f"engine-level options {sorted(self.options)}"
            )
        if self.spec.variant not in ("join", "topk"):
            raise ParameterError(
                f"multi-stage plans answer the 'join' and 'topk' "
                f"variants, not {self.spec.variant!r}"
            )

    # -- preparation and pooling -----------------------------------------

    def _prepare_all(self) -> None:
        self._prepared = []
        for i in range(len(self.the_plan.stages)):
            prep = prepare_stage(
                self.the_plan, i, self.P, self.spec,
                seed=self.seed, block=self.block,
                n_workers=self.n_workers, options=self.options,
            )
            if not prep.deferred:
                self.metrics.counter("session.stage_prepares").inc()
            self._prepared.append(prep)

    def _ensure_pool(self) -> None:
        """(Re)create the owned worker pool and pin the session's arrays.

        Called at open and again lazily after a worker crash abandoned
        the pool mid-query: the session heals with a fresh pool (counted
        in ``session.pool_rebuilds``) instead of failing every
        subsequent query.

        Lazy sessions — the one-shot ``join()`` shim — never own a
        pool: their queries route through the persistent registry pool
        (or the caller's executor), the historical behavior.
        """
        if not self._eager or self.n_workers <= 1:
            return
        if self._pool is not None and not self._pool.closed:
            return
        if self._pool is not None and not self._own_pool:
            raise ParameterError(
                "the session's caller-managed executor pool is closed"
            )
        if self._pool is not None:
            self.metrics.counter("session.pool_rebuilds").inc()
        self._pool = WorkerPool(
            self.n_workers, kind=self.pool_kind,
            blas_threads=self.blas_threads,
        )
        self._own_pool = True
        if self._pool.kind == "process":
            for arr in self._session_arrays():
                self._pool.share(arr)
                self.metrics.counter("session.pool_pins").inc()

    def _session_arrays(self) -> List[np.ndarray]:
        """Every large array repeated queries would otherwise re-freeze:
        ``P``, each stage's point-partition copy, and the built
        structures' arrays (deduped by identity)."""
        seen = set()
        arrays: List[np.ndarray] = []

        def add(arr):
            if (
                type(arr) is np.ndarray
                and arr.nbytes >= ARENA_MIN_BYTES
                and arr.dtype != object
                and id(arr) not in seen
            ):
                seen.add(id(arr))
                arrays.append(arr)

        def add_collection(obj):
            # Non-dense collections (CSR SetCollection) expose their
            # backing ndarrays through arrays(); pin those instead.
            if hasattr(obj, "arrays"):
                for arr in obj.arrays():
                    add(arr)
            else:
                add(obj)

        add_collection(self.P)
        for prep in self._prepared:
            add_collection(prep.P_stage)
            if prep.payload is not None:
                for arr in persistable_arrays(prep.payload):
                    add(arr)
        return arrays

    def _executor_for_call(self) -> Optional[WorkerPool]:
        if self.n_workers <= 1:
            return None
        return self._pool

    def _count_prepare(self, kind: str) -> None:
        name = (
            "session.deferred_prepares" if kind == "deferred"
            else "session.stage_prepares"
        )
        self.metrics.counter(name).inc()

    # -- the dispatch every query flavor shares --------------------------

    def _dispatch(
        self,
        Q,
        *,
        trace: bool,
        root: str,
        record: bool = True,
    ) -> JoinResult:
        """Plan (if lazy), walk the stages, finalize: THE dispatch path.

        For the ``engine.join()`` shim (lazy, ``root="engine.join"``)
        this reproduces the historical one-shot behavior bit for bit —
        same spans, same results, same planner record.  For session
        queries it reuses the prepared stages and tags the record with
        the session's amortization fields.
        """
        if self._closed:
            raise ParameterError("session is closed")
        self._ensure_pool()
        tracer = Tracer(enabled=trace)
        registry = MetricsRegistry(enabled=trace)
        wall_start = time.perf_counter()
        stream = isinstance(Q, QuerySource)
        m_attr = -1 if stream else int(Q.shape[0])
        # Activating the tracer/registry as process-current lets
        # kernel-level instrumentation inside prepare/build attach to
        # this query's tree.
        obs_ctx = observe(tracer, registry) if trace else nullcontext()
        with obs_ctx, tracer.span(
            root,
            backend=self.requested_name,
            n=int(self.P.shape[0]),
            m=m_attr,
            d=int(self.P.shape[1]),
            variant=self.spec.variant,
            n_workers=int(self.n_workers),
        ):
            with tracer.span("planner") as planner_span:
                if self.the_plan is None:
                    plan_m = self.query_batch_hint if stream else int(Q.shape[0])
                    self._resolve_plan(plan_m, planner_span)
                elif planner_span is not None:
                    self._emit_planner_attrs(planner_span)
            stages = self.the_plan.stages
            if len(stages) == 1 and not stages[0].is_partitioned:
                result, chunks, stage_records = run_single_stage(
                    self.the_plan, self.P, Q, self.spec,
                    options=self.options, seed=self.seed,
                    n_workers=self.n_workers, block=self.block,
                    trace=trace, tracer=tracer,
                    pool=self.pool_kind, executor=self._executor_for_call(),
                    blas_threads=self.blas_threads,
                    prep=self._prepared[0] if self._prepared else None,
                    on_prepare=self._count_prepare,
                )
            else:
                self._check_plan_shape()
                if stream:
                    raise ParameterError(
                        "multi-stage plans cannot consume a stream "
                        "directly; use session.query_stream, which "
                        "re-blocks and folds per-chunk batches"
                    )
                result, chunks, stage_records = run_stage_plan(
                    self.the_plan, self.P, Q, self.spec,
                    seed=self.seed, n_workers=self.n_workers,
                    block=self.block, trace=trace, tracer=tracer,
                    pool=self.pool_kind, executor=self._executor_for_call(),
                    blas_threads=self.blas_threads,
                    prepared=self._prepared or None,
                    on_prepare=self._count_prepare,
                )
                with tracer.span("merge", stages=len(stage_records)):
                    pass
        result.wall_s = time.perf_counter() - wall_start
        bounds = [c.error_bound for c in chunks if c.error_bound is not None]
        if bounds:
            result.error_bound = max(bounds)
        if (
            stage_records
            and stage_records[0]["wall_s"] == 0.0
            and len(stage_records) == 1
        ):
            stage_records[0]["wall_s"] = result.wall_s
        if self.best_estimate is not None:
            for rec, est in zip(stage_records, self.best_estimate.stage_estimates):
                rec["predicted_ops"] = est.total_ops
        if trace:
            for c in chunks:
                registry.merge_snapshot(c.metrics)
            fold_stats_metrics(registry, result)
            result.trace = tracer.take()
            result.metrics = registry
        # Stash the per-stage records and worker-side chunk walls for the
        # query surface's latency histograms (plain assignments — this
        # path is also the one-shot join shim and must stay lean).
        self._last_stage_records = stage_records
        self._last_chunk_walls = [c.wall_ns for c in chunks]
        if record:
            self._record(result, stage_records, len(result.matches))
        return result

    def _record(self, result: JoinResult, stage_records, m: int) -> None:
        self._last_record = rec = (
            PlannerRecord(
                n=int(self.P.shape[0]),
                m=int(m),
                d=int(self.P.shape[1]),
                s=float(self.spec.s),
                c=float(self.spec.c),
                signed=bool(self.spec.signed),
                variant=self.spec.variant,
                mode="auto" if self.requested == "auto" else "explicit",
                picked=result.backend,
                wall_s=result.wall_s,
                predicted={
                    pe.backend: pe.total_ops
                    for pe in self.join_plan.feasible_plans
                } if self.join_plan is not None else {},
                evaluated=int(result.inner_products_evaluated),
                generated=int(result.candidates_generated),
                n_workers=int(self.n_workers),
                stages=stage_records,
                expected_queries=int(self.expected_queries),
                session_reuse=int(self.queries_served),
            )
        )
        current_log().record(rec)

    # -- serving telemetry -----------------------------------------------

    def _observe_query(
        self, result: JoinResult, wall_ns: int, sampled: bool
    ) -> None:
        """Per-call telemetry: latency histograms, sampled spans, sink.

        Runs after every :meth:`query` / :meth:`query_stream` — cheap
        enough (a few histogram observes) that it is unconditional;
        everything sink-shaped is gated on an attached sink.
        """
        metrics = self.metrics
        metrics.histogram("session.query_latency_us").observe(wall_ns / 1000.0)
        for rec in self._last_stage_records:
            metrics.histogram(
                f"session.stage_latency_us.{rec['backend']}"
            ).observe(rec["wall_s"] * 1e6)
        chunk_hist = metrics.histogram("session.chunk_latency_us")
        for w in self._last_chunk_walls:
            if w:
                chunk_hist.observe(w / 1000.0)
        if sampled:
            metrics.counter("session.traces_sampled").inc()
        sink = self._sink
        if sink is None:
            return
        if sampled and result.trace is not None:
            sink.emit("span", result.trace.to_dict())
        if self._last_record is not None:
            sink.emit("planner", self._last_record.to_dict())
        if self.queries_served % self._sink_resource_every == 0:
            self._emit_resource()
            self._emit_metrics()

    def _pool_health(self) -> dict:
        rebuilds = self.metrics.counter("session.pool_rebuilds").value
        return {
            "pool_rebuilds": int(rebuilds),
            "worker_crashes": int(crash_count()),
        }

    def _arena_bytes(self) -> int:
        pool = self._pool
        if pool is None or pool.closed or pool.kind != "process":
            return 0
        try:
            return int(pool.arena.nbytes)
        except Exception:
            return 0

    def _emit_resource(self) -> None:
        snap = resource_snapshot(
            arena_bytes=self._arena_bytes(), pool=self._pool_health()
        )
        g = self.metrics.gauge
        g("session.rss_bytes").set(snap.rss_bytes)
        g("session.minor_faults").set(snap.minor_faults)
        g("session.major_faults").set(snap.major_faults)
        g("session.arena_bytes").set(snap.arena_bytes)
        if self._sink is not None:
            self._sink.emit("resource", snap.to_dict())

    def _emit_metrics(self) -> None:
        if self._sink is not None:
            self._sink.emit("metrics", self.metrics.snapshot())

    def _on_crash(self, info: dict) -> None:
        """Crash listener: called by the executor when a pool breaks."""
        self.metrics.counter("session.worker_crashes").inc()
        if self._sink is not None:
            self._sink.emit("crash", dict(info))

    def attach_sink(
        self,
        sink,
        *,
        max_bytes: int = 64 * 1024 * 1024,
        max_files: int = 4,
        resource_every: int = 32,
    ) -> EventSink:
        """Stream this session's telemetry to a rotating JSONL sink.

        ``sink`` is a path (the session opens and owns an
        :class:`~repro.obs.sink.EventSink` with the given rotation
        settings, closing it with the session) or an ``EventSink`` the
        caller manages.  Once attached: sampled span trees (``span``),
        one planner record per query (``planner``), resource + registry
        snapshots every ``resource_every`` queries and at close
        (``resource`` / ``metrics``), and worker-crash notices
        (``crash``) all land there.  Returns the sink.
        """
        if self._closed:
            raise ParameterError("session is closed")
        if self._sink is not None:
            raise ParameterError(
                "a sink is already attached; detach_sink() first"
            )
        if resource_every < 1:
            raise ParameterError("resource_every must be >= 1")
        if isinstance(sink, EventSink):
            self._sink, self._own_sink = sink, False
        else:
            self._sink = EventSink(
                sink, max_bytes=max_bytes, max_files=max_files
            )
            self._own_sink = True
        self._sink_resource_every = int(resource_every)
        self._crash_listener = self._on_crash
        add_crash_listener(self._crash_listener)
        self._sink.emit("meta", {
            "n": int(self.P.shape[0]),
            "d": int(self.P.shape[1]),
            "backend": self.requested_name,
            "variant": self.spec.variant,
            "n_workers": int(self.n_workers),
            "expected_queries": int(self.expected_queries),
            "trace_sample_rate": (
                self.sampler.rate if self.sampler is not None else 0.0
            ),
        })
        self._emit_resource()
        return self._sink

    def detach_sink(self) -> None:
        """Stop sinking; flush, and close the sink if session-owned."""
        sink, self._sink = self._sink, None
        if self._crash_listener is not None:
            remove_crash_listener(self._crash_listener)
            self._crash_listener = None
        if sink is not None:
            if self._own_sink:
                sink.close()
            else:
                sink.flush()
        self._own_sink = False

    def poll_resources(
        self, interval_s: float = 1.0, keep: int = 512
    ) -> ResourcePoller:
        """Start a background resource poller tied to this session.

        Samples RSS / fault counts / arena bytes / pool health every
        ``interval_s`` seconds off the query path (into the attached
        sink too, when one is attached).  Stopped by :meth:`close`, or
        call ``.stop()`` on the returned poller.
        """
        if self._closed:
            raise ParameterError("session is closed")
        if self._poller is None:
            self._poller = ResourcePoller(
                interval_s=interval_s,
                keep=keep,
                extra=lambda: (self._arena_bytes(), self._pool_health()),
                sink=self._sink,
            ).start()
        return self._poller

    # -- public query surface --------------------------------------------

    def query(self, Q=None, *, trace: bool = False) -> JoinResult:
        """Answer one query batch against the prepared structures.

        ``Q=None`` runs the self-join (self-join sessions only); other
        sessions require a ``(k, d)`` batch.  Results are bit-identical
        to ``engine.join(P, Q, spec, ...)`` with the same plan, seed,
        and worker configuration.

        Serving telemetry rides every call: the batch wall time, each
        stage's wall time, and every worker chunk's wall time land in
        the session's always-on latency histograms, and — when the
        session was opened with ``trace_sample_rate > 0`` — the sampler
        may promote this call to a fully traced one, whose span tree
        goes to the attached sink.
        """
        if self._closed:
            raise ParameterError("session is closed")
        if self.spec.self_join:
            if Q is not None:
                raise ParameterError(
                    "self-join sessions take a single set: pass Q=None"
                )
            Q = self.P
        else:
            if Q is None:
                raise ParameterError(
                    "this session answers cross joins: pass a query batch "
                    "(self-joins need a spec with self_join=True)"
                )
            # Validate only the incoming batch: ``P`` was checked once at
            # open, and re-scanning it here would fault every page of a
            # memmap-loaded index back in on each query.
            measure = get_measure(self.spec.measure)
            Q = measure.validate(Q, "Q")
            measure.check_compatible(self.P, Q)
        sampled = (
            not trace
            and self.sampler is not None
            and self.sampler.should_sample()
        )
        t0 = time.perf_counter_ns()
        result = self._dispatch(
            Q, trace=trace or sampled, root="session.query"
        )
        wall_ns = time.perf_counter_ns() - t0
        self.queries_served += 1
        self.metrics.counter("session.queries").inc()
        self._observe_query(result, wall_ns, sampled)
        return result

    def query_stream(
        self,
        chunks,
        *,
        chunk_rows: Optional[int] = None,
        trace: bool = False,
    ) -> JoinResult:
        """Answer a stream of query chunks with bounded memory.

        ``chunks`` is anything :meth:`QuerySource.wrap` accepts — a chunk
        iterator/generator, an ndarray, or an array-kind source over a
        memmapped file (:meth:`QuerySource.from_memmap`).  Incoming rows
        are re-blocked to multiples of the session ``block`` size
        (``chunk_rows`` rounds down to one), which makes the merged
        result **bit-identical** to ``query()`` over the concatenated
        rows while never materializing more than the in-flight window.

        Single-stage plans stream straight through the executor;
        multi-stage plans fold each re-blocked chunk through the full
        stage walk (per-chunk results carry no trace in that mode).
        """
        if self._closed:
            raise ParameterError("session is closed")
        if self.spec.self_join:
            raise ParameterError(
                "self-join sessions cannot stream queries: the query set "
                "is P itself"
            )
        if not get_measure(self.spec.measure).dense_queries and hasattr(
            chunks, "to_dense"
        ):
            # Set-collection streams re-block as dense 0/1 windows (the
            # form QuerySource validates); set backends coerce each
            # chunk back to CSR, so results match query() exactly.
            sets = chunks
            step = max(1, chunk_rows if chunk_rows is not None else 8 * self.block)
            chunks = (
                sets[lo:lo + step].to_dense()
                for lo in range(0, sets.shape[0], step)
            )
        source = QuerySource.wrap(chunks)
        rows = chunk_rows if chunk_rows is not None else (
            source.chunk_rows if source.chunk_rows is not None else 8 * self.block
        )
        rows = max(self.block, (rows // self.block) * self.block)
        counted = self._counting_blocks(source, rows)
        stages = self.the_plan.stages if self.the_plan is not None else None
        single = (
            stages is not None
            and len(stages) == 1
            and not stages[0].is_partitioned
        )
        sampled = (
            not trace
            and self.sampler is not None
            and self.sampler.should_sample()
        )
        t0 = time.perf_counter_ns()
        if single:
            stream = QuerySource.from_chunks(
                counted, d=int(self.P.shape[1]), chunk_rows=rows
            )
            result = self._dispatch(
                stream, trace=trace or sampled, root="session.query_stream"
            )
        else:
            parts = [
                self._dispatch(
                    np.ascontiguousarray(chunk),
                    trace=False, root="session.query_stream", record=False,
                )
                for chunk in counted
            ]
            result = self._merge_stream_parts(parts)
            stage_records = [
                dict(
                    index=0, backend=result.backend,
                    n=int(self.P.shape[0]), m=len(result.matches),
                    wall_s=result.wall_s,
                    evaluated=int(result.inner_products_evaluated),
                    generated=int(result.candidates_generated),
                    answered=int(result.matched_count),
                )
            ]
            self._record(result, stage_records, len(result.matches))
        wall_ns = time.perf_counter_ns() - t0
        self.queries_served += 1
        self.metrics.counter("session.queries").inc()
        self._observe_query(result, wall_ns, sampled)
        return result

    def _counting_blocks(self, source: QuerySource, rows: int) -> Iterator:
        for chunk in source.blocks(rows):
            self.metrics.counter("session.stream_chunks").inc()
            yield chunk

    def _merge_stream_parts(self, parts: List[JoinResult]) -> JoinResult:
        if not parts:
            return JoinResult(
                matches=[], spec=self.spec,
                inner_products_evaluated=0, candidates_generated=0,
                topk=[] if self.spec.is_topk else None,
                backend=self.the_plan.backend if self.the_plan else None,
                stats=QueryStats(), wall_s=0.0,
            )
        matches: List[Optional[int]] = []
        topk: Optional[List[List[int]]] = [] if parts[0].topk is not None else None
        evaluated = 0
        generated = 0
        stats = QueryStats()
        wall = 0.0
        bound = None
        for part in parts:
            matches.extend(part.matches)
            if topk is not None:
                topk.extend(part.topk or [])
            evaluated += part.inner_products_evaluated
            generated += part.candidates_generated
            if part.stats is not None:
                stats = stats.merge(part.stats)
            wall += part.wall_s or 0.0
            if part.error_bound is not None:
                bound = max(bound, part.error_bound) if bound is not None else part.error_bound
        merged = JoinResult(
            matches=matches,
            spec=parts[0].spec,
            inner_products_evaluated=int(evaluated),
            candidates_generated=int(generated),
            topk=topk,
            backend=parts[0].backend,
            stats=stats,
        )
        merged.wall_s = wall
        merged.error_bound = bound
        return merged

    # -- persistence -----------------------------------------------------

    def save(self, path):
        """Persist the prepared session as a memmappable directory.

        Loads back with :func:`open_path`; the saved tree stores ``P``
        and every structure array exactly once (identity-deduped raw
        sidecars), so on-disk size ~= in-memory size and loading maps
        pages instead of copying bytes.
        """
        if self._closed:
            raise ParameterError("session is closed")
        if self.the_plan is None or not self._prepared:
            raise ParameterError(
                "only a prepared session can be saved: open it with "
                "engine.open(...), not via the one-shot join shim"
            )
        state = SessionState(
            spec=self.spec,
            requested=self.requested,
            plan=self.the_plan,
            seed=self.seed,
            block=self.block,
            expected_queries=self.expected_queries,
            query_batch_hint=self.query_batch_hint,
            options=dict(self.options),
            P=self.P,
            prepared=self._prepared,
        )
        return save_structure_dir(state, path)

    @classmethod
    def _from_state(
        cls,
        state: SessionState,
        *,
        n_workers: Union[int, str] = 1,
        pool: str = "process",
        executor: Optional[WorkerPool] = None,
        blas_threads: Optional[int] = None,
        expected_queries: Optional[int] = None,
        trace_sample_rate: float = 0.0,
        trace_sample_cap: Optional[int] = None,
        trace_sample_seed: Optional[int] = None,
    ) -> "JoinSession":
        session = cls(
            state.P, state.spec,
            backend=state.requested, seed=state.seed,
            n_workers=n_workers, block=state.block,
            pool=pool, executor=executor, blas_threads=blas_threads,
            expected_queries=(
                expected_queries if expected_queries is not None
                else state.expected_queries
            ),
            query_batch_hint=state.query_batch_hint,
            trace_sample_rate=trace_sample_rate,
            trace_sample_cap=trace_sample_cap,
            trace_sample_seed=trace_sample_seed,
            _eager=False,
            **state.options,
        )
        session.the_plan = state.plan
        session._prepared = list(state.prepared)
        session._check_plan_shape()
        session._eager = True
        session._ensure_pool()
        return session

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the owned worker pool and its shared memory; idempotent.

        Caller-managed executors are left running (the caller owns their
        lifecycle, exactly as with ``join(executor=...)``).  An attached
        sink receives one final ``resource`` + ``metrics`` pair before
        detaching, so a sink file always ends with the session's totals.
        """
        if self._closed:
            return
        if self._poller is not None:
            self._poller.stop()
            self._poller = None
        if self._sink is not None:
            self._emit_resource()
            self._emit_metrics()
            self.detach_sink()
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None and self._own_pool:
            pool.close()

    def __enter__(self) -> "JoinSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_session(
    P,
    Q=None,
    spec: Optional[JoinSpec] = None,
    **kw,
) -> JoinSession:
    """Open a prepared join session over ``P`` (exported as ``engine.open``).

    Signature mirrors :func:`repro.engine.join` minus the query set:
    ``backend=`` (name, Plan, or ``"auto"``), ``seed=``, ``n_workers=``,
    ``block=``, ``model=``, ``pool=``, ``executor=``, ``blas_threads=``,
    plus backend options — and the session knobs ``expected_queries``
    (build-amortization hint for the ``auto`` planner; default
    ``100``) and ``query_batch_hint`` (representative per-batch query
    count; default ``256``).

    Serving telemetry knobs: ``trace_sample_rate`` (probability that any
    single ``session.query`` call is promoted to a fully traced one;
    default 0 — off), ``trace_sample_cap`` (at most this many sampled
    traces per second), and ``trace_sample_seed`` (pin the sampling
    pattern).  Pair with :meth:`JoinSession.attach_sink` to persist
    sampled span trees, latency percentiles, planner records, and
    resource snapshots as rotating JSONL.

    Accepts either ``open(P, spec, ...)`` or the join-shaped
    ``open(P, None, spec, ...)``.  For self-join sessions pass a spec
    with ``self_join=True`` (or build it as usual and call
    ``session.query(None)``).
    """
    if spec is None:
        if not isinstance(Q, JoinSpec):
            raise ParameterError(
                "open(P, spec, ...) needs a JoinSpec as its second "
                "argument (or open(P, None, spec, ...))"
            )
        spec = Q
    elif Q is not None:
        raise ParameterError(
            "open() prepares a session over P only; pass query batches "
            "to session.query(Q)"
        )
    return JoinSession(P, spec, **kw)


def open_path(
    path,
    *,
    n_workers: Union[int, str] = 1,
    pool: str = "process",
    executor: Optional[WorkerPool] = None,
    blas_threads: Optional[int] = None,
    expected_queries: Optional[int] = None,
    mmap: bool = True,
    trace_sample_rate: float = 0.0,
    trace_sample_cap: Optional[int] = None,
    trace_sample_seed: Optional[int] = None,
) -> JoinSession:
    """Open a session saved by :meth:`JoinSession.save` — zero-copy.

    With ``mmap=True`` (default) ``P`` and every structure array come
    back as read-only memmap views: the load costs the shell pickle
    only, and physical memory grows as queries touch pages — multiple
    serving processes opening the same path share one page cache.
    Execution knobs (``n_workers``, ``pool``, ...) are per-open, not
    persisted, so the same saved index can serve serial in one process
    and on 8 workers in another.
    """
    state = load_structure_dir(path, expected_type="SessionState", mmap=mmap)
    return JoinSession._from_state(
        state,
        n_workers=n_workers, pool=pool, executor=executor,
        blas_threads=blas_threads, expected_queries=expected_queries,
        trace_sample_rate=trace_sample_rate,
        trace_sample_cap=trace_sample_cap,
        trace_sample_seed=trace_sample_seed,
    )
