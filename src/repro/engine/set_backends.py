"""The Jaccard set-join backends behind ``measure="jaccard"``.

Two adapters over :mod:`repro.core.set_join`, filling the ``jaccard``
rows of the engine's ``(measure, variant)`` capability matrix:

* ``set_scan`` — the exact blocked set-intersection scan through an
  inverted postings index; the ``brute_force`` analogue and the
  reference answer for every Jaccard variant.
* ``minhash_lsh`` — filter-then-verify through a size-partitioned
  MinHash bucket index (the ``MinHashLSHEnsemble`` construction built on
  :mod:`repro.lsh.minhash`'s batch hashing).  Candidates are verified
  exactly, so the banding only affects recall, never precision.

Both accept ``P``/``Q`` as :class:`~repro.datasets.sets.SetCollection`;
dense binary chunks (what ``query_stream`` re-blocking produces) are
coerced per chunk.  Structures follow the same lazy-``build(P)``
dataclass pattern as :mod:`repro.engine.backends`, so sessions, the
shared-memory arena, and parallel workers compose unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.problems import JoinSpec
from repro.core.set_join import (
    DEFAULT_MINHASH_HASHES,
    DEFAULT_MINHASH_PARTITIONS,
    DEFAULT_MINHASH_TABLES,
    MinHashSetIndex,
    SetPostings,
    jaccard_scan_chunk,
    jaccard_self_chunk,
    jaccard_topk_chunk,
    minhash_join_chunk,
)
from repro.datasets.sets import SetCollection
from repro.engine.backends import _concrete_seed, _require_variant
from repro.engine.protocol import ChunkResult, CostEstimate, JoinBackend
from repro.errors import ParameterError


def _as_sets(obj, name: str) -> SetCollection:
    """Coerce a chunk to a :class:`SetCollection` (dense chunks arrive
    from ``query_stream`` re-blocking as float 0/1 matrices)."""
    if isinstance(obj, SetCollection):
        return obj
    return SetCollection.coerce(np.asarray(obj), name)


def _not_jaccard(name: str, spec: JoinSpec):
    if spec.measure != "jaccard":
        return CostEstimate(
            backend=name, feasible=False,
            reason=f"no {spec.measure!r} measure (jaccard only)",
        )
    return None


# ---------------------------------------------------------------------------
# set_scan


@dataclass
class SetScanStructure:
    """Inverted postings over ``P``, built lazily (once, in the parent)."""

    spec: JoinSpec
    postings: Any = None

    def build(self, P):
        if self.postings is None:
            self.postings = SetPostings(_as_sets(P, "P"))
        return self

    def arrays(self):
        if self.postings is None:
            return []
        return [self.postings.indptr, self.postings.rows, self.postings.sizes]


class SetScanBackend(JoinBackend):
    """Exact postings-scan Jaccard join; the reference for every variant."""

    name = "set_scan"
    variants = ("join", "topk", "self")
    measures = ("jaccard",)

    def prepare(self, P, spec, *, seed=None, block, n_workers=1, **options):
        if options:
            raise ParameterError(
                f"set_scan takes no extra options, got {sorted(options)}"
            )
        _require_variant(spec, self.name, self.variants)
        return SetScanStructure(spec=spec), spec

    def run_chunk(self, structure, P, Q_chunk, start):
        spec = structure.spec
        postings = structure.postings
        Q_chunk = _as_sets(Q_chunk, "Q")
        if spec.is_topk:
            lists, evaluated, generated, stats = jaccard_topk_chunk(
                postings, Q_chunk, spec.cs, spec.k
            )
            matches = [int(lst[0]) if lst else None for lst in lists]
            return ChunkResult(matches, evaluated, generated, stats, topk=lists)
        if spec.is_self:
            matches, evaluated, generated, stats = jaccard_self_chunk(
                postings, _as_sets(P, "P"), Q_chunk, start, spec.cs,
                spec.match_duplicates,
            )
        else:
            matches, evaluated, generated, stats = jaccard_scan_chunk(
                postings, Q_chunk, spec.cs
            )
        return ChunkResult(matches, evaluated, generated, stats)

    def estimate_cost(self, n, m, d, spec, model):
        bad = _not_jaccard(self.name, spec)
        if bad is not None:
            return bad
        if spec.variant not in self.variants:
            return CostEstimate(
                backend=self.name, feasible=False,
                reason=f"no {spec.variant} variant",
            )
        # nnz per row enters as the model's set_mean_size constant; a
        # query touches one posting list per member, each of expected
        # length n * mean_size / universe (at least one entry).
        size = model.set_mean_size
        posting_len = max(1.0, n * size / max(d, 1))
        build = model.set_fixed_build + n * size * model.set_scan_op
        query = (
            m * size * posting_len * model.set_scan_op
            + m * model.row_op
        )
        return CostEstimate(
            backend=self.name, feasible=True, build_ops=build, query_ops=query
        )


# ---------------------------------------------------------------------------
# minhash_lsh


@dataclass
class MinHashStructure:
    """A size-partitioned MinHash index recipe, rebuilt deterministically
    from its integer seed (per worker when the pool path needs it)."""

    spec: JoinSpec
    n_tables: int = DEFAULT_MINHASH_TABLES
    hashes_per_table: int = DEFAULT_MINHASH_HASHES
    num_part: int = DEFAULT_MINHASH_PARTITIONS
    seed: int = 0
    index: Any = None

    def build(self, P):
        if self.index is None:
            self.index = MinHashSetIndex(
                _as_sets(P, "P"),
                n_tables=self.n_tables,
                hashes_per_table=self.hashes_per_table,
                num_part=self.num_part,
                seed=self.seed,
            )
        return self


class MinHashLSHBackend(JoinBackend):
    """Size-partitioned MinHash filter + exact verification."""

    name = "minhash_lsh"
    variants = ("join", "topk", "self")
    measures = ("jaccard",)

    def prepare(self, P, spec, *, seed=None, block, n_workers=1,
                n_tables: int = DEFAULT_MINHASH_TABLES,
                hashes_per_table: int = DEFAULT_MINHASH_HASHES,
                num_part: int = DEFAULT_MINHASH_PARTITIONS, **options):
        if options:
            raise ParameterError(
                f"unknown minhash_lsh options: {sorted(options)} (valid: "
                f"n_tables, hashes_per_table, num_part)"
            )
        _require_variant(spec, self.name, self.variants)
        seed = 0 if seed is None else _concrete_seed(seed, "minhash_lsh")
        structure = MinHashStructure(
            spec=spec, n_tables=n_tables, hashes_per_table=hashes_per_table,
            num_part=num_part, seed=seed,
        )
        return structure, spec

    def run_chunk(self, structure, P, Q_chunk, start):
        spec = structure.spec
        Q_chunk = _as_sets(Q_chunk, "Q")
        if spec.is_topk:
            lists, evaluated, generated, stats = minhash_join_chunk(
                structure.index, Q_chunk, spec.cs, k=spec.k
            )
            matches = [int(lst[0]) if lst else None for lst in lists]
            return ChunkResult(matches, evaluated, generated, stats, topk=lists)
        if spec.is_self:
            matches, evaluated, generated, stats = minhash_join_chunk(
                structure.index, Q_chunk, spec.cs, self_start=start,
                match_duplicates=spec.match_duplicates,
            )
        else:
            matches, evaluated, generated, stats = minhash_join_chunk(
                structure.index, Q_chunk, spec.cs
            )
        return ChunkResult(matches, evaluated, generated, stats)

    def estimate_cost(self, n, m, d, spec, model):
        bad = _not_jaccard(self.name, spec)
        if bad is not None:
            return bad
        if spec.variant not in self.variants:
            return CostEstimate(
                backend=self.name, feasible=False,
                reason=f"no {spec.variant} variant",
            )
        size = model.set_mean_size
        tables = float(DEFAULT_MINHASH_TABLES)
        hashes = float(DEFAULT_MINHASH_HASHES)
        cand_per_query = model.minhash_candidate_fraction * n
        build = (
            model.minhash_fixed_build
            + n * tables * hashes * size * model.hash_op
            + n * tables * model.candidate_op
        )
        query = (
            m * tables * hashes * size * model.hash_op
            + m * cand_per_query * (size * model.set_scan_op
                                    + model.candidate_op)
            + m * model.row_op
        )
        return CostEstimate(
            backend=self.name, feasible=True, build_ops=build, query_ops=query
        )

