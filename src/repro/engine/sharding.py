"""Data-sharded joins: split ``P``, join per shard, merge per-query bests.

The executor (:mod:`repro.core.executor`) parallelizes over *queries*;
this module parallelizes over *data* — the first step toward the
ROADMAP's multi-machine sharding, where each shard's join would run on a
different box.  ``P`` is split into ``n_shards`` contiguous row shards,
each shard answers the full query set through the normal engine dispatch
(:func:`repro.engine.join`, so any backend, any worker count, any pool
kind applies per shard), and the per-shard answers are merged per query:

* **threshold joins** — each shard reports at most one above-threshold
  partner per query; the merge recomputes the shard winners' scores and
  keeps the best (ties to the lowest global index).  For exact backends
  this reproduces the unsharded result: the unsharded scan keeps the
  lowest-index maximizer, and every shard winner is its shard's
  maximizer, so the global best survives in its own shard.  Scores are
  recomputed from one extra dot product per shard winner (billed in
  ``inner_products_evaluated``) because :class:`JoinResult` carries
  indices, not scores.
* **top-k joins** — per-shard ranked lists merge by ``(-score, index)``
  and truncate to ``k``: a streaming merge of per-shard heaps.
* **stats** — work counters sum and :class:`QueryStats` merge through
  the same monoid the executor uses, so sharded totals remain exact.

Determinism: exact backends (``brute_force``, ``norm_pruned``) give
bit-identical matches to the unsharded join for any ``n_shards`` (up to
measure-zero score ties, resolved to the lowest index).  Probabilistic
backends are deterministic *given* ``(seed, n_shards)`` — shard ``i``
derives its seed as ``seed + i`` — but changing the shard count changes
which structure each shard builds, exactly like changing ``seed``.

Self-joins are excluded: identity-pair masking is an intra-shard notion
and cannot be reconstructed across shards without global indices inside
the kernels.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.problems import JoinResult, JoinSpec, QueryStats
from repro.engine.measures import get_measure
from repro.engine.session import open_session
from repro.errors import ParameterError
from repro.obs import MetricsRegistry
from repro.obs.sink import EventSink

# Engine-level keywords of repro.engine.join; everything else in
# ``join_options`` is a backend option that prepare() must accept.
_ENGINE_KWARGS = frozenset(
    {"backend", "n_workers", "block", "model", "trace", "pool",
     "executor", "blas_threads"}
)


def _preflight_options(P, spec: JoinSpec, seed, join_options) -> None:
    """Validate engine/backend options ONCE, before any shard runs.

    Per-shard joins would re-raise the same error on shard 0 anyway, but
    only after re-validating per shard; a bad option must fail fast and
    must never leave a partial run where some shards executed.  Mirrors
    the checks :func:`repro.engine.join` performs up front: worker
    resolution, pool kind, backend lookup, and a discarded dry-run of
    the backend's ``prepare`` (structures build lazily, so this costs a
    dictionary's worth of work, not an index build).
    """
    from repro.core.executor import DEFAULT_BLOCK, POOL_KINDS, resolve_workers
    from repro.engine.plan import Plan
    from repro.engine.registry import get_backend

    n_workers = resolve_workers(join_options.get("n_workers", 1))
    pool = join_options.get("pool", "process")
    if join_options.get("executor") is None and pool not in POOL_KINDS:
        raise ParameterError(f"pool must be one of {POOL_KINDS}, got {pool!r}")
    backend = join_options.get("backend", "auto")
    backend_options = {
        k: v for k, v in join_options.items() if k not in _ENGINE_KWARGS
    }
    if isinstance(backend, Plan):
        if backend_options:
            raise ParameterError(
                f"an explicit Plan carries per-stage options; got "
                f"engine-level options {sorted(backend_options)}"
            )
        return
    if backend == "auto":
        return
    impl = get_backend(backend)  # raises on unknown names
    block = join_options.get("block", DEFAULT_BLOCK)
    impl.prepare(
        P, spec, seed=seed, block=block, n_workers=n_workers,
        **backend_options,
    )


def shard_bounds(n: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` row ranges of ``n_shards`` near-equal shards.

    The first ``n % n_shards`` shards get one extra row; shard count is
    capped at ``n`` so no shard is empty.
    """
    if n < 1:
        raise ParameterError(f"cannot shard an empty data set (n={n})")
    if n_shards < 1:
        raise ParameterError(f"n_shards must be >= 1, got {n_shards}")
    shards = min(n_shards, n)
    base, extra = divmod(n, shards)
    bounds = []
    start = 0
    for i in range(shards):
        end = start + base + (1 if i < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


def _merge_threshold(
    shard_results: List[JoinResult],
    offsets: List[int],
    P,
    Q,
    spec: JoinSpec,
) -> Tuple[List[Optional[int]], int]:
    """Merge per-shard single-best matches; returns (matches, extra_evals).

    Every shard winner's score is recomputed with one dot product; the
    best (highest score, ties to lowest global index) wins the query.
    """
    m = Q.shape[0]
    matches: List[Optional[int]] = [None] * m
    extra = 0
    pair_score = get_measure(spec.measure).pair_score
    best_scores = np.full(m, -np.inf)
    for offset, result in zip(offsets, shard_results):
        for q, local in enumerate(result.matches):
            if local is None:
                continue
            gi = offset + int(local)
            value = pair_score(P, gi, Q, q)
            extra += 1
            score = value if spec.signed else abs(value)
            current = matches[q]
            if (
                current is None
                or score > best_scores[q]
                or (score == best_scores[q] and gi < current)
            ):
                matches[q] = gi
                best_scores[q] = score
    return matches, extra


def _merge_topk(
    shard_results: List[JoinResult],
    offsets: List[int],
    P,
    Q,
    spec: JoinSpec,
) -> Tuple[List[Optional[int]], List[List[int]], int]:
    """Merge per-shard ranked lists by ``(-score, index)``, truncated to k."""
    m = Q.shape[0]
    topk: List[List[int]] = [[] for _ in range(m)]
    matches: List[Optional[int]] = [None] * m
    extra = 0
    pair_score = get_measure(spec.measure).pair_score
    for q in range(m):
        scored: List[Tuple[float, int]] = []
        for offset, result in zip(offsets, shard_results):
            lists = result.topk or []
            if q >= len(lists):
                continue
            for local in lists[q]:
                gi = offset + int(local)
                value = pair_score(P, gi, Q, q)
                extra += 1
                score = value if spec.signed else abs(value)
                scored.append((-score, gi))
        scored.sort()
        topk[q] = [gi for _, gi in scored[: spec.k]]
        matches[q] = topk[q][0] if topk[q] else None
    return matches, topk, extra


def sharded_join(
    P,
    Q,
    spec: JoinSpec,
    n_shards: int,
    **join_options,
) -> JoinResult:
    """Split ``P`` into shards, join each, merge per-query bests.

    Args:
        P, Q: data and query matrices.
        spec: the problem record; ``join`` and ``topk`` variants only
            (self-joins cannot be sharded — see module docs).
        n_shards: contiguous row shards of ``P`` (capped at ``n``).
        join_options: forwarded verbatim to :func:`repro.engine.join`
            for every shard — ``backend=``, ``n_workers=``, ``pool=``,
            ``seed=`` (shard ``i`` runs with ``seed + i``), ...
            Validated once up front: invalid options raise before any
            shard executes, never mid-run.

    Returns:
        A merged :class:`~repro.core.problems.JoinResult` whose
        ``backend`` is the shard backend tagged ``@{n_shards}shards``.
    """
    from repro.engine.api import join

    measure = get_measure(spec.measure)
    P = measure.validate(P, "P")
    Q = measure.validate(Q, "Q")
    measure.check_compatible(P, Q)
    if spec.variant not in ("join", "topk"):
        raise ParameterError(
            f"sharded_join answers the 'join' and 'topk' variants, "
            f"not {spec.variant!r}"
        )
    bounds = shard_bounds(P.shape[0], n_shards)
    seed = join_options.pop("seed", None)
    _preflight_options(P, spec, seed, join_options)
    shard_results: List[JoinResult] = []
    offsets: List[int] = []
    for i, (start, end) in enumerate(bounds):
        shard_seed = None if seed is None else seed + i
        shard_results.append(
            join(P[start:end], Q, spec, seed=shard_seed, **join_options)
        )
        offsets.append(start)
    return _merge_shard_results(shard_results, offsets, P, Q, spec, len(bounds))


def _merge_shard_results(
    shard_results: List[JoinResult],
    offsets: List[int],
    P,
    Q,
    spec: JoinSpec,
    n_shards: int,
) -> JoinResult:
    """The shared merge tail of sharded one-shots and sharded sessions."""
    evaluated = sum(r.inner_products_evaluated for r in shard_results)
    generated = sum(r.candidates_generated for r in shard_results)
    stats = QueryStats()
    for r in shard_results:
        if r.stats is not None:
            stats = stats.merge(r.stats)
    if spec.is_topk:
        matches, topk, extra = _merge_topk(shard_results, offsets, P, Q, spec)
    else:
        topk = None
        matches, extra = _merge_threshold(shard_results, offsets, P, Q, spec)
    backend = shard_results[0].backend or "?"
    return JoinResult(
        matches=matches,
        spec=shard_results[0].spec,
        inner_products_evaluated=evaluated + extra,
        candidates_generated=generated,
        topk=topk,
        backend=f"{backend}@{n_shards}shards",
        stats=stats,
    )


class ShardedSession:
    """``n_shards`` prepared :class:`~repro.engine.session.JoinSession`\\ s
    behind one query surface.

    Each shard's structures are built once at :func:`open_sharded`
    (shard ``i`` with seed ``seed + i``, matching :func:`sharded_join`);
    every :meth:`query` then runs the batch through each shard's session
    and merges the per-shard answers with the exact merge
    :func:`sharded_join` uses — so for exact backends a sharded session
    matches the unsharded result, and for any backend it matches the
    one-shot ``sharded_join`` with the same seed and shard count.
    ``close()`` closes every shard session (and their owned pools).
    """

    def __init__(self, sessions, bounds, P, spec: JoinSpec):
        self._sessions = list(sessions)
        self._bounds = list(bounds)
        self._P = P
        self.spec = spec
        self._closed = False
        self._sink = None
        self._own_sink = False

    @property
    def n_shards(self) -> int:
        return len(self._sessions)

    @property
    def closed(self) -> bool:
        return self._closed

    def query(self, Q, *, trace: bool = False) -> JoinResult:
        if self._closed:
            raise ParameterError("session is closed")
        # Q-only validation: P was checked once at open_sharded, and the
        # shard sessions re-check the batch's compatibility anyway.
        measure = get_measure(self.spec.measure)
        Q = measure.validate(Q, "Q")
        measure.check_compatible(self._P, Q)
        shard_results = [
            session.query(Q, trace=trace) for session in self._sessions
        ]
        offsets = [start for start, _ in self._bounds]
        return _merge_shard_results(
            shard_results, offsets, self._P, Q, self.spec, self.n_shards
        )

    def metrics_snapshot(self) -> dict:
        """All shards' always-on registries merged into one snapshot.

        Counters and latency-histogram buckets sum across shards (the
        fixed pow2 layouts make every shard mergeable), so
        ``session.query_latency_us`` quantiles over the snapshot
        describe the whole sharded surface.
        """
        merged = MetricsRegistry(enabled=True)
        for session in self._sessions:
            merged.merge_snapshot(session.metrics.snapshot())
        return merged.snapshot()

    def attach_sink(self, sink, *, max_bytes: int = 64 * 1024 * 1024,
                    max_files: int = 4, resource_every: int = 32) -> EventSink:
        """One shared telemetry sink for every shard session.

        ``sink`` is a path or a caller-managed
        :class:`~repro.obs.sink.EventSink`; each shard emits into it
        (the sink serializes writers), so events from different shards
        interleave in one file in write order.
        """
        if self._closed:
            raise ParameterError("session is closed")
        if self._sink is not None:
            raise ParameterError(
                "a sink is already attached; detach_sink() first"
            )
        if isinstance(sink, EventSink):
            shared, own = sink, False
        else:
            shared, own = EventSink(
                sink, max_bytes=max_bytes, max_files=max_files
            ), True
        for session in self._sessions:
            session.attach_sink(shared, resource_every=resource_every)
        self._sink, self._own_sink = shared, own
        return shared

    def detach_sink(self) -> None:
        """Detach every shard from the shared sink; close it if owned."""
        sink, self._sink = self._sink, None
        for session in self._sessions:
            if session._sink is not None:
                session.detach_sink()
        if sink is not None and self._own_sink:
            sink.close()
        self._own_sink = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for session in self._sessions:
            session.close()
        if self._sink is not None and self._own_sink:
            self._sink.close()
        self._sink = None
        self._own_sink = False

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_sharded(
    P,
    spec: JoinSpec,
    n_shards: int,
    **open_options,
) -> ShardedSession:
    """Open one prepared session per contiguous shard of ``P``.

    ``open_options`` forward to :func:`repro.engine.session.open_session`
    for every shard (``backend=``, ``n_workers=``, ``pool=``,
    ``expected_queries=``, ...); shard ``i`` opens with ``seed + i``.
    Self-join specs are rejected for the same reason
    :func:`sharded_join` rejects them.
    """
    P = get_measure(spec.measure).validate(P, "P")
    if spec.self_join or spec.variant not in ("join", "topk"):
        raise ParameterError(
            f"sharded sessions answer the 'join' and 'topk' variants, "
            f"not {spec.variant!r}"
        )
    bounds = shard_bounds(P.shape[0], n_shards)
    seed = open_options.pop("seed", None)
    sessions = []
    try:
        for i, (start, end) in enumerate(bounds):
            shard_seed = None if seed is None else seed + i
            sessions.append(
                open_session(
                    P[start:end], spec, seed=shard_seed, **open_options
                )
            )
    except BaseException:
        for session in sessions:
            session.close()
        raise
    return ShardedSession(sessions, bounds, P, spec)
