"""Exception hierarchy for the ``repro`` package.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can distinguish library-level failures from
programming errors with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An input failed a shape, domain, or parameter-range check."""


class DomainError(ValidationError):
    """Vector entries fall outside the domain an algorithm requires.

    For example, passing real vectors to an embedding defined on ``{0, 1}``
    coordinates raises this error.
    """


class ParameterError(ValidationError):
    """A scalar parameter (threshold, approximation factor, ...) is invalid."""


class ConstructionError(ReproError):
    """An explicit construction could not be realized.

    Raised, for example, when a requested incoherent vector collection is
    infeasible for the given coherence and cardinality, or when a hard
    sequence construction is asked for parameters where the paper's proof
    (and hence the construction) does not apply.
    """


class CapacityError(ConstructionError):
    """A construction would exceed an explicit size budget.

    The gap embeddings of Lemma 3 have output dimension exponential in some
    parameters; rather than silently allocating huge arrays we raise this
    error when a guard limit would be exceeded.
    """
