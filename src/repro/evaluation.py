"""Standardized evaluation harness for join algorithms.

Benches and examples repeatedly compare algorithms on the same instance;
this module centralizes that: run a set of named join algorithms against
one workload, verify every reported match, and return uniform records
(recall vs exact, verified-pair work, wall time).  Used by benches and
available to downstream users comparing their own algorithms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.brute_force import brute_force_join
from repro.core.problems import JoinResult, JoinSpec, validate_join_inputs
from repro.errors import ParameterError

JoinAlgorithm = Callable[[np.ndarray, np.ndarray, JoinSpec], JoinResult]


@dataclass(frozen=True)
class EvaluationRecord:
    """One algorithm's measured behaviour on one workload."""

    name: str
    matched: int
    recall: float
    false_matches: int       # reported matches that fail verification
    inner_products: int
    wall_seconds: float

    @property
    def sound(self) -> bool:
        """True when every reported match verified above ``cs``."""
        return self.false_matches == 0


def evaluate_joins(
    P,
    Q,
    spec: JoinSpec,
    algorithms: Dict[str, JoinAlgorithm],
    reference: Optional[JoinResult] = None,
) -> List[EvaluationRecord]:
    """Run and score a set of join algorithms on one instance.

    Args:
        P, Q: the workload.
        spec: the ``(cs, s)`` parameters every algorithm answers.
        algorithms: name -> callable ``(P, Q, spec) -> JoinResult``.
        reference: ground truth; computed by brute force when omitted.

    Every reported match is re-verified against the raw inner products
    under the *result's own* spec (algorithms like the Section 4.3 sketch
    legitimately substitute their own approximation factor; the spec they
    declare is the promise they are held to).  An algorithm returning
    unverifiable matches is *not* rejected — the record flags it — so
    evaluation can also be used to catch bugs in user-supplied algorithms.
    """
    P, Q = validate_join_inputs(P, Q)
    if not algorithms:
        raise ParameterError("no algorithms supplied")
    if reference is None:
        reference = brute_force_join(P, Q, spec)
    records = []
    for name, algorithm in algorithms.items():
        start = time.perf_counter()
        result = algorithm(P, Q, spec)
        elapsed = time.perf_counter() - start
        if len(result.matches) != Q.shape[0]:
            raise ParameterError(
                f"algorithm {name!r} answered {len(result.matches)} queries, "
                f"expected {Q.shape[0]}"
            )
        false_matches = 0
        for qi, match in enumerate(result.matches):
            if match is None:
                continue
            value = float(P[match] @ Q[qi])
            if not result.spec.satisfied(value):
                false_matches += 1
        records.append(EvaluationRecord(
            name=name,
            matched=result.matched_count,
            recall=result.recall_against(reference),
            false_matches=false_matches,
            inner_products=result.inner_products_evaluated,
            wall_seconds=elapsed,
        ))
    return records


def evaluation_table(records: Sequence[EvaluationRecord]) -> str:
    """Plain-text rendering of evaluation records."""
    from repro.experiments.reporting import format_table

    return format_table(
        ["algorithm", "matched", "recall", "sound", "inner products", "wall time"],
        [
            [
                r.name, r.matched, f"{r.recall:.2f}",
                "yes" if r.sound else f"NO ({r.false_matches} bad)",
                r.inner_products, f"{r.wall_seconds * 1e3:.1f} ms",
            ]
            for r in records
        ],
    )
