"""Reproduction reports: every paper table/figure, regenerable in-library.

Each ``build_*`` function returns a mapping of artifact name to formatted
plain-text report.  The benchmark harness wraps these with timing; the
CLI (``python -m repro.experiments``) writes them to disk directly, so a
downstream user can regenerate the paper's artifacts without pytest.
"""

from repro.experiments.figure1 import build_figure1_reports
from repro.experiments.figure2 import build_figure2_reports
from repro.experiments.hard_instances import build_hard_instance_reports
from repro.experiments.reporting import format_table
from repro.experiments.table1 import build_table1_reports

ALL_EXPERIMENTS = {
    "table1": build_table1_reports,
    "figure1": build_figure1_reports,
    "figure2": build_figure2_reports,
    "hard-instances": build_hard_instance_reports,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "build_table1_reports",
    "build_figure1_reports",
    "build_figure2_reports",
    "build_hard_instance_reports",
    "format_table",
]
