"""CLI: regenerate the paper's tables and figures without pytest.

Usage::

    python -m repro.experiments                # run everything, print
    python -m repro.experiments table1 figure2 # run a subset
    python -m repro.experiments --out results/ # also write one file each
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments import ALL_EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*ALL_EXPERIMENTS, []],
        help=f"which experiments to run (default: all of {sorted(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        help="also write each artifact to DIR/<name>.txt",
    )
    args = parser.parse_args(argv)

    chosen = args.experiments or sorted(ALL_EXPERIMENTS)
    for name in chosen:
        reports = ALL_EXPERIMENTS[name]()
        for artifact, text in reports.items():
            print(f"\n===== {artifact} =====\n{text}")
            if args.out:
                os.makedirs(args.out, exist_ok=True)
                with open(os.path.join(args.out, f"{artifact}.txt"), "w") as handle:
                    handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
