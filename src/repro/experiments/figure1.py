"""Figure 1 reports: partition census, mass accounting, gap decay."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.reporting import format_table
from repro.lowerbounds import (
    FiniteHashFamily,
    MassAccounting,
    geometric_sequences,
    lower_triangle_partition,
)
from repro.lowerbounds.grid import grid_side
from repro.lsh import DataDepALSH


def build_partition_census(max_ell: int = 9) -> str:
    rows = []
    for ell in range(2, max_ell + 1):
        squares = lower_triangle_partition(ell)
        by_level: Dict[int, int] = {}
        for sq in squares:
            by_level[sq.r] = by_level.get(sq.r, 0) + 1
        covered = sum(sq.side ** 2 for sq in squares)
        n = grid_side(ell)
        rows.append([
            f"2^{ell}-1 = {n}",
            len(squares),
            " ".join(f"{by_level[r]}x(side {1 << r})" for r in sorted(by_level)),
            f"{covered} == n(n+1)/2 = {n * (n + 1) // 2}",
        ])
    return format_table(["grid", "squares", "census", "cover check"], rows)


def build_enumerated_family(ell: int = 4, trials: int = 60, seed: int = 0) -> FiniteHashFamily:
    """A real ALSH evaluated on real case-1 hard sequences, grid-sized."""
    seqs = geometric_sequences(s=0.005, c=0.7, U=4.0, d=1)
    n = grid_side(ell)
    if seqs.n < n:
        raise ValueError(f"sequence too short for ell={ell} ({seqs.n})")
    rng = np.random.default_rng(seed)
    fam_src = DataDepALSH(1, query_radius=4.0, sphere="hyperplane")
    pairs = [fam_src.sample(rng) for _ in range(trials)]
    return FiniteHashFamily.from_hash_pairs(pairs, seqs.Q[:n], seqs.P[:n])


def build_mass_accounting_report(ell: int = 4, trials: int = 60, seed: int = 0) -> str:
    accounting = MassAccounting(build_enumerated_family(ell, trials, seed))
    report = accounting.verify()
    rows = [
        [f"G({m.square.r},{m.square.s})", f"{m.total:.4f}", f"{m.shared:.4f}",
         f"{m.partially_shared:.4f}", f"{m.proper:.4f}"]
        for m in accounting.masses()
    ]
    return "\n".join([
        f"grid n = {report['n']} (ell = {report['ell']}), "
        f"{report['squares']} squares, asymmetric LSH = DATA-DEP on case-1 sequences",
        f"P1 = {report['p1']:.4f}   P2 = {report['p2']:.4f}   "
        f"gap = {report['gap']:.4f}   bound 8/log2(n) = {report['gap_bound']:.4f}   "
        f"within bound: {report['gap_within_bound']}",
        f"total proper mass = {report['total_proper_mass']:.4f} <= 2n = {2 * report['n']}",
        f"charging-inequality violations: {len(report['violations'])}",
        "",
        format_table(["square", "mass", "shared", "partial", "proper"], rows),
    ])


def build_gap_decay_report(ells=(2, 3, 4), trials: int = 50) -> str:
    rows = []
    for ell in ells:
        family = build_enumerated_family(ell=ell, trials=trials, seed=ell)
        report = MassAccounting(family).verify()
        rows.append([
            f"{report['n']}",
            f"{report['p1']:.4f}",
            f"{report['p2']:.4f}",
            f"{report['gap']:.4f}",
            f"{report['gap_bound']:.4f}",
            str(report["gap_within_bound"]),
        ])
    return format_table(["n", "P1", "P2", "gap", "8/log2(n)", "within bound"], rows)


def build_figure1_reports() -> Dict[str, str]:
    return {
        "figure1_partition": build_partition_census(),
        "figure1_mass_accounting": build_mass_accounting_report(),
        "figure1_gap_decay": build_gap_decay_report(),
    }
