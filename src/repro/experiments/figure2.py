"""Figure 2 reports: the ρ curves and the Monte-Carlo cross-check."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.reporting import format_table
from repro.lsh import SimpleALSH
from repro.lsh.base import estimate_collision_probability
from repro.lsh.minhash import AsymmetricMinHash
from repro.lsh.rho import (
    collision_prob_hyperplane,
    collision_prob_mh_alsh,
    figure2_series,
    rho_l2alsh_tuned,
)


def build_curves_report(c_values=(0.2, 0.5, 0.8), step: float = 0.05) -> str:
    s_grid = [round(s, 2) for s in np.arange(step, 1.0, step)]
    blocks = []
    for c in c_values:
        series = figure2_series(c, s_grid)
        rows = [
            [f"{s:.2f}", f"{dd:.4f}", f"{simp:.4f}", f"{mh:.4f}",
             f"{rho_l2alsh_tuned(s, c):.4f}"]
            for s, dd, simp, mh in zip(
                series["s"], series["DATA-DEP"], series["SIMP"], series["MH-ALSH"]
            )
        ]
        blocks.append(f"c = {c}")
        blocks.append(format_table(
            ["s", "DATA-DEP (this paper)", "SIMP [39]", "MH-ALSH [46]",
             "L2-ALSH [45] (extra)"],
            rows,
        ))
        blocks.append("")
    return "\n".join(blocks)


def build_crosscheck_report(d: int = 48, trials: int = 4000, seed: int = 7) -> str:
    rng = np.random.default_rng(seed)
    rows = []
    fam = SimpleALSH(d)
    for s in (0.3, 0.6, 0.9):
        q = rng.normal(size=d); q /= np.linalg.norm(q)
        r = rng.normal(size=d); r -= (r @ q) * q; r /= np.linalg.norm(r)
        p = (s * q + np.sqrt(1 - s * s) * r) * 0.999
        est = estimate_collision_probability(fam, p, q, trials=trials, seed=1)
        rows.append(["SIMP", f"s={s}", f"{est:.4f}",
                     f"{collision_prob_hyperplane(s * 0.999):.4f}"])
    universe, M = 120, 40
    mh = AsymmetricMinHash(universe, M)
    for t in (0.25, 0.5, 0.75):
        overlap = int(t * M)
        x = np.zeros(universe, dtype=np.int64); x[:M] = 1
        q = np.zeros(universe, dtype=np.int64)
        q[M - overlap:2 * M - overlap] = 1
        est = estimate_collision_probability(mh, x, q, trials=trials, seed=2)
        rows.append(["MH-ALSH", f"t={t}", f"{est:.4f}",
                     f"{collision_prob_mh_alsh(overlap / M):.4f}"])
    return format_table(["family", "point", "Monte-Carlo", "closed form"], rows)


def build_figure2_reports() -> Dict[str, str]:
    return {
        "figure2_rho": build_curves_report(),
        "figure2_crosscheck": build_crosscheck_report(),
    }
