"""Hard-instance landscape reports (Theorems 1 and 2 instantiated)."""

from __future__ import annotations

import math
from typing import Dict

from repro.experiments.reporting import format_table
from repro.theory import (
    hard_instance_table,
    hard_instance_unsigned_01,
    hard_instance_unsigned_pm1,
)


def build_landscape_report(exponents=(10, 14, 18, 22)) -> str:
    rows = []
    for inst in hard_instance_table([2 ** e for e in exponents]):
        rows.append([
            inst.problem,
            f"2^{int(math.log2(inst.n))}",
            inst.d_ovp,
            f"{inst.d_embedded:.3g}",
            f"{inst.s:.6g}",
            f"{inst.cs:.6g}",
            f"{inst.c:.6f}",
            f"{inst.ratio:.6f}",
        ])
    return format_table(
        ["problem", "n", "d", "d2", "s", "cs", "c", "log(s/d2)/log(cs/d2)"],
        rows,
    )


def build_limits_report(exponents=(10, 16, 22, 28)) -> str:
    rows = []
    for exp in exponents:
        n = 2 ** exp
        pm1 = hard_instance_unsigned_pm1(n)
        b01 = hard_instance_unsigned_01(n)
        rows.append([
            f"2^{exp}",
            f"{pm1.c:.2e}",
            f"{1 - pm1.ratio:.2e}",
            f"{b01.c:.6f}",
            f"{1 - b01.ratio:.2e}",
        ])
    return format_table(
        ["n", "±1: c", "±1: 1-ratio", "0/1: c", "0/1: 1-ratio"], rows
    )


def build_hard_instance_reports() -> Dict[str, str]:
    return {
        "hard_instances": build_landscape_report(),
        "hard_instances_limits": build_limits_report(),
    }
