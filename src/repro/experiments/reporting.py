"""Plain-text table formatting shared by reports, benches and the CLI."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence, rows: Iterable[Sequence]) -> str:
    """Right-padded column layout with a dashed header rule."""
    table: List[List[str]] = [[str(cell) for cell in headers]]
    for row in rows:
        table.append([str(cell) for cell in row])
    widths = [max(len(row[col]) for row in table) for col in range(len(table[0]))]
    lines = []
    for r, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * widths[col] for col in range(len(widths))))
    return "\n".join(lines)
