"""Table 1 report: the four-column table plus empirical witnesses."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.datasets import planted_mips, random_binary
from repro.embeddings import (
    ChebyshevSignEmbedding,
    ChoppedBinaryEmbedding,
    SignedCoordinateEmbedding,
)
from repro.experiments.reporting import format_table
from repro.sketches import SketchCMIPS
from repro.theory import table1_rows


def measured_embedding_gap(embedding, d: int, trials: int = 100, seed=0):
    """Worst-case realized (orthogonal, overlapping) embedded values.

    Half the trials use forced-orthogonal pairs (disjoint random
    supports), half random overlapping pairs; signed embeddings are
    measured on the raw value, unsigned ones on the absolute value.
    """
    rng = np.random.default_rng(seed)
    above, below = [], []
    for _ in range(trials // 2):
        mask = rng.random(d) < 0.5
        x = (rng.random(d) < 0.6).astype(np.int64) * mask
        y = (rng.random(d) < 0.6).astype(np.int64) * ~mask
        value = float(embedding.embed_left(x) @ embedding.embed_right(y))
        above.append(value if embedding.signed else abs(value))
    X = random_binary(trials // 2, d, seed=rng)
    Y = random_binary(trials // 2, d, seed=rng)
    for x, y in zip(X, Y):
        if int(x @ y) == 0:
            continue
        value = float(embedding.embed_left(x) @ embedding.embed_right(y))
        below.append(value if embedding.signed else abs(value))
    lo = min(above) if above else float("nan")
    hi = max(below) if below else 0.0
    return lo, hi


def build_table1_reports(d: int = 16, sketch_n: int = 512, seed: int = 1) -> Dict[str, str]:
    """The Table 1 artifacts: the ranges table and both witness tables."""
    embeddings = {
        "signed {-1,1}": SignedCoordinateEmbedding(d),
        "unsigned {-1,1}": ChebyshevSignEmbedding(d, q=2),
        "unsigned {0,1}": ChoppedBinaryEmbedding(d, k=4),
    }

    lines = []
    lines.append(format_table(
        ["problem", "hard c", "permissible c", "hard ratio", "permissible ratio"],
        [
            [row.problem, row.hard_c, row.permissible_c,
             row.hard_ratio, row.permissible_ratio]
            for row in table1_rows()
        ],
    ))
    lines.append("")
    lines.append(f"empirical witnesses (d = {d}):")
    witness_rows = []
    for name, emb in embeddings.items():
        lo, hi = measured_embedding_gap(emb, d)
        witness_rows.append([
            name,
            f"{type(emb).__name__}(d_out={emb.d_out})",
            f"s={emb.s:.6g}",
            f"cs={emb.cs:.6g}",
            f"measured orth >= {lo:.6g}",
            f"measured non-orth <= {hi:.6g}",
        ])
    lines.append(format_table(
        ["row", "embedding", "s", "cs", "orthogonal pairs", "overlapping pairs"],
        witness_rows,
    ))

    inst = planted_mips(sketch_n, 16, 32, s=0.9, c=0.3, seed=seed)
    permissible_rows = []
    for kappa in (2.0, 3.0, 4.0):
        structure = SketchCMIPS(inst.P, kappa=kappa, copies=7, seed=seed + 1)
        ratios = []
        for qi in range(16):
            q = inst.Q[qi]
            opt = float(np.abs(inst.P @ q).max())
            ratios.append(structure.query(q).value / opt)
        permissible_rows.append([
            f"kappa={kappa}",
            f"promised c = {structure.approximation_factor:.4f}",
            f"measured worst ratio = {min(ratios):.4f}",
            f"measured mean ratio = {np.mean(ratios):.4f}",
        ])
    permissible = format_table(
        ["structure", "promise", "worst", "mean"], permissible_rows
    )
    return {"table1": "\n".join(lines), "table1_permissible": permissible}
