"""Explicit incoherent vector collections.

A collection of unit vectors ``v_1 .. v_N`` is *eps-incoherent* when
``|v_i . v_j| <= eps`` for all ``i != j``.  Section 4.2 needs such a
collection that is "explicit in a strong sense" — computable per index —
which the paper obtains from Reed-Solomon codes [38]; Theorem 3's third
hard sequence needs a quasi-orthogonal family obtainable from random
projections.  Both constructions live here.
"""

from repro.incoherent.random_family import coherence, random_quasi_orthogonal
from repro.incoherent.reed_solomon import ReedSolomonIncoherent, next_prime
from repro.incoherent.registry import IncoherentRegistry

__all__ = [
    "ReedSolomonIncoherent",
    "IncoherentRegistry",
    "random_quasi_orthogonal",
    "coherence",
    "next_prime",
]
