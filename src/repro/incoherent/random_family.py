"""Random quasi-orthogonal families (Johnson-Lindenstrauss style).

Theorem 3's third hard sequence needs ``2n - 1`` vectors with
``|z_i . z_j| <= eps`` and norms in ``[1 - eps, 1 + eps]``; the paper cites
the JL lemma for their existence at dimension ``Omega(eps^{-2} log n)``.
``random_quasi_orthogonal`` draws normalized Gaussian vectors at that
dimension and *verifies* the property, re-drawing on the (exponentially
unlikely) failure, so callers get a certified family.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConstructionError, ParameterError
from repro.utils.rng import SeedLike, ensure_rng


def coherence(Z: np.ndarray) -> float:
    """Largest absolute pairwise inner product of the rows of ``Z``."""
    Z = np.asarray(Z, dtype=np.float64)
    if Z.shape[0] < 2:
        return 0.0
    gram = np.abs(Z @ Z.T)
    np.fill_diagonal(gram, 0.0)
    return float(gram.max())


def jl_dimension(count: int, eps: float, constant: float = 8.0) -> int:
    """The JL-scale dimension ``ceil(constant * eps^{-2} * ln(count))``."""
    if count < 2:
        raise ParameterError(f"count must be >= 2, got {count}")
    if not 0.0 < eps < 1.0:
        raise ParameterError(f"eps must be in (0, 1), got {eps}")
    return max(8, math.ceil(constant * math.log(count) / (eps * eps)))


def random_quasi_orthogonal(
    count: int,
    eps: float,
    dimension: int = None,
    seed: SeedLike = None,
    max_attempts: int = 32,
) -> np.ndarray:
    """A certified eps-incoherent family of ``count`` unit vectors.

    Draws normalized Gaussian rows at the JL dimension (or the caller's
    ``dimension``) and re-draws until the pairwise coherence bound actually
    holds, raising :class:`repro.errors.ConstructionError` if the requested
    dimension can never realistically satisfy it.
    """
    if count < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    if not 0.0 < eps < 1.0:
        raise ParameterError(f"eps must be in (0, 1), got {eps}")
    rng = ensure_rng(seed)
    d = jl_dimension(max(count, 2), eps) if dimension is None else int(dimension)
    if d < 1:
        raise ParameterError(f"dimension must be positive, got {d}")

    for _ in range(max_attempts):
        Z = rng.normal(size=(count, d))
        Z /= np.linalg.norm(Z, axis=1, keepdims=True)
        if coherence(Z) <= eps:
            return Z
    raise ConstructionError(
        f"could not draw {count} unit vectors with coherence <= {eps} at "
        f"dimension {d} in {max_attempts} attempts; increase the dimension"
    )
