"""Deterministic incoherent vectors from Reed-Solomon codes.

This is the construction of Nelson, Nguyen and Woodruff [38] the paper
invokes in Section 4.2.  Fix a prime ``q`` and degree bound ``k``; index
``u`` is interpreted as a polynomial ``f_u`` of degree ``< k`` over
``F_q`` (its base-q digits are the coefficients).  The vector ``v_u`` has
``q`` blocks of ``q`` coordinates; block ``a`` holds ``1/sqrt(q)`` at
position ``f_u(a)`` and zeros elsewhere.  Then

* ``||v_u|| = 1`` exactly, and
* ``v_u . v_w = |{a : f_u(a) = f_w(a)}| / q <= (k - 1) / q`` for ``u != w``

because distinct polynomials of degree ``< k`` agree on at most ``k - 1``
points.  The collection holds ``q^k`` vectors of dimension ``q^2`` with
coherence ``(k-1)/q``, each computable independently in ``O(qk)`` time —
the "strong explicitness" Section 4.2 requires.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConstructionError, ParameterError


def is_prime(n: int) -> bool:
    """Deterministic primality by trial division (fine for code-size primes)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def next_prime(n: int) -> int:
    """Smallest prime >= n."""
    candidate = max(2, int(n))
    while not is_prime(candidate):
        candidate += 1
    return candidate


#: Largest field size we are willing to search; dimension would be q^2.
MAX_FIELD_SIZE = 1 << 20


def choose_parameters(size: int, eps: float, max_degree: int = 32):
    """Pick ``(q, k)`` minimizing dimension ``q^2`` subject to the guarantees.

    Requires ``q^k >= size`` (capacity) and ``(k-1)/q <= eps`` (coherence).
    Degree candidates whose field would exceed :data:`MAX_FIELD_SIZE` are
    skipped — their vectors would be infeasibly large anyway.
    """
    if size < 1:
        raise ParameterError(f"size must be >= 1, got {size}")
    if not 0.0 < eps < 1.0:
        raise ParameterError(f"eps must be in (0, 1), got {eps}")
    best = None
    for k in range(1, max_degree + 1):
        q_capacity = math.ceil(size ** (1.0 / k)) if k > 1 else size
        q_coherence = math.ceil((k - 1) / eps) if k > 1 else 2
        lower = max(q_capacity, q_coherence, 2)
        if lower > MAX_FIELD_SIZE:
            continue
        q = next_prime(lower)
        # Rounding up size**(1/k) can undershoot for huge sizes; fix up.
        while q ** k < size:
            q = next_prime(q + 1)
        if best is None or q < best[0]:
            best = (q, k)
    if best is None:
        raise ConstructionError(
            f"no feasible Reed-Solomon parameters for size={size}, eps={eps}: "
            f"every candidate field exceeds {MAX_FIELD_SIZE}"
        )
    return best


class ReedSolomonIncoherent:
    """An explicit eps-incoherent collection of ``q^k`` unit vectors.

    Args:
        size: number of distinct indices the collection must support.
        eps: coherence bound; pairwise ``|v_u . v_w| <= eps`` is guaranteed
            (the realized coherence ``(k-1)/q`` is available as
            :attr:`coherence` and is often much smaller).
    """

    def __init__(self, size: int, eps: float):
        self.q, self.k = choose_parameters(size, eps)
        self.size = int(size)
        self.eps = float(eps)
        self._points = np.arange(self.q, dtype=np.int64)

    @property
    def dimension(self) -> int:
        """Vector dimension ``q^2``."""
        return self.q * self.q

    @property
    def capacity(self) -> int:
        """Number of distinct vectors available, ``q^k``."""
        return self.q ** self.k

    @property
    def coherence(self) -> float:
        """The guaranteed pairwise bound ``(k - 1) / q``."""
        return (self.k - 1) / self.q

    def _coefficients(self, index: int) -> np.ndarray:
        if not 0 <= index < self.capacity:
            raise ParameterError(
                f"index must be in [0, {self.capacity}), got {index}"
            )
        coeffs = np.empty(self.k, dtype=np.int64)
        for pos in range(self.k):
            coeffs[pos] = index % self.q
            index //= self.q
        return coeffs

    def _evaluate(self, coeffs: np.ndarray) -> np.ndarray:
        """Evaluate the polynomial at every field point, vectorized Horner."""
        values = np.zeros(self.q, dtype=np.int64)
        for coefficient in coeffs[::-1]:
            values = (values * self._points + coefficient) % self.q
        return values

    def vector(self, index: int) -> np.ndarray:
        """The unit vector assigned to ``index`` (shape ``(q^2,)``)."""
        values = self._evaluate(self._coefficients(index))
        out = np.zeros(self.q * self.q, dtype=np.float64)
        out[self._points * self.q + values] = 1.0 / math.sqrt(self.q)
        return out

    def vectors(self, indices) -> np.ndarray:
        """Stack of vectors for an iterable of indices."""
        return np.stack([self.vector(int(i)) for i in indices])

    def dot(self, index_a: int, index_b: int) -> float:
        """Inner product of two collection vectors without materializing them."""
        va = self._evaluate(self._coefficients(index_a))
        vb = self._evaluate(self._coefficients(index_b))
        return float((va == vb).sum()) / self.q
