"""Keyed lookup of incoherent companion vectors.

Section 4.2 assigns an incoherent vector ``v_p`` to *every possible*
``k``-bit-quantized vector ``p`` — conceptually ``N = 2^{O(dk)}`` vectors.
Materializing that is impossible; instead the paper only needs the map
``p -> v_p`` to be strongly explicit.  We quantize the vector to ``k``-bit
fixed point, hash the canonical byte encoding to an index into a
Reed-Solomon collection with capacity at least ``2^64``, and emit that
index's vector.  Equal vectors (after quantization) always receive the
same companion; distinct vectors receive companions with pairwise
coherence ``<= eps`` unless the 64-bit hashes collide, which is
negligible at any realistic dataset size.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ParameterError
from repro.incoherent.reed_solomon import ReedSolomonIncoherent
from repro.utils.validation import check_vector


class IncoherentRegistry:
    """Deterministic map from quantized vectors to incoherent unit vectors.

    Args:
        eps: coherence bound for companions of distinct vectors.
        precision_bits: fixed-point quantization width ``k``; two vectors
            within ``2^{-precision_bits}`` per coordinate share a companion.
        salt: optional bytes mixed into the hash, to derive independent
            registries from one configuration.
    """

    #: Capacity floor making 64-bit hash collisions the only failure mode.
    _MIN_CAPACITY = 2 ** 64

    def __init__(self, eps: float, precision_bits: int = 16, salt: bytes = b""):
        if not 0.0 < eps < 1.0:
            raise ParameterError(f"eps must be in (0, 1), got {eps}")
        if precision_bits < 1:
            raise ParameterError(f"precision_bits must be >= 1, got {precision_bits}")
        self.eps = float(eps)
        self.precision_bits = int(precision_bits)
        self.salt = bytes(salt)
        self._collection = ReedSolomonIncoherent(self._MIN_CAPACITY, eps)

    @property
    def dimension(self) -> int:
        """Dimension of the companion vectors."""
        return self._collection.dimension

    @property
    def coherence(self) -> float:
        """Realized coherence bound of the underlying collection."""
        return self._collection.coherence

    def quantize(self, x) -> np.ndarray:
        """Fixed-point quantization to ``precision_bits`` fractional bits."""
        x = check_vector(x, "x")
        scale = float(1 << self.precision_bits)
        return np.round(x * scale).astype(np.int64)

    def index_for(self, x) -> int:
        """The collection index assigned to (the quantization of) ``x``."""
        quantized = self.quantize(x)
        digest = hashlib.blake2b(
            quantized.tobytes(), digest_size=8, key=self.salt
        ).digest()
        return int.from_bytes(digest, "little") % self._collection.capacity

    def companion(self, x) -> np.ndarray:
        """The incoherent unit vector ``v_x`` assigned to ``x``."""
        return self._collection.vector(self.index_for(x))
