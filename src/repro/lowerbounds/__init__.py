"""Lower-bound machinery: Lemma 4's collision grid and Theorem 3's sequences.

``grid`` reproduces the recursive square partition of the paper's
Figure 1; ``mass`` implements the shared / partially-shared / proper mass
accounting of Lemma 4's proof on explicit finite hash families; ``sequences``
constructs the three hard data/query sequences of Theorem 3; ``gap_bounds``
evaluates the resulting closed-form upper bounds on ``P1 - P2``; ``audit``
measures the empirical gap of concrete (A)LSH families on those sequences.
"""

from repro.lowerbounds.audit import GapAudit, audit_gap
from repro.lowerbounds.gap_bounds import (
    gap_bound_case1,
    gap_bound_case2,
    gap_bound_case3,
    lemma4_gap_bound,
)
from repro.lowerbounds.grid import Square, lower_triangle_partition, square_containing
from repro.lowerbounds.mass import FiniteHashFamily, MassAccounting
from repro.lowerbounds.sequences import (
    HardSequences,
    geometric_sequences,
    prefix_tree_sequences,
    shifted_affine_sequences,
    verify_lemma4_hypothesis,
)
from repro.lowerbounds.symmetric_impossibility import (
    ChainAudit,
    audit_symmetric_chain,
    chain_length,
    great_circle_chain,
    symmetric_gap_bound,
    verify_chain,
)

__all__ = [
    "Square",
    "lower_triangle_partition",
    "square_containing",
    "FiniteHashFamily",
    "MassAccounting",
    "HardSequences",
    "geometric_sequences",
    "shifted_affine_sequences",
    "prefix_tree_sequences",
    "verify_lemma4_hypothesis",
    "lemma4_gap_bound",
    "gap_bound_case1",
    "gap_bound_case2",
    "gap_bound_case3",
    "GapAudit",
    "audit_gap",
    "ChainAudit",
    "audit_symmetric_chain",
    "chain_length",
    "great_circle_chain",
    "symmetric_gap_bound",
    "verify_chain",
]
