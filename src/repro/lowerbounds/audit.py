"""Empirical gap audits: measure ``P1 - P2`` of real (A)LSH families.

Theorem 3 is a statement about *every* asymmetric LSH; an audit cannot
prove it, but running a concrete family against the hard sequences shows
the bound in action: the measured ``P1`` (worst collision probability
over must-collide pairs) minus ``P2`` (best over must-separate pairs)
always lands below the closed-form bound, and decays as the sequences
lengthen.  This is the Figure-1/Theorem-3 experiment of the benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ParameterError
from repro.lowerbounds.gap_bounds import lemma4_gap_bound
from repro.lowerbounds.sequences import HardSequences
from repro.lsh.base import AsymmetricLSHFamily
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class GapAudit:
    """Result of auditing one family against one hard instance."""

    p1: float
    p2: float
    n: int
    gap_bound: float
    trials: int
    pairs_checked: int

    @property
    def gap(self) -> float:
        return self.p1 - self.p2

    @property
    def within_bound(self) -> bool:
        return self.gap <= self.gap_bound + 1e-9


def audit_gap(
    family: AsymmetricLSHFamily,
    sequences: HardSequences,
    trials: int = 400,
    max_pairs_per_side: int = 200,
    seed: SeedLike = None,
) -> GapAudit:
    """Measure the collision gap of ``family`` on a hard instance.

    ``P1`` is estimated as the minimum collision rate over (a sample of)
    above-diagonal pairs, ``P2`` as the maximum over below-diagonal pairs;
    the same sampled hash functions are reused across pairs.  Pair
    sampling always includes the extremes (diagonal pairs and the corner
    pairs), which empirically dominate the min/max.
    """
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    rng = ensure_rng(seed)
    n = sequences.n
    if n < 2:
        raise ParameterError("sequences must have length >= 2")

    pairs = [family.sample(rng) for _ in range(trials)]

    def collision_rate(i: int, j: int) -> float:
        q = sequences.Q[i]
        p = sequences.P[j]
        return sum(1 for h in pairs if h.collides(p, q)) / trials

    # Above-diagonal sample: all diagonal pairs plus random j > i.
    above = [(i, i) for i in range(n)]
    below = [(i, i - 1) for i in range(1, n)]
    extra = max(0, max_pairs_per_side - len(above))
    for _ in range(extra):
        i = int(rng.integers(0, n - 1))
        j = int(rng.integers(i + 1, n))
        above.append((i, j))
    extra = max(0, max_pairs_per_side - len(below))
    for _ in range(extra):
        i = int(rng.integers(1, n))
        j = int(rng.integers(0, i))
        below.append((i, j))
    if len(above) > max_pairs_per_side:
        chosen = rng.choice(len(above), size=max_pairs_per_side, replace=False)
        above = [above[k] for k in chosen]
    if len(below) > max_pairs_per_side:
        chosen = rng.choice(len(below), size=max_pairs_per_side, replace=False)
        below = [below[k] for k in chosen]

    p1 = min(collision_rate(i, j) for i, j in above)
    p2 = max(collision_rate(i, j) for i, j in below) if below else 0.0
    return GapAudit(
        p1=p1,
        p2=p2,
        n=n,
        gap_bound=lemma4_gap_bound(max(2, n)),
        trials=trials,
        pairs_checked=len(above) + len(below),
    )
