"""Closed-form gap bounds: Lemma 4 and the three cases of Theorem 3.

Lemma 4 turns a hard sequence of length ``n`` into the bound
``P1 - P2 <= 8 / log2(n)`` (see the constant note in
:mod:`repro.lowerbounds.mass`); each Theorem 3 case contributes a sequence
length, hence a bound in terms of the domain parameters:

1. ``n = Theta(d log_{1/c}(U/s))``  ->  ``O(1 / log(d log_{1/c}(U/s)))``
2. ``n = Theta(d sqrt(U/(s(1-c))))`` -> ``O(1 / log(d U / (s (1-c))))``
3. ``n = 2^{sqrt(U/(8s))}``          -> ``O(sqrt(s / U))``

All three tend to 0 as ``U -> inf``: no asymmetric LSH with ``P1 > P2``
exists over unbounded query domains.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError


def lemma4_gap_bound(n: int) -> float:
    """``P1 - P2 <= 8 / log2(n)`` from a hard sequence of length ``n``."""
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    return 8.0 / math.log2(n)


def _check(s: float, c: float, U: float) -> None:
    if s <= 0 or U <= 0:
        raise ParameterError(f"s and U must be positive, got s={s}, U={U}")
    if not 0.0 < c < 1.0:
        raise ParameterError(f"c must be in (0, 1), got {c}")


def sequence_length_case1(s: float, c: float, U: float, d: int = 1) -> int:
    """``Theta(d log_{1/c}(U/s))`` — the case 1 sequence length."""
    _check(s, c, U)
    if s > c * U:
        raise ParameterError(f"case 1 requires s <= cU, got s={s}, cU={c * U}")
    m = int(math.floor(math.log(U / s) / math.log(1.0 / c))) + 1
    return max(1, (d // 2 if d > 1 else 1)) * m


def gap_bound_case1(s: float, c: float, U: float, d: int = 1) -> float:
    """Theorem 3 item 1: ``O(1 / log(d log_{1/c}(U/s)))``."""
    return lemma4_gap_bound(max(2, sequence_length_case1(s, c, U, d)))


def sequence_length_case2(s: float, c: float, U: float, d: int = 2) -> int:
    """``Theta(d sqrt(U/(s(1-c))))`` — the case 2 sequence length."""
    _check(s, c, U)
    if s >= U:
        raise ParameterError(f"case 2 requires s < U, got s={s}, U={U}")
    m = int(math.floor(math.sqrt((U - s) / (s * (1.0 - c))))) + 1
    return max(1, d // 2) * m


def gap_bound_case2(s: float, c: float, U: float, d: int = 2) -> float:
    """Theorem 3 item 2: ``O(1 / log(d U / (s (1 - c))))`` (signed only)."""
    return lemma4_gap_bound(max(2, sequence_length_case2(s, c, U, d)))


def sequence_length_case3(s: float, U: float) -> int:
    """``2^{floor(sqrt(U/(8s)))} - 1`` — the case 3 sequence length."""
    if s <= 0 or U <= 0:
        raise ParameterError(f"s and U must be positive, got s={s}, U={U}")
    bits = int(math.floor(math.sqrt(U / (8.0 * s))))
    return max(1, (1 << bits) - 1)

def gap_bound_case3(s: float, U: float) -> float:
    """Theorem 3 item 3: ``O(sqrt(s/U))``.

    ``log2(n) = sqrt(U/(8s))`` gives ``8/log2(n) = 8 sqrt(8 s / U)
    = O(sqrt(s/U))``.
    """
    n = sequence_length_case3(s, U)
    if n < 2:
        raise ParameterError(
            f"case 3 needs U/(8s) >= 1 for a non-trivial sequence (s={s}, U={U})"
        )
    return lemma4_gap_bound(n)


def required_dimension_case3(s: float, c: float, U: float) -> int:
    """The paper's sufficient dimension ``Omega(log^5(n) / c^2)`` for case 3.

    With ``log n = sqrt(U/(8s))`` this is the ``d > Theta(U^{5/2} /
    (c^2 s^{5/2}))``-scale condition of Theorem 3 item 3 (the paper states
    it as ``Theta(U^5/(c^2 s^5))`` in un-normalized form).
    """
    _check(s, c, U)
    log_n = math.sqrt(U / (8.0 * s))
    return max(1, math.ceil((log_n ** 5) / (c * c)))
