"""The recursive square partition of the collision grid (paper Figure 1).

Lemma 4 considers the ``n x n`` grid of (query index ``i``, data index
``j``) pairs with ``n = 2^ell - 1``; the *lower triangle* is the region
``j >= i`` (the P1-nodes).  It is partitioned into squares ``G_{r,s}`` of
exponentially increasing side ``2^r``: for ``0 <= r < ell`` and
``0 <= s < 2^{ell-r-1}``, square ``G_{r,s}`` touches the diagonal at node
``((2s+1) 2^r - 1, (2s+1) 2^r - 1)`` and covers

    rows    i in [ 2s * 2^r          , (2s+1) 2^r - 1 ]
    columns j in [ (2s+1) 2^r - 1    , (2s+2) 2^r - 2 ]

The squares tile the triangle exactly: counting nodes,
``sum_r 2^{ell-r-1} * 4^r = 2^{ell-1} (2^ell - 1) = n (n+1) / 2``.

The *left squares* of ``G_{r,s}`` are the partition squares covering the
sub-triangle with ``s 2^{r+1} <= i, j < (2s+1) 2^r - 1`` (same rows,
smaller columns) and the *top squares* those covering
``(2s+1) 2^r - 1 < i, j <= (s+1) 2^{r+1} - 2`` (same columns, larger
rows); the mass-accounting proof charges collision probability mass
through those regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParameterError


def grid_side(ell: int) -> int:
    """The grid side ``n = 2^ell - 1``."""
    if ell < 1:
        raise ParameterError(f"ell must be >= 1, got {ell}")
    return (1 << ell) - 1


@dataclass(frozen=True)
class Square:
    """Partition square ``G_{r,s}``."""

    r: int
    s: int

    def __post_init__(self):
        if self.r < 0 or self.s < 0:
            raise ParameterError(f"r and s must be non-negative, got {self.r}, {self.s}")

    @property
    def side(self) -> int:
        return 1 << self.r

    @property
    def row_start(self) -> int:
        return 2 * self.s * self.side

    @property
    def row_end(self) -> int:
        """Inclusive last row; equals the diagonal touch point."""
        return (2 * self.s + 1) * self.side - 1

    @property
    def col_start(self) -> int:
        """Inclusive first column; equals the diagonal touch point."""
        return (2 * self.s + 1) * self.side - 1

    @property
    def col_end(self) -> int:
        return (2 * self.s + 2) * self.side - 2

    def contains(self, i: int, j: int) -> bool:
        return self.row_start <= i <= self.row_end and self.col_start <= j <= self.col_end

    def nodes(self) -> Iterator:
        """All (i, j) nodes of the square."""
        for i in range(self.row_start, self.row_end + 1):
            for j in range(self.col_start, self.col_end + 1):
                yield (i, j)

    def left_region(self) -> tuple:
        """Index range [lo, hi) of the left-squares sub-triangle."""
        return (2 * self.s * self.side, self.col_start)

    def top_region(self) -> tuple:
        """Index range (lo, hi] of the top-squares sub-triangle, as [lo+1, hi]."""
        return (self.row_end + 1, (2 * self.s + 2) * self.side - 2)


def lower_triangle_partition(ell: int) -> List[Square]:
    """All squares ``G_{r,s}`` tiling the lower triangle of the 2^ell-1 grid."""
    if ell < 1:
        raise ParameterError(f"ell must be >= 1, got {ell}")
    squares = []
    for r in range(ell):
        for s in range(1 << (ell - r - 1)):
            squares.append(Square(r=r, s=s))
    return squares


def square_containing(ell: int, i: int, j: int) -> Square:
    """The unique partition square containing P1-node ``(i, j)``.

    Derivation: ``G_{r,s}`` contains ``(i, j)`` iff
    ``2s 2^r <= i < (2s+1) 2^r <= j + 1 < (2s+2) 2^r``; the level ``r`` is
    determined by the highest power of two separating ``i`` and ``j + 1``.
    """
    n = grid_side(ell)
    if not 0 <= i <= j < n:
        raise ParameterError(f"(i={i}, j={j}) is not a P1-node of the n={n} grid")
    for r in range(ell):
        side = 1 << r
        s, rem = divmod(i, 2 * side)
        if rem < side and (2 * s + 1) * side - 1 <= j <= (2 * s + 2) * side - 2:
            return Square(r=r, s=s)
    raise AssertionError(f"partition failed to cover node ({i}, {j}) at ell={ell}")


def left_squares(ell: int, square: Square) -> List[Square]:
    """Partition squares of the left sub-triangle of ``square``."""
    lo, hi = square.left_region()
    return [
        other
        for other in lower_triangle_partition(ell)
        if lo <= other.row_start and other.col_end < hi
    ]


def top_squares(ell: int, square: Square) -> List[Square]:
    """Partition squares of the top sub-triangle of ``square``."""
    lo, hi = square.top_region()
    return [
        other
        for other in lower_triangle_partition(ell)
        if lo <= other.row_start and other.col_end <= hi
    ]
