"""Mass accounting of Lemma 4 on explicit finite hash families.

Lemma 4's proof classifies, for every P1-node ``(i, j)`` and every hash
function ``h`` under which it collides, the function as *(i,j)-shared*,
*(i,j)-partially shared*, or *(i,j)-proper*, and charges the three kinds
of probability mass differently:

* shared mass of a square is at most ``4^r P2`` (each shared function
  forces a P2-node collision in a reflected square);
* partially-shared mass is at most ``2^{r+1}`` times the proper mass;
* total proper mass over the whole grid is at most ``2n`` (a function is
  row-proper for at most one node per row, column-proper for at most one
  node per column).

Together with ``M_{r,s} >= 4^r P1`` these yield
``P1 - P2 <= 8 / log2(n + 1)``.

This module makes that argument *computational*: a
:class:`FiniteHashFamily` is an explicitly enumerated distribution over
hash-function pairs evaluated on concrete data/query sequences, and
:class:`MassAccounting` computes every quantity in the proof and checks
every inequality, which is how the Figure 1 bench certifies the argument
on real hash families.

Note on the constant: the paper's Lemma 4 statement says
``P1 - P2 <= 1/(8 log n)``, but its own final display
``2n >= (P1 - P2) n log(n) / 4`` yields ``P1 - P2 <= 8 / log n``; we
implement the bound the proof supports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.lowerbounds.grid import Square, grid_side, lower_triangle_partition, square_containing


@dataclass(frozen=True)
class FiniteHashFamily:
    """An explicitly enumerated (A)LSH family evaluated on sequences.

    Attributes:
        probabilities: shape (m,) sampling probability of each function.
        query_values: shape (m, n); ``query_values[f, i]`` is the hash of
            query ``q_i`` under function ``f`` (the paper's ``h(i)``).
        data_values: shape (m, n); ``data_values[f, j]`` is the hash of
            data vector ``p_j`` under function ``f`` (the paper's ``h(j)``).
    """

    probabilities: np.ndarray
    query_values: np.ndarray
    data_values: np.ndarray

    def __post_init__(self):
        probs = np.asarray(self.probabilities, dtype=np.float64)
        qv = np.asarray(self.query_values)
        dv = np.asarray(self.data_values)
        if probs.ndim != 1 or qv.ndim != 2 or dv.ndim != 2:
            raise ParameterError("probabilities must be 1-d; value tables 2-d")
        if not (probs.shape[0] == qv.shape[0] == dv.shape[0]):
            raise ParameterError("function counts disagree across tables")
        if qv.shape[1] != dv.shape[1]:
            raise ParameterError("query and data sequences must have equal length")
        if probs.min(initial=0.0) < 0 or abs(probs.sum() - 1.0) > 1e-9:
            raise ParameterError("probabilities must be non-negative and sum to 1")
        object.__setattr__(self, "probabilities", probs)
        object.__setattr__(self, "query_values", qv)
        object.__setattr__(self, "data_values", dv)

    @property
    def n(self) -> int:
        return self.query_values.shape[1]

    @property
    def n_functions(self) -> int:
        return self.probabilities.shape[0]

    def collision_matrix(self) -> np.ndarray:
        """``C[i, j] = Pr[h(q_i) == h(p_j)]`` over the family."""
        n = self.n
        out = np.zeros((n, n), dtype=np.float64)
        for f in range(self.n_functions):
            collide = self.query_values[f][:, None] == self.data_values[f][None, :]
            out += self.probabilities[f] * collide
        return out

    def p1_p2(self) -> Tuple[float, float]:
        """``P1 = min`` collision over the lower triangle, ``P2 = max`` below it."""
        C = self.collision_matrix()
        n = self.n
        rows, cols = np.indices((n, n))
        lower = cols >= rows
        p1 = float(C[lower].min())
        p2 = float(C[~lower].max()) if (~lower).any() else 0.0
        return p1, p2

    @staticmethod
    def from_hash_pairs(pairs, queries: np.ndarray, data: np.ndarray) -> "FiniteHashFamily":
        """Evaluate sampled :class:`HashFunctionPair` objects on sequences.

        Hash values are re-encoded as small integers per function so the
        value tables stay dense.
        """
        queries = np.asarray(queries, dtype=np.float64)
        data = np.asarray(data, dtype=np.float64)
        if queries.shape[0] != data.shape[0]:
            raise ParameterError("sequences must have equal length")
        m = len(pairs)
        n = queries.shape[0]
        qv = np.zeros((m, n), dtype=np.int64)
        dv = np.zeros((m, n), dtype=np.int64)
        for f, pair in enumerate(pairs):
            codes: Dict = {}

            def encode(value):
                return codes.setdefault(value, len(codes))

            qv[f] = [encode(pair.hash_query(q)) for q in queries]
            dv[f] = [encode(pair.hash_data(p)) for p in data]
        probs = np.full(m, 1.0 / m)
        return FiniteHashFamily(probabilities=probs, query_values=qv, data_values=dv)


@dataclass
class SquareMasses:
    """Per-square mass decomposition."""

    square: Square
    total: float = 0.0
    shared: float = 0.0
    partially_shared: float = 0.0
    proper: float = 0.0


class MassAccounting:
    """Executes Lemma 4's charging argument on a finite family.

    Args:
        family: the enumerated family; its sequence length must be
            ``2^ell - 1``.
    """

    def __init__(self, family: FiniteHashFamily):
        self.family = family
        n = family.n
        ell = (n + 1).bit_length() - 1
        if (1 << ell) - 1 != n:
            raise ParameterError(f"sequence length must be 2^ell - 1, got {n}")
        self.ell = ell
        self.n = n
        self.squares = lower_triangle_partition(ell)
        self._square_of = {}
        for sq in self.squares:
            for node in sq.nodes():
                self._square_of[node] = sq

    def _classify_node_function(self, f: int, i: int, j: int) -> str:
        """Classify function ``f`` for colliding P1-node ``(i, j)``.

        Returns one of ``"shared"``, ``"partial"``, ``"row_proper"``,
        ``"col_proper"``.  Implements the K_{h,i,j} definition verbatim:
        same-row nodes ``(i, j')`` with ``i <= j' < j`` and same-column
        nodes ``(i', j)`` with ``i < i' <= j``, restricted to equal hash
        values.
        """
        qv = self.family.query_values[f]
        dv = self.family.data_values[f]
        value = qv[i]  # == dv[j] for a colliding node
        square = self._square_of[(i, j)]

        row_mates = [jp for jp in range(i, j) if dv[jp] == value]
        col_mates = [ip for ip in range(i + 1, j + 1) if qv[ip] == value]

        if not row_mates:
            return "row_proper"
        if not col_mates:
            return "col_proper"
        in_left = any(jp < square.col_start for jp in row_mates)
        in_top = any(ip > square.row_end for ip in col_mates)
        if in_left and in_top:
            return "shared"
        return "partial"

    def masses(self) -> List[SquareMasses]:
        """Decomposed masses for every square of the partition."""
        out = {sq: SquareMasses(square=sq) for sq in self.squares}
        fam = self.family
        for f in range(fam.n_functions):
            prob = float(fam.probabilities[f])
            qv, dv = fam.query_values[f], fam.data_values[f]
            for (i, j), sq in self._square_of.items():
                if qv[i] != dv[j]:
                    continue
                record = out[sq]
                record.total += prob
                kind = self._classify_node_function(f, i, j)
                if kind == "shared":
                    record.shared += prob
                elif kind == "partial":
                    record.partially_shared += prob
                else:
                    record.proper += prob
        return list(out.values())

    def verify(self, atol: float = 1e-9) -> dict:
        """Check every inequality of the proof; returns the audit report.

        The report lists any violated inequality in ``violations``; an
        empty list certifies the whole charging argument on this family.
        The decomposition identity and the total-proper bound are exact
        counting facts and are asserted outright; the per-square charging
        inequalities are reported, since they are where the proof's
        constants live.
        """
        p1, p2 = self.family.p1_p2()
        masses = self.masses()
        total_proper = 0.0
        violations = []
        for record in masses:
            side = record.square.side
            # Decomposition is exhaustive — an exact counting identity.
            recomposed = record.shared + record.partially_shared + record.proper
            assert abs(recomposed - record.total) <= 1e-6, (
                f"mass decomposition leak on {record.square}: "
                f"{recomposed} != {record.total}"
            )
            # M_{r,s} >= 4^r P1 (every node of the square is a P1-node).
            if record.total < side * side * p1 - atol:
                violations.append(
                    f"square mass below 4^r P1 on {record.square}"
                )
            # Shared mass <= 4^r P2 (each shared function forces a P2-node
            # collision in the reflected region).
            if record.shared > side * side * p2 + atol:
                violations.append(
                    f"shared mass {record.shared:.6g} exceeds 4^r P2 = "
                    f"{side * side * p2:.6g} on {record.square}"
                )
            # Partially shared mass <= 2^{r+1} * proper mass.
            if record.partially_shared > 2 * side * record.proper + atol:
                violations.append(
                    f"partially-shared mass exceeds 2^(r+1) proper on {record.square}"
                )
            total_proper += record.proper
        # A function is row-proper for <= 1 node per row and column-proper
        # for <= 1 node per column — an exact counting fact.
        assert total_proper <= 2 * self.n + atol, (
            f"total proper mass {total_proper} exceeds 2n = {2 * self.n}"
        )
        gap_bound = 8.0 / self.ell if self.ell > 0 else float("inf")
        return {
            "p1": p1,
            "p2": p2,
            "gap": p1 - p2,
            "gap_bound": gap_bound,
            "gap_within_bound": (p1 - p2) <= gap_bound + atol,
            "total_proper_mass": total_proper,
            "violations": violations,
            "n": self.n,
            "ell": self.ell,
            "squares": len(self.squares),
        }
