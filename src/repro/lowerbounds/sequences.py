"""The three hard data/query sequence constructions of Theorem 3.

Each construction produces sequences ``P = {p_0..p_{n-1}}``,
``Q = {q_0..q_{n-1}}`` with

    q_i . p_j >= s   when j >= i        (the P1, "must collide" pairs)
    q_i . p_j <= cs  when j <  i        (the P2, "must separate" pairs)

data vectors inside the unit ball and queries inside the ball of radius
``U``; feeding them to Lemma 4 bounds the gap of *any* (asymmetric) LSH by
``O(1 / log n)``.  The three cases trade generality for length:

* :func:`geometric_sequences` (case 1) — length ``Theta(d log_{1/c}(U/s))``,
  valid for signed and unsigned IPS, any ``d >= 1``.
* :func:`shifted_affine_sequences` (case 2) — length
  ``Theta(d sqrt(U / (s (1-c))))``, signed IPS only (it produces large
  negative inner products), ``d >= 2``.
* :func:`prefix_tree_sequences` (case 3) — length ``2^{sqrt(U/(8s))}``,
  signed and unsigned, requires large ``d``; built on a quasi-orthogonal
  family.  The paper proves the ordering with strict ``i < j``; Lemma 4
  wants ``j >= i``, so we shift the data sequence by one index (the
  construction note in DESIGN.md), which shortens the sequence by one.

Every constructor *verifies* the Lemma 4 hypothesis and the ball
constraints before returning; the paper's inequalities thus hold exactly,
not just asymptotically, on the returned instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConstructionError, ParameterError
from repro.incoherent.reed_solomon import ReedSolomonIncoherent
from repro.utils.bits import int_to_bits


@dataclass(frozen=True)
class HardSequences:
    """A constructed hard instance for Lemma 4.

    Attributes:
        P: data sequence, rows in the unit ball.
        Q: query sequence, rows in the ball of radius ``U``.
        s: threshold; ``q_i . p_j >= s`` for ``j >= i``.
        cs: separation; ``q_i . p_j <= cs`` (|.| <= cs when unsigned-safe)
            for ``j < i``.
        U: query domain radius.
        unsigned_safe: True when below-diagonal pairs also satisfy
            ``|q_i . p_j| <= cs`` so the instance constrains unsigned LSH.
        case: which Theorem 3 case produced the instance (1, 2 or 3).
    """

    P: np.ndarray
    Q: np.ndarray
    s: float
    cs: float
    U: float
    unsigned_safe: bool
    case: int

    @property
    def n(self) -> int:
        return self.P.shape[0]

    @property
    def d(self) -> int:
        return self.P.shape[1]

    def inner_products(self) -> np.ndarray:
        """The full collision-relevant matrix ``Q P^T`` (rows: queries)."""
        return self.Q @ self.P.T

    def truncate_to_grid(self) -> "HardSequences":
        """Largest prefix of length ``2^ell - 1`` (what Lemma 4 consumes)."""
        ell = int(math.floor(math.log2(self.n + 1)))
        keep = (1 << ell) - 1
        return HardSequences(
            P=self.P[:keep], Q=self.Q[:keep], s=self.s, cs=self.cs,
            U=self.U, unsigned_safe=self.unsigned_safe, case=self.case,
        )


def verify_lemma4_hypothesis(
    P: np.ndarray,
    Q: np.ndarray,
    s: float,
    cs: float,
    U: float,
    unsigned: bool = False,
    atol: float = 1e-9,
) -> None:
    """Assert the ordering property and the ball constraints.

    Raises :class:`repro.errors.ConstructionError` naming the first
    violated constraint.
    """
    P = np.asarray(P, dtype=np.float64)
    Q = np.asarray(Q, dtype=np.float64)
    if P.shape != Q.shape and P.shape[0] != Q.shape[0]:
        raise ConstructionError("P and Q must have equal length")
    n = P.shape[0]
    data_norms = np.linalg.norm(P, axis=1)
    if data_norms.max(initial=0.0) > 1.0 + atol:
        raise ConstructionError(
            f"data vector escapes the unit ball: norm {data_norms.max():.6g}"
        )
    query_norms = np.linalg.norm(Q, axis=1)
    if query_norms.max(initial=0.0) > U + atol:
        raise ConstructionError(
            f"query vector escapes the radius-{U} ball: norm {query_norms.max():.6g}"
        )
    ips = Q @ P.T
    rows, cols = np.indices((n, n))
    above = cols >= rows
    if ips[above].min(initial=np.inf) < s - atol:
        raise ConstructionError(
            f"an above-diagonal pair has inner product "
            f"{ips[above].min():.6g} < s = {s}"
        )
    below = ips[~above]
    if below.size:
        worst = np.abs(below).max() if unsigned else below.max()
        if worst > cs + atol:
            raise ConstructionError(
                f"a below-diagonal pair has inner product {worst:.6g} > cs = {cs}"
            )


def geometric_sequences(
    s: float,
    c: float,
    U: float,
    d: int = 1,
) -> HardSequences:
    """Theorem 3 case 1: geometric sequences of length ``Theta(d m)``.

    One-dimensional core (equation (1)): ``q_i = U c^i``,
    ``p_j = s / (U c^j)``, so ``q_i p_j = s c^{i-j}``.  For even ``d`` the
    core is replicated on ``d/2`` two-coordinate planes with translation
    coordinates enforcing the cross-plane ordering.  All inner products
    are non-negative, so the instance constrains signed *and* unsigned
    LSH.  Requires ``s <= c U`` (so the sequence is non-empty) and, for
    ``d >= 2``, ``s <= U / (2 sqrt(2 d'))`` for the ball constraints.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError(f"c must be in (0, 1), got {c}")
    if s <= 0 or U <= 0:
        raise ParameterError(f"s and U must be positive, got s={s}, U={U}")
    if s > c * U:
        raise ParameterError(f"case 1 requires s <= c U (s={s}, cU={c * U})")
    if d < 1:
        raise ParameterError(f"d must be >= 1, got {d}")

    # Index range for the 1-d core: p_j = s/(U c^j) needs norm <= 1, i.e.
    # c^j >= s/U  <=>  j <= log_{1/c}(U/s); q_i = U c^i <= U always.
    m = int(math.floor(math.log(U / s) / math.log(1.0 / c))) + 1

    if d == 1:
        idx = np.arange(m)
        Q = (U * c ** idx).reshape(-1, 1)
        P = (s / (U * c ** idx)).reshape(-1, 1)
        seqs = HardSequences(P=P, Q=Q, s=float(s), cs=float(c * s), U=float(U),
                             unsigned_safe=True, case=1)
        verify_lemma4_hypothesis(seqs.P, seqs.Q, s, c * s, U, unsigned=True)
        return seqs

    if d % 2 != 0:
        raise ParameterError("multi-dimensional case 1 requires even d")
    d_half = d // 2

    # Ball constraints: query block k has norm^2 = (U c^i)^2 + 4 s^2 (d'-k);
    # dropping the first i0 indices makes (U c^i)^2 <= U^2/2, and we need
    # 4 s^2 d' <= U^2 / 2 as well.
    if 8.0 * s * s * d_half > U * U:
        raise ParameterError(
            f"case 1 with d={d} requires s <= U / sqrt(8 d/2); got s={s}, U={U}"
        )
    i0 = int(math.ceil(math.log(math.sqrt(2.0)) / math.log(1.0 / c)))
    if i0 >= m:
        raise ParameterError(
            f"no indices survive the norm trim (m={m}, i0={i0}); decrease s/U"
        )
    # Data block k has norm^2 = (s/(U c^j))^2 + 1/4; keep it <= 1.
    m_data = int(math.floor(math.log(math.sqrt(0.75) * U / s) / math.log(1.0 / c))) + 1
    lo, hi = i0, min(m, m_data)
    if hi <= lo:
        raise ParameterError("empty index range after norm trims; decrease s/U")

    q_blocks, p_blocks = [], []
    for k in range(d_half):
        for i in range(lo, hi):
            q = np.zeros(d)
            q[2 * k] = U * c ** i
            for t in range(k, d_half):
                q[2 * t + 1] = 2.0 * s
            q_blocks.append(q)
            p = np.zeros(d)
            p[2 * k] = s / (U * c ** i)
            if k > 0:
                p[2 * k - 1] = 0.5
            p_blocks.append(p)
    seqs = HardSequences(
        P=np.stack(p_blocks), Q=np.stack(q_blocks), s=float(s), cs=float(c * s),
        U=float(U), unsigned_safe=True, case=1,
    )
    verify_lemma4_hypothesis(seqs.P, seqs.Q, s, c * s, U, unsigned=True)
    return seqs


def shifted_affine_sequences(
    s: float,
    c: float,
    U: float,
    d: int = 2,
) -> HardSequences:
    """Theorem 3 case 2: affine sequences of length ``Theta(d m)``, signed only.

    Two-dimensional core (equation (2)):

        q_i = (sqrt(sU) (1 - (1-c) i),  sqrt(sU (1-c)))
        p_j = (sqrt(s/U),               j sqrt(s (1-c) / U))

    so ``q_i . p_j = s (1-c)(j - i) + s``: at least ``s`` when ``j >= i``
    and at most ``cs`` when ``j < i``.  Inner products below the diagonal
    become arbitrarily negative, hence ``unsigned_safe = False``.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError(f"c must be in (0, 1), got {c}")
    if s <= 0 or U <= 0:
        raise ParameterError(f"s and U must be positive, got s={s}, U={U}")
    if d < 2 or d % 2 != 0:
        raise ParameterError(f"case 2 requires even d >= 2, got {d}")
    d_half = d // 2

    # Data norm^2 = s/U + j^2 s(1-c)/U <= 1  =>  j <= sqrt((U-s)/(s(1-c))).
    if s >= U:
        raise ParameterError(f"case 2 requires s < U, got s={s}, U={U}")
    m = int(math.floor(math.sqrt((U - s) / (s * (1.0 - c))))) + 1
    # Query norm^2 <= sU ((1 + (1-c) m)^2 + (1-c) + (d'-1)) must be <= U^2;
    # we verify post-hoc (the paper's sufficient condition is s <= U/(2d)).
    q_blocks, p_blocks = [], []
    for k in range(d_half):
        for i in range(m):
            q = np.zeros(d)
            q[2 * k] = math.sqrt(s * U) * (1.0 - (1.0 - c) * i)
            q[2 * k + 1] = math.sqrt(s * U * (1.0 - c))
            for t in range(k + 1, d_half):
                q[2 * t] = math.sqrt(U * s)
            q_blocks.append(q)
            p = np.zeros(d)
            p[2 * k] = math.sqrt(s / U)
            p[2 * k + 1] = i * math.sqrt(s * (1.0 - c) / U)
            p_blocks.append(p)
    seqs = HardSequences(
        P=np.stack(p_blocks), Q=np.stack(q_blocks), s=float(s), cs=float(c * s),
        U=float(U), unsigned_safe=False, case=2,
    )
    verify_lemma4_hypothesis(seqs.P, seqs.Q, s, c * s, U, unsigned=False)
    return seqs


def prefix_tree_sequences(
    s: float,
    c: float,
    U: float,
    n_bits: Optional[int] = None,
    family_source: str = "reed-solomon",
    seed=None,
) -> HardSequences:
    """Theorem 3 case 3: exponentially long sequences via a prefix tree.

    Indices are ``n_bits``-bit integers; with a quasi-orthogonal family
    ``{z_w}`` indexed by binary prefixes ``w``:

        q_a = sqrt(2 s U) * sum_l  (1 - a_l) z_{a_0..a_{l-1}, 1-a_l}
        p_b = sqrt(2 s / U) * sum_l  b_l     z_{b_0..b_l}

    For ``b > a`` the first differing bit contributes a matching ``z``
    (inner product ``~2s``); for ``b <= a`` every term pairs distinct
    ``z``'s (``<= eps`` each).  We therefore shift the data sequence by
    one (``p`` built from index ``j + 1``) so the guarantee becomes
    ``j >= i``.  The default ``n_bits = floor(sqrt(U / (8 s)))`` is the
    paper's choice making the ball constraints hold.

    ``family_source`` selects the quasi-orthogonal family at coherence
    ``eps = c / (2 n_bits^2)``: ``"reed-solomon"`` (deterministic, exact
    unit norms) or ``"random"`` (the paper's Johnson-Lindenstrauss
    existence argument, drawn and *certified* — see
    :func:`repro.incoherent.random_family.random_quasi_orthogonal`);
    ``seed`` applies to the random source.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError(f"c must be in (0, 1), got {c}")
    if s <= 0 or U <= 0:
        raise ParameterError(f"s and U must be positive, got s={s}, U={U}")
    if n_bits is None:
        n_bits = int(math.floor(math.sqrt(U / (8.0 * s))))
    if n_bits < 1:
        raise ParameterError(
            f"n_bits must be >= 1 (U/s too small: U={U}, s={s})"
        )
    eps = c / (2.0 * n_bits * n_bits)
    n_indices = 1 << n_bits

    # One incoherent vector per non-empty binary prefix of length <= n_bits.
    n_prefixes = (1 << (n_bits + 1)) - 2
    prefix_id = {}
    counter = 0
    for length in range(1, n_bits + 1):
        for value in range(1 << length):
            prefix_id[(length, value)] = counter
            counter += 1

    if family_source == "reed-solomon":
        family = ReedSolomonIncoherent(n_prefixes, eps)

        def z(length: int, value: int) -> np.ndarray:
            return family.vector(prefix_id[(length, value)])

        family_dim = family.dimension
    elif family_source == "random":
        from repro.incoherent.random_family import random_quasi_orthogonal

        Z = random_quasi_orthogonal(n_prefixes, eps, seed=seed)

        def z(length: int, value: int) -> np.ndarray:
            return Z[prefix_id[(length, value)]]

        family_dim = Z.shape[1]
    else:
        raise ParameterError(
            f"family_source must be 'reed-solomon' or 'random', got {family_source!r}"
        )

    def query_vector(a: int) -> np.ndarray:
        bits = int_to_bits(a, n_bits)
        out = np.zeros(family_dim)
        prefix = 0
        for l in range(n_bits):
            flipped = (prefix << 1) | (1 - int(bits[l]))
            if bits[l] == 0:
                out += z(l + 1, flipped)
            prefix = (prefix << 1) | int(bits[l])
        return math.sqrt(2.0 * s * U) * out

    def data_vector(b: int) -> np.ndarray:
        bits = int_to_bits(b, n_bits)
        out = np.zeros(family_dim)
        prefix = 0
        for l in range(n_bits):
            prefix = (prefix << 1) | int(bits[l])
            if bits[l] == 1:
                out += z(l + 1, prefix)
        return math.sqrt(2.0 * s / U) * out

    # Shift: p_j is built from index j + 1, q_i from index i; then
    # (index of p) > (index of q)  <=>  j + 1 > i  <=>  j >= i.
    n = n_indices - 1
    Q = np.stack([query_vector(i) for i in range(n)])
    P = np.stack([data_vector(j + 1) for j in range(n)])
    seqs = HardSequences(
        P=P, Q=Q, s=float(s), cs=float(c * s), U=float(U),
        unsigned_safe=True, case=3,
    )
    verify_lemma4_hypothesis(seqs.P, seqs.Q, s, c * s, U, unsigned=True)
    return seqs
