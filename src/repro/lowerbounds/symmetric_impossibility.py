"""The symmetric-LSH impossibility of Neyshabur and Srebro, executable.

The paper's Section 4.2 starts from [39]'s observation: *symmetric* LSH
for signed IPS cannot exist when data and query domains are the same
ball.  The mechanism is a chain argument.  For any symmetric family,

    d(x, y) = Pr[h(x) != h(y)]

is a pseudometric (it embeds into L1 via indicator features, hence obeys
the triangle inequality).  Take a chain ``z_0 .. z_k`` of unit vectors
whose *consecutive* inner products are all ``>= s`` but whose *endpoints*
have inner product ``<= cs``.  An ``(s, cs, P1, P2)`` symmetric LSH must
satisfy ``d(z_i, z_{i+1}) <= 1 - P1`` and ``d(z_0, z_k) >= 1 - P2``, so

    1 - P2  <=  k (1 - P1)    =>    P1 - P2 <= (k - 1)(1 - P1) <= (k-1)(1-P2)

On the unit sphere such chains exist with ``k = ceil(arccos(cs) /
arccos(s))`` (walk the great circle in steps of angle ``arccos(s)``), so
for ``s`` close to 1 the gap collapses — no useful symmetric LSH.  The
identical-pair relaxation of Section 4.2 evades exactly this argument:
the chain needs ``d(z_i, z_{i+1})`` to be small for *distinct* but very
similar vectors, which the relaxed definition still constrains, but the
quantization of the incoherent completion makes near-identical vectors
*equal* after rounding, cutting the chain's first/last links.

This module constructs the chains, derives the bound, and audits concrete
symmetric families against it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.lsh.base import LSHFamily
from repro.utils.rng import SeedLike, ensure_rng


def chain_length(s: float, c: float) -> int:
    """Steps needed to walk from similarity ``>= s`` links to ``<= cs`` ends."""
    if not 0.0 < c < 1.0 or not 0.0 < s < 1.0:
        raise ParameterError(f"need s, c in (0, 1); got s={s}, c={c}")
    step = math.acos(s)
    total = math.acos(c * s)
    if step <= 0:
        raise ParameterError("s = 1 gives zero-length steps")
    return max(1, math.ceil(total / step))


def great_circle_chain(s: float, c: float, d: int = 2) -> np.ndarray:
    """Unit vectors ``z_0..z_k`` on a great circle realizing the chain.

    Consecutive inner products equal ``cos(theta)`` for ``theta =
    arccos(cs)/k <= arccos(s)`` (so they are ``>= s``), and the endpoint
    inner product is exactly ``cs``.
    """
    if d < 2:
        raise ParameterError(f"need d >= 2, got {d}")
    k = chain_length(s, c)
    total = math.acos(c * s)
    theta = total / k
    chain = np.zeros((k + 1, d))
    for i in range(k + 1):
        chain[i, 0] = math.cos(i * theta)
        chain[i, 1] = math.sin(i * theta)
    return chain


def verify_chain(chain: np.ndarray, s: float, c: float, atol: float = 1e-9) -> None:
    """Assert the chain's link/endpoint similarity structure."""
    ips = chain @ chain.T
    k = chain.shape[0] - 1
    for i in range(k):
        if ips[i, i + 1] < s - atol:
            raise ParameterError(
                f"link {i} has inner product {ips[i, i + 1]:.6g} < s = {s}"
            )
    if ips[0, k] > c * s + atol:
        raise ParameterError(
            f"endpoints have inner product {ips[0, k]:.6g} > cs = {c * s}"
        )


def symmetric_gap_bound(s: float, c: float) -> float:
    """The chain bound: any symmetric LSH has ``1 - P2 <= k (1 - P1)``.

    Returned as the implied ceiling on ``P1 - P2`` at the extremal point
    ``P1 = 1 - (1 - P2)/k``: ``P1 - P2 <= (1 - P2)(k - 1)/k <= (k-1)/k``
    ... which is vacuous unless ``P1`` is large; the operative form used
    by audits is the *link inequality* ``1 - P2 <= k (1 - P1)``, i.e.

        P1 <= 1 - (1 - P2) / k.

    This function returns the gap ceiling assuming ``P2`` free:
    maximizing ``P1 - P2`` subject to the link inequality gives
    ``(k - 1) / k`` at ``P2 = 0`` — meaningful because for ``s -> 1``,
    ``k`` explodes and any family with near-perfect ``P1`` is forced to
    have near-perfect ``P2`` as well.
    """
    k = chain_length(s, c)
    return (k - 1) / k if k > 0 else 0.0


@dataclass(frozen=True)
class ChainAudit:
    """Result of auditing a symmetric family against a chain."""

    link_distances: np.ndarray  # measured Pr[h(z_i) != h(z_{i+1})]
    endpoint_distance: float    # measured Pr[h(z_0) != h(z_k)]
    k: int

    @property
    def triangle_slack(self) -> float:
        """``sum(link distances) - endpoint distance``; >= 0 by the metric."""
        return float(self.link_distances.sum() - self.endpoint_distance)

    @property
    def satisfies_triangle(self) -> bool:
        return self.triangle_slack >= -1e-9

    @property
    def implied_p1_ceiling(self) -> float:
        """``1 - (1 - P2)/k`` with ``P2 = 1 - endpoint_distance``."""
        return 1.0 - self.endpoint_distance / self.k


def audit_symmetric_chain(
    family: LSHFamily,
    chain: np.ndarray,
    trials: int = 500,
    seed: SeedLike = None,
) -> ChainAudit:
    """Measure the chain distances of a concrete symmetric family.

    The triangle inequality must hold for every symmetric family (it is a
    theorem, not a hypothesis); the audit returns the measured link and
    endpoint distances so callers can see how the chain forces
    ``P1`` down once ``P2`` is small.
    """
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if not family.is_symmetric:
        raise ParameterError("the chain argument applies to symmetric families")
    rng = ensure_rng(seed)
    k = chain.shape[0] - 1
    hashes = np.empty((trials, chain.shape[0]), dtype=object)
    for t in range(trials):
        h = family.sample_function(rng)
        for i, z in enumerate(chain):
            hashes[t, i] = h(z)
    link_distances = np.array([
        np.mean([hashes[t, i] != hashes[t, i + 1] for t in range(trials)])
        for i in range(k)
    ])
    endpoint = float(np.mean([hashes[t, 0] != hashes[t, k] for t in range(trials)]))
    return ChainAudit(link_distances=link_distances, endpoint_distance=endpoint, k=k)
