"""Locality-sensitive hashing substrate.

Contains the (A)LSH framework (Definition 2 of the paper), the concrete
hash families the paper discusses or compares against, amplification, a
multi-table index usable for joins, and the closed-form ρ exponents that
generate Figure 2.
"""

from repro.lsh.amplification import AndConstruction, amplify_gap
from repro.lsh.batch import BatchSignIndex
from repro.lsh.batch_hash import (
    AsymmetricMinHashTables,
    CrossPolytopeTables,
    E2LSHTables,
    GenericHashTables,
    MinHashTables,
    SignProjectionTables,
)
from repro.lsh.csr import CSRBucketTable
from repro.lsh.e2lsh import E2LSH
from repro.lsh.empirical_rho import RhoEstimate, empirical_rho_curve, estimate_rho
from repro.lsh.sign_alsh import SignALSH, rho_sign_alsh
from repro.lsh.base import (
    MISS_KEY,
    AsymmetricLSHFamily,
    BatchHashTables,
    HashFunctionPair,
    LSHFamily,
    estimate_collision_probability,
)
from repro.lsh.crosspolytope import CrossPolytopeLSH
from repro.lsh.datadep import DataDepALSH
from repro.lsh.hyperplane import HyperplaneLSH
from repro.lsh.index import LSHIndex, QueryStats
from repro.lsh.l2alsh import L2ALSH
from repro.lsh.minhash import AsymmetricMinHash, MinHash
from repro.lsh.planner import IndexPlan, plan, plan_datadep
from repro.lsh.rho import (
    collision_prob_hyperplane,
    rho_datadep,
    rho_l2alsh,
    rho_mh_alsh,
    rho_simple_lsh,
)
from repro.lsh.simple_alsh import SimpleALSH
from repro.lsh.symmetric import SymmetricIPSHash

__all__ = [
    "LSHFamily",
    "AsymmetricLSHFamily",
    "HashFunctionPair",
    "BatchHashTables",
    "MISS_KEY",
    "estimate_collision_probability",
    "SignProjectionTables",
    "CrossPolytopeTables",
    "E2LSHTables",
    "MinHashTables",
    "AsymmetricMinHashTables",
    "GenericHashTables",
    "AndConstruction",
    "amplify_gap",
    "HyperplaneLSH",
    "CrossPolytopeLSH",
    "MinHash",
    "AsymmetricMinHash",
    "L2ALSH",
    "SimpleALSH",
    "DataDepALSH",
    "SymmetricIPSHash",
    "LSHIndex",
    "QueryStats",
    "BatchSignIndex",
    "CSRBucketTable",
    "E2LSH",
    "RhoEstimate",
    "estimate_rho",
    "empirical_rho_curve",
    "SignALSH",
    "rho_sign_alsh",
    "IndexPlan",
    "plan",
    "plan_datadep",
    "rho_datadep",
    "rho_simple_lsh",
    "rho_mh_alsh",
    "rho_l2alsh",
    "collision_prob_hyperplane",
]
