"""Hash amplification: the AND construction (and gap algebra).

Concatenating ``k`` independent hash functions turns collision
probabilities ``P`` into ``P^k``, sharpening the gap between ``P1`` and
``P2`` while preserving the exponent ``rho = log P1 / log P2``.  The OR
construction (collide in *any* of ``L`` tables) is realized structurally
by :class:`repro.lsh.index.LSHIndex` rather than as a family.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily, HashFunctionPair


class AndConstruction(AsymmetricLSHFamily):
    """Concatenation of ``k`` independent draws from a base family.

    The sampled pair hashes a vector to the tuple of the ``k`` component
    hash values; a collision requires all components to agree, so
    collision probabilities are raised to the ``k``-th power.
    """

    def __init__(self, base: AsymmetricLSHFamily, k: int):
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self.base = base
        self.k = int(k)

    def sample(self, rng: np.random.Generator) -> HashFunctionPair:
        components = [self.base.sample(rng) for _ in range(self.k)]

        def hash_data(x, _parts=components):
            return tuple(part.hash_data(x) for part in _parts)

        def hash_query(x, _parts=components):
            return tuple(part.hash_query(x) for part in _parts)

        return HashFunctionPair(hash_data=hash_data, hash_query=hash_query)

    def sample_batch(self, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        # Widening each table by a factor of self.k draws the base family
        # in exactly the nested per-vector order and fuses k * self.k
        # components per key — the same bucket partition as tuples of
        # tuples.
        return self.base.sample_batch(rng, hashes_per_table * self.k, n_tables)

    @property
    def is_symmetric(self) -> bool:
        return self.base.is_symmetric


def amplify_gap(p1: float, p2: float, k: int) -> tuple:
    """Collision probabilities after a k-fold AND: ``(p1^k, p2^k)``."""
    if not (0.0 <= p2 <= p1 <= 1.0):
        raise ParameterError(f"need 0 <= p2 <= p1 <= 1, got p1={p1}, p2={p2}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    return p1 ** k, p2 ** k


def rho(p1: float, p2: float) -> float:
    """The LSH exponent ``log(1/p1) / log(1/p2)`` (invariant under AND)."""
    if not (0.0 < p2 < 1.0 and 0.0 < p1 < 1.0):
        raise ParameterError(f"need p1, p2 in (0, 1), got p1={p1}, p2={p2}")
    return math.log(p1) / math.log(p2)


def standard_table_count(p1: float, n: int) -> int:
    """The customary number of OR tables ``L = ceil(ln(n) / p1^... )``.

    For an AND width ``k`` chosen so that ``p2^k ~ 1/n``, one uses
    ``L = ceil(n^rho)`` tables; this helper computes the equivalent
    ``L = ceil(p1^{-k})``-style bound from the amplified ``p1`` so callers
    don't repeat the formula.  Success probability per table is ``p1``;
    ``L`` tables give failure probability ``(1 - p1)^L <= e^{-L p1}``.
    """
    if not 0.0 < p1 <= 1.0:
        raise ParameterError(f"p1 must be in (0, 1], got {p1}")
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    return max(1, math.ceil(math.log(max(n, 2)) / p1))
