"""The (asymmetric) LSH framework — Definition 2 of the paper.

An asymmetric LSH family is a distribution over *pairs* of hash functions
``(h_p, h_q)``; two vectors collide when ``h_p(p) == h_q(q)``.  Symmetric
families are the special case ``h_p == h_q``.  Every concrete family in
this package implements :class:`AsymmetricLSHFamily` by returning a
:class:`HashFunctionPair` from :meth:`sample`; symmetric families derive
from :class:`LSHFamily`, which wires both sides to the same function.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng

HashValue = Hashable


@dataclass(frozen=True)
class HashFunctionPair:
    """One sampled hash function pair ``(h_data, h_query)``.

    ``hash_data`` is the paper's ``h_p`` (applied to data vectors),
    ``hash_query`` its ``h_q`` (applied to queries).  Values must be
    hashable so they can key buckets.
    """

    hash_data: Callable[[np.ndarray], HashValue]
    hash_query: Callable[[np.ndarray], HashValue]

    def collides(self, p, q) -> bool:
        """Whether data vector ``p`` and query ``q`` collide under this pair."""
        return self.hash_data(np.asarray(p)) == self.hash_query(np.asarray(q))


class AsymmetricLSHFamily(abc.ABC):
    """A distribution over hash-function pairs (Definition 2)."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> HashFunctionPair:
        """Draw one hash function pair."""

    @property
    def is_symmetric(self) -> bool:
        """True when ``h_p == h_q`` always (traditional LSH)."""
        return False


class LSHFamily(AsymmetricLSHFamily):
    """A symmetric LSH family: one function used on both sides."""

    @abc.abstractmethod
    def sample_function(self, rng: np.random.Generator) -> Callable[[np.ndarray], HashValue]:
        """Draw one hash function."""

    def sample(self, rng: np.random.Generator) -> HashFunctionPair:
        h = self.sample_function(rng)
        return HashFunctionPair(hash_data=h, hash_query=h)

    @property
    def is_symmetric(self) -> bool:
        return True


def estimate_collision_probability(
    family: AsymmetricLSHFamily,
    p,
    q,
    trials: int = 1000,
    seed: SeedLike = None,
) -> float:
    """Monte-Carlo estimate of ``Pr[h_p(p) == h_q(q)]``.

    The standard error is about ``sqrt(P (1-P) / trials)``; callers that
    compare against closed forms should budget trials accordingly.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = ensure_rng(seed)
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    hits = sum(1 for _ in range(trials) if family.sample(rng).collides(p, q))
    return hits / trials


def empirical_gap(
    family: AsymmetricLSHFamily,
    data: np.ndarray,
    queries: np.ndarray,
    above_pairs,
    below_pairs,
    trials: int = 500,
    seed: SeedLike = None,
) -> tuple:
    """Estimate ``(P1, P2)`` over explicit sets of (query, data) index pairs.

    ``P1`` is the *minimum* estimated collision probability over
    ``above_pairs`` (pairs that must collide often) and ``P2`` the
    *maximum* over ``below_pairs`` — exactly the quantities Definition 2
    constrains, evaluated on a concrete instance.  Hash functions are
    sampled once and reused across all pairs so the estimates are
    positively correlated (cheaper and conservative for the gap).
    """
    rng = ensure_rng(seed)
    data = np.asarray(data, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    pairs = [family.sample(rng) for _ in range(trials)]

    def collision_rate(i: int, j: int) -> float:
        q, p = queries[i], data[j]
        return sum(1 for h in pairs if h.collides(p, q)) / trials

    p1 = min(collision_rate(i, j) for i, j in above_pairs)
    p2 = max(collision_rate(i, j) for i, j in below_pairs)
    return p1, p2
