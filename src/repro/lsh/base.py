"""The (asymmetric) LSH framework — Definition 2 of the paper.

An asymmetric LSH family is a distribution over *pairs* of hash functions
``(h_p, h_q)``; two vectors collide when ``h_p(p) == h_q(q)``.  Symmetric
families are the special case ``h_p == h_q``.  Every concrete family in
this package implements :class:`AsymmetricLSHFamily` by returning a
:class:`HashFunctionPair` from :meth:`sample`; symmetric families derive
from :class:`LSHFamily`, which wires both sides to the same function.

Batch hashing protocol
----------------------

The per-vector interface (one Python closure call per vector) is the
flexible reference, but it makes hashing the bottleneck of every index
built on a non-sign family.  :meth:`AsymmetricLSHFamily.sample_batch`
is the vectorized alternative: it samples all ``L x k`` hash functions
of a multi-table index at once and returns a :class:`BatchHashTables`
whose :meth:`~BatchHashTables.hash_matrix` maps a whole matrix to one
``(n, n_tables)`` int64 key array — typically a single GEMM plus a
vectorized key-packing step.  Families that implement it MUST draw
random variates from the generator in exactly the order the per-vector
path would (``L * k`` successive :meth:`sample` calls), so that a batch
index and a per-vector index built from the same seed hash with
*identical* functions; :meth:`BatchHashTables.hash_rows` is the per-row
reference evaluation used to equivalence-test the vectorized kernels.
The default :meth:`sample_batch` returns ``None``, meaning "no native
batch path" — callers fall back to the generic per-row wrapper
(:class:`repro.lsh.batch_hash.GenericHashTables`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng

HashValue = Hashable

#: Query-side key for "this bucket cannot exist in the data": guaranteed
#: never to equal any data-side key emitted by :class:`BatchHashTables`.
MISS_KEY = np.int64(-1)

#: Sides accepted by :meth:`BatchHashTables.hash_matrix`.
HASH_SIDES = ("data", "query")


class BatchHashTables(abc.ABC):
    """``n_tables`` tables of ``hashes_per_table``-wise AND-composed hashes.

    One object represents every hash function of a multi-table index.
    ``hash_matrix(X, side)`` returns an ``(n, n_tables)`` int64 key
    array: entry ``(i, t)`` is the fused key of vector ``i`` in table
    ``t`` (the AND composition of that table's ``hashes_per_table``
    component hashes).  Data-side keys are always ``>= 0``; query-side
    keys may be :data:`MISS_KEY` when the query provably matches no data
    bucket.  Keys are representation-level: two vectors share a bucket
    iff their keys are equal, which is all an index needs.
    """

    #: False for the per-row fallback wrapper; benches use this to fail
    #: loudly when a family silently loses its vectorized path.
    is_native = True

    def __init__(self, n_tables: int, hashes_per_table: int):
        self.n_tables = int(n_tables)
        self.hashes_per_table = int(hashes_per_table)

    @staticmethod
    def _check_side(side: str) -> str:
        if side not in HASH_SIDES:
            raise ValueError(f"side must be one of {HASH_SIDES}, got {side!r}")
        return side

    @abc.abstractmethod
    def hash_matrix(self, X, side: str = "data") -> np.ndarray:
        """Fused ``(n, n_tables)`` int64 bucket keys for every row of ``X``."""

    @abc.abstractmethod
    def hash_rows(self, X, side: str = "data") -> np.ndarray:
        """Per-row reference evaluation; must equal :meth:`hash_matrix` exactly."""


@dataclass(frozen=True)
class HashFunctionPair:
    """One sampled hash function pair ``(h_data, h_query)``.

    ``hash_data`` is the paper's ``h_p`` (applied to data vectors),
    ``hash_query`` its ``h_q`` (applied to queries).  Values must be
    hashable so they can key buckets.
    """

    hash_data: Callable[[np.ndarray], HashValue]
    hash_query: Callable[[np.ndarray], HashValue]

    def collides(self, p, q) -> bool:
        """Whether data vector ``p`` and query ``q`` collide under this pair."""
        return self.hash_data(np.asarray(p)) == self.hash_query(np.asarray(q))


class AsymmetricLSHFamily(abc.ABC):
    """A distribution over hash-function pairs (Definition 2)."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> HashFunctionPair:
        """Draw one hash function pair."""

    def sample_batch(
        self,
        rng: np.random.Generator,
        hashes_per_table: int,
        n_tables: int,
    ) -> Optional[BatchHashTables]:
        """Sample all ``n_tables * hashes_per_table`` functions vectorized.

        Returns ``None`` when the family has no native batch path (the
        base-class default).  Implementations must consume ``rng`` in
        exactly the order ``n_tables * hashes_per_table`` successive
        :meth:`sample` calls would, so batch and per-vector indexes
        built from the same seed use identical hash functions.
        """
        return None

    @property
    def is_symmetric(self) -> bool:
        """True when ``h_p == h_q`` always (traditional LSH)."""
        return False


class LSHFamily(AsymmetricLSHFamily):
    """A symmetric LSH family: one function used on both sides."""

    @abc.abstractmethod
    def sample_function(self, rng: np.random.Generator) -> Callable[[np.ndarray], HashValue]:
        """Draw one hash function."""

    def sample(self, rng: np.random.Generator) -> HashFunctionPair:
        h = self.sample_function(rng)
        return HashFunctionPair(hash_data=h, hash_query=h)

    @property
    def is_symmetric(self) -> bool:
        return True


def estimate_collision_probability(
    family: AsymmetricLSHFamily,
    p,
    q,
    trials: int = 1000,
    seed: SeedLike = None,
) -> float:
    """Monte-Carlo estimate of ``Pr[h_p(p) == h_q(q)]``.

    The standard error is about ``sqrt(P (1-P) / trials)``; callers that
    compare against closed forms should budget trials accordingly.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = ensure_rng(seed)
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    hits = sum(1 for _ in range(trials) if family.sample(rng).collides(p, q))
    return hits / trials


def empirical_gap(
    family: AsymmetricLSHFamily,
    data: np.ndarray,
    queries: np.ndarray,
    above_pairs,
    below_pairs,
    trials: int = 500,
    seed: SeedLike = None,
) -> tuple:
    """Estimate ``(P1, P2)`` over explicit sets of (query, data) index pairs.

    ``P1`` is the *minimum* estimated collision probability over
    ``above_pairs`` (pairs that must collide often) and ``P2`` the
    *maximum* over ``below_pairs`` — exactly the quantities Definition 2
    constrains, evaluated on a concrete instance.  Hash functions are
    sampled once and reused across all pairs so the estimates are
    positively correlated (cheaper and conservative for the gap).
    """
    rng = ensure_rng(seed)
    data = np.asarray(data, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    pairs = [family.sample(rng) for _ in range(trials)]

    def collision_rate(i: int, j: int) -> float:
        q, p = queries[i], data[j]
        return sum(1 for h in pairs if h.collides(p, q)) / trials

    p1 = min(collision_rate(i, j) for i, j in above_pairs)
    p2 = max(collision_rate(i, j) for i, j in below_pairs)
    return p1, p2
