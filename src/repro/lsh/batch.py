"""Vectorized multi-table index for sign-projection hash families.

The generic :class:`repro.lsh.index.LSHIndex` calls one Python hash
function per (vector, table, bit) — flexible but slow.  Every
hyperplane-based scheme in this package (SIMPLE-LSH, DATA-DEP, Sign-ALSH,
the symmetric Section 4.2 hash) is "signs of Gaussian projections of a
transformed vector", which vectorizes completely: one matrix product per
side computes all ``L x k`` bits of all vectors at once, and each table's
``k`` bits pack into one integer key.

Concretely, with ``A`` an ``(L k, D)`` Gaussian matrix and ``f, g`` the
data/query transforms:

    bits(data)  = sign(f(P) A^T),   bits(query) = sign(g(Q) A^T)

Buckets live in CSR form (:mod:`repro.lsh.csr`) by default: all ``L``
tables fuse into ONE physical table keyed by ``table_id << k | key``
(sorted key column plus offset/indices arrays), so candidate generation
for an entire query block is a single ``np.searchsorted`` of all query
keys against every table at once followed by one vectorized ragged
gather — no Python loop per query or per table.  Multiprobe keys
(query-directed single-bit flips) are generated as one extra
``(n_queries, L, n_probes)`` key batch and looked up the same way.  The
historical dict-of-lists layout is kept behind ``layout="dict"`` as the
reference implementation the CSR path is benchmarked and
equivalence-tested against.

This is 100-1000x faster than the per-vector path at index scale and is
what the crossover benches use for wall-clock comparisons.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, List, Optional

import numpy as np

from repro.embeddings.incoherent_map import SymmetricSphereCompletion
from repro.embeddings.mips_reductions import (
    NeyshaburSrebroTransform,
    SimpleLSHTransform,
)
from repro.errors import ParameterError
from repro.core.problems import QueryStats
from repro.lsh.csr import CSRBucketTable, merge_candidates_per_query
from repro.obs.metrics import current_metrics
from repro.obs.trace import span
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix

MatrixTransform = Callable[[np.ndarray], np.ndarray]

#: Supported bucket storage layouts.
LAYOUTS = ("csr", "dict")

#: Largest fused key space (``n_tables * 2**bits_per_table``) for which
#: the csr layout materializes dense start/end offset arrays (direct
#: addressing, one gather per lookup) next to the sorted key column.
#: Beyond it lookups binary-search the keys instead — same results.
DENSE_LOOKUP_MAX = 1 << 22


def _identity(X: np.ndarray) -> np.ndarray:
    return np.asarray(X, dtype=np.float64)


class BatchSignIndex:
    """Multi-table sign-projection index with fully vectorized hashing.

    Args:
        dim: dimension of the *transformed* vectors.
        data_transform / query_transform: matrix-level maps applied to the
            raw data/query matrices before projection (identity for plain
            hyperplane LSH).
        n_tables: OR width ``L``.
        bits_per_table: AND width ``k`` (packed into one ``int64`` key, so
            ``k <= 62``).
        seed: projection seed.
        layout: bucket storage, ``"csr"`` (default, array-native batch
            lookups) or ``"dict"`` (the reference dict-of-lists path).
            Both produce identical candidate sets for identical seeds.
    """

    def __init__(
        self,
        dim: int,
        data_transform: MatrixTransform = _identity,
        query_transform: MatrixTransform = _identity,
        n_tables: int = 16,
        bits_per_table: int = 12,
        seed: SeedLike = None,
        layout: str = "csr",
    ):
        if dim < 1:
            raise ParameterError(f"dim must be >= 1, got {dim}")
        if n_tables < 1:
            raise ParameterError(f"n_tables must be >= 1, got {n_tables}")
        if not 1 <= bits_per_table <= 62:
            raise ParameterError(
                f"bits_per_table must be in [1, 62], got {bits_per_table}"
            )
        if layout not in LAYOUTS:
            raise ParameterError(f"layout must be one of {LAYOUTS}, got {layout!r}")
        if layout == "csr" and (n_tables << bits_per_table) > 2 ** 62:
            raise ParameterError(
                "csr layout fuses table ids into the int64 bucket key and "
                f"needs n_tables * 2**bits_per_table <= 2**62; got "
                f"{n_tables} * 2**{bits_per_table}.  Use layout='dict'."
            )
        self.dim = int(dim)
        self.n_tables = int(n_tables)
        self.bits_per_table = int(bits_per_table)
        self.data_transform = data_transform
        self.query_transform = query_transform
        self.layout = layout
        rng = ensure_rng(seed)
        self._projections = rng.normal(
            size=(self.n_tables * self.bits_per_table, self.dim)
        )
        self._weights = (1 << np.arange(self.bits_per_table, dtype=np.int64))
        #: csr: one fused key per (table, bucket) — table id in the high bits.
        self._table_offsets = (
            np.arange(self.n_tables, dtype=np.int64) << self.bits_per_table
        )
        #: csr: single fused CSRBucketTable; dict: list of per-table dicts.
        self._tables = None
        #: csr only: dense (starts, ends) offset arrays indexed by fused
        #: key, built when the key space is small enough (see
        #: :data:`DENSE_LOOKUP_MAX`); None means binary-search lookups.
        self._dense: Optional[tuple] = None
        self._data: Optional[np.ndarray] = None
        #: Same work accounting as :class:`repro.lsh.index.LSHIndex`, so a
        #: batch index slots into :func:`repro.core.lsh_join.lsh_join`.
        self.stats = QueryStats()

    def _projections_of(self, transformed: np.ndarray) -> np.ndarray:
        """Raw projection values; shape (n, L, k)."""
        transformed = check_matrix(transformed, "transformed", allow_empty=True)
        if transformed.shape[1] != self.dim:
            raise ParameterError(
                f"transformed vectors must have dimension {self.dim}, "
                f"got {transformed.shape[1]}"
            )
        values = transformed @ self._projections.T  # (n, L*k)
        return values.reshape(
            transformed.shape[0], self.n_tables, self.bits_per_table
        )

    def _keys(self, transformed: np.ndarray) -> np.ndarray:
        """Per-table integer keys for every row; shape (n, L)."""
        return self._pack(self._projections_of(transformed), self._weights)

    @staticmethod
    def _pack(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        bits = values >= 0.0
        if weights.size <= 52:
            # One BLAS matvec; exact while keys stay below 2**53.
            flat = bits.reshape(-1, weights.size).astype(np.float64)
            packed = flat @ weights.astype(np.float64)
            return packed.astype(np.int64).reshape(values.shape[:-1])
        return (bits.astype(np.int64) * weights).sum(axis=2)

    def _probe_key_batch(self, keys: np.ndarray, values: np.ndarray, n_probes: int) -> np.ndarray:
        """Query-directed multiprobe keys for a whole block; (n, L, n_probes).

        A sign bit whose projection value sits near 0 is the one a
        near-duplicate vector is most likely to disagree on (Lv et al.'s
        multiprobe heuristic), so the ``n_probes`` lowest-|margin| bits
        of every (query, table) are flipped — one argsort over the block
        instead of a nested Python generator loop.
        """
        order = np.argsort(np.abs(values), axis=2, kind="stable")[:, :, :n_probes]
        return keys[:, :, None] ^ (np.int64(1) << order.astype(np.int64))

    def build(self, P) -> "BatchSignIndex":
        P = check_matrix(P, "P")
        with span("hash", side="data", n_rows=P.shape[0]):
            keys = self._keys(self.data_transform(P))
        if self.layout == "csr":
            # Table-major flat layout: keys grouped by table, row ids
            # ascending inside each table, so the stable bucket sort
            # leaves every (table, key) bucket's contents ascending.
            fused = (keys + self._table_offsets[None, :]).T.ravel()
            rows = np.tile(np.arange(P.shape[0], dtype=np.int64), self.n_tables)
            table = CSRBucketTable.from_keys(fused, rows=rows)
            self._tables = table
            metrics = current_metrics()
            if metrics.enabled:
                metrics.histogram("lsh.bucket_occupancy").observe_array(
                    np.diff(table.offsets)
                )
            space = self.n_tables << self.bits_per_table
            if space <= DENSE_LOOKUP_MAX:
                starts = np.zeros(space, dtype=np.int64)
                ends = np.zeros(space, dtype=np.int64)
                starts[table.keys] = table.offsets[:-1]
                ends[table.keys] = table.offsets[1:]
                self._dense = (starts, ends)
            else:
                self._dense = None
        else:
            tables = []
            for t in range(self.n_tables):
                buckets = defaultdict(list)
                for i, key in enumerate(keys[:, t]):
                    buckets[int(key)].append(i)
                tables.append(
                    {k: np.array(v, dtype=np.int64) for k, v in buckets.items()}
                )
            self._tables = tables
        self._data = P
        return self

    @property
    def is_built(self) -> bool:
        return self._tables is not None

    def candidates_batch(self, Q, n_probes: int = 0) -> List[np.ndarray]:
        """Deduplicated, sorted candidate indices for every query row.

        ``n_probes`` extra buckets per table are probed using the
        query-directed single-bit-flip heuristic; ``0`` queries only the
        exact bucket.  An empty query matrix (0 rows) returns ``[]``.
        """
        if self._tables is None:
            raise ParameterError("index not built yet; call build() first")
        if n_probes < 0 or n_probes > self.bits_per_table:
            raise ParameterError(
                f"n_probes must be in [0, bits_per_table={self.bits_per_table}], "
                f"got {n_probes}"
            )
        Q = check_matrix(Q, "Q", allow_empty=True)
        if Q.shape[0] == 0:
            return []
        with span("hash", side="query", n_rows=Q.shape[0]):
            values = self._projections_of(self.query_transform(Q))  # (n, L, k)
            keys = self._pack(values, self._weights)
        if self.layout == "csr":
            return self._candidates_batch_csr(keys, values, n_probes)
        return self._candidates_batch_dict(keys, values, n_probes)

    def _lookup(self, fused_keys: np.ndarray):
        """Slice bounds per fused key: direct-addressed when possible."""
        if self._dense is not None:
            starts, ends = self._dense
            return starts[fused_keys], ends[fused_keys]
        return self._tables.lookup(fused_keys)

    def _candidates_batch_csr(
        self, keys: np.ndarray, values: np.ndarray, n_probes: int
    ) -> List[np.ndarray]:
        """One lookup + one ragged gather over the fused table."""
        nq = keys.shape[0]
        n = self._data.shape[0]
        qid = np.arange(nq, dtype=np.int64)
        # (nq, L) fused keys: every query against every table at once.
        starts, ends = self._lookup(keys + self._table_offsets[None, :])
        rows, lengths = self._tables.gather(starts, ends)
        qids = np.repeat(qid, lengths.reshape(nq, self.n_tables).sum(axis=1))
        exact_total = int(lengths.sum())
        probe_total = 0
        probed = 0
        if n_probes:
            probe_keys = (
                self._probe_key_batch(keys, values, n_probes)
                + self._table_offsets[None, :, None]
            )
            pstarts, pends = self._lookup(probe_keys)
            prows, plengths = self._tables.gather(pstarts, pends)
            pqids = np.repeat(
                qid, plengths.reshape(nq, self.n_tables * n_probes).sum(axis=1)
            )
            probe_total = int(plengths.sum())
            probed = int(np.count_nonzero(plengths))
            rows = np.concatenate([rows, prows])
            qids = np.concatenate([qids, pqids])
        merged = merge_candidates_per_query(qids, rows, nq, n)
        self.stats.record_batch(
            nq,
            exact_total + probe_total,
            int(sum(m.size for m in merged)),
            probe_total,
            probed,
        )
        return merged

    def _candidates_batch_dict(
        self, keys: np.ndarray, values: np.ndarray, n_probes: int
    ) -> List[np.ndarray]:
        """Reference dict-of-lists path (one Python loop per query, table)."""
        out = []
        empty = np.empty(0, dtype=np.int64)
        for qi in range(keys.shape[0]):
            buckets = []
            probe_hits = 0
            probed = 0
            for t in range(self.n_tables):
                key = int(keys[qi, t])
                bucket = self._tables[t].get(key)
                if bucket is not None:
                    buckets.append(bucket)
                if n_probes:
                    margins = values[qi, t]
                    order = np.argsort(np.abs(margins), kind="stable")
                    for bit in order[:n_probes]:
                        bucket = self._tables[t].get(key ^ (1 << int(bit)))
                        if bucket is not None:
                            buckets.append(bucket)
                            probe_hits += bucket.size
                            probed += 1
            if not buckets:
                self.stats.record(0, 0)
                out.append(empty)
            else:
                merged = np.unique(np.concatenate(buckets))
                self.stats.record(
                    sum(b.size for b in buckets), merged.size, probe_hits, probed
                )
                out.append(merged)
        return out

    def candidates(self, q, n_probes: int = 0) -> np.ndarray:
        """Candidates for a single query vector."""
        return self.candidates_batch(
            np.asarray(q, dtype=np.float64)[None, :], n_probes=n_probes
        )[0]

    def query(self, q, threshold: float, signed: bool = True) -> Optional[int]:
        """Best verified candidate above ``threshold``, or None."""
        idx = self.candidates(q)
        if idx.size == 0:
            return None
        values = self._data[idx] @ np.asarray(q, dtype=np.float64)
        if not signed:
            values = np.abs(values)
        best = int(np.argmax(values))
        return int(idx[best]) if values[best] >= threshold else None

    # Convenience constructors for the package's sign-projection schemes.

    @classmethod
    def for_hyperplane(cls, d: int, **kwargs) -> "BatchSignIndex":
        """Plain SimHash on raw vectors."""
        return cls(dim=d, **kwargs)

    @classmethod
    def for_datadep(cls, d: int, query_radius: float = 1.0, **kwargs) -> "BatchSignIndex":
        """Section 4.1: asymmetric ball-to-sphere maps + hyperplane."""
        transform = NeyshaburSrebroTransform(query_radius=query_radius)
        return cls(
            dim=transform.output_dimension(d),
            data_transform=transform.embed_data_many,
            query_transform=transform.embed_query_many,
            **kwargs,
        )

    @classmethod
    def for_simple_lsh(cls, d: int, **kwargs) -> "BatchSignIndex":
        """SIMPLE-LSH [39]: ball completion for data, sphere queries."""
        transform = SimpleLSHTransform()
        return cls(
            dim=transform.output_dimension(d),
            data_transform=transform.embed_data_many,
            query_transform=transform.embed_query_many,
            **kwargs,
        )

    @classmethod
    def for_symmetric(cls, d: int, eps: float = 0.05, **kwargs) -> "BatchSignIndex":
        """Section 4.2: symmetric incoherent completion on both sides."""
        completion = SymmetricSphereCompletion(eps=eps)
        return cls(
            dim=completion.output_dimension(d),
            data_transform=completion.embed_many,
            query_transform=completion.embed_many,
            **kwargs,
        )
