"""Vectorized multi-table index for sign-projection hash families.

The generic :class:`repro.lsh.index.LSHIndex` calls one Python hash
function per (vector, table, bit) — flexible but slow.  Every
hyperplane-based scheme in this package (SIMPLE-LSH, DATA-DEP, Sign-ALSH,
the symmetric Section 4.2 hash) is "signs of Gaussian projections of a
transformed vector", which vectorizes completely: one matrix product per
side computes all ``L x k`` bits of all vectors at once, and each table's
``k`` bits pack into one integer key.

Concretely, with ``A`` an ``(L k, D)`` Gaussian matrix and ``f, g`` the
data/query transforms:

    bits(data)  = sign(f(P) A^T),   bits(query) = sign(g(Q) A^T)

This is 100-1000x faster than the per-vector path at index scale and is
what the crossover benches use for wall-clock comparisons.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, List, Optional

import numpy as np

from repro.embeddings.incoherent_map import SymmetricSphereCompletion
from repro.embeddings.mips_reductions import (
    NeyshaburSrebroTransform,
    SimpleLSHTransform,
)
from repro.errors import ParameterError
from repro.lsh.index import QueryStats
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix

MatrixTransform = Callable[[np.ndarray], np.ndarray]


def _identity(X: np.ndarray) -> np.ndarray:
    return np.asarray(X, dtype=np.float64)


class BatchSignIndex:
    """Multi-table sign-projection index with fully vectorized hashing.

    Args:
        dim: dimension of the *transformed* vectors.
        data_transform / query_transform: matrix-level maps applied to the
            raw data/query matrices before projection (identity for plain
            hyperplane LSH).
        n_tables: OR width ``L``.
        bits_per_table: AND width ``k`` (packed into one ``int64`` key, so
            ``k <= 62``).
        seed: projection seed.
    """

    def __init__(
        self,
        dim: int,
        data_transform: MatrixTransform = _identity,
        query_transform: MatrixTransform = _identity,
        n_tables: int = 16,
        bits_per_table: int = 12,
        seed: SeedLike = None,
    ):
        if dim < 1:
            raise ParameterError(f"dim must be >= 1, got {dim}")
        if n_tables < 1:
            raise ParameterError(f"n_tables must be >= 1, got {n_tables}")
        if not 1 <= bits_per_table <= 62:
            raise ParameterError(
                f"bits_per_table must be in [1, 62], got {bits_per_table}"
            )
        self.dim = int(dim)
        self.n_tables = int(n_tables)
        self.bits_per_table = int(bits_per_table)
        self.data_transform = data_transform
        self.query_transform = query_transform
        rng = ensure_rng(seed)
        self._projections = rng.normal(
            size=(self.n_tables * self.bits_per_table, self.dim)
        )
        self._weights = (1 << np.arange(self.bits_per_table, dtype=np.int64))
        self._tables: Optional[List[dict]] = None
        self._data: Optional[np.ndarray] = None
        #: Same work accounting as :class:`repro.lsh.index.LSHIndex`, so a
        #: batch index slots into :func:`repro.core.lsh_join.lsh_join`.
        self.stats = QueryStats()

    def _projections_of(self, transformed: np.ndarray) -> np.ndarray:
        """Raw projection values; shape (n, L, k)."""
        transformed = check_matrix(transformed, "transformed")
        if transformed.shape[1] != self.dim:
            raise ParameterError(
                f"transformed vectors must have dimension {self.dim}, "
                f"got {transformed.shape[1]}"
            )
        values = transformed @ self._projections.T  # (n, L*k)
        return values.reshape(
            transformed.shape[0], self.n_tables, self.bits_per_table
        )

    def _keys(self, transformed: np.ndarray) -> np.ndarray:
        """Per-table integer keys for every row; shape (n, L)."""
        bits = self._projections_of(transformed) >= 0.0
        return (bits.astype(np.int64) * self._weights).sum(axis=2)

    @staticmethod
    def _probe_keys(key: int, margins: np.ndarray, n_probes: int):
        """Query-directed multiprobe: flip the lowest-margin bits first.

        A sign bit whose projection value sits near 0 is the one a
        near-duplicate vector is most likely to disagree on (Lv et al.'s
        multiprobe heuristic); probing those buckets buys recall without
        more tables.  Yields ``n_probes`` single-bit-flip keys in
        increasing |margin| order.
        """
        order = np.argsort(np.abs(margins))
        for bit in order[:n_probes]:
            yield key ^ (1 << int(bit))

    def build(self, P) -> "BatchSignIndex":
        P = check_matrix(P, "P")
        keys = self._keys(self.data_transform(P))
        tables = []
        for t in range(self.n_tables):
            buckets = defaultdict(list)
            for i, key in enumerate(keys[:, t]):
                buckets[int(key)].append(i)
            tables.append({k: np.array(v, dtype=np.int64) for k, v in buckets.items()})
        self._tables = tables
        self._data = P
        return self

    @property
    def is_built(self) -> bool:
        return self._tables is not None

    def candidates_batch(self, Q, n_probes: int = 0) -> List[np.ndarray]:
        """Deduplicated candidate indices for every query row.

        ``n_probes`` extra buckets per table are probed using the
        query-directed single-bit-flip heuristic (see
        :meth:`_probe_keys`); ``0`` queries only the exact bucket.
        """
        if self._tables is None:
            raise ParameterError("index not built yet; call build() first")
        if n_probes < 0 or n_probes > self.bits_per_table:
            raise ParameterError(
                f"n_probes must be in [0, bits_per_table={self.bits_per_table}], "
                f"got {n_probes}"
            )
        Q = check_matrix(Q, "Q")
        values = self._projections_of(self.query_transform(Q))  # (n, L, k)
        bits = values >= 0.0
        keys = (bits.astype(np.int64) * self._weights).sum(axis=2)
        out = []
        empty = np.empty(0, dtype=np.int64)
        for qi in range(Q.shape[0]):
            buckets = []
            for t in range(self.n_tables):
                key = int(keys[qi, t])
                bucket = self._tables[t].get(key)
                if bucket is not None:
                    buckets.append(bucket)
                if n_probes:
                    for probe in self._probe_keys(key, values[qi, t], n_probes):
                        bucket = self._tables[t].get(probe)
                        if bucket is not None:
                            buckets.append(bucket)
            if not buckets:
                self.stats.record(0, 0)
                out.append(empty)
            else:
                merged = np.unique(np.concatenate(buckets))
                self.stats.record(sum(b.size for b in buckets), merged.size)
                out.append(merged)
        return out

    def candidates(self, q, n_probes: int = 0) -> np.ndarray:
        """Candidates for a single query vector."""
        return self.candidates_batch(
            np.asarray(q, dtype=np.float64)[None, :], n_probes=n_probes
        )[0]

    def query(self, q, threshold: float, signed: bool = True) -> Optional[int]:
        """Best verified candidate above ``threshold``, or None."""
        idx = self.candidates(q)
        if idx.size == 0:
            return None
        values = self._data[idx] @ np.asarray(q, dtype=np.float64)
        if not signed:
            values = np.abs(values)
        best = int(np.argmax(values))
        return int(idx[best]) if values[best] >= threshold else None

    # Convenience constructors for the package's sign-projection schemes.

    @classmethod
    def for_hyperplane(cls, d: int, **kwargs) -> "BatchSignIndex":
        """Plain SimHash on raw vectors."""
        return cls(dim=d, **kwargs)

    @classmethod
    def for_datadep(cls, d: int, query_radius: float = 1.0, **kwargs) -> "BatchSignIndex":
        """Section 4.1: asymmetric ball-to-sphere maps + hyperplane."""
        transform = NeyshaburSrebroTransform(query_radius=query_radius)
        return cls(
            dim=transform.output_dimension(d),
            data_transform=transform.embed_data_many,
            query_transform=transform.embed_query_many,
            **kwargs,
        )

    @classmethod
    def for_simple_lsh(cls, d: int, **kwargs) -> "BatchSignIndex":
        """SIMPLE-LSH [39]: ball completion for data, sphere queries."""
        transform = SimpleLSHTransform()
        return cls(
            dim=transform.output_dimension(d),
            data_transform=transform.embed_data_many,
            query_transform=transform.embed_query_many,
            **kwargs,
        )

    @classmethod
    def for_symmetric(cls, d: int, eps: float = 0.05, **kwargs) -> "BatchSignIndex":
        """Section 4.2: symmetric incoherent completion on both sides."""
        completion = SymmetricSphereCompletion(eps=eps)
        return cls(
            dim=completion.output_dimension(d),
            data_transform=completion.embed_many,
            query_transform=completion.embed_many,
            **kwargs,
        )
