"""Vectorized multi-table hashers behind the batch hashing protocol.

Each class here is a concrete :class:`repro.lsh.base.BatchHashTables`:
one object holds *all* ``n_tables x hashes_per_table`` hash functions of
a multi-table index and maps whole matrices to fused int64 bucket keys.
Families hand one out from ``sample_batch`` after drawing parameters in
the exact per-vector order, so a batch index and a closure-based index
built from the same seed hash with identical functions.

Key fusing
----------

A table's ``k`` component hash values must be fused into one int64 key.
Two strategies, chosen automatically:

* **fixed mixed-radix** — when every component lives in ``[0, radix)``
  and ``prod(radices) < 2**62``, keys are the Horner pack
  ``((c0 * r1 + c1) * r2 + c2) ...``; data and query sides pack
  independently and identically.
* **adaptive rank recoding** — for unbounded components (E2LSH floors)
  or overflowing radix products, the *data* side recodes each stage to
  dense ranks via a sorted-unique codebook and refuses to grow past
  ``n * (n + 1)``; the query side replays the codebooks, mapping values
  absent from the data to :data:`repro.lsh.base.MISS_KEY` (which no data
  key ever equals, so index lookups miss cleanly).  This requires
  hashing the data side before the query side.

Every class also implements ``hash_rows`` — a deliberately scalar
per-row evaluation mirroring the family's closure math — as the
equivalence-tested reference for the vectorized kernels.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from repro.errors import DomainError, ParameterError, ValidationError
from repro.lsh.base import BatchHashTables, MISS_KEY
from repro.lsh.csr import sorted_unique
from repro.utils.validation import check_matrix

#: Largest fused key product handled by the fixed mixed-radix pack.
MAX_PACKED_KEY = 1 << 62

#: Per-chunk element budget for the intermediate tensors of the
#: vectorized kernels (~32 MiB of float64).
CHUNK_ELEMS = 1 << 22

Transform = Optional[Callable[[np.ndarray], np.ndarray]]


class ComponentHashTables(BatchHashTables):
    """Shared fuse machinery for hashers built from per-slot components.

    Subclasses produce an ``(n, n_tables, hashes_per_table)`` int64
    component array (vectorized ``_components`` and scalar
    ``_component_row``); this base class fuses the last axis into one
    key per table using the fixed mixed-radix pack when ``radices`` fits
    in an int64, and adaptive rank recoding otherwise.
    """

    def __init__(self, n_tables: int, hashes_per_table: int, radices=None):
        super().__init__(n_tables, hashes_per_table)
        self._radices = self._resolve_radices(radices)
        self._codebooks: Optional[List[List[np.ndarray]]] = None

    def _resolve_radices(self, radices) -> Optional[np.ndarray]:
        if radices is None:
            return None
        arr = np.broadcast_to(
            np.asarray(radices, dtype=np.int64), (self.hashes_per_table,)
        ).copy()
        if (arr < 1).any():
            raise ParameterError(f"radices must be >= 1, got {arr}")
        product = 1
        for radix in arr:
            product *= int(radix)
            if product >= MAX_PACKED_KEY:
                return None  # overflow: fall back to adaptive rank recoding
        return arr

    # -- subclass surface ------------------------------------------------

    def _components(self, X: np.ndarray, side: str) -> np.ndarray:
        """Vectorized ``(n, n_tables, hashes_per_table)`` components."""
        raise NotImplementedError

    def _component_row(self, x: np.ndarray, side: str) -> np.ndarray:
        """Scalar reference ``(n_tables, hashes_per_table)`` components."""
        raise NotImplementedError

    def _as_rows(self, X) -> np.ndarray:
        """Validate ``X`` for the per-row reference path."""
        return check_matrix(X, "X")

    # -- protocol --------------------------------------------------------

    def hash_matrix(self, X, side: str = "data") -> np.ndarray:
        side = self._check_side(side)
        comps = np.asarray(self._components(X, side), dtype=np.int64)
        return self._fuse(comps, side)

    def hash_rows(self, X, side: str = "data") -> np.ndarray:
        side = self._check_side(side)
        rows = self._as_rows(X)
        comps = np.stack(
            [np.asarray(self._component_row(row, side), dtype=np.int64) for row in rows]
        )
        return self._fuse(comps, side)

    # -- fusing ----------------------------------------------------------

    def _fuse(self, comps: np.ndarray, side: str) -> np.ndarray:
        if comps.shape[1:] != (self.n_tables, self.hashes_per_table):
            raise ValidationError(
                f"components must have shape (n, {self.n_tables}, "
                f"{self.hashes_per_table}), got {comps.shape}"
            )
        if self._radices is not None:
            return self._fuse_packed(comps)
        if side == "data":
            return self._fuse_fit(comps)
        if self._codebooks is None:
            raise ParameterError(
                "adaptive key fusing requires hashing the data side before queries"
            )
        return self._fuse_map(comps)

    def _fuse_packed(self, comps: np.ndarray) -> np.ndarray:
        keys = np.zeros(comps.shape[:2], dtype=np.int64)
        valid = np.ones(comps.shape[:2], dtype=bool)
        for j in range(self.hashes_per_table):
            component = comps[:, :, j]
            radix = self._radices[j]
            valid &= (component >= 0) & (component < radix)
            keys = keys * radix + component
        return np.where(valid, keys, MISS_KEY)

    @staticmethod
    def _rank_fit(values: np.ndarray, books: List[np.ndarray]) -> np.ndarray:
        book = sorted_unique(values)
        books.append(book)
        return np.searchsorted(book, values).astype(np.int64)

    @staticmethod
    def _rank_map(book: np.ndarray, values: np.ndarray) -> np.ndarray:
        positions = np.searchsorted(book, values)
        positions = np.minimum(positions, book.size - 1)
        hits = book[positions] == values
        return np.where(hits, positions, MISS_KEY).astype(np.int64)

    def _fuse_fit(self, comps: np.ndarray) -> np.ndarray:
        n = comps.shape[0]
        keys = np.empty((n, self.n_tables), dtype=np.int64)
        self._codebooks = []
        for t in range(self.n_tables):
            books: List[np.ndarray] = []
            key = self._rank_fit(comps[:, t, 0], books)
            for j in range(1, self.hashes_per_table):
                component = self._rank_fit(comps[:, t, j], books)
                width = np.int64(books[-1].size)
                # ranks < n and width <= n keep the raw key below n*(n+1).
                key = self._rank_fit(key * width + component, books)
            self._codebooks.append(books)
            keys[:, t] = key
        return keys

    def _fuse_map(self, comps: np.ndarray) -> np.ndarray:
        n = comps.shape[0]
        keys = np.empty((n, self.n_tables), dtype=np.int64)
        for t in range(self.n_tables):
            books = iter(self._codebooks[t])
            key = self._rank_map(next(books), comps[:, t, 0])
            for j in range(1, self.hashes_per_table):
                component_book = next(books)
                component = self._rank_map(component_book, comps[:, t, j])
                raw = np.where(
                    (key < 0) | (component < 0),
                    MISS_KEY,
                    key * np.int64(component_book.size) + component,
                )
                key = self._rank_map(next(books), raw)
            keys[:, t] = key
        return keys


class _TransformMixin:
    """Optional per-side matrix transforms (ALSH embeddings)."""

    _data_transform: Transform
    _query_transform: Transform

    def _set_transforms(self, data_transform: Transform, query_transform: Transform):
        self._data_transform = data_transform
        self._query_transform = query_transform

    def _transform(self, X: np.ndarray, side: str) -> np.ndarray:
        fn = self._data_transform if side == "data" else self._query_transform
        if fn is None:
            return X
        return np.asarray(fn(X), dtype=np.float64)

    def _transform_row(self, x, side: str) -> np.ndarray:
        row = np.asarray(x, dtype=np.float64).reshape(1, -1)
        return self._transform(row, side)[0]


class SignProjectionTables(_TransformMixin, ComponentHashTables):
    """Hyperplane-sign components: one GEMM against all projections.

    Covers :class:`~repro.lsh.hyperplane.HyperplaneLSH` and every
    sign-ALSH variant (the variant supplies its embedding as the per-side
    transform).  Component ``f`` of a vector is ``1`` iff its transformed
    image has non-negative dot product with projection ``f``.
    """

    def __init__(
        self,
        projections: np.ndarray,
        n_tables: int,
        hashes_per_table: int,
        data_transform: Transform = None,
        query_transform: Transform = None,
    ):
        super().__init__(n_tables, hashes_per_table, radices=2)
        projections = np.asarray(projections, dtype=np.float64)
        if projections.ndim != 2 or projections.shape[0] != n_tables * hashes_per_table:
            raise ValidationError(
                f"projections must be (n_tables * hashes_per_table, D), "
                f"got {projections.shape}"
            )
        self._projections = projections
        self._set_transforms(data_transform, query_transform)

    def _components(self, X, side):
        T = self._transform(check_matrix(X, "X"), side)
        bits = (T @ self._projections.T) >= 0.0
        return bits.astype(np.int64).reshape(
            T.shape[0], self.n_tables, self.hashes_per_table
        )

    def _component_row(self, x, side):
        v = self._transform_row(x, side)
        out = [1 if float(p @ v) >= 0.0 else 0 for p in self._projections]
        return np.asarray(out, dtype=np.int64).reshape(
            self.n_tables, self.hashes_per_table
        )


class CrossPolytopeTables(_TransformMixin, ComponentHashTables):
    """Cross-polytope components: one GEMM against all stacked rotations.

    ``rotations`` is ``(n_tables * hashes_per_table, D, D)``; flattened
    to ``(F * D, D)`` so hashing a block is a single GEMM, reshaped back
    to take the per-function signed argmax (value ``2i`` for ``+e_i``,
    ``2i + 1`` for ``-e_i`` — the closure's convention exactly).
    """

    def __init__(
        self,
        rotations: np.ndarray,
        n_tables: int,
        hashes_per_table: int,
        data_transform: Transform = None,
        query_transform: Transform = None,
    ):
        rotations = np.asarray(rotations, dtype=np.float64)
        count = n_tables * hashes_per_table
        if rotations.ndim != 3 or rotations.shape[0] != count or (
            rotations.shape[1] != rotations.shape[2]
        ):
            raise ValidationError(
                f"rotations must be ({count}, D, D), got {rotations.shape}"
            )
        super().__init__(n_tables, hashes_per_table, radices=2 * rotations.shape[1])
        self._rotations = rotations
        self._rotations_flat = rotations.reshape(-1, rotations.shape[2])
        self._set_transforms(data_transform, query_transform)

    def _components(self, X, side):
        T = self._transform(check_matrix(X, "X"), side)
        n = T.shape[0]
        count = self.n_tables * self.hashes_per_table
        dim = self._rotations.shape[1]
        comps = np.empty((n, count), dtype=np.int64)
        step = max(1, CHUNK_ELEMS // max(1, count * dim))
        # One reusable GEMM output buffer; materializing |rotated| to
        # argmax it costs a full extra pass over the (big) rotated tensor,
        # so the signed argmax is built from an argmax/argmin pair instead.
        buf = np.empty((min(step, n), count * dim), dtype=np.float64)
        for start in range(0, n, step):
            block = T[start:start + step]
            b = block.shape[0]
            rotated = np.matmul(block, self._rotations_flat.T, out=buf[:b]).reshape(
                b, count, dim
            )
            imax = np.argmax(rotated, axis=2)
            imin = np.argmin(rotated, axis=2)
            vmax = np.take_along_axis(rotated, imax[:, :, None], axis=2)[:, :, 0]
            vmin = np.take_along_axis(rotated, imin[:, :, None], axis=2)[:, :, 0]
            # argmax(|rotated|) with first-occurrence ties: the earliest
            # max beats the earliest min exactly when it is larger in
            # magnitude, or equal in magnitude but earlier.
            neg = (-vmin > vmax) | ((-vmin == vmax) & (imin < imax))
            comps[start:start + step] = np.where(neg, 2 * imin + 1, 2 * imax)
        return comps.reshape(n, self.n_tables, self.hashes_per_table)

    def _component_row(self, x, side):
        v = self._transform_row(x, side)
        out = np.empty(self.n_tables * self.hashes_per_table, dtype=np.int64)
        for f, rotation in enumerate(self._rotations):
            rotated = rotation @ v
            i = int(np.argmax(np.abs(rotated)))
            out[f] = 2 * i + (1 if rotated[i] < 0 else 0)
        return out.reshape(self.n_tables, self.hashes_per_table)


class E2LSHTables(_TransformMixin, ComponentHashTables):
    """p-stable components: floor of one GEMM plus offsets.

    Floors are unbounded, so keys always go through the adaptive
    rank-recoded fuse (data side first).
    """

    def __init__(
        self,
        directions: np.ndarray,
        offsets: np.ndarray,
        width: float,
        n_tables: int,
        hashes_per_table: int,
        data_transform: Transform = None,
        query_transform: Transform = None,
    ):
        super().__init__(n_tables, hashes_per_table, radices=None)
        directions = np.asarray(directions, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.float64)
        count = n_tables * hashes_per_table
        if directions.ndim != 2 or directions.shape[0] != count:
            raise ValidationError(
                f"directions must be ({count}, D), got {directions.shape}"
            )
        if offsets.shape != (count,):
            raise ValidationError(f"offsets must be ({count},), got {offsets.shape}")
        self._directions = directions
        self._offsets = offsets
        self._width = float(width)
        self._set_transforms(data_transform, query_transform)

    def _components(self, X, side):
        T = self._transform(check_matrix(X, "X"), side)
        values = T @ self._directions.T + self._offsets[None, :]
        comps = np.floor(values / self._width).astype(np.int64)
        return comps.reshape(T.shape[0], self.n_tables, self.hashes_per_table)

    def _component_row(self, x, side):
        v = self._transform_row(x, side)
        out = [
            int(math.floor((float(a @ v) + float(b)) / self._width))
            for a, b in zip(self._directions, self._offsets)
        ]
        return np.asarray(out, dtype=np.int64).reshape(
            self.n_tables, self.hashes_per_table
        )


def _binary_rows(X) -> np.ndarray:
    """Validate a binary matrix without the float64 round-trip."""
    arr = np.asarray(X)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValidationError(f"X must be 2-dimensional, got shape {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValidationError(f"X must be non-empty, got shape {arr.shape}")
    if not np.isin(arr, (0, 1)).all():
        raise DomainError("minwise hashing requires binary vectors")
    return arr != 0


class MinHashTables(ComponentHashTables):
    """Minwise components: masked argmin over all permutations at once.

    Component values are the minimizing *element index* shifted by one so
    the empty-set sentinel packs as ``0`` (radix ``universe + 1``).
    """

    def __init__(self, priorities: np.ndarray, n_tables: int, hashes_per_table: int):
        priorities = np.asarray(priorities, dtype=np.int64)
        count = n_tables * hashes_per_table
        if priorities.ndim != 2 or priorities.shape[0] != count:
            raise ValidationError(
                f"priorities must be ({count}, universe), got {priorities.shape}"
            )
        super().__init__(n_tables, hashes_per_table, radices=priorities.shape[1] + 1)
        self._priorities = priorities
        self._universe = priorities.shape[1]

    def _as_rows(self, X):
        return _binary_rows(X)

    def _check_universe(self, B: np.ndarray) -> None:
        if B.shape[1] != self._universe:
            raise ValidationError(
                f"X must have {self._universe} columns, got {B.shape[1]}"
            )

    def _components(self, X, side):
        B = _binary_rows(X)
        self._check_universe(B)
        n = B.shape[0]
        count = self.n_tables * self.hashes_per_table
        comps = np.empty((n, count), dtype=np.int64)
        # The universe size dominates all priorities, so argmin of the
        # masked array is the member with the smallest priority.
        sentinel = np.int64(self._universe)
        step = max(1, CHUNK_ELEMS // max(1, count * self._universe))
        for start in range(0, n, step):
            block = B[start:start + step]
            masked = np.where(block[:, None, :], self._priorities[None, :, :], sentinel)
            chunk = np.argmin(masked, axis=2).astype(np.int64)
            chunk[~block.any(axis=1), :] = -1  # EMPTY_SET
            comps[start:start + step] = chunk
        return (comps + 1).reshape(n, self.n_tables, self.hashes_per_table)

    def _component_row(self, x, side):
        from repro.lsh.minhash import _min_under, _support

        members = _support(np.asarray(x))
        out = [_min_under(p, members) + 1 for p in self._priorities]
        return np.asarray(out, dtype=np.int64).reshape(
            self.n_tables, self.hashes_per_table
        )


class AsymmetricMinHashTables(ComponentHashTables):
    """MH-ALSH components: minwise hashing with dummy-padded data.

    A data vector of weight ``w`` competes its real support minimum
    against the precomputed prefix minimum of the first ``M - w`` dummy
    priorities; queries hash unpadded.  Values are global element indices
    (dummies at ``universe + j``) shifted by one, radix
    ``universe + max_norm + 1``.
    """

    def __init__(
        self,
        priorities: np.ndarray,
        universe: int,
        max_norm: int,
        n_tables: int,
        hashes_per_table: int,
    ):
        priorities = np.asarray(priorities, dtype=np.int64)
        count = n_tables * hashes_per_table
        if priorities.shape != (count, universe + max_norm):
            raise ValidationError(
                f"priorities must be ({count}, {universe + max_norm}), "
                f"got {priorities.shape}"
            )
        super().__init__(n_tables, hashes_per_table, radices=universe + max_norm + 1)
        self._priorities = priorities
        self._universe = int(universe)
        self._max_norm = int(max_norm)
        # Prefix minima over the dummy block: entry j is the min (and its
        # in-block argmin) of the first j+1 dummy priorities, so padding a
        # weight-w vector is an O(1) lookup at j = (M - w) - 1.
        dummy = priorities[:, universe:]
        self._dummy_min = np.minimum.accumulate(dummy, axis=1)
        positions = np.broadcast_to(np.arange(max_norm), dummy.shape)
        self._dummy_argmin = np.maximum.accumulate(
            np.where(dummy == self._dummy_min, positions, -1), axis=1
        )

    def _as_rows(self, X):
        return _binary_rows(X)

    def _components(self, X, side):
        B = _binary_rows(X)
        if B.shape[1] != self._universe:
            raise ValidationError(
                f"X must have {self._universe} columns, got {B.shape[1]}"
            )
        n = B.shape[0]
        count = self.n_tables * self.hashes_per_table
        real = self._priorities[:, : self._universe]
        sentinel = np.int64(self._universe + self._max_norm)  # > every priority
        comps = np.empty((n, count), dtype=np.int64)
        step = max(1, CHUNK_ELEMS // max(1, count * self._universe))
        if side == "query":
            for start in range(0, n, step):
                block = B[start:start + step]
                masked = np.where(block[:, None, :], real[None, :, :], sentinel)
                chunk = np.argmin(masked, axis=2).astype(np.int64)
                chunk[~block.any(axis=1), :] = -1  # EMPTY_SET
                comps[start:start + step] = chunk
            return (comps + 1).reshape(n, self.n_tables, self.hashes_per_table)

        weights = B.sum(axis=1)
        if (weights > self._max_norm).any():
            worst = int(weights[np.argmax(weights > self._max_norm)])
            raise DomainError(
                f"data vector weight {worst} exceeds max_norm {self._max_norm}"
            )
        for start in range(0, n, step):
            block = B[start:start + step]
            masked = np.where(block[:, None, :], real[None, :, :], sentinel)
            real_arg = np.argmin(masked, axis=2).astype(np.int64)
            real_min = np.min(masked, axis=2)
            dummy_count = self._max_norm - weights[start:start + step]
            last = np.maximum(dummy_count - 1, 0)
            dummy_min = self._dummy_min[:, last].T
            dummy_arg = self._universe + self._dummy_argmin[:, last].T
            # Weight-M vectors get no dummies; priorities are distinct so
            # the real/dummy comparison never ties.
            dummy_min = np.where(dummy_count[:, None] > 0, dummy_min, sentinel)
            comps[start:start + step] = np.where(
                real_min < dummy_min, real_arg, dummy_arg
            )
        return (comps + 1).reshape(n, self.n_tables, self.hashes_per_table)

    def _component_row(self, x, side):
        from repro.lsh.minhash import _min_under, _support

        support = _support(np.asarray(x))
        out = np.empty(self.n_tables * self.hashes_per_table, dtype=np.int64)
        if side == "query":
            real = self._priorities[:, : self._universe]
            for f in range(out.size):
                out[f] = _min_under(real[f], support) + 1
            return out.reshape(self.n_tables, self.hashes_per_table)
        if support.size > self._max_norm:
            raise DomainError(
                f"data vector weight {support.size} exceeds max_norm {self._max_norm}"
            )
        dummies = np.arange(
            self._universe, self._universe + (self._max_norm - support.size)
        )
        members = np.concatenate([support, dummies])
        for f in range(out.size):
            out[f] = _min_under(self._priorities[f], members) + 1
        return out.reshape(self.n_tables, self.hashes_per_table)


class GenericHashTables(BatchHashTables):
    """Per-row fallback wrapping a family's sampled closures.

    Draws ``n_tables x hashes_per_table`` pairs in exactly the order
    ``LSHIndex`` historically did (table-major, AND components inner) and
    interns each table's tuple keys into dense ints on the data side;
    query tuples absent from the data map to :data:`MISS_KEY`.  This is
    the reference every native batch path is equivalence-tested against.
    """

    is_native = False

    def __init__(self, family, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        super().__init__(n_tables, hashes_per_table)
        self._pairs = [
            [family.sample(rng) for _ in range(hashes_per_table)]
            for _ in range(n_tables)
        ]
        self._key_ids: Optional[List[dict]] = None

    def hash_matrix(self, X, side: str = "data") -> np.ndarray:
        side = self._check_side(side)
        X = np.asarray(X)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-dimensional, got shape {X.shape}")
        keys = np.empty((X.shape[0], self.n_tables), dtype=np.int64)
        if side == "data":
            self._key_ids = [dict() for _ in range(self.n_tables)]
            for t, pairs in enumerate(self._pairs):
                ids = self._key_ids[t]
                for i in range(X.shape[0]):
                    key = tuple(pair.hash_data(X[i]) for pair in pairs)
                    keys[i, t] = ids.setdefault(key, len(ids))
            return keys
        if self._key_ids is None:
            raise ParameterError(
                "generic hashing requires hashing the data side before queries"
            )
        for t, pairs in enumerate(self._pairs):
            ids = self._key_ids[t]
            for i in range(X.shape[0]):
                key = tuple(pair.hash_query(X[i]) for pair in pairs)
                keys[i, t] = ids.get(key, int(MISS_KEY))
        return keys

    def hash_rows(self, X, side: str = "data") -> np.ndarray:
        return self.hash_matrix(X, side)
