"""Measured collision-probability curves for (A)LSH families.

The function every LSH analysis starts from is ``P(t) = Pr[collision]``
at inner product ``t``; the ρ exponents, index plans, and Figure 2 are
all derived from it.  This module measures the full curve of any family
by planting pairs across a similarity grid, so implemented families can
be compared to their closed forms (where known) point by point — the
curve-level generalization of :mod:`repro.lsh.empirical_rho`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily
from repro.lsh.empirical_rho import planted_pair_at
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class CollisionCurve:
    """A measured collision curve, optionally with a reference form."""

    similarities: np.ndarray
    probabilities: np.ndarray
    trials: int
    reference: Optional[np.ndarray] = None

    @property
    def standard_errors(self) -> np.ndarray:
        p = self.probabilities
        return np.sqrt(p * (1 - p) / self.trials)

    @property
    def max_deviation(self) -> float:
        """Largest |measured - reference|; NaN when no reference given."""
        if self.reference is None:
            return float("nan")
        return float(np.abs(self.probabilities - self.reference).max())

    def is_monotone_increasing(self, slack: float = 0.0) -> bool:
        """Whether the measured curve increases in similarity (up to slack).

        Monotonicity in the inner product is the property that makes a
        family usable for IPS at all.
        """
        diffs = np.diff(self.probabilities)
        return bool((diffs >= -slack).all())


def measure_collision_curve(
    family: AsymmetricLSHFamily,
    similarities: Sequence[float],
    d: int = 32,
    trials: int = 1500,
    pairs: int = 6,
    data_norm: float = 1.0,
    closed_form: Optional[Callable[[float], float]] = None,
    seed: SeedLike = None,
) -> CollisionCurve:
    """Monte-Carlo ``P(t)`` over a similarity grid.

    Args:
        family: the (A)LSH family under test.
        similarities: grid of inner products (each ``|t| <= data_norm``).
        d / trials / pairs / data_norm: sampling configuration; hash
            functions are shared across grid points so curves are smooth.
        closed_form: optional reference ``t -> P(t)`` evaluated alongside.
        seed: reproducibility seed.
    """
    similarities = np.asarray(list(similarities), dtype=np.float64)
    if similarities.size == 0:
        raise ParameterError("similarities grid must be non-empty")
    if trials < 1 or pairs < 1:
        raise ParameterError("trials and pairs must be >= 1")
    rng = ensure_rng(seed)
    planted = [
        [planted_pair_at(float(t), d, rng, data_norm) for _ in range(pairs)]
        for t in similarities
    ]
    hits = np.zeros(similarities.size, dtype=np.int64)
    for _ in range(trials):
        h = family.sample(rng)
        for gi, grid_pairs in enumerate(planted):
            for p, q in grid_pairs:
                hits[gi] += h.collides(p, q)
    probabilities = hits / (trials * pairs)
    reference = None
    if closed_form is not None:
        reference = np.array([closed_form(float(t)) for t in similarities])
    return CollisionCurve(
        similarities=similarities,
        probabilities=probabilities,
        trials=trials * pairs,
        reference=reference,
    )
