"""Cross-polytope LSH of Andoni et al. [7].

The practical stand-in for the optimal data-dependent sphere LSH [9] the
paper plugs into its Section 4.1 reduction: apply a random rotation and
hash a unit vector to the closest signed standard basis vector
(``2d`` possible values).  Asymptotically this achieves the optimal sphere
exponent ``rho = 1 / (2 c'^2 - 1)``; we use the exact formula from [9] in
:mod:`repro.lsh.rho` and this family for concrete index runs.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import ParameterError
from repro.lsh.base import LSHFamily

#: QR factorizations keyed by (dimension, generator state); bounded FIFO.
_ROTATION_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_ROTATION_CACHE_MAX = 128


def sample_rotation(rng: np.random.Generator, d: int) -> np.ndarray:
    """Draw a random rotation (QR of a ``d x d`` Gaussian), caching the QR.

    The Gaussian is *always* drawn so the generator stream advances
    exactly as without the cache; only the O(d^3) factorization is reused
    when the same (dimension, pre-draw generator state) recurs — e.g.
    repeated ``sample()`` sweeps over identical seeds during
    amplification studies.  The returned array is shared and marked
    read-only.
    """
    state = rng.bit_generator.state
    key = (int(d), repr(state))
    gaussian = rng.normal(size=(d, d))
    cached = _ROTATION_CACHE.get(key)
    if cached is not None:
        _ROTATION_CACHE.move_to_end(key)
        return cached
    rotation, _ = np.linalg.qr(gaussian)
    rotation.flags.writeable = False
    while len(_ROTATION_CACHE) >= _ROTATION_CACHE_MAX:
        _ROTATION_CACHE.popitem(last=False)
    _ROTATION_CACHE[key] = rotation
    return rotation


class CrossPolytopeLSH(LSHFamily):
    """Random-rotation cross-polytope hash on (approximately) unit vectors.

    Hash values are integers in ``[0, 2d)``: value ``2i`` means the rotated
    vector was closest to ``+e_i``, value ``2i + 1`` closest to ``-e_i``.
    """

    def __init__(self, d: int):
        if d < 1:
            raise ParameterError(f"d must be >= 1, got {d}")
        self.d = int(d)

    def sample_function(self, rng: np.random.Generator):
        rotation = sample_rotation(rng, self.d)

        def h(x, _r=rotation):
            rotated = _r @ np.asarray(x, dtype=np.float64)
            i = int(np.argmax(np.abs(rotated)))
            return 2 * i + (1 if rotated[i] < 0 else 0)

        return h

    def sample_batch(self, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        from repro.lsh.batch_hash import CrossPolytopeTables

        count = n_tables * hashes_per_table
        rotations = np.stack([sample_rotation(rng, self.d) for _ in range(count)])
        return CrossPolytopeTables(rotations, n_tables, hashes_per_table)
