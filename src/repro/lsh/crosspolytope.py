"""Cross-polytope LSH of Andoni et al. [7].

The practical stand-in for the optimal data-dependent sphere LSH [9] the
paper plugs into its Section 4.1 reduction: apply a random rotation and
hash a unit vector to the closest signed standard basis vector
(``2d`` possible values).  Asymptotically this achieves the optimal sphere
exponent ``rho = 1 / (2 c'^2 - 1)``; we use the exact formula from [9] in
:mod:`repro.lsh.rho` and this family for concrete index runs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.lsh.base import LSHFamily


class CrossPolytopeLSH(LSHFamily):
    """Random-rotation cross-polytope hash on (approximately) unit vectors.

    Hash values are integers in ``[0, 2d)``: value ``2i`` means the rotated
    vector was closest to ``+e_i``, value ``2i + 1`` closest to ``-e_i``.
    """

    def __init__(self, d: int):
        if d < 1:
            raise ParameterError(f"d must be >= 1, got {d}")
        self.d = int(d)

    def sample_function(self, rng: np.random.Generator):
        gaussian = rng.normal(size=(self.d, self.d))
        rotation, _ = np.linalg.qr(gaussian)

        def h(x, _r=rotation):
            rotated = _r @ np.asarray(x, dtype=np.float64)
            i = int(np.argmax(np.abs(rotated)))
            return 2 * i + (1 if rotated[i] < 0 else 0)

        return h
