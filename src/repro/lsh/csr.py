"""CSR-style bucket tables: hash buckets as three flat integer arrays.

A hash table used by an LSH index is a map ``key -> list of row ids``.
The dict-of-lists representation makes candidate generation a Python
loop per (query, table); this module stores each table in compressed
sparse row form instead —

* ``keys``:    sorted unique bucket keys, shape ``(n_buckets,)``
* ``offsets``: bucket boundaries into ``indices``, shape ``(n_buckets + 1,)``
* ``indices``: row ids grouped by bucket, ascending inside each bucket

— so looking up *every* query key of a block against *every* table is a
handful of :func:`numpy.searchsorted` calls, and gathering the matched
buckets is one vectorized ragged gather.  Candidate generation for a
whole query block never touches a Python-level per-query loop.

Bucket contents come out ascending (``from_keys`` uses a stable argsort
over ascending row ids), which is what makes the CSR path's candidate
sets bit-for-bit reproducible and ties in downstream argmax resolution
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted unique values of a flat int64 array.

    Equivalent to ``np.unique`` but via sort + neighbor mask: numpy >= 2.3
    routes integer ``np.unique`` through a hash table that is an order of
    magnitude slower than its own sort at the array sizes the candidate
    pipeline produces, and every hot path here needs the sorted order
    anyway.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return values
    ordered = np.sort(values)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


@dataclass(frozen=True)
class CSRBucketTable:
    """One hash table in CSR layout.  Build with :meth:`from_keys`."""

    keys: np.ndarray     # (n_buckets,) int64, sorted ascending, unique
    offsets: np.ndarray  # (n_buckets + 1,) int64
    indices: np.ndarray  # (n_entries,) int64, grouped by bucket

    @classmethod
    def from_keys(cls, keys: np.ndarray, rows: np.ndarray = None) -> "CSRBucketTable":
        """Bucket rows by their int64 ``keys`` (one key per entry).

        ``rows`` supplies the row id stored for each entry; by default
        entry ``i`` stores row ``i``.  Passing explicit rows lets several
        logical tables share one physical table (fuse the table number
        into the key and repeat the row ids per table).  The stable
        argsort preserves input order inside each bucket, so feed rows
        ascending per logical table to keep bucket contents ascending.
        """
        keys = np.asarray(keys, dtype=np.int64)
        order = np.argsort(keys, kind="stable")  # stable => ascending ids per bucket
        sorted_keys = keys[order]
        if keys.size == 0:
            unique = keys
            offsets = np.zeros(1, dtype=np.int64)
        else:
            keep = np.empty(sorted_keys.size, dtype=bool)
            keep[0] = True
            np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=keep[1:])
            unique = sorted_keys[keep]
            offsets = np.append(np.flatnonzero(keep), keys.size).astype(np.int64)
        indices = order if rows is None else np.asarray(rows, dtype=np.int64)[order]
        return cls(keys=unique, offsets=offsets, indices=indices.astype(np.int64))

    @property
    def n_buckets(self) -> int:
        return int(self.keys.size)

    def lookup(self, query_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Slice bounds ``(starts, ends)`` into ``indices`` per query key.

        Missing keys get an empty slice (``start == end == 0``).  Fully
        vectorized over any shape of ``query_keys``; the returned arrays
        share its shape.
        """
        query_keys = np.asarray(query_keys, dtype=np.int64)
        if self.keys.size == 0:
            zeros = np.zeros(query_keys.shape, dtype=np.int64)
            return zeros, zeros.copy()
        pos = np.searchsorted(self.keys, query_keys)
        pos_safe = np.minimum(pos, self.keys.size - 1)
        hit = self.keys[pos_safe] == query_keys
        starts = np.where(hit, self.offsets[pos_safe], 0)
        ends = np.where(hit, self.offsets[pos_safe + 1], 0)
        return starts, ends

    def gather(self, starts: np.ndarray, ends: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenate the slices ``indices[starts[i]:ends[i]]`` for all i.

        Returns ``(rows, lengths)`` where ``rows`` is the flat
        concatenation and ``lengths[i] = ends[i] - starts[i]`` tells the
        caller how to attribute rows back to slice ``i``.  This is the
        vectorized ragged gather that replaces per-bucket list appends.
        """
        starts = np.asarray(starts, dtype=np.int64).ravel()
        ends = np.asarray(ends, dtype=np.int64).ravel()
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), lengths
        # Positions each slice starts at inside the output.
        out_starts = np.cumsum(lengths) - lengths
        flat = (
            np.arange(total, dtype=np.int64)
            - np.repeat(out_starts, lengths)
            + np.repeat(starts, lengths)
        )
        return self.indices[flat], lengths


def merge_candidates_per_query(
    query_ids: np.ndarray, rows: np.ndarray, n_queries: int, n_rows: int
) -> list:
    """Deduplicate ``(query, row)`` pairs into per-query sorted id arrays.

    ``query_ids`` and ``rows`` are parallel flat arrays (one entry per
    gathered bucket member).  Returns a list of ``n_queries`` sorted,
    unique int64 arrays.  Vectorized: one sort-based dedup over a fused
    64-bit key, then one boundary search, instead of a Python set-union
    per query.
    """
    empty = np.empty(0, dtype=np.int64)
    if rows.size == 0:
        return [empty] * n_queries
    # Power-of-two stride: fuse/split become shifts and masks instead of
    # 64-bit multiplies and divisions.
    shift = np.int64(max(1, int(n_rows - 1).bit_length()))
    fused = (query_ids.astype(np.int64) << shift) | rows
    fused = sorted_unique(fused)  # sorted: by query id, then row id
    ur = fused & ((np.int64(1) << shift) - 1)
    bounds = np.searchsorted(
        fused, np.arange(n_queries + 1, dtype=np.int64) << shift
    )
    return [
        ur[bounds[qi]:bounds[qi + 1]] if bounds[qi] < bounds[qi + 1] else empty
        for qi in range(n_queries)
    ]
