"""Section 4.1's asymmetric LSH for signed IPS (the "DATA-DEP" curve).

Composition of the asymmetric ball-to-sphere map of [39]
(:class:`repro.embeddings.mips_reductions.NeyshaburSrebroTransform`) with
a sphere LSH.  Plugging in the *optimal data-dependent* sphere LSH of
Andoni-Razenshteyn [9] yields the paper's exponent

    rho = (1 - s/U) / (1 + (1 - 2c) s/U)

(equation (3)); the closed form lives in :func:`repro.lsh.rho.rho_datadep`.
For concrete runs this class uses cross-polytope LSH (the practical
optimal sphere family [7] the paper itself recommends), or hyperplane LSH
when ``sphere="hyperplane"``.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.mips_reductions import NeyshaburSrebroTransform
from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily, HashFunctionPair
from repro.lsh.crosspolytope import CrossPolytopeLSH
from repro.lsh.hyperplane import HyperplaneLSH


class DataDepALSH(AsymmetricLSHFamily):
    """Asymmetric embedding into the sphere + a symmetric sphere LSH.

    Args:
        d: original vector dimension (data in the unit ball, queries in
            the ball of radius ``query_radius``).
        query_radius: the query domain radius ``U``.
        sphere: which sphere family to run: ``"crosspolytope"`` (default)
            or ``"hyperplane"``.
    """

    def __init__(self, d: int, query_radius: float = 1.0, sphere: str = "crosspolytope"):
        if d < 1:
            raise ParameterError(f"d must be >= 1, got {d}")
        self.d = int(d)
        self.transform = NeyshaburSrebroTransform(query_radius=query_radius)
        sphere_dim = self.transform.output_dimension(self.d)
        if sphere == "crosspolytope":
            self.sphere_family = CrossPolytopeLSH(sphere_dim)
        elif sphere == "hyperplane":
            self.sphere_family = HyperplaneLSH(sphere_dim)
        else:
            raise ParameterError(
                f"sphere must be 'crosspolytope' or 'hyperplane', got {sphere!r}"
            )

    def sample(self, rng: np.random.Generator) -> HashFunctionPair:
        h = self.sphere_family.sample_function(rng)

        def hash_data(x, _h=h):
            return _h(self.transform.embed_data(np.asarray(x, dtype=np.float64)))

        def hash_query(q, _h=h):
            return _h(self.transform.embed_query(np.asarray(q, dtype=np.float64)))

        return HashFunctionPair(hash_data=hash_data, hash_query=hash_query)

    def sample_batch(self, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        from repro.lsh.batch_hash import CrossPolytopeTables, SignProjectionTables
        from repro.lsh.crosspolytope import sample_rotation

        count = n_tables * hashes_per_table
        sphere_dim = self.sphere_family.d
        if isinstance(self.sphere_family, HyperplaneLSH):
            projections = rng.normal(size=(count, sphere_dim))
            return SignProjectionTables(
                projections,
                n_tables,
                hashes_per_table,
                data_transform=self.transform.embed_data_many,
                query_transform=self.transform.embed_query_many,
            )
        rotations = np.stack([sample_rotation(rng, sphere_dim) for _ in range(count)])
        return CrossPolytopeTables(
            rotations,
            n_tables,
            hashes_per_table,
            data_transform=self.transform.embed_data_many,
            query_transform=self.transform.embed_query_many,
        )
