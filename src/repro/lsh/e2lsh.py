"""E2LSH: the p-stable Euclidean hash family of Datar et al.

The symmetric substrate L2-ALSH builds on, exposed standalone so it can
be composed with any embedding and tested against its closed-form
collision probability (:func:`repro.lsh.rho.collision_prob_e2lsh`):

    h(x) = floor((a . x + b) / w),   a ~ N(0, I),  b ~ U[0, w)
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ParameterError
from repro.lsh.base import LSHFamily


class E2LSH(LSHFamily):
    """p-stable hash for Euclidean distance on ``R^d``.

    Args:
        d: dimension.
        w: bucket width; the (near, far) distances an application cares
            about should straddle ``w``.
    """

    def __init__(self, d: int, w: float = 2.0):
        if d < 1:
            raise ParameterError(f"d must be >= 1, got {d}")
        if w <= 0:
            raise ParameterError(f"w must be positive, got {w}")
        self.d = int(d)
        self.w = float(w)

    def sample_function(self, rng: np.random.Generator):
        direction = rng.normal(size=self.d)
        offset = float(rng.uniform(0.0, self.w))

        def h(x, _a=direction, _b=offset, _w=self.w):
            return int(math.floor((float(_a @ np.asarray(x, dtype=np.float64)) + _b) / _w))

        return h

    def sample_batch(self, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        from repro.lsh.batch_hash import E2LSHTables

        count = n_tables * hashes_per_table
        directions = np.empty((count, self.d))
        offsets = np.empty(count)
        # The per-function loop preserves the interleaved normal/uniform
        # draw order of sample_function.
        for f in range(count):
            directions[f] = rng.normal(size=self.d)
            offsets[f] = float(rng.uniform(0.0, self.w))
        return E2LSHTables(directions, offsets, self.w, n_tables, hashes_per_table)
