"""Empirical ρ estimation for arbitrary (A)LSH families.

The Figure 2 curves are closed forms; this module *measures* the same
quantity on the implemented hash families.  For a family and a pair of
similarities ``(s, cs)`` it plants unit-vector pairs at exactly those
inner products, estimates the collision probabilities ``P1`` (at ``s``)
and ``P2`` (at ``cs``) by Monte Carlo, and reports

    rho_hat = log(P1) / log(P2)

with a delta-method standard error.  Agreement between ``rho_hat`` and
the closed forms is the strongest end-to-end check that the concrete
implementations realize the theory the paper plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily
from repro.utils.rng import SeedLike, ensure_rng


def planted_pair_at(
    similarity: float,
    d: int,
    rng: np.random.Generator,
    data_norm: float = 1.0,
):
    """A (data, query) pair of vectors with inner product ``similarity``.

    The query is a unit vector; the data vector has norm ``data_norm``
    and inner product exactly ``similarity`` with the query (requires
    ``|similarity| <= data_norm``).
    """
    if d < 2:
        raise ParameterError(f"need d >= 2, got {d}")
    if abs(similarity) > data_norm:
        raise ParameterError(
            f"|similarity| = {abs(similarity)} exceeds data_norm = {data_norm}"
        )
    q = rng.normal(size=d)
    q /= np.linalg.norm(q)
    r = rng.normal(size=d)
    r -= (r @ q) * q
    r /= np.linalg.norm(r)
    tangent = math.sqrt(data_norm * data_norm - similarity * similarity)
    p = similarity * q + tangent * r
    return p, q


@dataclass(frozen=True)
class RhoEstimate:
    """Measured collision probabilities and the implied exponent."""

    p1: float
    p2: float
    trials: int

    @property
    def rho(self) -> float:
        if not (0.0 < self.p1 < 1.0 and 0.0 < self.p2 < 1.0):
            return float("nan")
        return math.log(self.p1) / math.log(self.p2)

    @property
    def standard_error(self) -> float:
        """Delta-method SE of ``rho`` from binomial sampling noise."""
        if not (0.0 < self.p1 < 1.0 and 0.0 < self.p2 < 1.0):
            return float("inf")
        var_p1 = self.p1 * (1 - self.p1) / self.trials
        var_p2 = self.p2 * (1 - self.p2) / self.trials
        l2 = math.log(self.p2)
        d_p1 = 1.0 / (self.p1 * l2)
        d_p2 = -math.log(self.p1) / (self.p2 * l2 * l2)
        return math.sqrt(d_p1 * d_p1 * var_p1 + d_p2 * d_p2 * var_p2)


def estimate_rho(
    family: AsymmetricLSHFamily,
    s: float,
    c: float,
    d: int = 32,
    trials: int = 2000,
    pairs: int = 8,
    data_norm: float = 1.0,
    seed: SeedLike = None,
) -> RhoEstimate:
    """Measure ``rho = log P1 / log P2`` of a family at ``(s, cs)``.

    Collision probabilities are averaged over ``pairs`` independently
    planted vector pairs (washing out any pair-specific artifacts), with
    ``trials`` sampled hash functions shared across all pairs.
    """
    if not 0.0 < c < 1.0 or not 0.0 < s <= data_norm:
        raise ParameterError(f"need 0 < c < 1 and 0 < s <= data_norm; got s={s}, c={c}")
    if trials < 1 or pairs < 1:
        raise ParameterError("trials and pairs must be >= 1")
    rng = ensure_rng(seed)
    near = [planted_pair_at(s, d, rng, data_norm) for _ in range(pairs)]
    far = [planted_pair_at(c * s, d, rng, data_norm) for _ in range(pairs)]

    hits_near = 0
    hits_far = 0
    for _ in range(trials):
        h = family.sample(rng)
        for p, q in near:
            hits_near += h.collides(p, q)
        for p, q in far:
            hits_far += h.collides(p, q)
    total = trials * pairs
    return RhoEstimate(p1=hits_near / total, p2=hits_far / total, trials=total)


def empirical_rho_curve(
    family_builder: Callable[[int], AsymmetricLSHFamily],
    s_values,
    c: float,
    d: int = 32,
    trials: int = 1500,
    data_norm: float = 1.0,
    seed: SeedLike = None,
):
    """``rho_hat`` over a grid of thresholds — the measured Figure 2 series.

    ``family_builder(d)`` constructs the family at the planted pairs'
    dimension; returns a list of (s, RhoEstimate).
    """
    rng = ensure_rng(seed)
    return [
        (float(s), estimate_rho(
            family_builder(d), s, c, d=d, trials=trials,
            data_norm=data_norm, seed=rng,
        ))
        for s in s_values
    ]
