"""Hyperplane LSH (SimHash) of Charikar [15].

One hash function is the sign of a random Gaussian projection; two vectors
collide with probability ``1 - theta / pi`` where ``theta`` is the angle
between them.  This is the classic symmetric sphere LSH that both
SIMPLE-LSH [39] and Valiant's reduction to the ±1 domain [51] build on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.lsh.base import LSHFamily


class HyperplaneLSH(LSHFamily):
    """Sign-of-random-projection hash family on ``R^d``.

    Collision probability for vectors at angle ``theta`` is
    ``1 - theta/pi``, i.e. ``1 - arccos(x.y / (|x||y|)) / pi``.
    """

    def __init__(self, d: int):
        if d < 1:
            raise ParameterError(f"d must be >= 1, got {d}")
        self.d = int(d)

    def sample_function(self, rng: np.random.Generator):
        direction = rng.normal(size=self.d)

        def h(x, _a=direction):
            return bool(float(np.dot(_a, np.asarray(x, dtype=np.float64))) >= 0.0)

        return h

    def sample_batch(self, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        from repro.lsh.batch_hash import SignProjectionTables

        # One (F, d) draw consumes the stream exactly like F size-d draws.
        projections = rng.normal(size=(n_tables * hashes_per_table, self.d))
        return SignProjectionTables(projections, n_tables, hashes_per_table)
