"""Multi-table LSH index: the OR construction as a data structure.

``LSHIndex`` samples ``n_tables`` independent AND-compositions of a base
family, buckets every data vector per table with ``hash_data``, and at
query time unions the buckets matching ``hash_query``.  This is the
standard LSH search/join engine: with amplified probabilities ``(P1^k,
P2^k)`` the expected number of false candidates per query is
``n_tables * n * P2^k`` while a true neighbor is retrieved with
probability ``1 - (1 - P1^k)^{n_tables}``.

Buckets are stored in CSR form (:mod:`repro.lsh.csr`) and hashing goes
through the batch hashing protocol (:mod:`repro.lsh.base`): when the
family implements ``sample_batch``, hashing a whole matrix is a few
vectorized kernels; otherwise the generic per-row wrapper
(:class:`repro.lsh.batch_hash.GenericHashTables`) calls the sampled
closures one row at a time — same variates, same buckets, just slower.
Candidate merging is one sort-based dedup, and candidate sets come out
**sorted**, making query results and downstream argmax tie-breaks
reproducible run to run.

The index records per-query candidate counts, the quantity the paper's
subquadratic claims are really about (candidate verification dominates the
work of an LSH join).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

# QueryStats is defined with the problem records so every backend (LSH
# or not) shares one stats type and one merge(); re-exported here for
# backwards compatibility.
from repro.core.problems import QueryStats
from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily
from repro.lsh.batch_hash import GenericHashTables
from repro.lsh.csr import CSRBucketTable, merge_candidates_per_query
from repro.obs.metrics import current_metrics
from repro.obs.trace import span
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix


def supports_multiprobe(index) -> bool:
    """Does ``index`` accept ``n_probes`` in ``candidates_batch``?"""
    return hasattr(index, "bits_per_table")


def block_candidates(index, Q_block, n_probes: int = 0) -> List[np.ndarray]:
    """Candidate lists for a query block via the fastest API ``index`` offers.

    The one place that knows the candidate-provider surface: batch CSR
    indexes get one ``candidates_batch`` call (with multiprobe when they
    support it), anything else falls back to per-row ``candidates``.
    Raises :class:`~repro.errors.ParameterError` when ``n_probes`` is
    requested from an index that cannot multiprobe.
    """
    probing = supports_multiprobe(index)
    if n_probes and not probing:
        raise ParameterError(
            f"index {type(index).__name__} does not support multiprobe "
            f"(n_probes={n_probes})"
        )
    if hasattr(index, "candidates_batch"):
        if probing:
            return index.candidates_batch(Q_block, n_probes=n_probes)
        return index.candidates_batch(Q_block)
    return [index.candidates(Q_block[qi]) for qi in range(Q_block.shape[0])]


class LSHIndex:
    """Bucketed multi-table index over a data matrix.

    Args:
        family: base (A)LSH family; AND-amplified internally.
        n_tables: OR width ``L``.
        hashes_per_table: AND width ``k``.
        seed: reproducibility seed for the sampled hash functions.
        use_batch: when True (default) use the family's native
            ``sample_batch`` hasher if it provides one; False forces the
            generic per-row closure path.  Both consume the seed's
            variates in the same order, so the two modes build identical
            buckets — the switch exists for equivalence tests and
            benchmarks.
    """

    def __init__(
        self,
        family: AsymmetricLSHFamily,
        n_tables: int = 8,
        hashes_per_table: int = 4,
        seed: SeedLike = None,
        use_batch: bool = True,
    ):
        if n_tables < 1:
            raise ParameterError(f"n_tables must be >= 1, got {n_tables}")
        if hashes_per_table < 1:
            raise ParameterError(f"hashes_per_table must be >= 1, got {hashes_per_table}")
        self.family = family
        self.n_tables = int(n_tables)
        self.hashes_per_table = int(hashes_per_table)
        rng = ensure_rng(seed)
        hasher = family.sample_batch(rng, self.hashes_per_table, self.n_tables) if use_batch else None
        if hasher is None:
            hasher = GenericHashTables(family, rng, self.hashes_per_table, self.n_tables)
        self._hasher = hasher
        self._tables: Optional[List[CSRBucketTable]] = None
        self._data: Optional[np.ndarray] = None
        self.stats = QueryStats()

    @property
    def is_built(self) -> bool:
        return self._tables is not None

    @property
    def uses_batch_hashing(self) -> bool:
        """True when hashing runs through a family-native vectorized path."""
        return self._hasher.is_native

    @property
    def n(self) -> int:
        if self._data is None:
            raise ParameterError("index not built yet")
        return self._data.shape[0]

    def build(self, P) -> "LSHIndex":
        """Hash every row of ``P`` into every table."""
        P = check_matrix(P, "P")
        with span("hash", side="data", n_rows=P.shape[0]):
            keys = self._hasher.hash_matrix(P, side="data")
        self._tables = [
            CSRBucketTable.from_keys(keys[:, t]) for t in range(self.n_tables)
        ]
        metrics = current_metrics()
        if metrics.enabled:
            occupancy = metrics.histogram("lsh.bucket_occupancy")
            for table in self._tables:
                occupancy.observe_array(np.diff(table.offsets))
        self._data = P
        return self

    def candidates(self, q) -> np.ndarray:
        """Union of bucket contents over all tables, **sorted** ascending.

        Sorted output makes the candidate order (and any downstream
        argmax tie-break) deterministic, unlike a set-iteration order.
        """
        q = np.asarray(q, dtype=np.float64)
        return self.candidates_batch(q.reshape(1, -1))[0]

    def candidates_batch(self, Q) -> List[np.ndarray]:
        """Sorted candidate arrays for every row of ``Q``.

        One ``hash_matrix`` call per block, then CSR lookups/gathers per
        table and a single fused sort-based dedup — no Python loop per
        query on native batch families.
        """
        if self._tables is None:
            raise ParameterError("index not built yet; call build() first")
        Q = check_matrix(Q, "Q", allow_empty=True)
        n_queries = Q.shape[0]
        if n_queries == 0:
            return []
        with span("hash", side="query", n_rows=n_queries):
            query_keys = self._hasher.hash_matrix(Q, side="query")
        all_rows = []
        all_query_ids = []
        query_range = np.arange(n_queries, dtype=np.int64)
        for t, table in enumerate(self._tables):
            starts, ends = table.lookup(query_keys[:, t])
            rows, lengths = table.gather(starts, ends)
            if rows.size:
                all_rows.append(rows)
                all_query_ids.append(np.repeat(query_range, lengths))
        if not all_rows:
            self.stats.record_batch(n_queries, 0, 0)
            return [np.empty(0, dtype=np.int64)] * n_queries
        rows = np.concatenate(all_rows)
        query_ids = np.concatenate(all_query_ids)
        merged = merge_candidates_per_query(query_ids, rows, n_queries, self.n)
        self.stats.record_batch(
            n_queries, rows.size, sum(c.size for c in merged)
        )
        return merged

    def query(self, q, threshold: float, signed: bool = True) -> Optional[int]:
        """Best candidate with (absolute) inner product >= threshold, or None.

        Verifies candidates exactly against the stored data, the standard
        LSH "filter then verify" step.
        """
        idx = self.candidates(q)
        if idx.size == 0:
            return None
        q = np.asarray(q, dtype=np.float64)
        values = self._data[idx] @ q
        if not signed:
            values = np.abs(values)
        best = int(np.argmax(values))
        if values[best] >= threshold:
            return int(idx[best])
        return None

    def query_all_above(self, q, threshold: float, signed: bool = True) -> np.ndarray:
        """All candidate indices whose verified inner product clears the bar."""
        idx = self.candidates(q)
        if idx.size == 0:
            return idx
        q = np.asarray(q, dtype=np.float64)
        values = self._data[idx] @ q
        if not signed:
            values = np.abs(values)
        return idx[values >= threshold]
