"""Multi-table LSH index: the OR construction as a data structure.

``LSHIndex`` samples ``n_tables`` independent AND-compositions of a base
family, buckets every data vector per table with ``hash_data``, and at
query time unions the buckets matching ``hash_query``.  This is the
standard LSH search/join engine: with amplified probabilities ``(P1^k,
P2^k)`` the expected number of false candidates per query is
``n_tables * n * P2^k`` while a true neighbor is retrieved with
probability ``1 - (1 - P1^k)^{n_tables}``.

The index records per-query candidate counts, the quantity the paper's
subquadratic claims are really about (candidate verification dominates the
work of an LSH join).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ParameterError
from repro.lsh.amplification import AndConstruction
from repro.lsh.base import AsymmetricLSHFamily
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix


@dataclass
class QueryStats:
    """Work accounting for index queries."""

    queries: int = 0
    candidates: int = 0
    unique_candidates: int = 0

    def record(self, n_candidates: int, n_unique: int) -> None:
        self.queries += 1
        self.candidates += n_candidates
        self.unique_candidates += n_unique

    @property
    def candidates_per_query(self) -> float:
        return self.candidates / self.queries if self.queries else 0.0


class LSHIndex:
    """Bucketed multi-table index over a data matrix.

    Args:
        family: base (A)LSH family; AND-amplified internally.
        n_tables: OR width ``L``.
        hashes_per_table: AND width ``k``.
        seed: reproducibility seed for the sampled hash functions.
    """

    def __init__(
        self,
        family: AsymmetricLSHFamily,
        n_tables: int = 8,
        hashes_per_table: int = 4,
        seed: SeedLike = None,
    ):
        if n_tables < 1:
            raise ParameterError(f"n_tables must be >= 1, got {n_tables}")
        if hashes_per_table < 1:
            raise ParameterError(f"hashes_per_table must be >= 1, got {hashes_per_table}")
        self.family = family
        self.n_tables = int(n_tables)
        self.hashes_per_table = int(hashes_per_table)
        rng = ensure_rng(seed)
        amplified = AndConstruction(family, hashes_per_table)
        self._pairs = [amplified.sample(rng) for _ in range(self.n_tables)]
        self._tables: Optional[List[dict]] = None
        self._data: Optional[np.ndarray] = None
        self.stats = QueryStats()

    @property
    def is_built(self) -> bool:
        return self._tables is not None

    @property
    def n(self) -> int:
        if self._data is None:
            raise ParameterError("index not built yet")
        return self._data.shape[0]

    def build(self, P) -> "LSHIndex":
        """Hash every row of ``P`` into every table."""
        P = check_matrix(P, "P")
        tables = []
        for pair in self._pairs:
            buckets = defaultdict(list)
            for i, row in enumerate(P):
                buckets[pair.hash_data(row)].append(i)
            tables.append(dict(buckets))
        self._tables = tables
        self._data = P
        return self

    def candidates(self, q) -> np.ndarray:
        """Union of bucket contents over all tables (deduplicated indices)."""
        if self._tables is None:
            raise ParameterError("index not built yet; call build() first")
        q = np.asarray(q, dtype=np.float64)
        raw = 0
        seen = set()
        for pair, table in zip(self._pairs, self._tables):
            bucket = table.get(pair.hash_query(q))
            if bucket:
                raw += len(bucket)
                seen.update(bucket)
        self.stats.record(raw, len(seen))
        return np.fromiter(seen, dtype=np.int64, count=len(seen))

    def query(self, q, threshold: float, signed: bool = True) -> Optional[int]:
        """Best candidate with (absolute) inner product >= threshold, or None.

        Verifies candidates exactly against the stored data, the standard
        LSH "filter then verify" step.
        """
        idx = self.candidates(q)
        if idx.size == 0:
            return None
        q = np.asarray(q, dtype=np.float64)
        values = self._data[idx] @ q
        if not signed:
            values = np.abs(values)
        best = int(np.argmax(values))
        if values[best] >= threshold:
            return int(idx[best])
        return None

    def query_all_above(self, q, threshold: float, signed: bool = True) -> np.ndarray:
        """All candidate indices whose verified inner product clears the bar."""
        idx = self.candidates(q)
        if idx.size == 0:
            return idx
        q = np.asarray(q, dtype=np.float64)
        values = self._data[idx] @ q
        if not signed:
            values = np.abs(values)
        return idx[values >= threshold]
