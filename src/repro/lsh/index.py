"""Multi-table LSH index: the OR construction as a data structure.

``LSHIndex`` samples ``n_tables`` independent AND-compositions of a base
family, buckets every data vector per table with ``hash_data``, and at
query time unions the buckets matching ``hash_query``.  This is the
standard LSH search/join engine: with amplified probabilities ``(P1^k,
P2^k)`` the expected number of false candidates per query is
``n_tables * n * P2^k`` while a true neighbor is retrieved with
probability ``1 - (1 - P1^k)^{n_tables}``.

Buckets are stored in CSR form (:mod:`repro.lsh.csr`): hashing stays a
Python call per (vector, table) — the family interface is arbitrary
Python — but bucket contents are flat int64 arrays, candidate merging is
one sort-based dedup, and candidate sets come out **sorted**, making query
results and downstream argmax tie-breaks reproducible run to run.

The index records per-query candidate counts, the quantity the paper's
subquadratic claims are really about (candidate verification dominates the
work of an LSH join).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ParameterError
from repro.lsh.amplification import AndConstruction
from repro.lsh.base import AsymmetricLSHFamily
from repro.lsh.csr import CSRBucketTable, sorted_unique
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix


@dataclass
class QueryStats:
    """Work accounting for index queries.

    ``candidates`` counts every bucket member inspected (with multiplicity
    across tables); ``unique_candidates`` counts them after per-query
    deduplication.  When multiprobe is used, ``probe_candidates`` and
    ``probed_buckets`` attribute the members and non-empty buckets that
    came from *probed* (bit-flipped) keys rather than exact keys, so
    ablation benches can report probe efficiency separately.
    """

    queries: int = 0
    candidates: int = 0
    unique_candidates: int = 0
    probe_candidates: int = 0
    probed_buckets: int = 0

    def record(
        self,
        n_candidates: int,
        n_unique: int,
        n_probe_candidates: int = 0,
        n_probed_buckets: int = 0,
    ) -> None:
        self.queries += 1
        self.candidates += n_candidates
        self.unique_candidates += n_unique
        self.probe_candidates += n_probe_candidates
        self.probed_buckets += n_probed_buckets

    def record_batch(
        self,
        n_queries: int,
        n_candidates: int,
        n_unique: int,
        n_probe_candidates: int = 0,
        n_probed_buckets: int = 0,
    ) -> None:
        """Accumulate one whole query block's worth of counts at once."""
        self.queries += int(n_queries)
        self.candidates += int(n_candidates)
        self.unique_candidates += int(n_unique)
        self.probe_candidates += int(n_probe_candidates)
        self.probed_buckets += int(n_probed_buckets)

    def reset(self) -> None:
        """Zero all counters (an index reused across joins starts fresh)."""
        self.queries = 0
        self.candidates = 0
        self.unique_candidates = 0
        self.probe_candidates = 0
        self.probed_buckets = 0

    @property
    def candidates_per_query(self) -> float:
        return self.candidates / self.queries if self.queries else 0.0

    @property
    def probe_fraction(self) -> float:
        """Fraction of inspected candidates that multiprobe contributed."""
        return self.probe_candidates / self.candidates if self.candidates else 0.0


class LSHIndex:
    """Bucketed multi-table index over a data matrix.

    Args:
        family: base (A)LSH family; AND-amplified internally.
        n_tables: OR width ``L``.
        hashes_per_table: AND width ``k``.
        seed: reproducibility seed for the sampled hash functions.
    """

    def __init__(
        self,
        family: AsymmetricLSHFamily,
        n_tables: int = 8,
        hashes_per_table: int = 4,
        seed: SeedLike = None,
    ):
        if n_tables < 1:
            raise ParameterError(f"n_tables must be >= 1, got {n_tables}")
        if hashes_per_table < 1:
            raise ParameterError(f"hashes_per_table must be >= 1, got {hashes_per_table}")
        self.family = family
        self.n_tables = int(n_tables)
        self.hashes_per_table = int(hashes_per_table)
        rng = ensure_rng(seed)
        amplified = AndConstruction(family, hashes_per_table)
        self._pairs = [amplified.sample(rng) for _ in range(self.n_tables)]
        #: Per table: hash key -> dense bucket id, resolved against the
        #: CSR arrays below.  The dict maps the family's arbitrary
        #: hashable keys onto int64 ids once at build time.
        self._key_ids: Optional[List[dict]] = None
        self._tables: Optional[List[CSRBucketTable]] = None
        self._data: Optional[np.ndarray] = None
        self.stats = QueryStats()

    @property
    def is_built(self) -> bool:
        return self._tables is not None

    @property
    def n(self) -> int:
        if self._data is None:
            raise ParameterError("index not built yet")
        return self._data.shape[0]

    def build(self, P) -> "LSHIndex":
        """Hash every row of ``P`` into every table."""
        P = check_matrix(P, "P")
        key_ids: List[dict] = []
        tables: List[CSRBucketTable] = []
        for pair in self._pairs:
            ids: dict = {}
            row_keys = np.empty(P.shape[0], dtype=np.int64)
            for i, row in enumerate(P):
                key = pair.hash_data(row)
                row_keys[i] = ids.setdefault(key, len(ids))
            key_ids.append(ids)
            tables.append(CSRBucketTable.from_keys(row_keys))
        self._key_ids = key_ids
        self._tables = tables
        self._data = P
        return self

    def _bucket_slices(self, q: np.ndarray):
        """Per-table (indices, start, end) for the query's buckets."""
        for pair, ids, table in zip(self._pairs, self._key_ids, self._tables):
            bucket_id = ids.get(pair.hash_query(q), -1)
            if bucket_id < 0:
                continue
            start = int(table.offsets[bucket_id])
            end = int(table.offsets[bucket_id + 1])
            if end > start:
                yield table.indices[start:end]

    def candidates(self, q) -> np.ndarray:
        """Union of bucket contents over all tables, **sorted** ascending.

        Sorted output makes the candidate order (and any downstream
        argmax tie-break) deterministic, unlike a set-iteration order.
        """
        if self._tables is None:
            raise ParameterError("index not built yet; call build() first")
        q = np.asarray(q, dtype=np.float64)
        buckets = list(self._bucket_slices(q))
        if not buckets:
            self.stats.record(0, 0)
            return np.empty(0, dtype=np.int64)
        merged = sorted_unique(np.concatenate(buckets))
        self.stats.record(sum(b.size for b in buckets), merged.size)
        return merged

    def candidates_batch(self, Q) -> List[np.ndarray]:
        """Sorted candidate arrays for every row of ``Q``.

        Hashing remains per-query Python (the family interface is a
        Python callable) but bucket retrieval and merging run on the CSR
        arrays; provided so joins can drive the generic index through
        the same block-oriented path as :class:`repro.lsh.batch.BatchSignIndex`.
        """
        Q = check_matrix(Q, "Q")
        return [self.candidates(Q[qi]) for qi in range(Q.shape[0])]

    def query(self, q, threshold: float, signed: bool = True) -> Optional[int]:
        """Best candidate with (absolute) inner product >= threshold, or None.

        Verifies candidates exactly against the stored data, the standard
        LSH "filter then verify" step.
        """
        idx = self.candidates(q)
        if idx.size == 0:
            return None
        q = np.asarray(q, dtype=np.float64)
        values = self._data[idx] @ q
        if not signed:
            values = np.abs(values)
        best = int(np.argmax(values))
        if values[best] >= threshold:
            return int(idx[best])
        return None

    def query_all_above(self, q, threshold: float, signed: bool = True) -> np.ndarray:
        """All candidate indices whose verified inner product clears the bar."""
        idx = self.candidates(q)
        if idx.size == 0:
            return idx
        q = np.asarray(q, dtype=np.float64)
        values = self._data[idx] @ q
        if not signed:
            values = np.abs(values)
        return idx[values >= threshold]
