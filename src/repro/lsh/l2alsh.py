"""L2-ALSH(SL): the original asymmetric LSH for MIPS [45].

Composes the norm-power extension :class:`repro.embeddings.mips_reductions.
L2ALSHTransform` with a p-stable Euclidean hash (E2LSH):

    h(v) = floor((a . v + b) / w),   a ~ N(0, I),  b ~ U[0, w)

After the transform, squared Euclidean distance between an embedded data
vector and an embedded query is ``1 + m/4 - 2 scale (x.q)/|q| +
|scale x|^{2^{m+1}}``, monotone (up to the vanishing last term) in the
inner product, so the E2LSH gap translates into a MIPS gap.
"""

from __future__ import annotations

import math

import numpy as np

from repro.embeddings.mips_reductions import L2ALSHTransform
from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily, HashFunctionPair


class L2ALSH(AsymmetricLSHFamily):
    """Shrivastava-Li asymmetric LSH for MIPS.

    Args:
        d: original vector dimension.
        scale: pre-scale taking the longest data vector to the transform's
            ``max_norm_target`` (obtain via ``transform.fit_scale(P)``).
        m: number of norm-power coordinates (the paper's recommendation is
            ``m = 3``).
        w: E2LSH bucket width.
        max_norm_target: the ``U_0 < 1`` target (paper recommends 0.83).
    """

    def __init__(
        self,
        d: int,
        scale: float,
        m: int = 3,
        w: float = 2.5,
        max_norm_target: float = 0.83,
    ):
        if d < 1:
            raise ParameterError(f"d must be >= 1, got {d}")
        if scale <= 0:
            raise ParameterError(f"scale must be positive, got {scale}")
        if w <= 0:
            raise ParameterError(f"w must be positive, got {w}")
        self.d = int(d)
        self.scale = float(scale)
        self.w = float(w)
        self.transform = L2ALSHTransform(m=m, max_norm_target=max_norm_target)

    @classmethod
    def fit(cls, P, m: int = 3, w: float = 2.5, max_norm_target: float = 0.83) -> "L2ALSH":
        """Construct with the scale fitted to a data matrix."""
        transform = L2ALSHTransform(m=m, max_norm_target=max_norm_target)
        P = np.asarray(P, dtype=np.float64)
        return cls(
            d=P.shape[1],
            scale=transform.fit_scale(P),
            m=m,
            w=w,
            max_norm_target=max_norm_target,
        )

    def sample(self, rng: np.random.Generator) -> HashFunctionPair:
        extended_d = self.transform.output_dimension(self.d)
        direction = rng.normal(size=extended_d)
        offset = float(rng.uniform(0.0, self.w))

        def hash_data(x, _a=direction, _b=offset):
            v = self.transform.embed_data(np.asarray(x, dtype=np.float64), self.scale)
            return int(math.floor((float(_a @ v) + _b) / self.w))

        def hash_query(q, _a=direction, _b=offset):
            v = self.transform.embed_query(np.asarray(q, dtype=np.float64))
            return int(math.floor((float(_a @ v) + _b) / self.w))

        return HashFunctionPair(hash_data=hash_data, hash_query=hash_query)

    def sample_batch(self, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        from repro.lsh.batch_hash import E2LSHTables

        count = n_tables * hashes_per_table
        extended_d = self.transform.output_dimension(self.d)
        directions = np.empty((count, extended_d))
        offsets = np.empty(count)
        # The per-function loop preserves the interleaved normal/uniform
        # draw order of sample().
        for f in range(count):
            directions[f] = rng.normal(size=extended_d)
            offsets[f] = float(rng.uniform(0.0, self.w))
        return E2LSHTables(
            directions, offsets, self.w, n_tables, hashes_per_table,
            data_transform=lambda P: self.transform.embed_data_matrix(P, self.scale),
            query_transform=self.transform.embed_query_matrix,
        )
