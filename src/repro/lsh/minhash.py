"""MinHash and the asymmetric minwise hashing (MH-ALSH) of [46].

Classic MinHash collides two sets with probability exactly their Jaccard
similarity.  Shrivastava and Li's MH-ALSH [46] adapts it to *inner
products of binary vectors* (set intersection sizes): data sets are padded
with dummy elements up to a fixed maximum size ``M`` while queries are
left unpadded, so the collision probability becomes

    Pr[collision] = a / (M + |q| - a),     a = |x ∩ q| = x . q

which is monotone in the inner product ``a`` for fixed ``|q|`` — the
asymmetry buys exactly the norm-independence plain MinHash lacks.  This is
the third curve ("MH-ALSH") of the paper's Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DomainError, ParameterError
from repro.lsh.base import AsymmetricLSHFamily, HashFunctionPair, LSHFamily

#: Hash value reserved for the empty set.
EMPTY_SET = -1


def _min_under(priorities: np.ndarray, members: np.ndarray):
    """Index with the smallest priority among ``members`` (MinHash core)."""
    if members.size == 0:
        return EMPTY_SET
    return int(members[np.argmin(priorities[members])])


def _support(x) -> np.ndarray:
    x = np.asarray(x)
    if not np.isin(x, (0, 1)).all():
        raise DomainError("minwise hashing requires binary vectors")
    return np.flatnonzero(x)


class MinHash(LSHFamily):
    """Symmetric minwise hashing over ``{0,1}^universe``.

    Collision probability of two non-empty sets is their Jaccard
    similarity ``|x ∩ y| / |x ∪ y|``; two empty sets always collide.
    """

    def __init__(self, universe: int):
        if universe < 1:
            raise ParameterError(f"universe must be >= 1, got {universe}")
        self.universe = int(universe)

    def sample_function(self, rng: np.random.Generator):
        priorities = rng.permutation(self.universe)

        def h(x, _pri=priorities):
            return _min_under(_pri, _support(x))

        return h

    def sample_batch(self, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        from repro.lsh.batch_hash import MinHashTables

        priorities = np.stack(
            [rng.permutation(self.universe) for _ in range(n_tables * hashes_per_table)]
        )
        return MinHashTables(priorities, n_tables, hashes_per_table)


class AsymmetricMinHash(AsymmetricLSHFamily):
    """MH-ALSH [46]: minwise hashing with dummy-padded data vectors.

    Args:
        universe: dimension of the binary vectors.
        max_norm: the padding target ``M``; every data vector must satisfy
            ``|x| <= M``.  A data vector of weight ``w`` is augmented with
            ``M - w`` dummy elements (a fixed prefix of a disjoint dummy
            universe), queries are hashed unpadded.
    """

    def __init__(self, universe: int, max_norm: int):
        if universe < 1:
            raise ParameterError(f"universe must be >= 1, got {universe}")
        if not 1 <= max_norm <= universe:
            raise ParameterError(
                f"max_norm must be in [1, universe={universe}], got {max_norm}"
            )
        self.universe = int(universe)
        self.max_norm = int(max_norm)

    def sample(self, rng: np.random.Generator) -> HashFunctionPair:
        # One shared priority order over real + dummy elements; dummies
        # occupy indices universe .. universe + max_norm - 1.
        priorities = rng.permutation(self.universe + self.max_norm)

        def hash_data(x, _pri=priorities, _m=self.max_norm, _u=self.universe):
            support = _support(x)
            if support.size > _m:
                raise DomainError(
                    f"data vector weight {support.size} exceeds max_norm {_m}"
                )
            dummies = np.arange(_u, _u + (_m - support.size))
            return _min_under(_pri, np.concatenate([support, dummies]))

        def hash_query(q, _pri=priorities):
            return _min_under(_pri, _support(q))

        return HashFunctionPair(hash_data=hash_data, hash_query=hash_query)

    def sample_batch(self, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        from repro.lsh.batch_hash import AsymmetricMinHashTables

        priorities = np.stack(
            [
                rng.permutation(self.universe + self.max_norm)
                for _ in range(n_tables * hashes_per_table)
            ]
        )
        return AsymmetricMinHashTables(
            priorities, self.universe, self.max_norm, n_tables, hashes_per_table
        )

    @staticmethod
    def collision_probability(inner_product: int, query_weight: int, max_norm: int) -> float:
        """Closed form ``a / (M + |q| - a)`` for a data/query pair."""
        if inner_product < 0 or query_weight < 0 or max_norm < 1:
            raise ParameterError("arguments must be non-negative (max_norm >= 1)")
        denominator = max_norm + query_weight - inner_product
        if denominator <= 0:
            return 1.0
        return inner_product / denominator
