"""Index planning: choose (k, L) from the collision theory.

The standard LSH parameter recipe, automated.  Given collision
probabilities ``P1`` (pairs to find) and ``P2`` (pairs to avoid) of one
hash, data size ``n`` and a target failure probability ``delta``:

* AND width: ``k = ceil(ln n / ln(1/P2))`` drives the expected number of
  false candidates per table to ``n P2^k <= 1``;
* OR width: ``L = ceil(ln(1/delta) / P1^k)`` makes a true pair collide in
  at least one table with probability ``>= 1 - delta``;
* the resulting ``L`` is ``Theta(n^rho ln(1/delta))`` with
  ``rho = ln P1 / ln P2`` — the query exponent the paper's Figure 2
  compares across schemes.

``plan_datadep`` instantiates the recipe for the Section 4.1 scheme from
its closed-form collision probabilities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.lsh.rho import collision_prob_hyperplane


@dataclass(frozen=True)
class IndexPlan:
    """A planned multi-table index configuration."""

    k: int                      # AND width (bits/hashes per table)
    n_tables: int               # OR width L
    p1: float                   # per-hash collision prob of target pairs
    p2: float                   # per-hash collision prob of avoid pairs
    n: int
    delta: float

    @property
    def rho(self) -> float:
        return math.log(self.p1) / math.log(self.p2)

    @property
    def per_table_hit_probability(self) -> float:
        """``P1^k``: a target pair survives one table with this probability."""
        return self.p1 ** self.k

    @property
    def success_probability(self) -> float:
        """``1 - (1 - P1^k)^L``: a target pair found in some table."""
        return 1.0 - (1.0 - self.per_table_hit_probability) ** self.n_tables

    @property
    def expected_false_candidates(self) -> float:
        """``L * n * P2^k``: avoid-pairs surfacing per query, in expectation."""
        return self.n_tables * self.n * self.p2 ** self.k


def plan(
    n: int,
    p1: float,
    p2: float,
    delta: float = 0.1,
    max_k: int = 62,
    max_tables: int = 4096,
) -> IndexPlan:
    """The standard (k, L) recipe from per-hash collision probabilities.

    Raises :class:`repro.errors.ParameterError` when no gap exists
    (``p1 <= p2``) or the recipe would exceed the ``max_*`` guards.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if not 0.0 < p2 < p1 < 1.0:
        raise ParameterError(
            f"need 0 < P2 < P1 < 1 for a usable gap, got P1={p1}, P2={p2}"
        )
    if not 0.0 < delta < 1.0:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    k = max(1, math.ceil(math.log(max(n, 2)) / math.log(1.0 / p2)))
    if k > max_k:
        raise ParameterError(
            f"planned k = {k} exceeds max_k = {max_k}; the gap is too weak "
            f"for this n (P2 = {p2})"
        )
    hit = p1 ** k
    tables = max(1, math.ceil(math.log(1.0 / delta) / hit))
    if tables > max_tables:
        raise ParameterError(
            f"planned L = {tables} exceeds max_tables = {max_tables}; "
            f"rho = {math.log(p1) / math.log(p2):.3f} is too close to 1 at n = {n}"
        )
    return IndexPlan(k=k, n_tables=tables, p1=p1, p2=p2, n=n, delta=delta)


def plan_datadep(
    n: int,
    s: float,
    c: float,
    query_radius: float = 1.0,
    delta: float = 0.1,
    **limits,
) -> IndexPlan:
    """Plan a DATA-DEP (Section 4.1) index for a ``(cs, s)`` workload.

    Uses the scheme's hyperplane collision form on the embedded sphere:
    ``P(t) = 1 - arccos(t / U) / pi`` at inner product ``t``.
    """
    if query_radius <= 0:
        raise ParameterError(f"query_radius must be positive, got {query_radius}")
    ratio = s / query_radius
    if not 0.0 < ratio <= 1.0:
        raise ParameterError(f"need 0 < s/U <= 1, got {ratio}")
    if not 0.0 < c < 1.0:
        raise ParameterError(f"c must be in (0, 1), got {c}")
    p1 = collision_prob_hyperplane(ratio)
    p2 = collision_prob_hyperplane(c * ratio)
    return plan(n, p1, p2, delta=delta, **limits)
