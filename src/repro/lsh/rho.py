"""Closed-form ρ exponents — the series behind the paper's Figure 2.

Figure 2 compares, as a function of the (normalized) threshold ``s`` at a
fixed approximation ``c``:

* ``DATA-DEP`` — this paper's Section 4.1 bound, equation (3):
  ``rho = (1 - s/U) / (1 + (1 - 2c) s/U)``, from composing the asymmetric
  sphere embedding with the optimal data-dependent sphere LSH [9].
* ``SIMP`` — SIMPLE-LSH of [39]:
  ``rho = log(1 - arccos(s)/pi) / log(1 - arccos(cs)/pi)``.
* ``MH-ALSH`` — asymmetric minwise hashing [46], binary data only.  With
  sets normalized so data weight and query weight equal the padding target
  ``M``, the collision probability at normalized inner product ``t`` is
  ``t / (2 - t)``, giving ``rho = log(s/(2-s)) / log(cs/(2-cs))``.

``rho_l2alsh`` additionally evaluates the original L2-ALSH(SL) exponent
[45] (not one of Figure 2's curves, provided for completeness and the
ablation benches).
"""

from __future__ import annotations

import math

from scipy.stats import norm as _normal

from repro.errors import ParameterError


def _check_sc(s: float, c: float) -> None:
    if not 0.0 < s < 1.0:
        raise ParameterError(f"s must be in (0, 1), got {s}")
    if not 0.0 < c < 1.0:
        raise ParameterError(f"c must be in (0, 1), got {c}")


def rho_datadep(s: float, c: float, query_radius: float = 1.0) -> float:
    """Equation (3): ``(1 - s/U) / (1 + (1 - 2c) s/U)``.

    ``s`` is the inner-product threshold with data in the unit ball and
    queries in the ball of radius ``U = query_radius``; requires
    ``s <= U``.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError(f"c must be in (0, 1), got {c}")
    if query_radius <= 0:
        raise ParameterError(f"query_radius must be positive, got {query_radius}")
    ratio = s / query_radius
    if not 0.0 < ratio < 1.0:
        raise ParameterError(f"need 0 < s/U < 1, got {ratio}")
    return (1.0 - ratio) / (1.0 + (1.0 - 2.0 * c) * ratio)


def collision_prob_hyperplane(t: float) -> float:
    """Hyperplane LSH collision probability ``1 - arccos(t)/pi`` at cosine t."""
    if not -1.0 <= t <= 1.0:
        raise ParameterError(f"t must be in [-1, 1], got {t}")
    return 1.0 - math.acos(t) / math.pi


def rho_simple_lsh(s: float, c: float) -> float:
    """SIMPLE-LSH exponent [39] at threshold ``s`` and approximation ``c``."""
    _check_sc(s, c)
    p1 = collision_prob_hyperplane(s)
    p2 = collision_prob_hyperplane(c * s)
    return math.log(p1) / math.log(p2)


def collision_prob_mh_alsh(t: float) -> float:
    """MH-ALSH collision probability ``t / (2 - t)`` at normalized overlap t.

    Normalization: binary vectors with weights equal to the padding target
    ``M``; ``t = a / M`` where ``a`` is the intersection size.
    """
    if not 0.0 <= t <= 1.0:
        raise ParameterError(f"t must be in [0, 1], got {t}")
    return t / (2.0 - t)


def rho_mh_alsh(s: float, c: float) -> float:
    """MH-ALSH exponent [46] (binary data) at threshold s, approximation c."""
    _check_sc(s, c)
    p1 = collision_prob_mh_alsh(s)
    p2 = collision_prob_mh_alsh(c * s)
    return math.log(p1) / math.log(p2)


def collision_prob_e2lsh(distance: float, w: float) -> float:
    """p-stable E2LSH collision probability at Euclidean ``distance``.

    ``p(r) = 1 - 2 Phi(-w/r) - (2 r / (sqrt(2 pi) w)) (1 - e^{-w^2/(2 r^2)})``
    (Datar et al.); monotone decreasing in ``r``.
    """
    if w <= 0:
        raise ParameterError(f"w must be positive, got {w}")
    if distance < 0:
        raise ParameterError(f"distance must be >= 0, got {distance}")
    if distance == 0:
        return 1.0
    ratio = w / distance
    term = (2.0 / (math.sqrt(2.0 * math.pi) * ratio)) * (1.0 - math.exp(-(ratio ** 2) / 2.0))
    return 1.0 - 2.0 * float(_normal.cdf(-ratio)) - term


def _l2alsh_distance_sq(t: float, m: int, u0: float) -> float:
    """Embedded squared distance at normalized inner product ``t``."""
    return 1.0 + m / 4.0 - 2.0 * u0 * t + u0 ** (2 ** (m + 1))


def rho_l2alsh(s: float, c: float, m: int = 3, u0: float = 0.83, w: float = 2.5) -> float:
    """L2-ALSH(SL) exponent [45] with explicit parameters ``(m, U0, w)``.

    ``s`` is the normalized threshold (data scaled into the ``U0`` ball,
    unit queries).  Smaller is better; the paper's Figure 2 predecessor
    papers tune ``(m, U0, w)`` per ``(s, c)`` — see
    :func:`rho_l2alsh_tuned`.
    """
    _check_sc(s, c)
    if m < 1 or not 0.0 < u0 < 1.0 or w <= 0:
        raise ParameterError(f"bad parameters m={m}, u0={u0}, w={w}")
    r1 = math.sqrt(_l2alsh_distance_sq(s, m, u0))
    r2 = math.sqrt(_l2alsh_distance_sq(c * s, m, u0))
    p1 = collision_prob_e2lsh(r1, w)
    p2 = collision_prob_e2lsh(r2, w)
    return math.log(p1) / math.log(p2)


def rho_l2alsh_tuned(s: float, c: float) -> float:
    """L2-ALSH exponent minimized over a small ``(m, U0, w)`` grid."""
    _check_sc(s, c)
    best = float("inf")
    for m in (2, 3, 4):
        for u0 in (0.75, 0.83, 0.9):
            for w in (1.5, 2.0, 2.5, 3.0):
                best = min(best, rho_l2alsh(s, c, m=m, u0=u0, w=w))
    return best


def rho_sphere_optimal(r: float, c_prime: float) -> float:
    """Andoni-Razenshteyn sphere exponent ``1 / (2 c'^2 - 1)`` [9].

    ``r`` is the near distance (unused by the formula but kept for
    signature clarity with callers that derive ``c_prime`` from it).
    """
    if c_prime <= math.sqrt(0.5):
        raise ParameterError(f"need c' > 1/sqrt(2), got {c_prime}")
    return 1.0 / (2.0 * c_prime * c_prime - 1.0)


def figure2_series(c: float, s_values) -> dict:
    """The three Figure 2 curves evaluated on a grid of thresholds.

    Returns a dict with keys ``"s"``, ``"DATA-DEP"``, ``"SIMP"``,
    ``"MH-ALSH"`` mapping to lists; this is exactly what the Figure 2
    bench prints.
    """
    out = {"s": [], "DATA-DEP": [], "SIMP": [], "MH-ALSH": []}
    for s in s_values:
        out["s"].append(float(s))
        out["DATA-DEP"].append(rho_datadep(s, c))
        out["SIMP"].append(rho_simple_lsh(s, c))
        out["MH-ALSH"].append(rho_mh_alsh(s, c))
    return out
