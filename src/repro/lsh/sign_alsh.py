"""Sign-ALSH: Shrivastava and Li's improved asymmetric LSH for MIPS.

The successor of L2-ALSH from the same authors ("Improved Asymmetric LSH
for MIPS", UAI 2015), part of the ALSH line the paper's Section 4.1
improves on.  Data vectors (pre-scaled so ``|x| <= U0 < 1``) are extended
with norm-power *completion* coordinates and hashed by a hyperplane sign:

    P(x) = (x, 1/2 - |x|^2, 1/2 - |x|^4, ..., 1/2 - |x|^{2^m})
    Q(q) = (q / |q|, 0, 0, ..., 0)

Then ``P(x) . Q(q) = x.q / |q|`` exactly, while
``|P(x)|^2 = |x|^2 + sum_i (1/2 - |x|^{2^i})^2 -> m/4 + ...`` is almost
independent of ``|x|``, so the hyperplane collision probability is
(nearly) a monotone function of the inner product — the same mechanism as
SIMPLE-LSH with a different completion.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DomainError, ParameterError
from repro.lsh.base import AsymmetricLSHFamily, HashFunctionPair
from repro.utils.validation import check_matrix, check_vector


class SignALSHTransform:
    """The Sign-ALSH norm-completion extension.

    Args:
        m: number of completion coordinates (the paper recommends 2-3).
        max_norm_target: pre-scale target ``U0`` (recommended 0.75).
    """

    def __init__(self, m: int = 2, max_norm_target: float = 0.75):
        if m < 1:
            raise ParameterError(f"m must be >= 1, got {m}")
        if not 0.0 < max_norm_target < 1.0:
            raise ParameterError(
                f"max_norm_target must be in (0, 1), got {max_norm_target}"
            )
        self.m = int(m)
        self.max_norm_target = float(max_norm_target)

    def output_dimension(self, d: int) -> int:
        return d + self.m

    def fit_scale(self, P) -> float:
        P = check_matrix(P, "P")
        max_norm = float(np.linalg.norm(P, axis=1).max())
        if max_norm == 0:
            raise DomainError("data must contain a non-zero vector")
        return self.max_norm_target / max_norm

    def embed_data(self, x, scale: float) -> np.ndarray:
        x = check_vector(x, "x")
        v = x * float(scale)
        norm_sq = float(v @ v)
        if norm_sq > 1.0 + 1e-9:
            raise DomainError("scaled data vector escapes the unit ball")
        tail = np.empty(self.m)
        power = norm_sq
        for i in range(self.m):
            tail[i] = 0.5 - power
            power = power * power
        return np.concatenate([v, tail])

    def embed_query(self, q) -> np.ndarray:
        q = check_vector(q, "q")
        norm = float(np.linalg.norm(q))
        if norm == 0:
            raise DomainError("query must be non-zero")
        return np.concatenate([q / norm, np.zeros(self.m)])

    def embed_data_many(self, P, scale: float) -> np.ndarray:
        """Vectorized :meth:`embed_data` over the rows of ``P``."""
        P = check_matrix(P, "P")
        V = P * float(scale)
        norm_sq = np.einsum("ij,ij->i", V, V)
        if norm_sq.max(initial=0.0) > 1.0 + 1e-9:
            raise DomainError("scaled data vector escapes the unit ball")
        tails = np.empty((P.shape[0], self.m))
        power = norm_sq
        for i in range(self.m):
            tails[:, i] = 0.5 - power
            power = power * power
        return np.concatenate([V, tails], axis=1)

    def embed_query_many(self, Q) -> np.ndarray:
        """Vectorized :meth:`embed_query` over the rows of ``Q``."""
        Q = check_matrix(Q, "Q")
        norms = np.linalg.norm(Q, axis=1)
        if (norms == 0).any():
            raise DomainError("query must be non-zero")
        return np.concatenate(
            [Q / norms[:, None], np.zeros((Q.shape[0], self.m))], axis=1
        )


class SignALSH(AsymmetricLSHFamily):
    """Sign-ALSH hash family: the transform plus one hyperplane sign."""

    def __init__(self, d: int, scale: float, m: int = 2, max_norm_target: float = 0.75):
        if d < 1:
            raise ParameterError(f"d must be >= 1, got {d}")
        if scale <= 0:
            raise ParameterError(f"scale must be positive, got {scale}")
        self.d = int(d)
        self.scale = float(scale)
        self.transform = SignALSHTransform(m=m, max_norm_target=max_norm_target)

    @classmethod
    def fit(cls, P, m: int = 2, max_norm_target: float = 0.75) -> "SignALSH":
        transform = SignALSHTransform(m=m, max_norm_target=max_norm_target)
        P = np.asarray(P, dtype=np.float64)
        return cls(
            d=P.shape[1],
            scale=transform.fit_scale(P),
            m=m,
            max_norm_target=max_norm_target,
        )

    def sample(self, rng: np.random.Generator) -> HashFunctionPair:
        direction = rng.normal(size=self.transform.output_dimension(self.d))

        def hash_data(x, _a=direction):
            v = self.transform.embed_data(np.asarray(x, dtype=np.float64), self.scale)
            return bool(float(_a @ v) >= 0.0)

        def hash_query(q, _a=direction):
            v = self.transform.embed_query(np.asarray(q, dtype=np.float64))
            return bool(float(_a @ v) >= 0.0)

        return HashFunctionPair(hash_data=hash_data, hash_query=hash_query)

    def sample_batch(self, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        from repro.lsh.batch_hash import SignProjectionTables

        extended_d = self.transform.output_dimension(self.d)
        projections = rng.normal(size=(n_tables * hashes_per_table, extended_d))
        return SignProjectionTables(
            projections,
            n_tables,
            hashes_per_table,
            data_transform=lambda P: self.transform.embed_data_many(P, self.scale),
            query_transform=self.transform.embed_query_many,
        )


def rho_sign_alsh(s: float, c: float, m: int = 2, u0: float = 0.75) -> float:
    """Sign-ALSH exponent at normalized threshold ``s``, approximation ``c``.

    The embedded cosine at normalized inner product ``t`` (data scaled to
    norm exactly ``u0``, unit query) is
    ``u0 t / sqrt(u0^2 + sum_i (1/2 - u0^{2^{i+1}})^2)``; hyperplane
    collision probabilities then give
    ``rho = log(1 - acos(cos1)/pi) / log(1 - acos(cos2)/pi)``.
    """
    if not 0.0 < s < 1.0 or not 0.0 < c < 1.0:
        raise ParameterError(f"need s, c in (0, 1); got s={s}, c={c}")
    if m < 1 or not 0.0 < u0 < 1.0:
        raise ParameterError(f"bad parameters m={m}, u0={u0}")
    norm_sq = u0 * u0
    power = norm_sq
    tail_sq = 0.0
    for _ in range(m):
        tail_sq += (0.5 - power) ** 2
        power = power * power
    denom = math.sqrt(norm_sq + tail_sq)

    def prob(t: float) -> float:
        cosine = max(-1.0, min(1.0, u0 * t / denom))
        return 1.0 - math.acos(cosine) / math.pi

    return math.log(prob(s)) / math.log(prob(c * s))
