"""SIMPLE-LSH of Neyshabur and Srebro [39] (the "SIMP" curve of Figure 2).

Data in the unit ball is completed onto the unit sphere with
``x -> (x, sqrt(1 - |x|^2))``, queries (assumed on the unit sphere) are
zero-padded, and hyperplane LSH is applied; inner products are preserved
so the collision probability at inner product ``t`` is
``1 - arccos(t) / pi``, giving

    rho = log(1 - arccos(s)/pi) / log(1 - arccos(cs)/pi).

Although the completion differs between data and queries, the underlying
hash is one hyperplane applied to both — the scheme is an LSH in the
(ball data, sphere query) domain pair.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.mips_reductions import SimpleLSHTransform
from repro.errors import ParameterError
from repro.lsh.base import AsymmetricLSHFamily, HashFunctionPair


class SimpleALSH(AsymmetricLSHFamily):
    """SIMPLE-LSH: sphere completion plus one hyperplane sign."""

    def __init__(self, d: int):
        if d < 1:
            raise ParameterError(f"d must be >= 1, got {d}")
        self.d = int(d)
        self.transform = SimpleLSHTransform()

    def sample(self, rng: np.random.Generator) -> HashFunctionPair:
        direction = rng.normal(size=self.d + 1)

        def hash_data(x, _a=direction):
            v = self.transform.embed_data(np.asarray(x, dtype=np.float64))
            return bool(float(_a @ v) >= 0.0)

        def hash_query(q, _a=direction):
            v = self.transform.embed_query(np.asarray(q, dtype=np.float64))
            return bool(float(_a @ v) >= 0.0)

        return HashFunctionPair(hash_data=hash_data, hash_query=hash_query)

    def sample_batch(self, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        from repro.lsh.batch_hash import SignProjectionTables

        projections = rng.normal(size=(n_tables * hashes_per_table, self.d + 1))
        return SignProjectionTables(
            projections,
            n_tables,
            hashes_per_table,
            data_transform=self.transform.embed_data_many,
            query_transform=self.transform.embed_query_many,
        )
