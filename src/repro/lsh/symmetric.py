"""Section 4.2: a symmetric LSH for signed IPS on coinciding domains.

Neyshabur and Srebro showed no symmetric LSH exists when data and query
domains are the same ball — but the obstruction is entirely the pairs
``p == q``.  Completing every vector onto the sphere with an *incoherent
companion* (same map for data and queries) preserves inner products up to
``eps`` for all ``p != q``, after which any symmetric sphere LSH applies.
The collision bounds deliberately do not cover identical pairs; callers
solving ``(cs, s)`` IPS should first check whether the query itself is in
the input set (``query_is_self_match`` below).
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.incoherent_map import SymmetricSphereCompletion
from repro.errors import ParameterError
from repro.lsh.base import HashFunctionPair, LSHFamily
from repro.lsh.crosspolytope import CrossPolytopeLSH
from repro.lsh.hyperplane import HyperplaneLSH


class SymmetricIPSHash(LSHFamily):
    """Symmetric LSH for inner products of distinct unit-ball vectors.

    Args:
        d: vector dimension.
        eps: additive inner-product error of the completion; the effective
            thresholds for an ``(cs, s)`` application become
            ``(cs + eps, s - eps)``.
        sphere: ``"hyperplane"`` (default; collision probabilities follow
            the closed form ``1 - arccos(t)/pi``) or ``"crosspolytope"``.
        precision_bits: quantization width of the companion keying.
    """

    def __init__(
        self,
        d: int,
        eps: float = 0.05,
        sphere: str = "hyperplane",
        precision_bits: int = 16,
    ):
        if d < 1:
            raise ParameterError(f"d must be >= 1, got {d}")
        self.d = int(d)
        self.completion = SymmetricSphereCompletion(eps=eps, precision_bits=precision_bits)
        sphere_dim = self.completion.output_dimension(self.d)
        if sphere == "hyperplane":
            self.sphere_family = HyperplaneLSH(sphere_dim)
        elif sphere == "crosspolytope":
            self.sphere_family = CrossPolytopeLSH(sphere_dim)
        else:
            raise ParameterError(
                f"sphere must be 'hyperplane' or 'crosspolytope', got {sphere!r}"
            )

    @property
    def eps(self) -> float:
        return self.completion.eps

    def sample_function(self, rng: np.random.Generator):
        h = self.sphere_family.sample_function(rng)

        def hash_any(x, _h=h):
            return _h(self.completion.embed(np.asarray(x, dtype=np.float64)))

        return hash_any

    def sample_batch(self, rng: np.random.Generator, hashes_per_table: int, n_tables: int):
        from repro.lsh.batch_hash import CrossPolytopeTables, SignProjectionTables
        from repro.lsh.crosspolytope import sample_rotation

        count = n_tables * hashes_per_table
        sphere_dim = self.sphere_family.d
        embed = self.completion.embed_many
        if isinstance(self.sphere_family, HyperplaneLSH):
            projections = rng.normal(size=(count, sphere_dim))
            return SignProjectionTables(
                projections, n_tables, hashes_per_table,
                data_transform=embed, query_transform=embed,
            )
        rotations = np.stack([sample_rotation(rng, sphere_dim) for _ in range(count)])
        return CrossPolytopeTables(
            rotations, n_tables, hashes_per_table,
            data_transform=embed, query_transform=embed,
        )


def query_is_self_match(P: np.ndarray, q: np.ndarray, s: float) -> bool:
    """The paper's pre-step: is the query itself an above-threshold answer?

    The symmetric LSH gives no collision guarantee for ``p == q``; a
    ``(cs, s)`` search must therefore first test whether ``q`` appears in
    the data set with ``q . q >= s`` and answer ``q`` directly if so.
    """
    q = np.asarray(q, dtype=np.float64)
    if float(q @ q) < s:
        return False
    P = np.asarray(P, dtype=np.float64)
    return bool(np.any(np.all(np.isclose(P, q[None, :]), axis=1)))
