"""Maximum inner product search engines.

The paper's search-problem counterpart of IPS join (its introduction's
"MIPS" [43, 45]).  Engines under a common interface:

* :class:`ExactMIPS` — the linear-scan baseline (with exact top-k).
* :class:`ConeTreeMIPS` — the branch-and-bound cone/ball tree of
  Ram and Gray [43]: exact answers, pruning via an inner-product upper
  bound per subtree; the practical exact index the paper's related work
  discusses.
* :class:`LSHMIPS` — approximate MIPS through a DATA-DEP ALSH index
  (Section 4.1's construction as a search engine).
* :class:`SketchMIPS` — approximate unsigned MIPS through the Section
  4.3 sketch structure.
"""

from repro.mips.base import MIPSAnswer, MIPSEngine
from repro.mips.conetree import ConeTreeMIPS
from repro.mips.exact import ExactMIPS
from repro.mips.lsh_engine import LSHMIPS
from repro.mips.sketch_engine import SketchMIPS

__all__ = [
    "MIPSAnswer",
    "MIPSEngine",
    "ExactMIPS",
    "ConeTreeMIPS",
    "LSHMIPS",
    "SketchMIPS",
]
