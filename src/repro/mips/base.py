"""Common interface for MIPS engines."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ParameterError
from repro.utils.validation import check_matrix, check_vector


@dataclass(frozen=True)
class MIPSAnswer:
    """One MIPS answer: the data index found and its exact inner product.

    ``work`` counts the exact inner products the engine evaluated to
    produce the answer (the comparable effort measure across engines).
    """

    index: int
    value: float
    work: int = 0


class MIPSEngine(abc.ABC):
    """A maximum inner product search engine over a fixed data matrix."""

    def __init__(self, P):
        P = check_matrix(P, "P")
        self._P = P
        self.n, self.d = P.shape

    @property
    def data(self) -> np.ndarray:
        return self._P

    def _check_query(self, q) -> np.ndarray:
        q = check_vector(q, "q")
        if q.size != self.d:
            raise ParameterError(f"expected query dimension {self.d}, got {q.size}")
        return q

    @abc.abstractmethod
    def query(self, q) -> MIPSAnswer:
        """Best (approximate) inner-product match for one query."""

    def query_batch(self, Q) -> List[MIPSAnswer]:
        """Answers for every row of ``Q``; entry ``j`` equals ``query(Q[j])``.

        The default loops; engines with a vectorized path override it.
        """
        Q = check_matrix(Q, "Q", allow_empty=True)
        if Q.shape[0] and Q.shape[1] != self.d:
            raise ParameterError(
                f"expected query dimension {self.d}, got {Q.shape[1]}"
            )
        return [self.query(q) for q in Q]

    def top_k(self, q, k: int) -> List[MIPSAnswer]:
        """Top-k retrieval; engines override when they can do better.

        The default re-queries after masking is not generally possible, so
        the fallback is an exact scan — correct for every engine, fast
        only for exact ones.
        """
        q = self._check_query(q)
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        values = self._P @ q
        k = min(k, self.n)
        order = np.argpartition(-values, k - 1)[:k]
        order = order[np.argsort(-values[order])]
        return [
            MIPSAnswer(index=int(i), value=float(values[i]), work=self.n)
            for i in order
        ]
