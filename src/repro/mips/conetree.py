"""Cone/ball-tree MIPS of Ram and Gray [43] — exact, branch-and-bound.

The related-work index the paper contrasts its results against: a ball
tree over the data where each node stores its centroid ``mu`` and radius
``R`` (max distance of a member from the centroid), giving the
inner-product upper bound

    max_{p in node} q . p  <=  q . mu + ||q|| R

(from Cauchy-Schwarz: ``q.(p - mu) <= ||q|| ||p - mu||``).  A query
descends best-bound-first and prunes every subtree whose bound cannot
beat the best value found so far — exact answers, and on low-dimensional
or clustered data far fewer inner products than the scan.  Like all exact
methods (the paper, Section 1.2), it degrades to a scan under the curse
of dimensionality, which the work counters make observable.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ParameterError
from repro.mips.base import MIPSAnswer, MIPSEngine
from repro.utils.rng import SeedLike, ensure_rng


class _Node:
    __slots__ = ("indices", "center", "radius", "left", "right")

    def __init__(self, indices: np.ndarray, center: np.ndarray, radius: float):
        self.indices = indices
        self.center = center
        self.radius = radius
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class ConeTreeMIPS(MIPSEngine):
    """Exact MIPS with ball-tree branch-and-bound pruning.

    Args:
        P: data matrix.
        leaf_size: scan nodes at or below this size directly.
        seed: seed for the split-pivot choice (the tree shape is
            randomized; answers are always exact).
    """

    def __init__(self, P, leaf_size: int = 16, seed: SeedLike = None):
        super().__init__(P)
        if leaf_size < 1:
            raise ParameterError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = int(leaf_size)
        self._rng = ensure_rng(seed)
        self.root = self._build(np.arange(self.n))
        self._nodes_visited = 0
        self._nodes_pruned = 0

    def _make_node(self, indices: np.ndarray) -> _Node:
        points = self._P[indices]
        center = points.mean(axis=0)
        radius = float(np.linalg.norm(points - center, axis=1).max(initial=0.0))
        return _Node(indices, center, radius)

    def _build(self, indices: np.ndarray) -> _Node:
        node = self._make_node(indices)
        if indices.size <= self.leaf_size or node.radius == 0.0:
            return node
        points = self._P[indices]
        # Classic two-pivot split: a = farthest from a random point,
        # b = farthest from a; assign by nearer pivot.
        probe = points[int(self._rng.integers(indices.size))]
        a = points[int(np.argmax(np.linalg.norm(points - probe, axis=1)))]
        b = points[int(np.argmax(np.linalg.norm(points - a, axis=1)))]
        to_a = np.linalg.norm(points - a, axis=1)
        to_b = np.linalg.norm(points - b, axis=1)
        go_left = to_a <= to_b
        # Guard against degenerate splits (all points identical to a pivot).
        if go_left.all() or not go_left.any():
            half = indices.size // 2
            go_left = np.zeros(indices.size, dtype=bool)
            go_left[:half] = True
        node.left = self._build(indices[go_left])
        node.right = self._build(indices[~go_left])
        return node

    @staticmethod
    def _bound(node: _Node, q: np.ndarray, q_norm: float) -> float:
        """Upper bound on ``q . p`` over the node's points."""
        return float(q @ node.center) + q_norm * node.radius

    def query(self, q) -> MIPSAnswer:
        q = self._check_query(q)
        q_norm = float(np.linalg.norm(q))
        best_value = -np.inf
        best_index = -1
        work = 0
        self._nodes_visited = 0
        self._nodes_pruned = 0

        stack: List = [(self._bound(self.root, q, q_norm), self.root)]
        while stack:
            bound, node = stack.pop()
            if bound <= best_value:
                self._nodes_pruned += 1
                continue
            self._nodes_visited += 1
            if node.is_leaf:
                values = self._P[node.indices] @ q
                work += node.indices.size
                local = int(np.argmax(values))
                if values[local] > best_value:
                    best_value = float(values[local])
                    best_index = int(node.indices[local])
                continue
            children = []
            for child in (node.left, node.right):
                children.append((self._bound(child, q, q_norm), child))
            # Push the more promising child last so it pops first.
            children.sort(key=lambda item: item[0])
            stack.extend(children)
        return MIPSAnswer(index=best_index, value=best_value, work=work)

    def top_k(self, q, k: int) -> List[MIPSAnswer]:
        """Exact top-k by branch and bound with a k-th-best pruning bar.

        Same traversal as :meth:`query`, but a subtree is only pruned when
        its bound cannot beat the *k-th best* value found so far; results
        come back sorted by decreasing inner product.
        """
        import heapq

        q = self._check_query(q)
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        k = min(k, self.n)
        q_norm = float(np.linalg.norm(q))
        # Min-heap of (value, index) holding the current best k.
        heap: List = []
        work = 0
        stack: List = [(self._bound(self.root, q, q_norm), self.root)]
        while stack:
            bound, node = stack.pop()
            if len(heap) == k and bound <= heap[0][0]:
                continue
            if node.is_leaf:
                values = self._P[node.indices] @ q
                work += node.indices.size
                for value, index in zip(values, node.indices):
                    item = (float(value), int(index))
                    if len(heap) < k:
                        heapq.heappush(heap, item)
                    elif item > heap[0]:
                        heapq.heapreplace(heap, item)
                continue
            children = [
                (self._bound(child, q, q_norm), child)
                for child in (node.left, node.right)
            ]
            children.sort(key=lambda item: item[0])
            stack.extend(children)
        ranked = sorted(heap, reverse=True)
        return [
            MIPSAnswer(index=index, value=value, work=work)
            for value, index in ranked
        ]

    @property
    def last_nodes_visited(self) -> int:
        """Nodes expanded by the most recent query."""
        return self._nodes_visited

    @property
    def last_nodes_pruned(self) -> int:
        """Subtrees pruned by the most recent query."""
        return self._nodes_pruned
