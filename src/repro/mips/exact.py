"""Exact linear-scan MIPS: the baseline every index is measured against."""

from __future__ import annotations

import numpy as np

from repro.mips.base import MIPSAnswer, MIPSEngine


class ExactMIPS(MIPSEngine):
    """Argmax inner product by one BLAS matrix-vector product."""

    def query(self, q) -> MIPSAnswer:
        q = self._check_query(q)
        values = self._P @ q
        best = int(np.argmax(values))
        return MIPSAnswer(index=best, value=float(values[best]), work=self.n)
