"""Approximate MIPS through the Section 4.1 ALSH index."""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.lsh.datadep import DataDepALSH
from repro.lsh.index import LSHIndex
from repro.mips.base import MIPSAnswer, MIPSEngine
from repro.utils.rng import SeedLike


class LSHMIPS(MIPSEngine):
    """DATA-DEP ALSH index queried for the best candidate.

    Data must lie in the unit ball and queries in the ball of radius
    ``query_radius``.  The engine returns the best *candidate* — an
    approximate answer whose quality follows the scheme's
    ``rho = (1-s/U)/(1+(1-2c)s/U)`` trade-off; a fallback to the exact
    scan triggers when no candidate surfaces (empty buckets).
    """

    def __init__(
        self,
        P,
        query_radius: float = 1.0,
        n_tables: int = 16,
        hashes_per_table: int = 6,
        sphere: str = "hyperplane",
        seed: SeedLike = None,
    ):
        super().__init__(P)
        family = DataDepALSH(self.d, query_radius=query_radius, sphere=sphere)
        self.index = LSHIndex(
            family,
            n_tables=n_tables,
            hashes_per_table=hashes_per_table,
            seed=seed,
        ).build(self._P)

    def query(self, q) -> MIPSAnswer:
        q = self._check_query(q)
        candidates = self.index.candidates(q)
        if candidates.size == 0:
            values = self._P @ q
            best = int(np.argmax(values))
            return MIPSAnswer(index=best, value=float(values[best]), work=self.n)
        values = self._P[candidates] @ q
        best = int(np.argmax(values))
        return MIPSAnswer(
            index=int(candidates[best]),
            value=float(values[best]),
            work=int(candidates.size),
        )
