"""Approximate MIPS through the Section 4.1 ALSH index."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.verify import DEFAULT_BLOCK, verify_block
from repro.errors import ParameterError
from repro.lsh.datadep import DataDepALSH
from repro.lsh.index import LSHIndex
from repro.mips.base import MIPSAnswer, MIPSEngine
from repro.utils.rng import SeedLike
from repro.utils.validation import check_matrix


class LSHMIPS(MIPSEngine):
    """DATA-DEP ALSH index queried for the best candidate.

    Data must lie in the unit ball and queries in the ball of radius
    ``query_radius``.  The engine returns the best *candidate* — an
    approximate answer whose quality follows the scheme's
    ``rho = (1-s/U)/(1+(1-2c)s/U)`` trade-off; a fallback to the exact
    scan triggers when no candidate surfaces (empty buckets).

    :meth:`query_batch` answers many queries through the blocked
    verification kernel (:mod:`repro.core.verify`): one GEMM per query
    block over the union of the block's candidates, plus one GEMM for
    the empty-candidate fallbacks, instead of one GEMV per query.
    """

    def __init__(
        self,
        P,
        query_radius: float = 1.0,
        n_tables: int = 16,
        hashes_per_table: int = 6,
        sphere: str = "hyperplane",
        seed: SeedLike = None,
    ):
        super().__init__(P)
        family = DataDepALSH(self.d, query_radius=query_radius, sphere=sphere)
        self.index = LSHIndex(
            family,
            n_tables=n_tables,
            hashes_per_table=hashes_per_table,
            seed=seed,
        ).build(self._P)

    def query(self, q) -> MIPSAnswer:
        q = self._check_query(q)
        candidates = self.index.candidates(q)
        if candidates.size == 0:
            values = self._P @ q
            best = int(np.argmax(values))
            return MIPSAnswer(index=best, value=float(values[best]), work=self.n)
        values = self._P[candidates] @ q
        best = int(np.argmax(values))
        return MIPSAnswer(
            index=int(candidates[best]),
            value=float(values[best]),
            work=int(candidates.size),
        )

    def join(self, Q, spec, n_workers: int = 1, block: int = DEFAULT_BLOCK):
        """Answer a ``(cs, s)`` join over this engine's data and index.

        Delegates to the unified engine
        (:func:`repro.engine.join` with ``backend="lsh"``), reusing the
        already-built index; ``n_workers`` shards the query set without
        changing results.
        """
        from repro.engine.api import join as engine_join

        return engine_join(
            self._P, Q, spec, backend="lsh", index=self.index,
            n_workers=n_workers, block=block,
        )

    def query_batch(self, Q, block: int = DEFAULT_BLOCK) -> List[MIPSAnswer]:
        """One answer per row of ``Q``, verified block-at-a-time."""
        from repro.lsh.index import block_candidates

        Q = check_matrix(Q, "Q")
        if Q.shape[1] != self.d:
            raise ParameterError(
                f"expected query dimension {self.d}, got {Q.shape[1]}"
            )
        answers: List[MIPSAnswer] = []
        for q0 in range(0, Q.shape[0], block):
            Q_block = Q[q0:q0 + block]
            cand_lists = block_candidates(self.index, Q_block)
            result = verify_block(self._P, Q_block, cand_lists, signed=True)
            misses = [i for i in range(Q_block.shape[0]) if result.best_index[i] < 0]
            if misses:
                # Exact-scan fallback for empty-bucket queries, one GEMM.
                scan = self._P @ Q_block[misses].T  # (n, |misses|)
                scan_best = np.argmax(scan, axis=0)
            for i in range(Q_block.shape[0]):
                if result.best_index[i] >= 0:
                    answers.append(
                        MIPSAnswer(
                            index=int(result.best_index[i]),
                            value=float(result.best_score[i]),
                            work=int(cand_lists[i].size),
                        )
                    )
                else:
                    col = misses.index(i)
                    answers.append(
                        MIPSAnswer(
                            index=int(scan_best[col]),
                            value=float(scan[scan_best[col], col]),
                            work=self.n,
                        )
                    )
        return answers
