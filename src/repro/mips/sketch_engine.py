"""Approximate unsigned MIPS through the Section 4.3 sketch structure."""

from __future__ import annotations

from typing import List

from repro.errors import ParameterError
from repro.mips.base import MIPSAnswer, MIPSEngine
from repro.sketches.cmips import SketchCMIPS
from repro.utils.rng import SeedLike
from repro.utils.validation import check_matrix

#: Queries per batched descent block; bounds the transient per-node value
#: tensors while keeping the stacked GEMMs large enough to pay off.
DEFAULT_QUERY_BLOCK = 1024


class SketchMIPS(MIPSEngine):
    """Unsigned c-MIPS with ``c = n^{-1/kappa}`` via linear sketches.

    Note the *unsigned* semantics: the engine maximizes ``|p . q|``; for
    non-negative data (sets, factor models with non-negative factors)
    this coincides with signed MIPS.
    """

    def __init__(self, P, kappa: float = 4.0, copies: int = 7, seed: SeedLike = None):
        super().__init__(P)
        self.structure = SketchCMIPS(self._P, kappa=kappa, copies=copies, seed=seed)

    @property
    def approximation_factor(self) -> float:
        return self.structure.approximation_factor

    def join(self, Q, s: float, n_workers: int = 1, block: int = DEFAULT_QUERY_BLOCK):
        """Answer an unsigned ``(cs, s)`` join over this engine's data.

        Delegates to the unified engine
        (:func:`repro.engine.join` with ``backend="sketch"``), reusing
        the already-built structure; the result's spec carries the
        structure's own ``c = n^{-1/kappa}``.
        """
        from repro.core.problems import JoinSpec
        from repro.engine.api import join as engine_join

        return engine_join(
            self._P, Q, JoinSpec(s=s, signed=False), backend="sketch",
            structure=self.structure, n_workers=n_workers, block=block,
        )

    def query(self, q) -> MIPSAnswer:
        q = self._check_query(q)
        answer = self.structure.query(q)
        work = self.structure.recovery.query_cost() // max(1, self.d)
        return MIPSAnswer(index=answer.index, value=answer.value, work=work)

    def query_batch(self, Q, block: int = DEFAULT_QUERY_BLOCK) -> List[MIPSAnswer]:
        """Block-at-a-time :meth:`query`: one batched prefix-tree descent
        and one stacked norm-estimate pass per ``block`` queries."""
        Q = check_matrix(Q, "Q", allow_empty=True)
        if Q.shape[0] and Q.shape[1] != self.d:
            raise ParameterError(
                f"expected query dimension {self.d}, got {Q.shape[1]}"
            )
        work = self.structure.recovery.query_cost() // max(1, self.d)
        answers: List[MIPSAnswer] = []
        for start in range(0, Q.shape[0], block):
            batch = self.structure.query_batch(Q[start : start + block])
            answers.extend(
                MIPSAnswer(
                    index=int(batch.indices[j]),
                    value=float(batch.values[j]),
                    work=work,
                )
                for j in range(len(batch))
            )
        return answers
