"""Approximate unsigned MIPS through the Section 4.3 sketch structure."""

from __future__ import annotations

from repro.mips.base import MIPSAnswer, MIPSEngine
from repro.sketches.cmips import SketchCMIPS
from repro.utils.rng import SeedLike


class SketchMIPS(MIPSEngine):
    """Unsigned c-MIPS with ``c = n^{-1/kappa}`` via linear sketches.

    Note the *unsigned* semantics: the engine maximizes ``|p . q|``; for
    non-negative data (sets, factor models with non-negative factors)
    this coincides with signed MIPS.
    """

    def __init__(self, P, kappa: float = 4.0, copies: int = 7, seed: SeedLike = None):
        super().__init__(P)
        self.structure = SketchCMIPS(self._P, kappa=kappa, copies=copies, seed=seed)

    @property
    def approximation_factor(self) -> float:
        return self.structure.approximation_factor

    def query(self, q) -> MIPSAnswer:
        q = self._check_query(q)
        answer = self.structure.query(q)
        work = self.structure.recovery.query_cost() // max(1, self.d)
        return MIPSAnswer(index=answer.index, value=answer.value, work=work)
