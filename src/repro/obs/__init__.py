"""Observability: span tracing, metrics, exporters, planner regret.

The telemetry layer under ``repro.engine.join(..., trace=True)``:

* :mod:`repro.obs.trace` — nested spans (``perf_counter_ns``) with a
  near-zero-cost disabled path; worker span trees pickle back to the
  parent and stitch into one trace.
* :mod:`repro.obs.metrics` — named counters/gauges/histograms whose
  parallel merges are bit-identical to serial runs.
* :mod:`repro.obs.export` — JSON and Prometheus-text exporters plus the
  human-readable :func:`~repro.obs.export.trace_summary`.
* :mod:`repro.obs.planner_log` — per-join records of planner
  predictions vs measured wall time, regret scoring, and the feedback
  path into :meth:`repro.engine.planner.CostModel.from_planner_log`.

The serving tier on top (consumed by :class:`repro.engine.JoinSession`):

* :mod:`repro.obs.sampler` — probabilistic + rate-limited per-query
  trace sampling (``engine.open(..., trace_sample_rate=...)``).
* :mod:`repro.obs.resources` — RSS / page-fault / arena-byte snapshots
  at query boundaries, plus a background :class:`ResourcePoller`.
* :mod:`repro.obs.sink` — a size-rotated JSONL event sink
  (``session.attach_sink(path)``) holding sampled span trees, metric
  snapshots, planner records, and resource snapshots under one
  ``kind``-tagged schema; ``tools/obs_report.py`` renders it.

See ``docs/OBSERVABILITY.md`` for the guide.
"""

from contextlib import contextmanager

from repro.obs.export import (
    metrics_to_json,
    metrics_to_prometheus,
    trace_summary,
    trace_to_json,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    current_metrics,
    use_metrics,
)
from repro.obs.planner_log import (
    PlannerLog,
    PlannerRecord,
    current_log,
    format_pick_distribution,
    format_regret_table,
    format_stage_table,
    use_planner_log,
)
from repro.obs.resources import (
    ResourcePoller,
    ResourceSnapshot,
    snapshot as resource_snapshot,
)
from repro.obs.sampler import TraceSampler
from repro.obs.sink import EventSink, iter_events, read_events, sink_files
from repro.obs.trace import Span, Tracer, current_tracer, span, use_tracer


@contextmanager
def observe(tracer: Tracer, metrics: MetricsRegistry):
    """Activate a tracer and a registry together for one block of work."""
    with use_tracer(tracer), use_metrics(metrics):
        yield tracer, metrics


__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "span",
    "use_tracer",
    "Histogram",
    "MetricsRegistry",
    "current_metrics",
    "use_metrics",
    "observe",
    "trace_to_json",
    "metrics_to_json",
    "metrics_to_prometheus",
    "trace_summary",
    "PlannerLog",
    "PlannerRecord",
    "current_log",
    "use_planner_log",
    "format_regret_table",
    "format_pick_distribution",
    "format_stage_table",
    "TraceSampler",
    "EventSink",
    "iter_events",
    "read_events",
    "sink_files",
    "ResourcePoller",
    "ResourceSnapshot",
    "resource_snapshot",
]
