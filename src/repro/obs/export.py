"""Exporters: traces and metrics as JSON, Prometheus text, and prose.

Three consumers, three formats:

* :func:`trace_to_json` / :func:`metrics_to_json` — machine-readable
  artifacts (benchmark records, CI uploads, offline diffing).
* :func:`metrics_to_prometheus` — the Prometheus text exposition format
  (one scrape's worth; counters, gauges, and cumulative-bucket
  histograms), so a serving deployment can lift the registry straight
  onto a ``/metrics`` endpoint.
* :func:`trace_summary` — the human-readable report: the span tree with
  sibling spans of one name aggregated (a 400-chunk join prints one
  ``run_chunk x400`` line, not 400 lines), percentages against the
  parent, and the registry's headline numbers.
"""

from __future__ import annotations

import json
from typing import List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

#: Metric names are dotted (``verify.gemm_blocks``); Prometheus wants
#: ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
_PROM_BAD = str.maketrans({".": "_", "-": "_", " ": "_", "/": "_"})


def _prom_name(prefix: str, name: str) -> str:
    return f"{prefix}_{name}".translate(_PROM_BAD)


def trace_to_json(trace: Span, indent: Optional[int] = None) -> str:
    """One span tree as a JSON document."""
    return json.dumps(trace.to_dict(), indent=indent, sort_keys=False)


def metrics_to_json(
    metrics: Union[MetricsRegistry, dict], indent: Optional[int] = None
) -> str:
    """A registry (or a registry snapshot) as a JSON document."""
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def metrics_to_prometheus(
    metrics: Union[MetricsRegistry, dict], prefix: str = "repro"
) -> str:
    """The registry in Prometheus text exposition format.

    Histograms follow the convention: cumulative ``_bucket`` series with
    ``le`` labels (ending at ``le="+Inf"``), plus ``_sum`` and
    ``_count``.
    """
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        payload = snapshot["histograms"][name]
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            label = f"{bound:g}"
            lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
        cumulative += payload["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {payload['sum']}")
        lines.append(f"{metric}_count {payload['count']}")
    return "\n".join(lines) + "\n"


def _format_ms(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.1f}ms"
    return f"{ns / 1e3:.0f}us"


def _render_group(
    name: str,
    spans: List[Span],
    parent_ns: int,
    depth: int,
    lines: List[str],
) -> None:
    total_ns = sum(s.duration_ns for s in spans)
    share = f" ({100.0 * total_ns / parent_ns:.0f}%)" if parent_ns else ""
    mult = f" x{len(spans)}" if len(spans) > 1 else ""
    attrs = ""
    if len(spans) == 1 and spans[0].attrs:
        rendered = ", ".join(f"{k}={v}" for k, v in spans[0].attrs.items())
        attrs = f"  [{rendered}]"
    lines.append(
        f"{'  ' * depth}{name}{mult}: {_format_ms(total_ns)}{share}{attrs}"
    )
    # Aggregate the children of every span in the group by name, in
    # first-appearance order, and recurse on the merged groups.
    groups: dict = {}
    for parent in spans:
        for child in parent.children:
            groups.setdefault(child.name, []).append(child)
    for child_name, members in groups.items():
        _render_group(child_name, members, total_ns, depth + 1, lines)


def trace_summary(
    trace: Span,
    metrics: Union[MetricsRegistry, dict, None] = None,
    max_metrics: int = 30,
) -> str:
    """Human-readable report for one trace (and optionally its metrics)."""
    lines: List[str] = []
    _render_group(trace.name, [trace], 0, 0, lines)
    if metrics is not None:
        snapshot = (
            metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
        )
        rows: List[str] = []
        for name in sorted(snapshot.get("counters", {})):
            rows.append(f"  {name} = {snapshot['counters'][name]}")
        for name in sorted(snapshot.get("gauges", {})):
            rows.append(f"  {name} = {snapshot['gauges'][name]}")
        for name in sorted(snapshot.get("histograms", {})):
            payload = snapshot["histograms"][name]
            mean = payload["sum"] / payload["count"] if payload["count"] else 0.0
            rows.append(
                f"  {name}: count={payload['count']} mean={mean:.1f} "
                f"sum={payload['sum']}"
            )
        if rows:
            lines.append("metrics:")
            lines.extend(rows[:max_metrics])
            if len(rows) > max_metrics:
                lines.append(f"  ... and {len(rows) - max_metrics} more")
    return "\n".join(lines)
