"""Exporters: traces and metrics as JSON, Prometheus text, and prose.

Three consumers, three formats:

* :func:`trace_to_json` / :func:`metrics_to_json` — machine-readable
  artifacts (benchmark records, CI uploads, offline diffing).
* :func:`metrics_to_prometheus` — the Prometheus text exposition format
  (one scrape's worth; counters, gauges, and cumulative-bucket
  histograms), so a serving deployment can lift the registry straight
  onto a ``/metrics`` endpoint.
* :func:`trace_summary` — the human-readable report: the span tree with
  sibling spans of one name aggregated (a 400-chunk join prints one
  ``run_chunk x400`` line, not 400 lines), percentages against the
  parent, and the registry's headline numbers.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Span

#: Metric names are dotted (``verify.gemm_blocks``); Prometheus wants
#: ``[a-zA-Z_:][a-zA-Z0-9_:]*``.  Replace every disallowed character
#: (not just a known-bad list) so arbitrary stage labels survive.
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_BAD_FIRST = re.compile(r"^[^a-zA-Z_:]")

#: Default quantiles exported for every histogram (serving percentiles).
EXPORT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def _prom_name(prefix: str, name: str) -> str:
    metric = _PROM_BAD.sub("_", f"{prefix}_{name}")
    return _PROM_BAD_FIRST.sub("_", metric)


def _payload_quantiles(payload: dict, qs: Sequence[float]) -> Dict[str, float]:
    """Quantile estimates for one histogram snapshot payload."""
    h = Histogram(payload["bounds"])
    h.counts = list(payload["counts"])
    h.count = payload["count"]
    h.sum = payload["sum"]
    return {f"{q:g}": h.quantile(q) for q in qs}


def trace_to_json(trace: Span, indent: Optional[int] = None) -> str:
    """One span tree as a JSON document."""
    return json.dumps(trace.to_dict(), indent=indent, sort_keys=False)


def metrics_to_json(
    metrics: Union[MetricsRegistry, dict],
    indent: Optional[int] = None,
    quantiles: Optional[Sequence[float]] = EXPORT_QUANTILES,
) -> str:
    """A registry (or a registry snapshot) as a JSON document.

    Histogram payloads additionally carry a ``"quantiles"`` map
    (``{"0.5": ..., "0.95": ..., "0.99": ...}`` by default); pass
    ``quantiles=None`` for the raw mergeable snapshot shape.
    """
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    if quantiles:
        snapshot = dict(snapshot)
        snapshot["histograms"] = {
            name: {**payload, "quantiles": _payload_quantiles(payload, quantiles)}
            for name, payload in snapshot.get("histograms", {}).items()
        }
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def metrics_to_prometheus(
    metrics: Union[MetricsRegistry, dict],
    prefix: str = "repro",
    help_texts: Optional[Dict[str, str]] = None,
    quantiles: Optional[Sequence[float]] = EXPORT_QUANTILES,
) -> str:
    """The registry in Prometheus text exposition format.

    Every metric gets ``# HELP`` and ``# TYPE`` lines, with names
    sanitized to the Prometheus charset.  Histograms follow the
    convention: cumulative ``_bucket`` series with ``le`` labels (ending
    at ``le="+Inf"``), plus ``_sum`` and ``_count`` — and, for serving
    dashboards that want percentiles without a ``histogram_quantile``
    query, precomputed ``_p50``-style gauges for each of ``quantiles``.

    ``help_texts`` maps *original* (dotted) metric names to HELP
    strings; unmapped metrics get a generated one.
    """
    snapshot = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    helps = help_texts or {}

    def _header(metric: str, name: str, kind: str) -> List[str]:
        text = helps.get(name, f"repro metric {name}")
        return [f"# HELP {metric} {text}", f"# TYPE {metric} {kind}"]

    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(prefix, name)
        lines.extend(_header(metric, name, "counter"))
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(prefix, name)
        lines.extend(_header(metric, name, "gauge"))
        lines.append(f"{metric} {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        payload = snapshot["histograms"][name]
        metric = _prom_name(prefix, name)
        lines.extend(_header(metric, name, "histogram"))
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            label = f"{bound:g}"
            lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
        cumulative += payload["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {payload['sum']}")
        lines.append(f"{metric}_count {payload['count']}")
        for q, value in _payload_quantiles(payload, quantiles or ()).items():
            pct = float(q) * 100
            tag = f"{pct:g}".replace(".", "_")
            lines.append(f"{metric}_p{tag} {value:g}")
    return "\n".join(lines) + "\n"


def _format_ms(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.1f}ms"
    return f"{ns / 1e3:.0f}us"


def _render_group(
    name: str,
    spans: List[Span],
    parent_ns: int,
    depth: int,
    lines: List[str],
) -> None:
    total_ns = sum(s.duration_ns for s in spans)
    share = f" ({100.0 * total_ns / parent_ns:.0f}%)" if parent_ns else ""
    mult = f" x{len(spans)}" if len(spans) > 1 else ""
    attrs = ""
    if len(spans) == 1 and spans[0].attrs:
        rendered = ", ".join(f"{k}={v}" for k, v in spans[0].attrs.items())
        attrs = f"  [{rendered}]"
    lines.append(
        f"{'  ' * depth}{name}{mult}: {_format_ms(total_ns)}{share}{attrs}"
    )
    # Aggregate the children of every span in the group by name, in
    # first-appearance order, and recurse on the merged groups.
    groups: dict = {}
    for parent in spans:
        for child in parent.children:
            groups.setdefault(child.name, []).append(child)
    for child_name, members in groups.items():
        _render_group(child_name, members, total_ns, depth + 1, lines)


def trace_summary(
    trace: Span,
    metrics: Union[MetricsRegistry, dict, None] = None,
    max_metrics: int = 30,
) -> str:
    """Human-readable report for one trace (and optionally its metrics)."""
    lines: List[str] = []
    _render_group(trace.name, [trace], 0, 0, lines)
    if metrics is not None:
        snapshot = (
            metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
        )
        rows: List[str] = []
        for name in sorted(snapshot.get("counters", {})):
            rows.append(f"  {name} = {snapshot['counters'][name]}")
        for name in sorted(snapshot.get("gauges", {})):
            rows.append(f"  {name} = {snapshot['gauges'][name]}")
        for name in sorted(snapshot.get("histograms", {})):
            payload = snapshot["histograms"][name]
            mean = payload["sum"] / payload["count"] if payload["count"] else 0.0
            rows.append(
                f"  {name}: count={payload['count']} mean={mean:.1f} "
                f"sum={payload['sum']}"
            )
        if rows:
            lines.append("metrics:")
            lines.extend(rows[:max_metrics])
            if len(rows) > max_metrics:
                lines.append(f"  ... and {len(rows) - max_metrics} more")
    return "\n".join(lines)
