"""Named counters, gauges, and histograms for the join engine.

A :class:`MetricsRegistry` is a flat name -> instrument map.  Like the
tracer (:mod:`repro.obs.trace`), the process-current registry is
disabled by default and instrumentation sites guard on ``.enabled``, so
the hooks in hot kernels (:mod:`repro.core.verify`,
:mod:`repro.lsh.index`) cost one attribute check when observability is
off.

Determinism contract: every instrument merges with integer (or exact
float) sums, and the engine merges worker snapshots in chunk order —
so a parallel join reports metric totals bit-identical to the serial
run, the same guarantee :meth:`repro.core.problems.QueryStats.merge`
gives the work counters.

Histograms use *fixed* bucket bounds chosen at first observation
(power-of-two by default), never adaptive ones: two registries can only
merge when their bucket layouts agree, and fixed bounds make layouts a
pure function of the instrument name.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError

#: Default histogram upper bounds: powers of two through 2^24, matching
#: the dynamic range of candidate-list sizes, bucket occupancies, and
#: GEMM union sizes this library produces.
POW2_BOUNDS: Tuple[float, ...] = tuple(float(2 ** e) for e in range(25))


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Fixed-bound histogram with exact ``count``/``sum`` side totals.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in an implicit overflow bucket, so ``len(counts) ==
    len(bounds) + 1``.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = POW2_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ParameterError("histogram bounds must be non-empty ascending")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, value) -> None:
        self.counts[self._bucket(value)] += 1
        self.count += 1
        self.sum += value

    def observe_array(self, values: np.ndarray) -> None:
        """Vectorized :meth:`observe` over a flat numeric array."""
        values = np.asarray(values)
        if values.size == 0:
            return
        buckets = np.searchsorted(self.bounds, values, side="left")
        for b, c in zip(*np.unique(buckets, return_counts=True)):
            self.counts[int(b)] += int(c)
        self.count += int(values.size)
        # Sum in int space when possible so parallel merges stay exact.
        total = values.sum()
        self.sum += int(total) if np.issubdtype(values.dtype, np.integer) else float(total)

    def _bucket(self, value) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Linear interpolation inside the located bucket (lower edge 0 for
        the first bucket), so with pow2 bounds the estimate is within
        one bucket of the exact order statistic.  Observations that
        landed in the overflow bucket are clamped to the last bound —
        the histogram holds no information above it.
        """
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cumulative + c >= target:
                if i >= len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                lo = self.bounds[i - 1] if i else 0.0
                hi = self.bounds[i]
                frac = (target - cumulative) / c
                return lo + frac * (hi - lo)
            cumulative += c
        return self.bounds[-1]

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """:meth:`quantile` over several probabilities."""
        return [self.quantile(q) for q in qs]


class MetricsRegistry:
    """Flat name -> instrument map with snapshot/merge for worker fan-in."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) ---------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter()
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge()
            return g

    def histogram(self, name: str, bounds: Sequence[float] = POW2_BOUNDS) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(bounds)
            return h

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (picklable, mergeable)."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {
                k: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for k, h in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: Optional[dict]) -> None:
        """Fold a :meth:`snapshot` into this registry (sums; gauges last-write).

        A disabled registry swallows the payload without creating
        instruments — mirroring how instrumentation sites guard on
        ``.enabled`` — so merge call sites need no guard of their own.
        """
        if not snapshot or not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            h = self.histogram(name, payload["bounds"])
            if list(h.bounds) != list(payload["bounds"]):
                raise ParameterError(
                    f"histogram {name!r} bucket layouts disagree; cannot merge"
                )
            for i, c in enumerate(payload["counts"]):
                h.counts[i] += c
            h.count += payload["count"]
            h.sum += payload["sum"]

    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )


#: The context-current registry; disabled by default (see module doc).
#: A ``ContextVar`` so the thread-pool execution path can give each
#: worker thread its own per-chunk registry without racing siblings.
_DISABLED = MetricsRegistry(enabled=False)
_CURRENT: ContextVar[MetricsRegistry] = ContextVar(
    "repro_metrics", default=_DISABLED
)


def current_metrics() -> MetricsRegistry:
    return _CURRENT.get()


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` the context-current registry within the block."""
    token = _CURRENT.set(registry)
    try:
        yield registry
    finally:
        _CURRENT.reset(token)
