"""Planner regret tracking: did ``backend="auto"`` pick the fast backend?

Every join dispatched through :func:`repro.engine.join` appends one
:class:`PlannerRecord` to the process-current :class:`PlannerLog`:
instance shape, the spec, the backend that ran, measured wall time and
work counters — and, for ``backend="auto"`` joins, the planner's
predicted :class:`~repro.engine.protocol.CostEstimate` total per
feasible backend.  Costs pennies per join (one dataclass append into a
bounded deque), so it is always on.

Regret needs a measured time for more than one backend on the *same*
instance, which a single join cannot produce.  The workflow is a sweep
(``benchmarks/bench_join_crossover.py``, or any caller) that runs the
instance under each explicit backend plus ``"auto"``; the log groups
rows by instance key, takes the fastest measured backend per group, and
scores every auto row against it.  ``tools/planner_report.py`` renders
the table from a saved log, and
:meth:`repro.engine.planner.CostModel.from_planner_log` feeds the
measurements back into calibration.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ParameterError


@dataclass(frozen=True)
class PlannerRecord:
    """One dispatched join: what ran, how it was chosen, what it cost."""

    n: int
    m: int
    d: int
    s: float
    c: float
    signed: bool
    variant: str
    #: ``"auto"`` when the planner chose, ``"explicit"`` when the caller did.
    mode: str
    #: The backend that actually ran.
    picked: str
    wall_s: float
    #: Planner-predicted total ops per feasible plan (auto mode only).
    predicted: Dict[str, float] = field(default_factory=dict)
    evaluated: int = 0
    generated: int = 0
    n_workers: int = 1
    #: One dict per executed plan stage (``index``, ``backend``, ``n``,
    #: ``m``, ``wall_s``, ``evaluated``, ``generated``, ``answered``,
    #: and — for auto picks — ``predicted_ops``), so regret attributes
    #: to stages, not just whole plans.  Single-backend joins carry one
    #: entry.
    stages: List[dict] = field(default_factory=list)
    #: Query count the planner amortized the build over (1 = one-shot
    #: dispatch; sessions pass their ``expected_queries`` hint).
    expected_queries: int = 1
    #: How many queries this session had already answered when this one
    #: ran (0 for one-shot joins and a session's first query).  Together
    #: with ``expected_queries`` this lets regret reports separate
    #: amortized session picks from one-shot picks: an auto pick that
    #: loses the one-shot race may still be right for query fifty.
    session_reuse: int = 0

    @property
    def is_session(self) -> bool:
        """True when this record came from a session-amortized dispatch."""
        return self.expected_queries > 1 or self.session_reuse > 0

    def key(self) -> Tuple:
        """Instance identity: rows sharing a key answered the same problem."""
        return (self.n, self.m, self.d, self.s, self.c, self.signed, self.variant)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "PlannerRecord":
        names = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in payload.items() if k in names})


@dataclass
class RegretRow:
    """One auto-dispatched join scored against the measured fastest backend."""

    key: Tuple
    picked: str
    predicted_best: str
    wall_s: float
    fastest: str
    fastest_s: float
    #: ``wall(picked) / wall(fastest) - 1``; 0 when the pick was right.
    regret: float
    #: Measured backends available for this instance (regret denominators).
    measured: Dict[str, float] = field(default_factory=dict)


class PlannerLog:
    """Bounded record accumulator with JSONL persistence and regret scoring."""

    def __init__(self, maxlen: Optional[int] = 65536):
        self._records: deque = deque(maxlen=maxlen)

    def record(self, record: PlannerRecord) -> None:
        self._records.append(record)

    def extend(self, records) -> None:
        for r in records:
            self.record(r)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PlannerRecord]:
        return iter(list(self._records))

    @property
    def records(self) -> List[PlannerRecord]:
        return list(self._records)

    # -- persistence ----------------------------------------------------

    def save(self, path) -> None:
        """Append-friendly JSONL: one record per line."""
        path = Path(path)
        with open(path, "w") as handle:
            for record in self._records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True))
                handle.write("\n")

    @classmethod
    def load(cls, path, maxlen: Optional[int] = 65536) -> "PlannerLog":
        path = Path(path)
        if not path.exists():
            raise ParameterError(f"no planner log at {path}")
        log = cls(maxlen=maxlen)
        with open(path) as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    log.record(PlannerRecord.from_dict(json.loads(line)))
                except (json.JSONDecodeError, TypeError) as exc:
                    raise ParameterError(
                        f"{path}:{lineno} is not a planner record: {exc}"
                    ) from exc
        return log

    # -- analysis -------------------------------------------------------

    def measured_walls(self) -> Dict[Tuple, Dict[str, float]]:
        """Per instance key, the best measured wall time per backend."""
        walls: Dict[Tuple, Dict[str, float]] = {}
        for rec in self._records:
            per_backend = walls.setdefault(rec.key(), {})
            best = per_backend.get(rec.picked)
            if best is None or rec.wall_s < best:
                per_backend[rec.picked] = rec.wall_s
        return walls

    def regret_rows(self, session: Optional[bool] = None) -> List[RegretRow]:
        """Score every auto-mode record against its instance's fastest backend.

        Instances whose only rows are auto picks still produce a row
        (regret 0 against themselves — no alternative was measured);
        sweeps that also run explicit backends produce real regret.

        ``session=True`` keeps only session-amortized records
        (:attr:`PlannerRecord.is_session`), ``session=False`` only
        one-shot ones; the regret *denominators* always come from the
        full log, so a session pick is still scored against the fastest
        backend anyone measured on that instance.
        """
        walls = self.measured_walls()
        rows: List[RegretRow] = []
        for rec in self._records:
            if rec.mode != "auto":
                continue
            if session is not None and rec.is_session != session:
                continue
            measured = walls[rec.key()]
            fastest = min(measured, key=lambda b: measured[b])
            fastest_s = measured[fastest]
            predicted_best = (
                min(rec.predicted, key=lambda b: rec.predicted[b])
                if rec.predicted
                else rec.picked
            )
            regret = rec.wall_s / fastest_s - 1.0 if fastest_s > 0 else 0.0
            rows.append(
                RegretRow(
                    key=rec.key(),
                    picked=rec.picked,
                    predicted_best=predicted_best,
                    wall_s=rec.wall_s,
                    fastest=fastest,
                    fastest_s=fastest_s,
                    regret=max(0.0, regret),
                    measured=dict(measured),
                )
            )
        return rows

    def stage_rows(self) -> List[Tuple[Tuple, str, dict]]:
        """Flatten every record's stage entries for per-stage attribution.

        Returns ``(instance key, plan backend, stage dict)`` triples in
        record order — the raw material for asking *which stage* of a
        hybrid plan spent the time (or did the answering), rather than
        scoring whole plans only.
        """
        rows: List[Tuple[Tuple, str, dict]] = []
        for rec in self._records:
            for stage in rec.stages:
                rows.append((rec.key(), rec.picked, dict(stage)))
        return rows

    def pick_distribution(self, session: Optional[bool] = None) -> Dict[str, int]:
        """How often each backend was picked by ``backend="auto"``.

        ``session`` filters like :meth:`regret_rows`.
        """
        counts: Dict[str, int] = {}
        for rec in self._records:
            if rec.mode != "auto":
                continue
            if session is not None and rec.is_session != session:
                continue
            counts[rec.picked] = counts.get(rec.picked, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def session_counts(self) -> Tuple[int, int]:
        """``(amortized, one_shot)`` record counts, for report headers."""
        amortized = sum(1 for rec in self._records if rec.is_session)
        return amortized, len(self._records) - amortized


def format_regret_table(log: PlannerLog, session: Optional[bool] = None) -> str:
    """The regret table as aligned text (one row per auto join).

    ``session=True``/``False`` restricts the rows to session-amortized /
    one-shot dispatches (denominators still come from the whole log).
    """
    rows = log.regret_rows(session=session)
    if not rows:
        if session is True:
            return "no session-amortized auto joins recorded"
        if session is False:
            return "no one-shot auto joins recorded"
        return "no auto-dispatched joins recorded"
    header = ["n", "m", "d", "s", "c", "variant", "picked", "fastest",
              "wall", "best", "regret"]
    table: List[List[str]] = []
    for row in rows:
        n, m, d, s, c, signed, variant = row.key
        table.append([
            str(n), str(m), str(d), f"{s:g}", f"{c:g}",
            variant if signed else f"{variant}|u",
            row.picked, row.fastest,
            f"{row.wall_s * 1e3:.1f}ms", f"{row.fastest_s * 1e3:.1f}ms",
            f"{row.regret * 100:+.0f}%",
        ])
    widths = [max(len(header[i]), max(len(r[i]) for r in table))
              for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend("  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in table)
    hits = sum(1 for r in rows if r.picked == r.fastest)
    mean_regret = sum(r.regret for r in rows) / len(rows)
    lines.append(
        f"picked fastest {hits}/{len(rows)} "
        f"({100.0 * hits / len(rows):.0f}%), mean regret "
        f"{mean_regret * 100:.1f}%, max regret "
        f"{max(r.regret for r in rows) * 100:.1f}%"
    )
    return "\n".join(lines)


def format_stage_table(log: PlannerLog, multi_stage_only: bool = True) -> str:
    """Per-stage wall/work attribution as aligned text.

    One row per executed stage; by default only plans with more than one
    stage are shown (single-backend joins add nothing over the regret
    table).  ``predicted_ops`` is blank for explicit picks.
    """
    triples = [
        (key, plan, stage)
        for key, plan, stage in log.stage_rows()
        if not multi_stage_only or "+" in plan
    ]
    if not triples:
        return "no multi-stage plans recorded"
    header = ["n", "m", "d", "plan", "stage", "backend", "sub_n", "sub_m",
              "wall", "answered", "evaluated", "pred_ops"]
    table: List[List[str]] = []
    for key, plan, stage in triples:
        n, m, d = key[0], key[1], key[2]
        predicted = stage.get("predicted_ops")
        table.append([
            str(n), str(m), str(d), plan, str(stage.get("index", "?")),
            str(stage.get("backend", "?")),
            str(stage.get("n", "?")), str(stage.get("m", "?")),
            f"{stage.get('wall_s', 0.0) * 1e3:.1f}ms",
            str(stage.get("answered", 0)),
            str(stage.get("evaluated", 0)),
            f"{predicted:.3g}" if predicted is not None else "-",
        ])
    widths = [max(len(header[i]), max(len(r[i]) for r in table))
              for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend("  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in table)
    return "\n".join(lines)


def format_pick_distribution(log: PlannerLog) -> str:
    """The ``backend="auto"`` pick distribution as aligned text."""
    counts = log.pick_distribution()
    if not counts:
        return "no auto-dispatched joins recorded"
    total = sum(counts.values())
    width = max(len(name) for name in counts)
    lines = [
        f"{name.ljust(width)}  {count:4d}  {100.0 * count / total:5.1f}%"
        for name, count in counts.items()
    ]
    lines.append(f"{'total'.ljust(width)}  {total:4d}")
    return "\n".join(lines)


#: The process-current log every engine join records into.
_GLOBAL = PlannerLog()
_CURRENT: PlannerLog = _GLOBAL


def current_log() -> PlannerLog:
    return _CURRENT


@contextmanager
def use_planner_log(log: PlannerLog) -> Iterator[PlannerLog]:
    """Route engine join records into ``log`` within the block."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = log
    try:
        yield log
    finally:
        _CURRENT = previous
