"""Process resource snapshots: RSS, page faults, arena bytes, pool health.

The memmap-served indexes of ``engine.open_path`` trade resident memory
for page faults, and the shared-memory arena trades ``/dev/shm`` bytes
for pickle time — trade-offs that only show up in *process* counters,
not in the join's own metrics.  This module reads them cheaply enough
to sit at query boundaries:

* **RSS** from ``/proc/self/statm`` (resident pages x ``SC_PAGE_SIZE``),
  the same technique ``tools/bench_perf.py`` uses for its memmap gates;
  off Linux it falls back to ``ru_maxrss`` (a high-water mark, not an
  instantaneous value — ``rss_is_peak`` says which you got).
* **minor/major fault counts** from ``/proc/self/stat`` (fields 10 and
  12; parsed after the last ``)`` so a comm containing spaces or parens
  cannot shift the fields).
* **arena bytes / pool health** are passed in by the caller — the
  session knows its :class:`~repro.core.arena.SharedArena` and rebuild
  counters; this module just records them.

Two consumption modes:

* :func:`snapshot` — one on-demand :class:`ResourceSnapshot`; the
  session takes these at query boundaries when a sink is attached.
* :class:`ResourcePoller` — a daemon thread sampling at a fixed
  interval into a bounded ring (and optionally a sink), for watching a
  long-running session from outside the query path.

One snapshot costs two small ``/proc`` reads (~10 us); the poller adds
nothing to the query path at all.
"""

from __future__ import annotations

import os
import resource
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.errors import ParameterError

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
_HAS_PROC = os.path.exists("/proc/self/statm")


@dataclass
class ResourceSnapshot:
    """One instant's process resource readings (plain data, sinkable)."""

    ts: float
    rss_bytes: int
    minor_faults: int
    major_faults: int
    #: True when ``rss_bytes`` is the ``ru_maxrss`` peak fallback rather
    #: than the instantaneous ``/proc/self/statm`` reading.
    rss_is_peak: bool = False
    #: Live shared-arena segment bytes (0 when no pool is attached).
    arena_bytes: int = 0
    #: Session pool health counters (``pool_rebuilds``, ``worker_crashes``).
    pool: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "ts": self.ts,
            "rss_bytes": self.rss_bytes,
            "minor_faults": self.minor_faults,
            "major_faults": self.major_faults,
            "rss_is_peak": self.rss_is_peak,
            "arena_bytes": self.arena_bytes,
            "pool": dict(self.pool),
        }


def rss_bytes() -> int:
    """Instantaneous resident set size (peak fallback off Linux)."""
    if _HAS_PROC:
        with open("/proc/self/statm", "r") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return ru * (1024 if sys.platform != "darwin" else 1)


def page_faults() -> tuple:
    """``(minor, major)`` fault counts for this process since start."""
    if _HAS_PROC:
        with open("/proc/self/stat", "r") as fh:
            stat = fh.read()
        # Fields 10 (minflt) and 12 (majflt), counted 1-based from pid;
        # split after the last ')' so the comm field cannot shift them.
        rest = stat.rsplit(")", 1)[1].split()
        return int(rest[7]), int(rest[9])
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return int(ru.ru_minflt), int(ru.ru_majflt)


def snapshot(
    arena_bytes: int = 0, pool: Optional[Dict[str, int]] = None
) -> ResourceSnapshot:
    """One on-demand :class:`ResourceSnapshot` for this process."""
    minor, major = page_faults()
    return ResourceSnapshot(
        ts=time.time(),
        rss_bytes=rss_bytes(),
        minor_faults=minor,
        major_faults=major,
        rss_is_peak=not _HAS_PROC,
        arena_bytes=int(arena_bytes),
        pool=dict(pool) if pool else {},
    )


class ResourcePoller:
    """Background sampler: a daemon thread filling a bounded ring.

    Parameters
    ----------
    interval_s:
        Seconds between samples.
    keep:
        Ring size; older snapshots are dropped.
    extra:
        Optional zero-argument callable returning ``(arena_bytes, pool)``
        for each sample — the session passes a closure over its live
        pool so arena bytes track rebuilds.
    sink:
        Optional :class:`~repro.obs.sink.EventSink`; every sample is
        also emitted there as a ``resource`` event.
    """

    def __init__(
        self,
        interval_s: float = 1.0,
        keep: int = 512,
        extra: Optional[Callable[[], tuple]] = None,
        sink: Optional[Any] = None,
    ):
        if interval_s <= 0:
            raise ParameterError("poll interval must be positive")
        if keep <= 0:
            raise ParameterError("keep must be positive")
        self.interval_s = float(interval_s)
        self.samples: Deque[ResourceSnapshot] = deque(maxlen=keep)
        self._extra = extra
        self._sink = sink
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample_once(self) -> ResourceSnapshot:
        arena_bytes, pool = (0, None)
        if self._extra is not None:
            try:
                arena_bytes, pool = self._extra()
            except Exception:
                pass  # a mid-rebuild pool must not kill the poller
        snap = snapshot(arena_bytes=arena_bytes, pool=pool)
        self.samples.append(snap)
        if self._sink is not None:
            self._sink.emit("resource", snap.to_dict())
        return snap

    def start(self) -> "ResourcePoller":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-poller", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5 * self.interval_s + 1.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def __enter__(self) -> "ResourcePoller":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def timeline(snaps: List[ResourceSnapshot]) -> List[dict]:
    """Per-sample deltas (fault rates, RSS movement) for reporting."""
    rows: List[dict] = []
    prev: Optional[ResourceSnapshot] = None
    for s in snaps:
        row = s.to_dict()
        if prev is not None:
            row["d_minor_faults"] = s.minor_faults - prev.minor_faults
            row["d_major_faults"] = s.major_faults - prev.major_faults
            row["d_rss_bytes"] = s.rss_bytes - prev.rss_bytes
        rows.append(row)
        prev = s
    return rows
