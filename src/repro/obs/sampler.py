"""Per-query trace sampling: probabilistic head sampling plus a rate cap.

A serving session cannot afford a full span tree per query — tracing a
join adds a measurable (if small) cost, and a sink would fill with
gigabytes of redundant trees — but it also cannot afford *no* trees,
because percentile counters alone do not explain a slow query.  The
standard answer is head sampling: decide up-front, per query, whether
this one gets the full treatment, and keep the decision cheap enough to
sit on the hot path.

:class:`TraceSampler` composes the two classic policies:

* **probabilistic** — sample each query independently with probability
  ``rate`` (a seeded :class:`random.Random`, so tests and benchmarks can
  pin the exact sampling pattern);
* **rate-limited** — never admit more than ``max_per_window`` sampled
  queries per ``window_s`` seconds of wall clock, so a traffic spike
  cannot multiply tracing overhead or sink volume.

The decision itself is one RNG draw and two comparisons (~100 ns);
:class:`JoinSession` consults it once per :meth:`~.JoinSession.query`
call.  Queries that lose the draw still feed the session's always-on
counters and latency histograms — sampling only gates span trees.
"""

from __future__ import annotations

import random
import time
from typing import Optional

from repro.errors import ParameterError


class TraceSampler:
    """Decide, per query, whether to record a full span tree.

    Parameters
    ----------
    rate:
        Probability in ``[0, 1]`` that any single query is sampled.
        ``0`` never samples (every check is two comparisons); ``1``
        samples every query (subject to the rate cap).
    max_per_window:
        Hard cap on sampled queries per window, or ``None`` for no cap.
    window_s:
        Length of the rate-cap window in seconds.
    seed:
        Seed for the private RNG.  Pass an int for a reproducible
        sampling pattern (benchmarks, tests); ``None`` seeds from OS
        entropy.
    """

    __slots__ = (
        "rate",
        "max_per_window",
        "window_s",
        "seen",
        "sampled",
        "rate_limited",
        "_rng",
        "_window_start",
        "_window_count",
    )

    def __init__(
        self,
        rate: float,
        max_per_window: Optional[int] = None,
        window_s: float = 1.0,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ParameterError(f"trace sample rate must be in [0, 1], got {rate!r}")
        if max_per_window is not None and max_per_window < 0:
            raise ParameterError("max_per_window must be >= 0")
        if window_s <= 0:
            raise ParameterError("window_s must be positive")
        self.rate = float(rate)
        self.max_per_window = max_per_window
        self.window_s = float(window_s)
        #: Decision counters (exported as session gauges).
        self.seen = 0
        self.sampled = 0
        self.rate_limited = 0
        self._rng = random.Random(seed)
        self._window_start = 0.0
        self._window_count = 0

    def should_sample(self) -> bool:
        """One sampling decision.  Cheap enough for the query hot path."""
        self.seen += 1
        if self.rate <= 0.0:
            return False
        if self.rate < 1.0 and self._rng.random() >= self.rate:
            return False
        if self.max_per_window is not None:
            now = time.monotonic()
            if now - self._window_start >= self.window_s:
                self._window_start = now
                self._window_count = 0
            if self._window_count >= self.max_per_window:
                self.rate_limited += 1
                return False
            self._window_count += 1
        self.sampled += 1
        return True

    def stats(self) -> dict:
        """Plain-data decision counters (for gauges and sink events)."""
        return {
            "rate": self.rate,
            "seen": self.seen,
            "sampled": self.sampled,
            "rate_limited": self.rate_limited,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceSampler(rate={self.rate}, sampled={self.sampled}/"
            f"{self.seen}, rate_limited={self.rate_limited})"
        )
