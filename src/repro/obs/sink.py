"""Size-rotated JSONL event sink for serving telemetry.

One session produces several event shapes — sampled span trees, metric
snapshots, planner records, resource snapshots, worker-crash notices —
and a serving deployment wants them durable on disk without an external
collector.  :class:`EventSink` writes them all to a single append-only
JSONL file under one envelope schema::

    {"kind": "<tag>", "ts": <unix seconds>, "seq": <int>, "data": {...}}

``kind`` tags the payload shape (``span``, ``metrics``, ``planner``,
``resource``, ``crash``, ``meta``); ``seq`` is a per-sink monotonic
counter so readers can order events even across rotated files.

Rotation is logrotate-style: when the active file passes ``max_bytes``
it is renamed to ``path.1`` (shifting ``path.1`` -> ``path.2`` and so
on, dropping the oldest past ``max_files``), and writing continues in a
fresh ``path``.  The size check and the write happen under one lock, so
a sink is safe to share between a session thread and a
:class:`~repro.obs.resources.ResourcePoller` thread.

Readers use :func:`iter_events` (one file) or :func:`read_events`
(a rotated set, oldest first); ``tools/obs_report.py`` renders the
standard report from them.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ParameterError

#: Known event kinds (informational; the sink accepts any tag).
EVENT_KINDS = ("meta", "span", "metrics", "planner", "resource", "crash")


class EventSink:
    """Append-only, size-rotated JSONL event writer.

    Parameters
    ----------
    path:
        The active JSONL file.  Parent directories are created.
    max_bytes:
        Rotate when the active file would exceed this size.  The default
        (64 MiB) keeps a rotated set bounded at ~a few hundred MB.
    max_files:
        How many rotated generations (``path.1`` .. ``path.N``) to keep
        beside the active file; older generations are deleted.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 64 * 1024 * 1024,
        max_files: int = 4,
    ):
        if max_bytes <= 0:
            raise ParameterError("max_bytes must be positive")
        if max_files < 0:
            raise ParameterError("max_files must be >= 0")
        self.path = os.fspath(path)
        self.max_bytes = int(max_bytes)
        self.max_files = int(max_files)
        self.seq = 0
        self.rotations = 0
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    # -- writing --------------------------------------------------------

    def emit(self, kind: str, data: Any) -> None:
        """Append one event.  Thread-safe; rotates first when full."""
        line = json.dumps(
            {"kind": kind, "ts": time.time(), "seq": self.seq, "data": data},
            sort_keys=False,
            default=str,
        )
        with self._lock:
            if self._fh.closed:
                return
            if self._fh.tell() + len(line) + 1 > self.max_bytes:
                self._rotate()
            self._fh.write(line)
            self._fh.write("\n")
            self.seq += 1

    def flush(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def _rotate(self) -> None:
        """Shift ``path`` -> ``path.1`` -> ... under the held lock."""
        self._fh.close()
        if self.max_files > 0:
            oldest = f"{self.path}.{self.max_files}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for i in range(self.max_files - 1, 0, -1):
                src = f"{self.path}.{i}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{i + 1}")
            os.replace(self.path, f"{self.path}.1")
        else:
            os.remove(self.path)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.rotations += 1

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventSink({self.path!r}, seq={self.seq}, "
            f"rotations={self.rotations})"
        )


# -- reading ------------------------------------------------------------


def sink_files(path: str) -> List[str]:
    """The rotated set for ``path``, oldest generation first."""
    path = os.fspath(path)
    found: List[tuple] = []
    for i in range(1, 1000):
        gen = f"{path}.{i}"
        if not os.path.exists(gen):
            break
        found.append((-i, gen))
    files = [f for _, f in sorted(found)]
    if os.path.exists(path):
        files.append(path)
    return files


def iter_events(path: str) -> Iterator[Dict[str, Any]]:
    """Parse one JSONL file, skipping torn/partial trailing lines."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write at a crash boundary
            if isinstance(event, dict):
                yield event


def read_events(
    path: str, kinds: Optional[List[str]] = None
) -> List[Dict[str, Any]]:
    """Every event across the rotated set, in write (``seq``) order."""
    events: List[Dict[str, Any]] = []
    for f in sink_files(path):
        events.extend(iter_events(f))
    events.sort(key=lambda e: e.get("seq", 0))
    if kinds is not None:
        wanted = set(kinds)
        events = [e for e in events if e.get("kind") in wanted]
    return events
