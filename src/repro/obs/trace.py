"""Span tracing: where the time goes inside one join.

A :class:`Span` is a named ``[start, start + duration)`` interval with
attributes and children; a :class:`Tracer` maintains the active span
stack and assembles the tree.  Two properties drive the design:

* **Near-zero cost when disabled.**  Instrumentation sites call
  :func:`span` (module level, reads the process-current tracer) inside a
  ``with`` statement.  A disabled tracer returns one shared no-op
  context manager, so a site costs a dict-free function call and two
  no-op methods — the ``obs_overhead`` suite in ``tools/bench_perf.py``
  holds this under 2% of join wall time.  Sites sit at *block*
  granularity (one span per ~256-query block), never per query.
* **Process-portable trees.**  ``Span`` is a plain dataclass of
  built-in types, so worker processes pickle their chunk trees back to
  the parent, which grafts them under its own ``run`` span
  (:func:`repro.engine.join` with ``trace=True``).  Serial execution
  produces the same shape through the same code — one detached tree per
  chunk, stitched by the parent — so serial and parallel traces are
  directly comparable.

Timing uses :func:`time.perf_counter_ns`: monotonic, integer, and the
cheapest high-resolution clock CPython offers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One named, timed interval in a trace tree.

    ``start_ns`` is a :func:`time.perf_counter_ns` reading — meaningful
    for ordering *within* one process only; durations are what cross
    process boundaries intact.
    """

    name: str
    start_ns: int = 0
    duration_ns: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def child(self, name: str) -> Optional["Span"]:
        """First direct child named ``name``, or ``None``."""
        for c in self.children:
            if c.name == name:
                return c
        return None

    def find(self, name: str) -> List["Span"]:
        """Every descendant (any depth, pre-order) named ``name``."""
        found: List[Span] = []
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            if node.name == name:
                found.append(node)
            stack.extend(reversed(node.children))
        return found

    def name_tree(self):
        """The structural skeleton ``(name, (child skeletons...))``.

        Durations and attributes vary run to run; the skeleton is what
        determinism tests compare across worker counts.
        """
        return (self.name, tuple(c.name_tree() for c in self.children))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            start_ns=int(payload.get("start_ns", 0)),
            duration_ns=int(payload.get("duration_ns", 0)),
            attrs=dict(payload.get("attrs", {})),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
        )


class _NullSpan:
    """The shared do-nothing context manager of every disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a :class:`Span` on an enabled tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tracer, span = self._tracer, self._span
        if tracer._stack:
            tracer._stack[-1].children.append(span)
        else:
            tracer.roots.append(span)
        tracer._stack.append(span)
        span.start_ns = time.perf_counter_ns()
        return span

    def __exit__(self, exc_type, exc, tb):
        span = self._span
        span.duration_ns = time.perf_counter_ns() - span.start_ns
        self._tracer._stack.pop()
        return False


class Tracer:
    """Span-tree builder; disabled instances hand out no-op spans."""

    __slots__ = ("enabled", "roots", "_stack")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs):
        """Open a child span of the currently active span (or a root)."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, Span(name=name, attrs=attrs))

    @property
    def root(self) -> Optional[Span]:
        """The first completed top-level span, or ``None``."""
        return self.roots[0] if self.roots else None

    def take(self) -> Optional[Span]:
        """Detach and return the first root (resetting the tracer)."""
        root = self.root
        self.roots = []
        self._stack = []
        return root


#: The context-current tracer.  Disabled by default; the engine swaps an
#: enabled tracer in for the duration of a traced join (and each worker
#: process activates its own around its chunk).  A ``ContextVar`` rather
#: than a module global so the thread-pool execution path works: each
#: worker thread starts from the default (disabled) value and activates
#: its own per-chunk tracer without racing siblings or the parent.
_DISABLED = Tracer(enabled=False)
_CURRENT: ContextVar[Tracer] = ContextVar("repro_tracer", default=_DISABLED)


def current_tracer() -> Tracer:
    return _CURRENT.get()


def span(name: str, **attrs):
    """Open a span on the context-current tracer.

    THE instrumentation entry point for kernel code: resolves the
    current tracer at call time, so modules can bind this function at
    import and still observe tracer activation.
    """
    return _CURRENT.get().span(name, **attrs)


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the context-current tracer within the block."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)
