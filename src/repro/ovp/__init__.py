"""Orthogonal Vectors Problem substrate (paper Section 2.1).

The hardness results of the paper are reductions *from* OVP; this package
provides the problem container, exact solvers (the "quadratic baseline"
every conditional lower bound is measured against), the generalized
unbalanced variant of Lemma 1, and helpers for the conjecture's parameter
regime ``d = gamma * log n``.
"""

from repro.ovp.conjecture import conjecture_dimension, is_conjecture_regime
from repro.ovp.generalized import solve_generalized_via_chunks
from repro.ovp.instance import OVPInstance
from repro.ovp.solvers import (
    solve_ovp_bitpacked,
    solve_ovp_bruteforce,
    solve_ovp_matmul,
)
from repro.ovp.weight_pruned import solve_ovp_weight_pruned, weight_prunable_fraction

__all__ = [
    "OVPInstance",
    "solve_ovp_bruteforce",
    "solve_ovp_bitpacked",
    "solve_ovp_matmul",
    "solve_ovp_weight_pruned",
    "weight_prunable_fraction",
    "solve_generalized_via_chunks",
    "conjecture_dimension",
    "is_conjecture_regime",
]
