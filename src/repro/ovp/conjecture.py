"""Parameter helpers for the OVP conjecture's regime.

Conjecture 1 concerns dimension ``d = omega(log n)``; the Abboud et al.
result makes OVP easy at ``d = O(log n)``.  These helpers compute and test
the boundary so experiment scripts can place themselves in the hard regime
explicitly (``d = gamma * log2 n`` with the multiplier recorded).
"""

from __future__ import annotations

import math

from repro.errors import ParameterError


def conjecture_dimension(n: int, gamma: float = 4.0) -> int:
    """Dimension ``d = ceil(gamma * log2 n)``, the conjecture's scale.

    For any constant ``gamma`` this is the boundary regime; experiment
    sweeps use growing ``gamma`` (or ``gamma * log log n``) to model
    ``omega(log n)``.
    """
    if n < 2:
        raise ParameterError(f"n must be at least 2, got {n}")
    if gamma <= 0:
        raise ParameterError(f"gamma must be positive, got {gamma}")
    return max(2, math.ceil(gamma * math.log2(n)))


def is_conjecture_regime(n: int, d: int, min_gamma: float = 1.0) -> bool:
    """True when ``d >= min_gamma * log2 n`` — at or beyond the hard boundary."""
    if n < 2:
        raise ParameterError(f"n must be at least 2, got {n}")
    return d >= min_gamma * math.log2(n)


def subquadratic_exponent(n: int, time_taken: float, time_unit: float) -> float:
    """Empirical exponent ``log(time/time_unit) / log(n)``.

    Benches fit running-time curves to ``n^x`` against a measured unit cost;
    this helper centralizes the (trivial but easy-to-flip) formula.
    """
    if n < 2 or time_taken <= 0 or time_unit <= 0:
        raise ParameterError("need n >= 2 and positive times")
    return math.log(time_taken / time_unit) / math.log(n)
