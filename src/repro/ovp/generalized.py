"""Generalized (unbalanced) OVP via chunking — Lemma 1.

Lemma 1 reduces balanced OVP (|P| = |Q| = n) to the unbalanced version
(|P| = n^alpha, |Q| = n) by splitting P into chunks of size n^alpha and
solving each chunk against all of Q.  ``solve_generalized_via_chunks``
executes exactly this reduction with a pluggable unbalanced solver, letting
benches observe the claimed ``n^{1-alpha} * T(n^alpha, n)`` cost shape.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.errors import ParameterError
from repro.ovp.instance import OVPInstance
from repro.ovp.solvers import solve_ovp_bitpacked

Pair = Optional[Tuple[int, int]]
UnbalancedSolver = Callable[[OVPInstance], Pair]


def solve_generalized_via_chunks(
    instance: OVPInstance,
    chunk_size: int,
    solver: UnbalancedSolver = solve_ovp_bitpacked,
) -> Pair:
    """Solve a balanced OVP instance by chunking P, as in Lemma 1's proof.

    Splits ``instance.P`` into consecutive chunks of ``chunk_size`` rows and
    runs ``solver`` on each (chunk, Q) sub-instance; returns the first
    orthogonal pair, with indices mapped back to the original instance.
    """
    if chunk_size <= 0:
        raise ParameterError(f"chunk_size must be positive, got {chunk_size}")
    P, Q = instance.P, instance.Q
    for start in range(0, P.shape[0], chunk_size):
        sub = OVPInstance(P=P[start:start + chunk_size], Q=Q)
        found = solver(sub)
        if found is not None:
            i, j = found
            return (start + i, j)
    return None
