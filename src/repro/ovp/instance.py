"""The Orthogonal Vectors Problem instance container (Definition 3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_binary, check_matrix


@dataclass(frozen=True)
class OVPInstance:
    """An OVP instance: two binary vector sets ``P`` and ``Q``.

    The decision problem (Definition 3) asks whether there exist
    ``p in P`` and ``q in Q`` with ``p . q = 0``.  The generalized variant
    of Lemma 1 allows ``|P| != |Q|``.

    Attributes:
        P: shape (n_p, d) binary matrix.
        Q: shape (n_q, d) binary matrix.
        planted_pair: optional (i, j) index of a known orthogonal pair,
            recorded by planted generators for end-to-end verification.
    """

    P: np.ndarray
    Q: np.ndarray
    planted_pair: Optional[Tuple[int, int]] = None

    def __post_init__(self):
        P = check_binary(check_matrix(self.P, "P", dtype=np.int64), "P")
        Q = check_binary(check_matrix(self.Q, "Q", dtype=np.int64), "Q")
        if P.shape[1] != Q.shape[1]:
            raise ValueError(
                f"P and Q must share a dimension; got {P.shape[1]} and {Q.shape[1]}"
            )
        object.__setattr__(self, "P", P)
        object.__setattr__(self, "Q", Q)
        if self.planted_pair is not None:
            i, j = self.planted_pair
            if not (0 <= i < P.shape[0] and 0 <= j < Q.shape[0]):
                raise ValueError(f"planted_pair {self.planted_pair} out of range")
            if int(P[i] @ Q[j]) != 0:
                raise ValueError("planted_pair is not actually orthogonal")

    @property
    def n_p(self) -> int:
        return self.P.shape[0]

    @property
    def n_q(self) -> int:
        return self.Q.shape[0]

    @property
    def d(self) -> int:
        return self.P.shape[1]

    def is_orthogonal(self, i: int, j: int) -> bool:
        """Check whether the pair (P[i], Q[j]) is orthogonal."""
        return int(self.P[i] @ self.Q[j]) == 0
