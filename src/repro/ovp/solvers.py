"""Exact OVP solvers.

Three baselines with the same O(n_p * n_q * d) asymptotic cost but very
different constants:

* ``solve_ovp_bruteforce`` — pure Python double loop; the honest reading of
  "naive algorithm that explicitly considers all pairs of tuples".
* ``solve_ovp_bitpacked`` — packs vectors into 64-bit words; a 64x constant
  improvement, the standard practical baseline.
* ``solve_ovp_matmul`` — blocked integer matrix product, testing
  ``min(P Q^T) == 0``; trades memory for BLAS throughput.

All solvers return the first orthogonal ``(i, j)`` pair found (``None`` when
the instance has no orthogonal pair), so results are directly comparable.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ovp.instance import OVPInstance
from repro.utils.bits import pack_binary_rows

Pair = Optional[Tuple[int, int]]


def solve_ovp_bruteforce(instance: OVPInstance) -> Pair:
    """Scan all pairs with explicit dot products; first orthogonal pair wins."""
    P, Q = instance.P, instance.Q
    for i in range(P.shape[0]):
        p = P[i]
        for j in range(Q.shape[0]):
            if int(p @ Q[j]) == 0:
                return (i, j)
    return None


def solve_ovp_bitpacked(instance: OVPInstance) -> Pair:
    """Scan all pairs on 64-bit packed words.

    For each ``p`` the inner loop is a vectorized AND over all packed rows
    of ``Q``, so the per-pair cost is ``d / 64`` word operations.
    """
    P_words = pack_binary_rows(instance.P)
    Q_words = pack_binary_rows(instance.Q)
    for i in range(P_words.shape[0]):
        # A pair is orthogonal iff every word of (p AND q) is zero.
        collisions = np.bitwise_and(Q_words, P_words[i]).any(axis=1)
        hits = np.flatnonzero(~collisions)
        if hits.size:
            return (i, int(hits[0]))
    return None


def solve_ovp_matmul(instance: OVPInstance, block: int = 1024) -> Pair:
    """Blocked integer matrix product; a pair is orthogonal iff its entry is 0."""
    P, Q = instance.P, instance.Q
    for i0 in range(0, P.shape[0], block):
        P_block = P[i0:i0 + block]
        for j0 in range(0, Q.shape[0], block):
            products = P_block @ Q[j0:j0 + block].T
            zero = np.argwhere(products == 0)
            if zero.size:
                i, j = zero[0]
                return (i0 + int(i), j0 + int(j))
    return None


def count_orthogonal_pairs(instance: OVPInstance, block: int = 1024) -> int:
    """Exact count of orthogonal pairs (used by tests as ground truth)."""
    P, Q = instance.P, instance.Q
    total = 0
    for i0 in range(0, P.shape[0], block):
        P_block = P[i0:i0 + block]
        for j0 in range(0, Q.shape[0], block):
            total += int((P_block @ Q[j0:j0 + block].T == 0).sum())
    return total
