"""Weight-pruned exact OVP: a combinatorial speedup for dense instances.

Two binary vectors are orthogonal exactly when their supports are
disjoint, which requires ``|x| + |y| <= d``.  Sorting ``Q`` by Hamming
weight lets each ``p`` restrict its scan to the prefix with
``|q| <= d - |p|`` — on dense instances (the regime where orthogonal
pairs are rare and OVP is *decided* rather than *found*), most pairs are
eliminated without touching their coordinates.  Worst case (sparse
vectors) it degrades to the bit-packed scan it wraps.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ovp.instance import OVPInstance
from repro.utils.bits import pack_binary_rows

Pair = Optional[Tuple[int, int]]


def solve_ovp_weight_pruned(instance: OVPInstance) -> Pair:
    """First orthogonal pair, scanning only weight-compatible candidates.

    Returns indices in the original instance; pair-existence answers are
    identical to the other exact solvers.
    """
    P, Q = instance.P, instance.Q
    d = instance.d
    q_weights = Q.sum(axis=1)
    order = np.argsort(q_weights, kind="stable")
    q_sorted_weights = q_weights[order]
    Q_words = pack_binary_rows(Q[order])
    p_weights = P.sum(axis=1)

    for i in range(P.shape[0]):
        budget = d - int(p_weights[i])
        if budget < 0:
            continue
        # Only the prefix with |q| <= d - |p| can be disjoint from p.
        limit = int(np.searchsorted(q_sorted_weights, budget, side="right"))
        if limit == 0:
            continue
        p_words = pack_binary_rows(P[i:i + 1])[0]
        collisions = np.bitwise_and(Q_words[:limit], p_words).any(axis=1)
        hits = np.flatnonzero(~collisions)
        if hits.size:
            return (i, int(order[hits[0]]))
    return None


def weight_prunable_fraction(instance: OVPInstance) -> float:
    """Fraction of all pairs eliminated by the weight test alone.

    The bench statistic: on dense instances this approaches 1 and the
    solver barely touches coordinates; on sparse instances it approaches
    0 and the solver is an ordinary scan.
    """
    d = instance.d
    p_weights = instance.P.sum(axis=1)
    q_weights = np.sort(instance.Q.sum(axis=1))
    surviving = 0
    for w in p_weights:
        surviving += int(np.searchsorted(q_weights, d - int(w), side="right"))
    total = instance.n_p * instance.n_q
    return 1.0 - surviving / total
