"""The compact index tier: quantized kernels and inner-product filters.

Three representations trade precision for bytes per coordinate:

* :mod:`repro.quant.scalar` — symmetric int8 scalar quantization with
  per-row scales (1 byte/coordinate) and an exact-survivor scan kernel;
* :mod:`repro.quant.bitpack` — packed sign bits (1 bit/coordinate) with
  XOR + popcount scans;
* :mod:`repro.quant.ipfilter` — Pagh-Sivertsen-style inner-product
  sketch filters over quantized random projections.

:mod:`repro.quant.backend` adapts them to the engine: the ``quantized``
backend (exact joins over the int8 index) and the ``ip_filter`` Plan
stage (propose survivors for a verify stage).
"""

from repro.quant.bitpack import (
    hamming_scores,
    pack_sign_rows,
    popcount_words,
    sign_ip_scores,
)
from repro.quant.ipfilter import IPSketchFilter
from repro.quant.scalar import (
    FLOAT32_EXACT_D,
    QuantizedRows,
    dequantize_rows,
    pair_error_bounds,
    quantize_rows,
    quantized_scan_survivors,
)

__all__ = [
    "FLOAT32_EXACT_D",
    "QuantizedRows",
    "quantize_rows",
    "dequantize_rows",
    "pair_error_bounds",
    "quantized_scan_survivors",
    "pack_sign_rows",
    "popcount_words",
    "hamming_scores",
    "sign_ip_scores",
    "IPSketchFilter",
]
