"""Engine adapters for the compact tier.

``quantized`` is an *exact* backend over an 8x-smaller index: the int8
scan kernel over-approximates the match set via its analytic error
bound, then exact float64 GEMM verifies the survivors — so its results
are bit-identical to ``brute_force`` while the scan itself touches one
byte per coordinate.  ``ip_filter`` wraps the Pagh-Sivertsen-style
sketch filter as a ``kind="filter"`` Plan stage: it proposes survivor
lists and the engine hands them to the next stage (normally
``quantized`` in verify-only mode) as its ``proposals`` option.

Both structures hold plain contiguous ndarrays, so they freeze/thaw
through the :class:`~repro.core.arena.SharedArena` zero-copy like every
other backend structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.problems import JoinSpec, QueryStats
from repro.engine.protocol import ChunkResult, CostEstimate, JoinBackend
from repro.errors import ParameterError
from repro.obs.trace import span
from repro.quant.ipfilter import (
    DEFAULT_FILTER_DIMS,
    DEFAULT_FILTER_Z,
    FILTER_BIT_WIDTHS,
    IPSketchFilter,
)
from repro.quant.scalar import (
    DEFAULT_SCAN_BLOCK,
    FLOAT32_EXACT_D,
    QuantizedRows,
    quantize_rows,
    quantized_scan_survivors,
)

_ACCUMULATE_MODES = ("auto", "float32", "int32")


def _require_variant(spec: JoinSpec, backend: str, allowed) -> None:
    if spec.variant not in allowed:
        raise ParameterError(
            f"backend {backend!r} does not answer the {spec.variant!r} "
            f"variant (supported: {', '.join(allowed)})"
        )


def _normalize_proposals(proposals, who: str) -> List[np.ndarray]:
    lists = []
    for entry in proposals:
        arr = np.unique(np.asarray(entry, dtype=np.int64))
        if arr.size and arr[0] < 0:
            raise ParameterError(f"{who} proposals contain negative indices")
        lists.append(arr)
    return lists


def _verify_chunk(
    structure_spec: JoinSpec,
    P,
    Q_chunk,
    cand_lists: List[np.ndarray],
    block: int,
) -> ChunkResult:
    """Exact float64 verification of candidate lists for one chunk."""
    from repro.core.topk import _rank_above
    from repro.core.verify import candidate_values_block, verify_candidates

    spec = structure_spec
    mc = Q_chunk.shape[0]
    generated = sum(int(lst.size) for lst in cand_lists)
    stats = QueryStats()
    stats.record_batch(
        n_queries=mc, n_candidates=generated, n_unique=generated
    )
    if spec.is_topk:
        lists: List[List[int]] = []
        evaluated = 0
        for q0 in range(0, mc, block):
            q1 = min(q0 + block, mc)
            block_lists = cand_lists[q0:q1]
            values = candidate_values_block(P, Q_chunk[q0:q1], block_lists)
            for local, cands in enumerate(block_lists):
                evaluated += int(cands.size)
                lists.append(
                    _rank_above(
                        values[local], cands, spec.signed, spec.cs, spec.k
                    )
                )
        matches = [int(lst[0]) if lst else None for lst in lists]
        return ChunkResult(
            matches, evaluated, generated, stats, topk=lists
        )
    matches, evaluated = verify_candidates(
        P, Q_chunk, cand_lists, spec.cs, signed=spec.signed, block=block
    )
    return ChunkResult(matches, evaluated, generated, stats)


# ---------------------------------------------------------------------------
# quantized


@dataclass
class QuantizedStructure:
    """Int8-quantized ``P`` (scan mode) or pinned survivor lists (verify).

    Built lazily in the parent process — the quantized arrays are plain
    ndarrays, so parallel workers receive them zero-copy via the shared
    arena instead of re-quantizing.
    """

    spec: JoinSpec
    block: int
    scan_block: int
    accumulate: str
    data: Optional[QuantizedRows] = None
    proposals: Optional[List[np.ndarray]] = None

    def build(self, P):
        if self.proposals is None and self.data is None:
            self.data = quantize_rows(P)
        return self

    def arrays(self) -> List[np.ndarray]:
        """The built index's large arrays, for session pinning and the
        directory persistence format (see
        :func:`repro.engine.protocol.persistable_arrays`)."""
        if self.data is None:
            return []
        return [self.data.codes, self.data.scales,
                self.data.norms, self.data.eps]


class QuantizedBackend(JoinBackend):
    """Exact joins over an int8 index: quantized scan + exact verify."""

    name = "quantized"
    variants = ("join", "topk")

    def prepare(self, P, spec, *, seed=None, block, n_workers=1,
                scan_block: int = DEFAULT_SCAN_BLOCK,
                accumulate: str = "auto", proposals=None, **options):
        if options:
            raise ParameterError(
                "quantized takes only scan_block, accumulate and "
                f"proposals, got {sorted(options)}"
            )
        _require_variant(spec, self.name, self.variants)
        if accumulate not in _ACCUMULATE_MODES:
            raise ParameterError(
                f"accumulate must be one of {_ACCUMULATE_MODES}, "
                f"got {accumulate!r}"
            )
        d = P.shape[1]
        if accumulate == "float32" and d > FLOAT32_EXACT_D:
            raise ParameterError(
                f"accumulate='float32' is exact only for d <= "
                f"{FLOAT32_EXACT_D}, got d={d}; use 'int32' or 'auto'"
            )
        if int(scan_block) < 1:
            raise ParameterError(f"scan_block must be >= 1, got {scan_block}")
        structure = QuantizedStructure(
            spec=spec,
            block=block,
            scan_block=int(scan_block),
            accumulate=accumulate,
        )
        if proposals is not None:
            lists = _normalize_proposals(proposals, self.name)
            n = P.shape[0]
            if any(lst.size and lst[-1] >= n for lst in lists):
                raise ParameterError(
                    f"quantized proposals reference point indices >= n={n}"
                )
            structure.proposals = lists
        return structure, spec

    def run_chunk(self, structure, P, Q_chunk, start):
        spec = structure.spec
        mc = Q_chunk.shape[0]
        if structure.proposals is not None:
            if start + mc > len(structure.proposals):
                raise ParameterError(
                    "quantized proposals must hold one candidate list per "
                    f"query: got {len(structure.proposals)} lists for "
                    f"queries [{start}, {start + mc})"
                )
            cand_lists = structure.proposals[start:start + mc]
            with span("verify", n_queries=mc):
                return _verify_chunk(
                    spec, P, Q_chunk, cand_lists, structure.block
                )
        qq = quantize_rows(np.ascontiguousarray(Q_chunk, dtype=np.float64))
        with span("scan", n_queries=mc):
            cand_lists, generated, max_bound = quantized_scan_survivors(
                structure.data,
                qq,
                spec.cs,
                spec.signed,
                accumulate=structure.accumulate,
                scan_block=structure.scan_block,
            )
        with span("verify", n_queries=mc):
            result = _verify_chunk(
                spec, P, Q_chunk, cand_lists, structure.block
            )
        result.error_bound = max_bound
        return result

    def estimate_cost(self, n, m, d, spec, model):
        if spec.variant not in self.variants:
            return CostEstimate(
                backend=self.name, feasible=False,
                reason=f"no {spec.variant} variant",
            )
        build = model.quant_fixed_build + 0.5 * n * d * model.gemm_op
        scan = n * m * d * model.quant_scan_op
        scan *= model.memory_factor(d + 24.0, n)
        verify = model.quant_verify_fraction * n * m * d * model.gemm_op
        verify *= model.memory_factor(8.0 * d, n)
        query = scan + verify + m * model.row_op
        return CostEstimate(
            backend=self.name, feasible=True, build_ops=build,
            query_ops=query,
        )


# ---------------------------------------------------------------------------
# ip_filter


@dataclass
class FilterStructure:
    """Sketch-filter recipe/build; proposes survivors, answers nothing."""

    spec: JoinSpec
    n_dims: int
    bits: int
    z: float
    seed: int
    scan_block: int
    filter: Optional[IPSketchFilter] = None

    def build(self, P):
        if self.filter is None:
            self.filter = IPSketchFilter(
                P, n_dims=self.n_dims, bits=self.bits, z=self.z,
                seed=self.seed,
            )
        return self

    def arrays(self) -> List[np.ndarray]:
        """The built filter's large arrays (projection, norms, sketches)."""
        if self.filter is None:
            return []
        arrs = [self.filter.G, self.filter.norms]
        if self.filter.sketch is not None:
            arrs += [self.filter.sketch.codes, self.filter.sketch.scales,
                     self.filter.sketch.norms, self.filter.sketch.eps]
        if self.filter.sign_bits is not None:
            arrs.append(self.filter.sign_bits)
        return arrs


class IPFilterBackend(JoinBackend):
    """Inner-product sketch filter stage (Pagh-Sivertsen style)."""

    name = "ip_filter"
    variants = ("join", "topk")
    is_filter = True

    def prepare(self, P, spec, *, seed=None, block, n_workers=1,
                n_dims: int = DEFAULT_FILTER_DIMS, bits: int = 8,
                z: float = DEFAULT_FILTER_Z,
                scan_block: int = DEFAULT_SCAN_BLOCK, **options):
        if options:
            raise ParameterError(
                "ip_filter takes only n_dims, bits, z and scan_block, "
                f"got {sorted(options)}"
            )
        _require_variant(spec, self.name, self.variants)
        if int(n_dims) < 1:
            raise ParameterError(f"n_dims must be >= 1, got {n_dims}")
        if int(bits) not in FILTER_BIT_WIDTHS:
            raise ParameterError(
                f"bits must be one of {FILTER_BIT_WIDTHS}, got {bits}"
            )
        if float(z) <= 0.0:
            raise ParameterError(f"z must be > 0, got {z}")
        structure = FilterStructure(
            spec=spec,
            n_dims=int(n_dims),
            bits=int(bits),
            z=float(z),
            seed=0 if seed is None else int(seed),
            scan_block=int(scan_block),
        )
        return structure, spec

    def run_chunk(self, structure, P, Q_chunk, start):
        spec = structure.spec
        mc = Q_chunk.shape[0]
        with span("sketch_propose", n_queries=mc):
            # Recall anchors at spec.s: pairs inside the (cs, s) promise
            # gap are optional under the c-approximate guarantee, which
            # is what keeps the filter selective (see IPSketchFilter).
            lists, generated, margin_max = structure.filter.propose_chunk(
                Q_chunk, spec.s, spec.signed,
                scan_block=structure.scan_block,
            )
        stats = QueryStats()
        stats.record_batch(
            n_queries=mc, n_candidates=generated, n_unique=generated
        )
        return ChunkResult(
            matches=[None] * mc,
            evaluated=0,
            generated=generated,
            stats=stats,
            proposals=lists,
            error_bound=margin_max,
        )

    def estimate_cost(self, n, m, d, spec, model):
        return CostEstimate(
            backend=self.name,
            feasible=False,
            reason="filter stages only propose candidates; run inside a "
                   "Plan (see quantized_filter_plan)",
        )
