"""Bit-packed sign kernels: 1 bit per coordinate, XOR + popcount scans.

The most compact tier keeps only the sign of each coordinate, packed 64
per ``uint64`` word via :func:`repro.utils.bits.pack_binary_rows`.  A
sign dot product ``<sign(x), sign(y)> = d - 2 * hamming(bits_x,
bits_y)`` then costs ``d / 64`` XOR + popcount word operations per pair.
``np.bitwise_count`` (numpy >= 2.0) does the popcount natively; older
numpy falls back to a byte lookup table.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bits import pack_binary_rows

_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

DEFAULT_BIT_BLOCK = 8192


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    flat = words.reshape(-1).view(np.uint8)
    counts = _POPCOUNT_TABLE[flat].reshape(*words.shape, 8)
    return counts.sum(axis=-1, dtype=np.uint64).astype(words.dtype)


def pack_sign_rows(X) -> np.ndarray:
    """Pack the signs of ``X``'s rows: bit j set iff ``X[i, j] > 0``.

    Zero coordinates pack as 0, i.e. they count as negative signs —
    consistent across both operands, which is all the hamming distance
    needs.  Returns ``(n, ceil(d / 64))`` uint64 words.
    """
    X = np.asarray(X)
    return pack_binary_rows(X > 0)


def hamming_scores(
    bits_q: np.ndarray,
    bits_p: np.ndarray,
    block: int = DEFAULT_BIT_BLOCK,
) -> np.ndarray:
    """Blocked pairwise hamming distances between packed sign rows.

    Returns an ``(m, n)`` int64 matrix; padding bits beyond ``d`` are
    zero in both operands, so they never contribute.
    """
    m = bits_q.shape[0]
    n = bits_p.shape[0]
    out = np.empty((m, n), dtype=np.int64)
    q_block = max(1, min(256, m))
    for q0 in range(0, m, q_block):
        q1 = min(q0 + q_block, m)
        for p0 in range(0, n, block):
            p1 = min(p0 + block, n)
            xor = bits_q[q0:q1, None, :] ^ bits_p[None, p0:p1, :]
            out[q0:q1, p0:p1] = popcount_words(xor).sum(
                axis=-1, dtype=np.int64
            )
    return out


def sign_ip_scores(
    bits_q: np.ndarray,
    bits_p: np.ndarray,
    d: int,
    block: int = DEFAULT_BIT_BLOCK,
) -> np.ndarray:
    """Pairwise ``<sign(q), sign(p)>`` from packed sign bits.

    Equals ``d - 2 * hamming`` when no coordinate is exactly zero; zero
    coordinates count as -1 (see :func:`pack_sign_rows`).
    """
    return d - 2 * hamming_scores(bits_q, bits_p, block=block)
