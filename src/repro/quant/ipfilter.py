"""Inner-product sketch filter in the style of Pagh-Sivertsen.

*The space complexity of inner product filters* (arXiv:1909.10766)
studies exactly this primitive: decide from small sketches whether
``<p, q>`` can reach a threshold, with one-sided error.  Here each data
row is summarized by a seeded Gaussian random projection to ``n_dims``
dimensions — ``E<Gp, Gq> = <p, q>`` with standard deviation at most
``||p|| ||q|| sqrt(2 / n_dims)`` — stored quantized (int8 codes at
``bits=8``, packed sign bits at ``bits=1``).  A pair survives when its
sketch estimate plus a ``z``-standard-deviation confidence margin (plus
the deterministic quantization error bound) reaches the recall anchor
``s``, so pairs at the promise threshold are missed only on >
``z``-sigma estimator deviations, and pairs inside the ``(cs, s)`` gap
stay optional exactly as the ``c``-approximate guarantee allows.

The filter proposes; it never answers.  The engine feeds its survivor
lists to a verify-capable backend (see ``quantized_filter_plan``) which
evaluates exact inner products on the survivors only.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.quant.bitpack import hamming_scores, pack_sign_rows
from repro.quant.scalar import (
    DEFAULT_SCAN_BLOCK,
    append_block_survivors,
    append_threshold_survivors,
    quantize_rows,
)
from repro.utils.validation import check_matrix

DEFAULT_FILTER_DIMS = 32
DEFAULT_FILTER_Z = 3.0
FILTER_BIT_WIDTHS = (1, 8)


class IPSketchFilter:
    """Quantized random-projection sketches of a data matrix ``P``."""

    def __init__(
        self,
        P,
        n_dims: int = DEFAULT_FILTER_DIMS,
        bits: int = 8,
        z: float = DEFAULT_FILTER_Z,
        seed: int = 0,
    ):
        P = check_matrix(P, "P")
        self.n_dims = int(n_dims)
        self.bits = int(bits)
        self.z = float(z)
        self.seed = int(seed)
        self.d = P.shape[1]
        rng = np.random.default_rng(self.seed)
        # Rows of sqrt(n_dims) * G are standard Gaussian directions, so
        # <Gp, Gq> averages n_dims unbiased single-direction estimates
        # of <p, q> and sign((Gp)_t) is a SimHash bit.
        self.G = rng.standard_normal((self.n_dims, self.d)) / math.sqrt(
            self.n_dims
        )
        self.norms = np.linalg.norm(P, axis=1)
        projected = P @ self.G.T
        if self.bits == 8:
            self.sketch = quantize_rows(projected)
            self.sign_bits = None
        else:
            self.sketch = None
            self.sign_bits = pack_sign_rows(projected)

    @property
    def n(self) -> int:
        return self.norms.shape[0]

    @property
    def nbytes(self) -> int:
        """Bytes held by the filter (projection, norms, sketches)."""
        total = self.G.nbytes + self.norms.nbytes
        if self.sketch is not None:
            total += self.sketch.nbytes
        if self.sign_bits is not None:
            total += self.sign_bits.nbytes
        return total

    def propose_chunk(
        self,
        Q_chunk,
        threshold: float,
        signed: bool,
        scan_block: int = DEFAULT_SCAN_BLOCK,
    ) -> Tuple[List[np.ndarray], int, float]:
        """Survivor lists for one query chunk.

        ``threshold`` anchors recall: every pair with true inner product
        at least ``threshold`` survives unless its sketch estimate
        deviated by more than ``z`` standard deviations.  The engine
        passes ``spec.s`` — like the LSH backend, the filter exploits
        the ``(cs, s)`` promise gap, leaving pairs inside the gap
        optional exactly as the ``c``-approximate guarantee allows.

        Returns ``(cand_lists, generated, margin_max)``: one ascending
        int64 array of surviving point indices per query, their total
        count, and the largest additive margin granted to any pair (the
        filter's recall knob, surfaced as ``JoinResult.error_bound``).
        """
        Q_chunk = np.ascontiguousarray(Q_chunk, dtype=np.float64)
        mc = Q_chunk.shape[0]
        projected = Q_chunk @ self.G.T
        q_norms = np.linalg.norm(Q_chunk, axis=1)
        if self.bits == 8:
            lists, generated, margin_max = self._propose_int8(
                projected, q_norms, threshold, signed, scan_block
            )
        else:
            lists, generated, margin_max = self._propose_bits(
                projected, q_norms, threshold, signed, scan_block
            )
        assert len(lists) == mc
        return lists, generated, margin_max

    def _propose_int8(self, projected, q_norms, threshold, signed, scan_block):
        qq = quantize_rows(projected)
        sk = self.sketch
        mc = projected.shape[0]
        # Scaled float32 sketches: the statistical margin dwarfs both the
        # int8 rounding (bounded separately below) and float32 GEMM error.
        qf = qq.codes.astype(np.float32) * qq.scales[:, None].astype(
            np.float32
        )
        jl_sigma = math.sqrt(2.0 / self.n_dims)
        per_query: List[List[np.ndarray]] = [[] for _ in range(mc)]
        generated = 0
        margin_max = 0.0
        q_block = max(1, min(512, scan_block))
        buf = np.empty((q_block, min(scan_block, self.n)), dtype=np.float32)
        for p0 in range(0, self.n, scan_block):
            p1 = min(p0 + scan_block, self.n)
            pf = sk.codes[p0:p1].astype(np.float32) * sk.scales[
                p0:p1, None
            ].astype(np.float32)
            pn_max = float(self.norms[p0:p1].max())
            sk_eps_max = float(sk.eps[p0:p1].max())
            sk_norm_max = float(sk.norms[p0:p1].max())
            for q0 in range(0, mc, q_block):
                q1 = min(q0 + q_block, mc)
                if p1 - p0 == buf.shape[1]:
                    est = np.matmul(qf[q0:q1], pf.T, out=buf[: q1 - q0])
                else:
                    est = qf[q0:q1] @ pf.T
                margin = (
                    self.z * jl_sigma * q_norms[q0:q1] * pn_max
                    + sk_eps_max * qq.norms[q0:q1]
                    + qq.eps[q0:q1] * (sk_norm_max + sk_eps_max)
                )
                if margin.size:
                    margin_max = max(margin_max, float(margin.max()))
                thresh = threshold - margin
                generated += append_threshold_survivors(
                    per_query, est, thresh, signed, q0, p0
                )
        empty = np.empty(0, dtype=np.int64)
        lists = [
            np.concatenate(parts) if parts else empty for parts in per_query
        ]
        return lists, generated, margin_max

    def _propose_bits(self, projected, q_norms, threshold, signed, scan_block):
        q_bits = pack_sign_rows(projected)
        mc = projected.shape[0]
        k = self.n_dims
        # hamming / k estimates theta / pi (SimHash); its std is at most
        # 1 / (2 sqrt(k)), so widen the angle interval by z * pi /
        # (2 sqrt(k)) and take the most favorable cosine inside it.
        width = self.z * math.pi / (2.0 * math.sqrt(k))
        per_query: List[List[np.ndarray]] = [[] for _ in range(mc)]
        generated = 0
        margin_max = 0.0
        for p0 in range(0, self.n, scan_block):
            p1 = min(p0 + scan_block, self.n)
            ham = hamming_scores(q_bits, self.sign_bits[p0:p1])
            theta = (math.pi / k) * ham
            lo = np.cos(np.clip(theta - width, 0.0, math.pi))
            prod = q_norms[:, None] * self.norms[None, p0:p1]
            if signed:
                upper = lo
            else:
                hi = np.cos(np.clip(theta + width, 0.0, math.pi))
                upper = np.maximum(np.abs(lo), np.abs(hi))
            if prod.size:
                # |cos'| <= 1 bounds the slack the widened interval adds.
                margin_max = max(margin_max, width * float(prod.max()))
            mask = prod * upper >= threshold
            generated += append_block_survivors(per_query, mask, 0, p0)
        empty = np.empty(0, dtype=np.int64)
        lists = [
            np.concatenate(parts) if parts else empty for parts in per_query
        ]
        return lists, generated, margin_max
