"""Symmetric int8 scalar quantization with per-row scales.

The compact tier stores each row of ``P``/``Q`` as int8 codes plus one
float64 scale: ``x ~= scale * codes`` with ``|x_i - scale * c_i| <=
scale / 2`` per coordinate, hence (Cauchy-Schwarz) a per-row additive
inner-product error bound of ``eps = (scale / 2) * sqrt(d)`` times the
other operand's norm.  The scan kernel turns the join threshold ``cs``
into a conservative integer-code threshold per (query, point-block), so
every pair whose *true* inner product clears ``cs`` survives — survivors
are then verified with exact float64 GEMM, which makes the quantized
backend exact despite the 8x-smaller index.

The scan GEMM runs in float32 (BLAS sgemm, twice dgemm's throughput)
over *scale-folded* operands ``codes * scale``: each dot product then
approximates the true inner product directly, so the survivor threshold
is per-query tight — no block-max scale substitution loosening it — and
float32 rounding is covered by an explicit ``gamma_d * 127**2 * d *
s_q * s_p`` term added to the bound (the standard summation error model
``|fl(<x, y>) - <x, y>| <= gamma_d * sum |x_t y_t|``).  Dimensions
beyond ``FLOAT32_EXACT_D`` fall back to an int32-accumulated code
matmul whose integer products are exact but whose threshold must divide
out a block-max point scale (conservative, hence looser).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.validation import check_matrix

MAX_CODE = 127

#: Largest d routed to the float32 scan under ``accumulate="auto"``.
#: (Historically the exact-integer limit ``d * 127**2 < 2**24``; the
#: scale-folded float32 path stays sound beyond it — its rounding term
#: grows with d — but past this point the int32 path's exact integer
#: products make the tighter kernel.)
FLOAT32_EXACT_D = (1 << 24) // (MAX_CODE * MAX_CODE)

#: Multiplicative + additive slack applied to the analytic bound before
#: thresholding, so float64 rounding in the bound arithmetic itself can
#: never drop a pair sitting exactly on the threshold.
_BOUND_SLACK_REL = 1e-9
_BOUND_SLACK_ABS = 1e-12

DEFAULT_SCAN_BLOCK = 4096


def append_threshold_survivors(
    per_query: List[List[np.ndarray]],
    dots: np.ndarray,
    thresh: np.ndarray,
    signed: bool,
    q0: int,
    p0: int,
) -> int:
    """Append survivors of one (query-block, point-block) score matrix.

    Keeps point ``i`` for query row ``r`` when ``dots[r, i] >=
    thresh[r]`` (``|dots[r, i]|`` unsigned).  A selective scan leaves
    most query rows with no survivor at all, so one max reduction per
    row skips the per-element compare + nonzero pass for cold rows —
    without it that pass costs as much as the GEMM it follows.
    ``thresh`` rows of ``-inf`` keep everything, ``+inf`` nothing.
    Survivors land on ``per_query[q0 + row]`` as ascending global int64
    point indices; returns the number appended.
    """
    if signed:
        rowmax = dots.max(axis=1)
    else:
        rowmax = np.maximum(dots.max(axis=1), -dots.min(axis=1))
    hot = np.nonzero(rowmax >= thresh)[0]
    appended = 0
    for r in hot:
        if signed:
            cols = np.nonzero(dots[r] >= thresh[r])[0]
        else:
            cols = np.nonzero(np.abs(dots[r]) >= thresh[r])[0]
        if cols.size:
            per_query[q0 + r].append((cols + p0).astype(np.int64))
            appended += int(cols.size)
    return appended


def append_block_survivors(
    per_query: List[List[np.ndarray]],
    mask: np.ndarray,
    q0: int,
    p0: int,
) -> int:
    """Append one (query-block, point-block) boolean mask's survivors.

    ``mask`` is ``(qb, pb)``; survivors land on ``per_query[q0 + row]``
    as ascending global int64 point indices (``np.nonzero`` is row-major
    sorted, and callers visit point blocks in ascending order).  Returns
    the number of survivors appended.
    """
    rows, cols = np.nonzero(mask)
    if not rows.size:
        return 0
    splits = np.searchsorted(rows, np.arange(mask.shape[0]))
    edges = np.append(splits, rows.size)
    for local in range(mask.shape[0]):
        lo, hi = edges[local], edges[local + 1]
        if hi > lo:
            per_query[q0 + local].append((cols[lo:hi] + p0).astype(np.int64))
    return int(rows.size)


@dataclass
class QuantizedRows:
    """Int8 codes + per-row scales for one matrix, with scan metadata.

    ``norms`` are the norms of the *original* rows and ``eps`` the
    per-row quantization error norms ``(scale / 2) * sqrt(d)``; writing
    ``<p,q> - <p_hat,q_hat> = <p - p_hat, q> + <p_hat, q - q_hat>`` and
    bounding ``||p_hat|| <= ||p|| + eps_p`` gives ``|<p, q> - <p_hat,
    q_hat>| <= eps_p * ||q|| + eps_q * (||p|| + eps_p)``.
    """

    codes: np.ndarray  # (n, d) int8
    scales: np.ndarray  # (n,) float64, >= 0; 0 only for all-zero rows
    norms: np.ndarray  # (n,) float64, norms of the original rows
    eps: np.ndarray  # (n,) float64, (scale / 2) * sqrt(d)

    @property
    def n(self) -> int:
        return self.codes.shape[0]

    @property
    def d(self) -> int:
        return self.codes.shape[1]

    @property
    def nbytes(self) -> int:
        """Bytes held by the quantized representation."""
        return (
            self.codes.nbytes
            + self.scales.nbytes
            + self.norms.nbytes
            + self.eps.nbytes
        )


def quantize_rows(X) -> QuantizedRows:
    """Quantize each row of ``X`` to int8 with its own symmetric scale.

    ``scale = max|row| / 127``; all-zero rows get scale 0 and zero codes,
    so dequantization is exact for them.
    """
    X = check_matrix(X, "X")
    absmax = np.max(np.abs(X), axis=1)
    scales = absmax / MAX_CODE
    safe = np.where(scales > 0.0, scales, 1.0)
    codes = np.clip(np.rint(X / safe[:, None]), -MAX_CODE, MAX_CODE)
    codes = np.ascontiguousarray(codes, dtype=np.int8)
    norms = np.linalg.norm(X, axis=1)
    eps = 0.5 * scales * math.sqrt(X.shape[1])
    return QuantizedRows(codes=codes, scales=scales, norms=norms, eps=eps)


def dequantize_rows(q: QuantizedRows) -> np.ndarray:
    """Reconstruct the float64 approximation ``scale * codes``."""
    return q.codes.astype(np.float64) * q.scales[:, None]


def pair_error_bounds(qp: QuantizedRows, qq: QuantizedRows) -> np.ndarray:
    """Full ``(m, n)`` matrix of analytic error bounds (test/diagnostic use).

    ``bound[j, i] = qp.eps[i] * ||q_j|| + qq.eps[j] * (||p_i|| +
    qp.eps[i])`` upper bounds ``|<p_i, q_j> - <p_hat_i, q_hat_j>|``; the
    scan kernel applies it blockwise with block maxima on the ``P`` side.
    """
    return (
        qq.norms[:, None] * qp.eps[None, :]
        + qq.eps[:, None] * (qp.norms + qp.eps)[None, :]
    )


def resolve_accumulate(accumulate: str, d: int) -> str:
    """Pick the code-product GEMM dtype: float32 when exact, else int32."""
    if accumulate == "auto":
        return "float32" if d <= FLOAT32_EXACT_D else "int32"
    return accumulate


def quantized_scan_survivors(
    qp: QuantizedRows,
    qq: QuantizedRows,
    cs: float,
    signed: bool,
    accumulate: str = "auto",
    scan_block: int = DEFAULT_SCAN_BLOCK,
) -> Tuple[List[np.ndarray], int, float]:
    """Scan quantized queries against quantized points; return survivors.

    Returns ``(cand_lists, generated, max_bound)`` where ``cand_lists``
    holds one ascending int64 index array per query containing every
    point whose true inner product *may* reach ``cs`` (a superset of the
    true matches — see module docstring), ``generated`` their total
    count, and ``max_bound`` the largest additive error bound granted to
    any (query, point-block) pair, i.e. the guaranteed-recall knob
    surfaced as ``JoinResult.error_bound``.
    """
    n, mc = qp.n, qq.n
    mode = resolve_accumulate(accumulate, qp.d)
    # One survivor-array list per query; p-blocks ascend, so per-query
    # concatenation yields ascending candidate lists — the order
    # verify_candidates needs for lowest-index tie-breaking.
    per_query: List[List[np.ndarray]] = [[] for _ in range(mc)]
    generated = 0
    max_bound = 0.0
    q_block = max(1, min(512, scan_block))
    dtype = np.float32 if mode == "float32" else np.int32
    if mode == "float32":
        # Scale-folded operands: dots approximate true inner products,
        # so thresholds stay per-query tight.  The summation model
        # |fl(<x,y>) - <x,y>| <= gamma * sum|x_t y_t| (a few extra
        # rounding steps folded into the +4 cushion) bounds the float32
        # GEMM error by gamma * 127**2 * d * s_q * s_p.
        u = 2.0**-24
        gamma = (qp.d + 4) * u / (1.0 - (qp.d + 4) * u)
        fp_coeff = gamma * float(MAX_CODE * MAX_CODE) * qp.d
        cq_cast = qq.codes.astype(np.float32) * qq.scales[:, None].astype(
            np.float32
        )
    else:
        fp_coeff = 0.0
        cq_cast = qq.codes.astype(np.int32)
    # One GEMM output buffer reused for every full-size block pair; the
    # fresh 8MB-per-block allocations it replaces cost page faults on a
    # par with the sgemm itself.  ``out=`` needs a C-contiguous
    # destination, so only row-sliced (full-width) views qualify —
    # trailing partial point blocks fall back to a plain matmul.
    buf = np.empty((q_block, min(scan_block, n)), dtype=dtype)
    for p0 in range(0, n, scan_block):
        p1 = min(p0 + scan_block, n)
        if mode == "float32":
            pb = qp.codes[p0:p1].astype(np.float32) * qp.scales[
                p0:p1, None
            ].astype(np.float32)
        else:
            pb = qp.codes[p0:p1].astype(np.int32)
        ep_max = float(qp.eps[p0:p1].max())
        pn_max = float(qp.norms[p0:p1].max())
        sp_max = float(qp.scales[p0:p1].max())
        for q0 in range(0, mc, q_block):
            q1 = min(q0 + q_block, mc)
            if p1 - p0 == buf.shape[1]:
                dots = np.matmul(cq_cast[q0:q1], pb.T, out=buf[: q1 - q0])
            else:
                dots = cq_cast[q0:q1] @ pb.T
            bound = (
                ep_max * qq.norms[q0:q1]
                + qq.eps[q0:q1] * (pn_max + ep_max)
                + fp_coeff * sp_max * qq.scales[q0:q1]
            )
            if bound.size:
                max_bound = max(max_bound, float(bound.max()))
            rhs = cs - bound * (1.0 + _BOUND_SLACK_REL) - _BOUND_SLACK_ABS
            if mode == "float32":
                # dots are (approximate) inner products: compare to rhs
                # directly.  Zero-scale rows give exact zero dots and
                # survive iff 0 >= rhs, as they must.
                thresh = rhs
            else:
                denom = qq.scales[q0:q1] * sp_max
                # Integer code products need the scales divided out;
                # only a block-max point scale is available, so rhs > 0
                # lets us substitute it (a surviving code product must
                # be positive there); rhs <= 0 means the bound alone
                # could bridge the threshold, so every pair survives.
                # denom == 0 with rhs > 0 means both sides quantize to
                # zero rows: nothing survives.
                positive = denom > 0.0
                thresh = np.where(
                    positive & (rhs > 0.0),
                    rhs / np.where(positive, denom, 1.0),
                    np.where(rhs > 0.0, np.inf, -np.inf),
                )
            generated += append_threshold_survivors(
                per_query, dots, thresh, signed, q0, p0
            )
    empty = np.empty(0, dtype=np.int64)
    cand_lists = [
        np.concatenate(parts) if parts else empty for parts in per_query
    ]
    return cand_lists, generated, max_bound
