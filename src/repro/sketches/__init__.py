"""Linear sketches for unsigned c-MIPS (paper Section 4.3).

The stack, bottom-up: exponential max-stability primitives
(:mod:`stable`), the ``l_kappa``-to-``l_inf`` linear sketch of Andoni [5]
(:mod:`linf`), the ``||A q||_inf`` estimator (:mod:`maxnorm`), bit-by-bit
index recovery over a prefix tree (:mod:`recovery`), and the resulting
unsigned c-MIPS data structure with approximation ``c = Theta(n^{-1/kappa})``
(:mod:`cmips`).
"""

from repro.sketches.cmips import SketchCMIPS
from repro.sketches.linf import LKappaSketch
from repro.sketches.maxnorm import MaxDotEstimator
from repro.sketches.recovery import PrefixRecoveryIndex
from repro.sketches.stable import exponential_scalers, kappa_norm

__all__ = [
    "exponential_scalers",
    "kappa_norm",
    "LKappaSketch",
    "MaxDotEstimator",
    "PrefixRecoveryIndex",
    "SketchCMIPS",
]
