"""The unsigned c-MIPS data structure of Section 4.3.

Combines the ``||Aq||_inf`` estimator and the prefix recovery index into
the structure the paper promises: for any ``kappa >= 2``, approximation
``c = Theta(n^{-1/kappa})`` with ``O~(d n^{2-2/kappa})`` construction and
``O~(d n^{1-2/kappa})`` query time.  Also provides the two reductions the
paper notes around the construction:

* ``search``: unsigned ``(cs, s)`` *search* from c-MIPS — if some data
  vector reaches ``s``, the returned vector reaches ``cs``.
* :func:`cmips_via_search` (in :mod:`repro.core.scaling`): the converse
  reduction, scaling queries ``q / c^i`` against a ``(cs, s)`` search
  structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.sketches.maxnorm import MaxDotEstimator
from repro.sketches.recovery import PrefixRecoveryIndex
from repro.sketches.stable import norm_ratio_bound
from repro.utils.rng import SeedLike
from repro.utils.validation import check_matrix, check_vector


@dataclass(frozen=True)
class CMIPSAnswer:
    """Answer record of a c-MIPS query."""

    index: int
    value: float          # exact |p . q| of the returned vector
    norm_estimate: float  # sketch estimate of ||A q||_kappa


@dataclass(frozen=True)
class CMIPSBatchAnswer:
    """Columnar answers of a batched c-MIPS query (row ``j`` of the query
    block maps to entry ``j`` of every array)."""

    indices: np.ndarray         # int64 argmax indices
    values: np.ndarray          # exact |p . q| of each returned vector
    norm_estimates: np.ndarray  # sketch estimates of ||A q||_kappa

    def __len__(self) -> int:
        return self.indices.size

    def __getitem__(self, j: int) -> CMIPSAnswer:
        return CMIPSAnswer(
            index=int(self.indices[j]),
            value=float(self.values[j]),
            norm_estimate=float(self.norm_estimates[j]),
        )


class SketchCMIPS:
    """Unsigned c-MIPS with sketch-backed sublinear queries.

    Args:
        A: data matrix (n, d).
        kappa: trade-off knob; approximation ``~ n^{-1/kappa}``, query
            time ``~ n^{1-2/kappa}``.  ``kappa = 2`` gives constant-time
            estimates and the weakest approximation.
        copies / leaf_size / seed: forwarded to the underlying structures.
    """

    def __init__(
        self,
        A,
        kappa: float = 4.0,
        copies: int = 7,
        leaf_size: int = 8,
        seed: SeedLike = None,
    ):
        A = check_matrix(A, "A")
        if kappa < 2:
            raise ParameterError(f"the paper's guarantee needs kappa >= 2, got {kappa}")
        self.A = A
        self.n, self.d = A.shape
        self.kappa = float(kappa)
        self.estimator = MaxDotEstimator(A, kappa=kappa, copies=copies, seed=seed)
        self.recovery = PrefixRecoveryIndex(
            A, kappa=kappa, leaf_size=leaf_size, copies=copies, seed=seed
        )

    @property
    def approximation_factor(self) -> float:
        """The guarantee ``c = 1 / n^{1/kappa}`` (up to sketch constants)."""
        return 1.0 / norm_ratio_bound(self.n, self.kappa)

    def query(self, q) -> CMIPSAnswer:
        """Return a vector whose |inner product| is within ``~c`` of the max."""
        q = check_vector(q, "q")
        index, value = self.recovery.query(q)
        return CMIPSAnswer(
            index=index,
            value=value,
            norm_estimate=self.estimator.estimate(q),
        )

    def query_batch(self, Q, exclude=None) -> CMIPSBatchAnswer:
        """Batched :meth:`query`: one recovery descent pass and one stacked
        norm-estimate GEMM for the whole block.  Entry ``j`` equals
        ``query(Q[j])`` field for field.  ``exclude`` (one data index per
        query) masks a self-join's identical pairs inside the descent —
        see :meth:`PrefixRecoveryIndex.query_batch`."""
        Q = check_matrix(Q, "Q", allow_empty=True)
        indices, values = self.recovery.query_batch(Q, exclude=exclude)
        return CMIPSBatchAnswer(
            indices=indices,
            values=values,
            norm_estimates=self.estimator.estimate_batch(Q),
        )

    def search(self, q, s: float, c: Optional[float] = None) -> Optional[int]:
        """Unsigned ``(cs, s)`` search built on the c-MIPS query.

        Returns an index ``p`` with ``|p . q| >= c s`` whenever some data
        vector reaches ``s`` (the promise of Definition 1's search
        variant); ``None`` when even the approximate answer misses ``cs``.
        ``c`` defaults to the structure's own approximation factor.
        """
        if s <= 0:
            raise ParameterError(f"s must be positive, got {s}")
        c = self.approximation_factor if c is None else float(c)
        if not 0.0 < c < 1.0:
            raise ParameterError(f"c must be in (0, 1), got {c}")
        answer = self.query(q)
        if answer.value >= c * s:
            return answer.index
        return None

    def construction_cost(self) -> int:
        """Multiply-adds spent sketching at build time (``O~(d n^{2-2/kappa})``
        when amortized per level of the prefix tree)."""
        total = self.estimator.sketch.copies * self.n * self.d  # root sketch
        # Each tree level resketches all n rows once.
        node = self.recovery.root
        depth = 0
        while not node.is_leaf:
            depth += 1
            node = node.left
        total += depth * self.recovery._copies * self.n * self.d
        return total
