"""The ``l_kappa``-to-``l_inf`` linear sketch (Andoni [5]).

One sketch copy is a random linear map ``Pi : R^n -> R^m`` with exactly
one non-zero per input coordinate:

    (Pi x)_j = sum_{i : h(i) = j}  sigma_i * x_i / E_i^{1/kappa}

with ``h`` a random bucket hash, ``sigma`` random signs and ``E_i``
i.i.d. Exp(1).  By max-stability the largest scaled coordinate tracks
``||x||_kappa``; with ``m = Theta(n^{1-2/kappa} log n)`` buckets the
light coordinates landing in the heavy bucket only perturb it by a small
fraction of ``||x||_kappa``, so

    || Pi x ||_inf  in  [(1 - c) ||x||_kappa, (1 + c) ||x||_kappa]

with constant probability — boosted by taking the median over independent
copies.  Crucially for Section 4.3, the map is *linear*: ``Pi A`` can be
precomputed for a data matrix ``A``, turning every later query into a
``O(m d)``-time multiply instead of ``O(n d)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ParameterError
from repro.sketches.stable import check_kappa, exponential_scalers, median_correction
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix, check_vector


def _median_axis0(a: np.ndarray) -> np.ndarray:
    """``np.median(a, axis=0)`` bit-for-bit, without its dispatch overhead.

    The descent in :mod:`repro.sketches.recovery` takes medians over the
    (small) copies axis thousands of times per query batch; a direct
    partition is ~10x cheaper than ``np.median``'s generic machinery and
    reproduces it exactly: the middle element for odd counts, the mean of
    the two middles for even counts.
    """
    c = a.shape[0]
    half = c // 2
    if c % 2:
        return np.partition(a, half, axis=0)[half]
    part = np.partition(a, (half - 1, half), axis=0)
    return (part[half - 1] + part[half]) / 2.0


def default_rows(n: int, kappa: float, constant: float = 4.0) -> int:
    """``m = ceil(constant * n^{1-2/kappa} * (1 + ln n))``, floored at 1."""
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    kappa = check_kappa(kappa)
    if math.isinf(kappa):
        exponent = 1.0
    else:
        exponent = 1.0 - 2.0 / kappa
    budget = constant * (float(n) ** max(0.0, exponent)) * (1.0 + math.log(n))
    return max(1, min(n, math.ceil(budget)))


class LKappaSketch:
    """Median-of-copies linear sketch estimating ``||x||_kappa``.

    Args:
        n: input dimensionality (the number of data vectors when sketching
            ``x = A q``).
        kappa: norm order, ``kappa >= 2`` for the paper's guarantees.
        copies: number of independent copies for the median boost.
        rows: buckets per copy; defaults to
            ``Theta(n^{1-2/kappa} log n)``.
        seed: reproducibility seed.
    """

    def __init__(
        self,
        n: int,
        kappa: float,
        copies: int = 7,
        rows: int = None,
        seed: SeedLike = None,
    ):
        if n < 1:
            raise ParameterError(f"n must be >= 1, got {n}")
        if copies < 1:
            raise ParameterError(f"copies must be >= 1, got {copies}")
        self.n = int(n)
        self.kappa = check_kappa(kappa)
        self.copies = int(copies)
        self.rows = default_rows(n, kappa) if rows is None else int(rows)
        if self.rows < 1:
            raise ParameterError(f"rows must be >= 1, got {self.rows}")
        rng = ensure_rng(seed)
        # buckets[r, i]: target row of coordinate i in copy r.
        self.buckets = rng.integers(0, self.rows, size=(self.copies, self.n))
        signs = rng.choice(np.array([-1.0, 1.0]), size=(self.copies, self.n))
        scalers = np.stack(
            [exponential_scalers(self.n, self.kappa, rng) for _ in range(self.copies)]
        )
        # weights[r, i] = sigma_i / E_i^{1/kappa} for copy r.
        self.weights = signs * scalers
        self._correction = median_correction(self.kappa)

    def apply(self, x) -> np.ndarray:
        """All copies of ``Pi x``; shape ``(copies, rows)``."""
        x = check_vector(x, "x")
        if x.size != self.n:
            raise ParameterError(f"expected dimension {self.n}, got {x.size}")
        out = np.zeros((self.copies, self.rows))
        weighted = self.weights * x[None, :]
        for r in range(self.copies):
            np.add.at(out[r], self.buckets[r], weighted[r])
        return out

    def apply_matrix(self, X) -> np.ndarray:
        """``Pi x`` for every *row* of ``X``; shape ``(copies, rows, len(X))``.

        The batch counterpart of :meth:`apply`: one weighted scatter per
        copy over the whole batch instead of one per input vector.
        """
        X = check_matrix(X, "X")
        if X.shape[1] != self.n:
            raise ParameterError(
                f"expected row dimension {self.n}, got {X.shape[1]}"
            )
        out = np.zeros((self.copies, self.rows, X.shape[0]))
        for r in range(self.copies):
            weighted = (X * self.weights[r][None, :]).T  # (n, batch)
            np.add.at(out[r], self.buckets[r], weighted)
        return out

    def sketch_matrix(self, A) -> np.ndarray:
        """Precompute ``Pi A`` for all copies; shape ``(copies, rows, d)``.

        With this tensor, ``estimate_from_sketch(S @ q)`` answers
        ``||A q||_kappa`` queries in ``O(copies * rows * d)`` time.
        """
        A = check_matrix(A, "A")
        if A.shape[0] != self.n:
            raise ParameterError(
                f"A must have {self.n} rows (one per sketched coordinate), "
                f"got {A.shape[0]}"
            )
        out = np.zeros((self.copies, self.rows, A.shape[1]))
        for r in range(self.copies):
            weighted = A * self.weights[r][:, None]
            np.add.at(out[r], self.buckets[r], weighted)
        return out

    def estimate_from_values(self, values: np.ndarray) -> float:
        """Norm estimate from the per-copy sketch values ``(copies, rows)``."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.copies, self.rows):
            raise ParameterError(
                f"expected shape {(self.copies, self.rows)}, got {values.shape}"
            )
        maxima = np.abs(values).max(axis=1)
        return float(np.median(maxima)) * self._correction

    def estimates_from_values(self, values: np.ndarray) -> np.ndarray:
        """Batch of norm estimates from ``(copies, rows, batch)`` values.

        Entry ``j`` equals ``estimate_from_values(values[:, :, j])``
        exactly: the max runs over the rows axis and the median over the
        copies axis, both per batch column.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 3 or values.shape[:2] != (self.copies, self.rows):
            raise ParameterError(
                f"expected shape ({self.copies}, {self.rows}, batch), "
                f"got {values.shape}"
            )
        # max_j |v_j| == max(max_j v_j, -min_j v_j), without materializing
        # an |values|-sized temporary — this runs per tree node in the
        # recovery descent, where values can be (copies, rows, n) sized.
        maxima = np.maximum(
            values.max(axis=1), -values.min(axis=1)
        )  # (copies, batch)
        return _median_axis0(maxima) * self._correction

    def estimate(self, x) -> float:
        """Direct estimate of ``||x||_kappa`` (sketch then read off)."""
        return self.estimate_from_values(self.apply(x))

    def estimate_matrix(self, X) -> np.ndarray:
        """Estimates of ``||x||_kappa`` for every row of ``X``; shape ``(len(X),)``."""
        return self.estimates_from_values(self.apply_matrix(X))
