"""``||A q||_inf`` estimation through the ``l_kappa`` sketch.

The Section 4.3 observation: approximating ``max_p |q . p|`` over a data
matrix ``A`` (rows are data vectors) is approximating ``||A q||_inf``,
and ``||x||_inf <= ||x||_kappa <= n^{1/kappa} ||x||_inf`` turns a
``(1 +- c0)``-accurate ``l_kappa`` estimate into an
``O(n^{1/kappa})``-approximation of the max — computable from the
precomputed ``(copies x rows x d)`` tensor in ``O~(d n^{1-2/kappa})``
per query instead of ``O(n d)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.sketches.linf import LKappaSketch
from repro.sketches.stable import norm_ratio_bound
from repro.utils.rng import SeedLike
from repro.utils.validation import check_matrix, check_vector

# Transient (copies, rows, chunk) value tensors in estimate_batch are kept
# under this many elements (~64 MB of float64) by chunking the queries.
_BATCH_VALUE_ELEMS = 1 << 23


class MaxDotEstimator:
    """Sketch-backed estimator of ``max_p |p . q|`` over a data matrix.

    Args:
        A: data matrix, shape (n, d).
        kappa: norm order (``>= 2``); larger kappa tightens the
            ``n^{1/kappa}`` approximation but costs ``n^{1-2/kappa}``
            query time.
        copies / rows / seed: forwarded to :class:`LKappaSketch`.
    """

    def __init__(
        self,
        A,
        kappa: float = 4.0,
        copies: int = 7,
        rows: int = None,
        seed: SeedLike = None,
    ):
        A = check_matrix(A, "A")
        self.n, self.d = A.shape
        self.kappa = float(kappa)
        self.sketch = LKappaSketch(self.n, kappa, copies=copies, rows=rows, seed=seed)
        # (copies, rows, d): the only data-dependent state a query touches.
        self.compressed = self.sketch.sketch_matrix(A)
        # Flattened to (copies * rows, d): one 2-D GEMM per query block
        # instead of a broadcast loop of `copies` small GEMMs.
        self._compressed2d = self.compressed.reshape(-1, self.d)

    @property
    def rows(self) -> int:
        return self.sketch.rows

    @property
    def approximation_factor(self) -> float:
        """The guaranteed multiplicative slack ``n^{1/kappa}``.

        The estimate ``e(q)`` satisfies (up to the sketch's constant-factor
        accuracy) ``||Aq||_inf <= e(q) <= n^{1/kappa} ||Aq||_inf``.
        """
        return norm_ratio_bound(self.n, self.kappa)

    def estimate(self, q) -> float:
        """Estimate of ``||A q||_kappa`` (hence of the max dot, up to slack)."""
        q = check_vector(q, "q")
        if q.size != self.d:
            raise ParameterError(f"expected query dimension {self.d}, got {q.size}")
        values = self.compressed @ q  # (copies, rows)
        return self.sketch.estimate_from_values(values)

    def estimate_batch(self, Q) -> np.ndarray:
        """Estimates for every row of ``Q``; shape ``(len(Q),)``.

        One stacked GEMM per query chunk instead of one GEMV per query.
        Chunking bounds the transient ``(copies, rows, chunk)`` value
        tensor, which at root level would otherwise scale with ``n * m``.
        """
        Q = check_matrix(Q, "Q", allow_empty=True)
        if Q.shape[1] != self.d and Q.shape[0] > 0:
            raise ParameterError(
                f"expected query dimension {self.d}, got {Q.shape[1]}"
            )
        m = Q.shape[0]
        per_query = self.sketch.copies * self.sketch.rows
        chunk = max(1, _BATCH_VALUE_ELEMS // max(1, per_query))
        out = np.empty(m, dtype=np.float64)
        for start in range(0, m, chunk):
            out[start : start + chunk] = self._estimate_block(Q[start : start + chunk])
        return out

    def _estimate_block(self, block: np.ndarray) -> np.ndarray:
        """Hot path for the recovery descent: no validation, no chunking.

        ``block`` must already be a validated ``(b, d)`` float64 matrix
        small enough that the ``(copies, rows, b)`` value tensor is fine
        to materialize whole.
        """
        values = (self._compressed2d @ block.T).reshape(
            self.sketch.copies, self.sketch.rows, -1
        )
        return self.sketch.estimates_from_values(values)

    def sketch_cost(self) -> int:
        """Multiply-adds per query: ``copies * rows * d`` (vs ``n * d`` exact)."""
        return self.sketch.copies * self.sketch.rows * self.d
