"""Bit-by-bit index recovery — Section 4.3's second step.

Estimating ``||A q||_inf`` says how large the best inner product is, not
*which* data vector attains it.  The paper recovers the index bit by bit:
for every binary prefix ``b`` there is a sketch over the data vectors
whose index starts with ``b``; a query walks the implicit binary tree,
descending into the child whose estimated norm is larger.

Each vector appears in ``log n`` structures.  Per level the chosen child
keeps at least a constant fraction of the parent's ``l_kappa`` mass
(``||parent||^kappa = ||left||^kappa + ||right||^kappa`` and estimates
are constant-accurate), so the leaf's inner product is at least
``Omega(1) * (1/2)^{log(n)/kappa} * max = Omega(n^{-1/kappa}) * max`` —
the ``c = Theta(1/n^{1/kappa})`` guarantee.  Query time is a geometric
sum dominated by the root level: ``O~(d n^{1-2/kappa})``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.sketches.maxnorm import MaxDotEstimator
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix, check_vector


class _Node:
    """One prefix of the implicit binary tree."""

    __slots__ = ("indices", "estimator", "left", "right")

    def __init__(self, indices: np.ndarray):
        self.indices = indices
        self.estimator: Optional[MaxDotEstimator] = None
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class PrefixRecoveryIndex:
    """Prefix tree of sketches recovering ``argmax_p |p . q|`` approximately.

    Args:
        A: data matrix, shape (n, d).
        kappa: norm order of the underlying sketches.
        leaf_size: subsets of at most this size are scanned exactly rather
            than sketched (sketching a handful of vectors is all overhead).
        copies / seed: sketch parameters.
    """

    def __init__(
        self,
        A,
        kappa: float = 4.0,
        leaf_size: int = 8,
        copies: int = 7,
        seed: SeedLike = None,
    ):
        A = check_matrix(A, "A")
        if leaf_size < 1:
            raise ParameterError(f"leaf_size must be >= 1, got {leaf_size}")
        self.A = A
        self.n, self.d = A.shape
        self.kappa = float(kappa)
        self.leaf_size = int(leaf_size)
        self._rng = ensure_rng(seed)
        self._copies = int(copies)
        self._sketched_nodes = 0
        self.root = self._build(np.arange(self.n))

    def _build(self, indices: np.ndarray) -> _Node:
        node = _Node(indices)
        if indices.size > self.leaf_size:
            node.estimator = MaxDotEstimator(
                self.A[indices],
                kappa=self.kappa,
                copies=self._copies,
                seed=self._rng,
            )
            self._sketched_nodes += 1
            half = indices.size // 2
            node.left = self._build(indices[:half])
            node.right = self._build(indices[half:])
        return node

    @property
    def sketched_nodes(self) -> int:
        """Number of internal sketch structures (``O(n / leaf_size)``)."""
        return self._sketched_nodes

    def query(self, q) -> Tuple[int, float]:
        """Approximate ``(argmax index, |inner product|)`` for a query.

        Descends greedily by child estimates and finishes with an exact
        scan of the final leaf, so the returned value is the *exact*
        absolute inner product of the returned index.
        """
        q = check_vector(q, "q")
        if q.size != self.d:
            raise ParameterError(f"expected query dimension {self.d}, got {q.size}")
        node = self.root
        while not node.is_leaf:
            left_est = node.left.estimator.estimate(q) if node.left.estimator else None
            right_est = node.right.estimator.estimate(q) if node.right.estimator else None
            if left_est is None:
                left_est = self._exact_max(node.left.indices, q)
            if right_est is None:
                right_est = self._exact_max(node.right.indices, q)
            node = node.left if left_est >= right_est else node.right
        values = np.abs(self.A[node.indices] @ q)
        best = int(np.argmax(values))
        return int(node.indices[best]), float(values[best])

    def query_batch(
        self, Q, exclude: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`query`: ``(indices, values)`` arrays over rows of ``Q``.

        Runs the greedy descent level-synchronously: a worklist of
        ``(node, query ids)`` pairs is split per level by one batched
        child-estimate comparison, so the tree is walked once per *node
        population* rather than once per query.  Routing uses the same
        ``left >= right`` comparison as :meth:`query` on the same
        estimates, and leaves finish with the same exact scan.

        ``exclude`` (shape ``(m,)`` int64, one global data index per
        query) masks the identical pair of a self-join *inside* the
        descent: the excluded index is removed from every exact scan —
        final leaves and small-subset child estimates — so the returned
        argmax is the best *other* vector.  Sketched child estimates
        cannot unmix one row and are left as-is; that only perturbs
        routing, never the exactness of the reported value.  A query
        whose final leaf holds only its excluded row reports index
        ``-1``.  ``exclude=None`` is bit-identical to the pre-masking
        descent.
        """
        Q = check_matrix(Q, "Q", allow_empty=True)
        m = Q.shape[0]
        if m and Q.shape[1] != self.d:
            raise ParameterError(
                f"expected query dimension {self.d}, got {Q.shape[1]}"
            )
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=np.int64)
            if exclude.shape != (m,):
                raise ParameterError(
                    f"exclude must hold one data index per query "
                    f"(shape ({m},)), got {exclude.shape}"
                )
        out_indices = np.empty(m, dtype=np.int64)
        out_values = np.empty(m, dtype=np.float64)
        worklist: List[Tuple[_Node, np.ndarray]] = (
            [(self.root, np.arange(m, dtype=np.int64))] if m else []
        )
        while worklist:
            next_level: List[Tuple[_Node, np.ndarray]] = []
            for node, qids in worklist:
                block = Q[qids]
                excl = exclude[qids] if exclude is not None else None
                if node.is_leaf:
                    values = np.abs(self.A[node.indices] @ block.T)  # (leaf, b)
                    if excl is not None:
                        hit = node.indices[:, None] == excl[None, :]
                        values = np.where(hit, -np.inf, values)
                    best = np.argmax(values, axis=0)
                    leaf_indices = node.indices[best]
                    leaf_values = values[best, np.arange(qids.size)]
                    if excl is not None:
                        dead = np.isneginf(leaf_values)
                        leaf_indices = np.where(dead, -1, leaf_indices)
                        leaf_values = np.where(dead, 0.0, leaf_values)
                    out_indices[qids] = leaf_indices
                    out_values[qids] = leaf_values
                    continue
                left_est = self._child_estimates(node.left, block, excl)
                right_est = self._child_estimates(node.right, block, excl)
                go_left = left_est >= right_est
                if go_left.any():
                    next_level.append((node.left, qids[go_left]))
                if not go_left.all():
                    next_level.append((node.right, qids[~go_left]))
            worklist = next_level
        return out_indices, out_values

    def _child_estimates(
        self,
        child: _Node,
        block: np.ndarray,
        excl: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if child.estimator is not None:
            # block was validated once at query_batch entry and descent
            # blocks shrink level by level: take the no-validation,
            # no-chunking fast path.  A sketch cannot unmix a single row,
            # so self-join exclusion does not apply here.
            return child.estimator._estimate_block(block)
        values = np.abs(self.A[child.indices] @ block.T)
        if excl is not None:
            hit = child.indices[:, None] == excl[None, :]
            values = np.where(hit, -np.inf, values)
        return values.max(axis=0, initial=0.0)

    def _exact_max(self, indices: np.ndarray, q: np.ndarray) -> float:
        return float(np.abs(self.A[indices] @ q).max(initial=0.0))

    def query_cost(self) -> int:
        """Multiply-adds of one descent (dominated by the root level)."""
        cost = 0
        node = self.root
        while not node.is_leaf:
            for child in (node.left, node.right):
                if child.estimator is not None:
                    cost += child.estimator.sketch_cost()
                else:
                    cost += child.indices.size * self.d
            node = node.left
        cost += node.indices.size * self.d
        return cost
