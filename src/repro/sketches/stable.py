"""Max-stability primitives for ``l_kappa`` estimation.

The identity behind the sketch: if ``E_1 .. E_n`` are i.i.d. Exp(1) then

    max_i  |x_i| / E_i^{1/kappa}   ~   ||x||_kappa / E^{1/kappa}

with ``E ~ Exp(1)`` — the max over coordinates *is* the norm, up to a
single exponential fluctuation.  (Proof: ``Pr[max <= t] = prod_i
Pr[E_i >= (|x_i|/t)^kappa] = exp(-||x||_kappa^kappa / t^kappa)``.)
The median of ``1/E^{1/kappa}`` is ``(1/ln 2)^{1/kappa}``, so the median
of repeated maxima, times ``(ln 2)^{1/kappa}``, is a consistent estimator
of ``||x||_kappa``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import SeedLike, ensure_rng


def check_kappa(kappa: float) -> float:
    """Validate the norm order ``kappa >= 1`` (``math.inf`` allowed)."""
    kappa = float(kappa)
    if not (kappa >= 1.0):
        raise ParameterError(f"kappa must be >= 1, got {kappa}")
    return kappa


def kappa_norm(x, kappa: float) -> float:
    """``||x||_kappa``, with ``kappa = inf`` meaning the max norm."""
    kappa = check_kappa(kappa)
    x = np.abs(np.asarray(x, dtype=np.float64))
    if math.isinf(kappa):
        return float(x.max(initial=0.0))
    # Rescale by the max for numerical stability at large kappa.
    peak = float(x.max(initial=0.0))
    if peak == 0.0:
        return 0.0
    return peak * float(((x / peak) ** kappa).sum() ** (1.0 / kappa))


def exponential_scalers(n: int, kappa: float, rng: np.random.Generator) -> np.ndarray:
    """Draw the per-coordinate scalers ``1 / E_i^{1/kappa}``."""
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    kappa = check_kappa(kappa)
    exponentials = rng.exponential(1.0, size=n)
    if math.isinf(kappa):
        return np.ones(n)
    return exponentials ** (-1.0 / kappa)


def median_correction(kappa: float) -> float:
    """``(ln 2)^{1/kappa}``: turns the median max into a norm estimate."""
    kappa = check_kappa(kappa)
    if math.isinf(kappa):
        return 1.0
    return math.log(2.0) ** (1.0 / kappa)


def norm_ratio_bound(n: int, kappa: float) -> float:
    """``n^{1/kappa}``: the worst case of ``||x||_kappa / ||x||_inf``.

    This ratio is the source of the final ``c = n^{-1/kappa}``
    approximation factor of the Section 4.3 data structure.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    kappa = check_kappa(kappa)
    if math.isinf(kappa):
        return 1.0
    return float(n) ** (1.0 / kappa)
