"""Closed-form reproductions of the paper's stated results.

``table1`` encodes the hard/permissible approximation ranges of Table 1;
``theorems`` provides parameter checkers for Theorems 1-3 so experiments
can place themselves on the correct side of each boundary explicitly.
"""

from repro.theory.table1 import Table1Row, table1_rows, classify_approximation
from repro.theory.theorems import (
    theorem1_hard_c,
    theorem2_hard_ratio,
    theorem3_gap_bounds,
)
from repro.theory.tradeoffs import (
    HardInstanceParameters,
    hard_instance_signed_pm1,
    hard_instance_table,
    hard_instance_unsigned_01,
    hard_instance_unsigned_pm1,
)

__all__ = [
    "Table1Row",
    "table1_rows",
    "classify_approximation",
    "theorem1_hard_c",
    "theorem2_hard_ratio",
    "theorem3_gap_bounds",
    "HardInstanceParameters",
    "hard_instance_signed_pm1",
    "hard_instance_unsigned_pm1",
    "hard_instance_unsigned_01",
    "hard_instance_table",
]
