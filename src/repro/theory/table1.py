"""Table 1: hard vs permissible approximation ranges per problem domain.

The table's three rows are the three ``(cs, s)`` join problems; for each,
the paper records which approximation factors ``c`` (equivalently which
``log(s/d)/log(cs/d)`` ratios) make subquadratic joins OVP-hard, and
which ranges admit known truly subquadratic algorithms (this paper's
sketch structure, and Karppa et al. [29] via fast matrix multiplication).

``table1_rows`` materializes the table programmatically (the Table 1
bench prints it and attaches an empirical witness per cell);
``classify_approximation`` answers, for concrete ``(domain, c, n)``,
which regime the parameters fall into.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import ParameterError

SIGNED_PM1 = "signed {-1,1}"
UNSIGNED_PM1 = "unsigned {-1,1}"
UNSIGNED_01 = "unsigned {0,1}"
DOMAINS = (SIGNED_PM1, UNSIGNED_PM1, UNSIGNED_01)


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (stringly, as the paper prints ranges)."""

    problem: str
    hard_c: str
    permissible_c: str
    hard_ratio: str
    permissible_ratio: str
    witnesses: tuple


def table1_rows() -> List[Table1Row]:
    """The three rows of Table 1, with reproduction witnesses noted."""
    return [
        Table1Row(
            problem=SIGNED_PM1,
            hard_c="c > 0",
            permissible_c="-",
            hard_ratio="log(s/d)/log(cs/d) > 0",
            permissible_ratio="-",
            witnesses=(
                "embedding: SignedCoordinateEmbedding (d, 4d-4, 0, 4)",
            ),
        ),
        Table1Row(
            problem=UNSIGNED_PM1,
            hard_c="c >= e^{-o(sqrt(log n / log log n))}",
            permissible_c="c < n^{-eps} (sketches; also [29] via FMM)",
            hard_ratio="log(s/d)/log(cs/d) >= 1 - o(1/sqrt(log n))",
            permissible_ratio="= 1 - eps [29]; = 1/2 - eps (sketches)",
            witnesses=(
                "embedding: ChebyshevSignEmbedding (d, (9d)^q, (2d)^q, (2d)^q T_q(1+1/d))",
                "permissible: SketchCMIPS at c = n^{-1/kappa}",
            ),
        ),
        Table1Row(
            problem=UNSIGNED_01,
            hard_c="c >= 1 - o(1)",
            permissible_c="c < n^{-eps} (sketches)",
            hard_ratio="log(s/d)/log(cs/d) >= 1 - o(1/log n)",
            permissible_ratio="= 1 - eps (LSH for {0,1})",
            witnesses=(
                "embedding: ChoppedBinaryEmbedding (d, k 2^{d/k}, k-1, k)",
                "permissible: SketchCMIPS at c = n^{-1/kappa}",
            ),
        ),
    ]


def hard_c_threshold_unsigned_pm1(n: int) -> float:
    """The boundary ``e^{-sqrt(log n / log log n)}`` of the ±1 hard range.

    Approximations ``c`` *above* this (up to the o(.) slack) are hard by
    Theorem 1 item 2; far below it the sketch structure is permissible.
    """
    if n < 16:
        raise ParameterError(f"n must be >= 16 for the formula to make sense, got {n}")
    log_n = math.log(n)
    return math.exp(-math.sqrt(log_n / math.log(log_n)))


def classify_approximation(domain: str, c: float, n: int) -> str:
    """Place ``(domain, c, n)`` into ``"hard"``, ``"permissible"`` or ``"open"``.

    Boundaries follow Table 1; the o(.) gaps between hard and permissible
    ranges are reported as ``"open"``.
    """
    if domain not in DOMAINS:
        raise ParameterError(f"domain must be one of {DOMAINS}, got {domain!r}")
    if not 0.0 < c < 1.0:
        raise ParameterError(f"c must be in (0, 1), got {c}")
    if n < 16:
        raise ParameterError(f"n must be >= 16, got {n}")
    if domain == SIGNED_PM1:
        return "hard"  # every c > 0 is hard (Theorem 1 item 1)
    permissible_boundary = 1.0 / math.sqrt(n)  # c < n^{-1/2}: sketch at kappa=2
    if domain == UNSIGNED_PM1:
        if c >= hard_c_threshold_unsigned_pm1(n):
            return "hard"
        if c < permissible_boundary:
            return "permissible"
        return "open"
    # unsigned {0,1}: hard only for c -> 1 (c >= 1 - 1/log n as the o(1) proxy).
    if c >= 1.0 - 1.0 / math.log2(n):
        return "hard"
    if c < permissible_boundary:
        return "permissible"
    return "open"
